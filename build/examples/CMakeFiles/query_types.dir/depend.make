# Empty dependencies file for query_types.
# This may be replaced when dependencies are built.
