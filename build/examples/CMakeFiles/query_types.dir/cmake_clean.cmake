file(REMOVE_RECURSE
  "CMakeFiles/query_types.dir/query_types.cpp.o"
  "CMakeFiles/query_types.dir/query_types.cpp.o.d"
  "query_types"
  "query_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
