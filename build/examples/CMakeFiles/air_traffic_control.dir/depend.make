# Empty dependencies file for air_traffic_control.
# This may be replaced when dependencies are built.
