file(REMOVE_RECURSE
  "CMakeFiles/air_traffic_control.dir/air_traffic_control.cpp.o"
  "CMakeFiles/air_traffic_control.dir/air_traffic_control.cpp.o.d"
  "air_traffic_control"
  "air_traffic_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_traffic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
