# Empty compiler generated dependencies file for most_shell.
# This may be replaced when dependencies are built.
