file(REMOVE_RECURSE
  "CMakeFiles/most_shell.dir/most_shell.cpp.o"
  "CMakeFiles/most_shell.dir/most_shell.cpp.o.d"
  "most_shell"
  "most_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
