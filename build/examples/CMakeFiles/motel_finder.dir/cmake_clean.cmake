file(REMOVE_RECURSE
  "CMakeFiles/motel_finder.dir/motel_finder.cpp.o"
  "CMakeFiles/motel_finder.dir/motel_finder.cpp.o.d"
  "motel_finder"
  "motel_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motel_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
