# Empty dependencies file for motel_finder.
# This may be replaced when dependencies are built.
