# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(most_shell_smoke "sh" "-c" "printf 'demo
query RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)
nearest CARS 0 HOSPITALS
tick 35
show 0
quit
' | /root/repo/build/examples/most_shell")
set_tests_properties(most_shell_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
