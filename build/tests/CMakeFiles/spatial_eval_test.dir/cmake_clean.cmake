file(REMOVE_RECURSE
  "CMakeFiles/spatial_eval_test.dir/spatial_eval_test.cc.o"
  "CMakeFiles/spatial_eval_test.dir/spatial_eval_test.cc.o.d"
  "spatial_eval_test"
  "spatial_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
