# Empty compiler generated dependencies file for spatial_eval_test.
# This may be replaced when dependencies are built.
