file(REMOVE_RECURSE
  "CMakeFiles/trajectory_index_test.dir/trajectory_index_test.cc.o"
  "CMakeFiles/trajectory_index_test.dir/trajectory_index_test.cc.o.d"
  "trajectory_index_test"
  "trajectory_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
