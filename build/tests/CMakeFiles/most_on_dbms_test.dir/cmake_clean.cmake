file(REMOVE_RECURSE
  "CMakeFiles/most_on_dbms_test.dir/most_on_dbms_test.cc.o"
  "CMakeFiles/most_on_dbms_test.dir/most_on_dbms_test.cc.o.d"
  "most_on_dbms_test"
  "most_on_dbms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_on_dbms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
