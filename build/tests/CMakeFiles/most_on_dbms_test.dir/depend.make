# Empty dependencies file for most_on_dbms_test.
# This may be replaced when dependencies are built.
