# Empty dependencies file for velocity_index_test.
# This may be replaced when dependencies are built.
