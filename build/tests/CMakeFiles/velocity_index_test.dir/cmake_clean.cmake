file(REMOVE_RECURSE
  "CMakeFiles/velocity_index_test.dir/velocity_index_test.cc.o"
  "CMakeFiles/velocity_index_test.dir/velocity_index_test.cc.o.d"
  "velocity_index_test"
  "velocity_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velocity_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
