# Empty dependencies file for hybrid_executor_test.
# This may be replaced when dependencies are built.
