file(REMOVE_RECURSE
  "CMakeFiles/hybrid_executor_test.dir/hybrid_executor_test.cc.o"
  "CMakeFiles/hybrid_executor_test.dir/hybrid_executor_test.cc.o.d"
  "hybrid_executor_test"
  "hybrid_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
