file(REMOVE_RECURSE
  "CMakeFiles/nearest_test.dir/nearest_test.cc.o"
  "CMakeFiles/nearest_test.dir/nearest_test.cc.o.d"
  "nearest_test"
  "nearest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
