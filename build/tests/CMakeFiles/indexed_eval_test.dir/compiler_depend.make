# Empty compiler generated dependencies file for indexed_eval_test.
# This may be replaced when dependencies are built.
