file(REMOVE_RECURSE
  "CMakeFiles/indexed_eval_test.dir/indexed_eval_test.cc.o"
  "CMakeFiles/indexed_eval_test.dir/indexed_eval_test.cc.o.d"
  "indexed_eval_test"
  "indexed_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
