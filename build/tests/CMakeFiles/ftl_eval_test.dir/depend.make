# Empty dependencies file for ftl_eval_test.
# This may be replaced when dependencies are built.
