file(REMOVE_RECURSE
  "CMakeFiles/ftl_eval_test.dir/ftl_eval_test.cc.o"
  "CMakeFiles/ftl_eval_test.dir/ftl_eval_test.cc.o.d"
  "ftl_eval_test"
  "ftl_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
