# Empty dependencies file for ftl_parser_test.
# This may be replaced when dependencies are built.
