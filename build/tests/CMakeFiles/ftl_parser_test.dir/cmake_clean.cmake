file(REMOVE_RECURSE
  "CMakeFiles/ftl_parser_test.dir/ftl_parser_test.cc.o"
  "CMakeFiles/ftl_parser_test.dir/ftl_parser_test.cc.o.d"
  "ftl_parser_test"
  "ftl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
