# Empty compiler generated dependencies file for plf_test.
# This may be replaced when dependencies are built.
