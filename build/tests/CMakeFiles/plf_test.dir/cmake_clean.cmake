file(REMOVE_RECURSE
  "CMakeFiles/plf_test.dir/plf_test.cc.o"
  "CMakeFiles/plf_test.dir/plf_test.cc.o.d"
  "plf_test"
  "plf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
