file(REMOVE_RECURSE
  "CMakeFiles/kinematics_test.dir/kinematics_test.cc.o"
  "CMakeFiles/kinematics_test.dir/kinematics_test.cc.o.d"
  "kinematics_test"
  "kinematics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinematics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
