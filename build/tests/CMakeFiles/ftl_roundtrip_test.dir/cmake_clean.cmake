file(REMOVE_RECURSE
  "CMakeFiles/ftl_roundtrip_test.dir/ftl_roundtrip_test.cc.o"
  "CMakeFiles/ftl_roundtrip_test.dir/ftl_roundtrip_test.cc.o.d"
  "ftl_roundtrip_test"
  "ftl_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
