file(REMOVE_RECURSE
  "CMakeFiles/most_distributed.dir/coordinator.cc.o"
  "CMakeFiles/most_distributed.dir/coordinator.cc.o.d"
  "CMakeFiles/most_distributed.dir/mobile_node.cc.o"
  "CMakeFiles/most_distributed.dir/mobile_node.cc.o.d"
  "CMakeFiles/most_distributed.dir/network.cc.o"
  "CMakeFiles/most_distributed.dir/network.cc.o.d"
  "CMakeFiles/most_distributed.dir/transmission.cc.o"
  "CMakeFiles/most_distributed.dir/transmission.cc.o.d"
  "libmost_distributed.a"
  "libmost_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
