# Empty dependencies file for most_distributed.
# This may be replaced when dependencies are built.
