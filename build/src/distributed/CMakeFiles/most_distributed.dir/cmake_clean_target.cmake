file(REMOVE_RECURSE
  "libmost_distributed.a"
)
