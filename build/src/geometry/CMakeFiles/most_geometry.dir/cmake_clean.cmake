file(REMOVE_RECURSE
  "CMakeFiles/most_geometry.dir/kinematics.cc.o"
  "CMakeFiles/most_geometry.dir/kinematics.cc.o.d"
  "CMakeFiles/most_geometry.dir/mec.cc.o"
  "CMakeFiles/most_geometry.dir/mec.cc.o.d"
  "CMakeFiles/most_geometry.dir/polygon.cc.o"
  "CMakeFiles/most_geometry.dir/polygon.cc.o.d"
  "libmost_geometry.a"
  "libmost_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
