# Empty compiler generated dependencies file for most_geometry.
# This may be replaced when dependencies are built.
