file(REMOVE_RECURSE
  "libmost_geometry.a"
)
