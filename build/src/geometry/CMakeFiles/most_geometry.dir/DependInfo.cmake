
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/kinematics.cc" "src/geometry/CMakeFiles/most_geometry.dir/kinematics.cc.o" "gcc" "src/geometry/CMakeFiles/most_geometry.dir/kinematics.cc.o.d"
  "/root/repo/src/geometry/mec.cc" "src/geometry/CMakeFiles/most_geometry.dir/mec.cc.o" "gcc" "src/geometry/CMakeFiles/most_geometry.dir/mec.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/geometry/CMakeFiles/most_geometry.dir/polygon.cc.o" "gcc" "src/geometry/CMakeFiles/most_geometry.dir/polygon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/most_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
