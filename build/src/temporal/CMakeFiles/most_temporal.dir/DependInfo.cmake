
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/dynamic_attribute.cc" "src/temporal/CMakeFiles/most_temporal.dir/dynamic_attribute.cc.o" "gcc" "src/temporal/CMakeFiles/most_temporal.dir/dynamic_attribute.cc.o.d"
  "/root/repo/src/temporal/range_query.cc" "src/temporal/CMakeFiles/most_temporal.dir/range_query.cc.o" "gcc" "src/temporal/CMakeFiles/most_temporal.dir/range_query.cc.o.d"
  "/root/repo/src/temporal/time_function.cc" "src/temporal/CMakeFiles/most_temporal.dir/time_function.cc.o" "gcc" "src/temporal/CMakeFiles/most_temporal.dir/time_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/most_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
