file(REMOVE_RECURSE
  "CMakeFiles/most_temporal.dir/dynamic_attribute.cc.o"
  "CMakeFiles/most_temporal.dir/dynamic_attribute.cc.o.d"
  "CMakeFiles/most_temporal.dir/range_query.cc.o"
  "CMakeFiles/most_temporal.dir/range_query.cc.o.d"
  "CMakeFiles/most_temporal.dir/time_function.cc.o"
  "CMakeFiles/most_temporal.dir/time_function.cc.o.d"
  "libmost_temporal.a"
  "libmost_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
