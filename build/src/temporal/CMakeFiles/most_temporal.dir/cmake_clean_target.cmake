file(REMOVE_RECURSE
  "libmost_temporal.a"
)
