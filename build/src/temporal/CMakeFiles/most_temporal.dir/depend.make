# Empty dependencies file for most_temporal.
# This may be replaced when dependencies are built.
