file(REMOVE_RECURSE
  "libmost_index.a"
)
