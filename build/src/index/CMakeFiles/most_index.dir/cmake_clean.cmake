file(REMOVE_RECURSE
  "CMakeFiles/most_index.dir/motion_index.cc.o"
  "CMakeFiles/most_index.dir/motion_index.cc.o.d"
  "CMakeFiles/most_index.dir/trajectory_index.cc.o"
  "CMakeFiles/most_index.dir/trajectory_index.cc.o.d"
  "CMakeFiles/most_index.dir/velocity_index.cc.o"
  "CMakeFiles/most_index.dir/velocity_index.cc.o.d"
  "libmost_index.a"
  "libmost_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
