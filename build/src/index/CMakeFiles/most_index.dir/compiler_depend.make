# Empty compiler generated dependencies file for most_index.
# This may be replaced when dependencies are built.
