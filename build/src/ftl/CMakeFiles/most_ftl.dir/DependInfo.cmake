
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/ast.cc" "src/ftl/CMakeFiles/most_ftl.dir/ast.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/ast.cc.o.d"
  "/root/repo/src/ftl/eval.cc" "src/ftl/CMakeFiles/most_ftl.dir/eval.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/eval.cc.o.d"
  "/root/repo/src/ftl/hybrid_executor.cc" "src/ftl/CMakeFiles/most_ftl.dir/hybrid_executor.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/hybrid_executor.cc.o.d"
  "/root/repo/src/ftl/lexer.cc" "src/ftl/CMakeFiles/most_ftl.dir/lexer.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/lexer.cc.o.d"
  "/root/repo/src/ftl/naive_eval.cc" "src/ftl/CMakeFiles/most_ftl.dir/naive_eval.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/naive_eval.cc.o.d"
  "/root/repo/src/ftl/nearest.cc" "src/ftl/CMakeFiles/most_ftl.dir/nearest.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/nearest.cc.o.d"
  "/root/repo/src/ftl/parser.cc" "src/ftl/CMakeFiles/most_ftl.dir/parser.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/parser.cc.o.d"
  "/root/repo/src/ftl/plf.cc" "src/ftl/CMakeFiles/most_ftl.dir/plf.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/plf.cc.o.d"
  "/root/repo/src/ftl/query_manager.cc" "src/ftl/CMakeFiles/most_ftl.dir/query_manager.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/query_manager.cc.o.d"
  "/root/repo/src/ftl/spatial_eval.cc" "src/ftl/CMakeFiles/most_ftl.dir/spatial_eval.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/spatial_eval.cc.o.d"
  "/root/repo/src/ftl/term_eval.cc" "src/ftl/CMakeFiles/most_ftl.dir/term_eval.cc.o" "gcc" "src/ftl/CMakeFiles/most_ftl.dir/term_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/most_core_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/most_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/most_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/most_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/most_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/most_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
