file(REMOVE_RECURSE
  "CMakeFiles/most_ftl.dir/ast.cc.o"
  "CMakeFiles/most_ftl.dir/ast.cc.o.d"
  "CMakeFiles/most_ftl.dir/eval.cc.o"
  "CMakeFiles/most_ftl.dir/eval.cc.o.d"
  "CMakeFiles/most_ftl.dir/hybrid_executor.cc.o"
  "CMakeFiles/most_ftl.dir/hybrid_executor.cc.o.d"
  "CMakeFiles/most_ftl.dir/lexer.cc.o"
  "CMakeFiles/most_ftl.dir/lexer.cc.o.d"
  "CMakeFiles/most_ftl.dir/naive_eval.cc.o"
  "CMakeFiles/most_ftl.dir/naive_eval.cc.o.d"
  "CMakeFiles/most_ftl.dir/nearest.cc.o"
  "CMakeFiles/most_ftl.dir/nearest.cc.o.d"
  "CMakeFiles/most_ftl.dir/parser.cc.o"
  "CMakeFiles/most_ftl.dir/parser.cc.o.d"
  "CMakeFiles/most_ftl.dir/plf.cc.o"
  "CMakeFiles/most_ftl.dir/plf.cc.o.d"
  "CMakeFiles/most_ftl.dir/query_manager.cc.o"
  "CMakeFiles/most_ftl.dir/query_manager.cc.o.d"
  "CMakeFiles/most_ftl.dir/spatial_eval.cc.o"
  "CMakeFiles/most_ftl.dir/spatial_eval.cc.o.d"
  "CMakeFiles/most_ftl.dir/term_eval.cc.o"
  "CMakeFiles/most_ftl.dir/term_eval.cc.o.d"
  "libmost_ftl.a"
  "libmost_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
