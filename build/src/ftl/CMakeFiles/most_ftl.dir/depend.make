# Empty dependencies file for most_ftl.
# This may be replaced when dependencies are built.
