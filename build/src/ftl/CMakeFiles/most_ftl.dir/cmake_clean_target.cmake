file(REMOVE_RECURSE
  "libmost_ftl.a"
)
