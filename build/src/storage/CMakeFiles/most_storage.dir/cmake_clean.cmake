file(REMOVE_RECURSE
  "CMakeFiles/most_storage.dir/btree.cc.o"
  "CMakeFiles/most_storage.dir/btree.cc.o.d"
  "CMakeFiles/most_storage.dir/database.cc.o"
  "CMakeFiles/most_storage.dir/database.cc.o.d"
  "CMakeFiles/most_storage.dir/durable_database.cc.o"
  "CMakeFiles/most_storage.dir/durable_database.cc.o.d"
  "CMakeFiles/most_storage.dir/expression.cc.o"
  "CMakeFiles/most_storage.dir/expression.cc.o.d"
  "CMakeFiles/most_storage.dir/schema.cc.o"
  "CMakeFiles/most_storage.dir/schema.cc.o.d"
  "CMakeFiles/most_storage.dir/table.cc.o"
  "CMakeFiles/most_storage.dir/table.cc.o.d"
  "CMakeFiles/most_storage.dir/value.cc.o"
  "CMakeFiles/most_storage.dir/value.cc.o.d"
  "CMakeFiles/most_storage.dir/wal.cc.o"
  "CMakeFiles/most_storage.dir/wal.cc.o.d"
  "libmost_storage.a"
  "libmost_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
