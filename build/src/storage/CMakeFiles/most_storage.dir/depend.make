# Empty dependencies file for most_storage.
# This may be replaced when dependencies are built.
