file(REMOVE_RECURSE
  "libmost_storage.a"
)
