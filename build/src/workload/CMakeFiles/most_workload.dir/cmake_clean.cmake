file(REMOVE_RECURSE
  "CMakeFiles/most_workload.dir/fleet.cc.o"
  "CMakeFiles/most_workload.dir/fleet.cc.o.d"
  "libmost_workload.a"
  "libmost_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
