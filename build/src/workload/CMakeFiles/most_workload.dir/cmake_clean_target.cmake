file(REMOVE_RECURSE
  "libmost_workload.a"
)
