# Empty compiler generated dependencies file for most_workload.
# This may be replaced when dependencies are built.
