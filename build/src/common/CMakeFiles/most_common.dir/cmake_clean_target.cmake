file(REMOVE_RECURSE
  "libmost_common.a"
)
