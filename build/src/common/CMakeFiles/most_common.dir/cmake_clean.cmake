file(REMOVE_RECURSE
  "CMakeFiles/most_common.dir/interval.cc.o"
  "CMakeFiles/most_common.dir/interval.cc.o.d"
  "CMakeFiles/most_common.dir/logging.cc.o"
  "CMakeFiles/most_common.dir/logging.cc.o.d"
  "CMakeFiles/most_common.dir/status.cc.o"
  "CMakeFiles/most_common.dir/status.cc.o.d"
  "libmost_common.a"
  "libmost_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
