# Empty compiler generated dependencies file for most_common.
# This may be replaced when dependencies are built.
