file(REMOVE_RECURSE
  "libmost_core_model.a"
)
