# Empty dependencies file for most_core_model.
# This may be replaced when dependencies are built.
