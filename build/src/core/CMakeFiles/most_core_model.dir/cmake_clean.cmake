file(REMOVE_RECURSE
  "CMakeFiles/most_core_model.dir/most_on_dbms.cc.o"
  "CMakeFiles/most_core_model.dir/most_on_dbms.cc.o.d"
  "CMakeFiles/most_core_model.dir/motion_index_manager.cc.o"
  "CMakeFiles/most_core_model.dir/motion_index_manager.cc.o.d"
  "CMakeFiles/most_core_model.dir/object_model.cc.o"
  "CMakeFiles/most_core_model.dir/object_model.cc.o.d"
  "libmost_core_model.a"
  "libmost_core_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/most_core_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
