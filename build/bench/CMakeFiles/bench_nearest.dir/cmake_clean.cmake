file(REMOVE_RECURSE
  "CMakeFiles/bench_nearest.dir/bench_nearest.cc.o"
  "CMakeFiles/bench_nearest.dir/bench_nearest.cc.o.d"
  "bench_nearest"
  "bench_nearest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nearest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
