# Empty compiler generated dependencies file for bench_nearest.
# This may be replaced when dependencies are built.
