# Empty dependencies file for bench_ftl_eval.
# This may be replaced when dependencies are built.
