file(REMOVE_RECURSE
  "CMakeFiles/bench_ftl_eval.dir/bench_ftl_eval.cc.o"
  "CMakeFiles/bench_ftl_eval.dir/bench_ftl_eval.cc.o.d"
  "bench_ftl_eval"
  "bench_ftl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ftl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
