# Empty compiler generated dependencies file for bench_transmission.
# This may be replaced when dependencies are built.
