
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_transmission.cc" "bench/CMakeFiles/bench_transmission.dir/bench_transmission.cc.o" "gcc" "bench/CMakeFiles/bench_transmission.dir/bench_transmission.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distributed/CMakeFiles/most_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/most_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/most_core_model.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/most_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/most_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/most_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/most_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/most_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
