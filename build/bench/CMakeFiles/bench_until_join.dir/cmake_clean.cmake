file(REMOVE_RECURSE
  "CMakeFiles/bench_until_join.dir/bench_until_join.cc.o"
  "CMakeFiles/bench_until_join.dir/bench_until_join.cc.o.d"
  "bench_until_join"
  "bench_until_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_until_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
