# Empty dependencies file for bench_until_join.
# This may be replaced when dependencies are built.
