#ifndef MOST_WORKLOAD_FLEET_H_
#define MOST_WORKLOAD_FLEET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/object_model.h"
#include "distributed/network.h"

namespace most {

/// One scheduled motion-vector change of one vehicle: at tick `at` the
/// vehicle is at `position` and switches to `velocity`. Positions are
/// continuous across updates (vehicles do not teleport).
struct MotionUpdate {
  Tick at = 0;
  ObjectId id = kInvalidObjectId;
  Point2 position;
  Vec2 velocity;
};

/// Deterministic generator of vehicles moving in a square area with
/// piecewise-linear routes: each vehicle drives straight and occasionally
/// changes speed/heading (a motion-vector update). This synthesizes the
/// GPS-fed workload the paper assumes ("the computer can automatically
/// update the motion vector of C when it senses a change in speed or
/// direction").
class FleetGenerator {
 public:
  struct Options {
    size_t num_vehicles = 100;
    double area = 1000.0;       ///< Side length of the [0, area]^2 world.
    double min_speed = 0.5;
    double max_speed = 3.0;
    /// Per-vehicle per-tick probability of a motion-vector change.
    double change_probability = 0.02;
    /// Vehicles bounce off the area boundary.
    bool bounce = true;
    uint64_t seed = 1997;
  };

  explicit FleetGenerator(Options options);

  const Options& options() const { return options_; }

  /// Initial object states (motion vectors anchored at tick 0).
  const std::vector<ObjectState>& initial_states() const { return initial_; }

  /// Pre-computes the full update schedule up to `until` (sorted by tick).
  /// Boundary bounces are injected as forced updates so vehicles stay in
  /// the area.
  std::vector<MotionUpdate> GenerateUpdates(Tick until);

  /// Creates the spatial class `class_name` in `db` and inserts every
  /// vehicle with its initial motion.
  Status Populate(MostDatabase* db, const std::string& class_name) const;

  /// Applies one update to a database previously Populate()d. The
  /// database clock must already be at `update.at`.
  static Status Apply(MostDatabase* db, const std::string& class_name,
                      const MotionUpdate& update);

 private:
  Vec2 RandomVelocity();

  Options options_;
  Rng rng_;
  std::vector<ObjectState> initial_;
};

/// A random axis-aligned rectangular region inside the fleet area,
/// covering roughly `fraction` of it.
Polygon RandomRegion(Rng* rng, double area, double fraction);

}  // namespace most

#endif  // MOST_WORKLOAD_FLEET_H_
