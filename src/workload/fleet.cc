#include "workload/fleet.h"

#include <algorithm>
#include <cmath>

namespace most {

FleetGenerator::FleetGenerator(Options options)
    : options_(options), rng_(options.seed) {
  initial_.reserve(options_.num_vehicles);
  for (size_t i = 0; i < options_.num_vehicles; ++i) {
    ObjectState s;
    s.id = static_cast<ObjectId>(i);
    s.at = 0;
    s.position = {rng_.UniformDouble(0, options_.area),
                  rng_.UniformDouble(0, options_.area)};
    s.velocity = RandomVelocity();
    initial_.push_back(s);
  }
}

Vec2 FleetGenerator::RandomVelocity() {
  double speed = rng_.UniformDouble(options_.min_speed, options_.max_speed);
  double heading = rng_.UniformDouble(0, 2.0 * M_PI);
  return {speed * std::cos(heading), speed * std::sin(heading)};
}

std::vector<MotionUpdate> FleetGenerator::GenerateUpdates(Tick until) {
  std::vector<MotionUpdate> updates;
  for (const ObjectState& start : initial_) {
    Point2 pos = start.position;
    Vec2 vel = start.velocity;
    Tick at = 0;
    for (Tick t = 1; t <= until; ++t) {
      Point2 next = pos + vel * static_cast<double>(t - at);
      bool bounce = options_.bounce &&
                    (next.x < 0 || next.x > options_.area || next.y < 0 ||
                     next.y > options_.area);
      bool turn = rng_.Bernoulli(options_.change_probability);
      if (!bounce && !turn) continue;
      Vec2 new_vel = RandomVelocity();
      if (bounce) {
        // Reflect instead of a random turn so the vehicle re-enters.
        new_vel = vel;
        if (next.x < 0 || next.x > options_.area) new_vel.x = -new_vel.x;
        if (next.y < 0 || next.y > options_.area) new_vel.y = -new_vel.y;
      }
      pos = next;
      vel = new_vel;
      at = t;
      updates.push_back({t, start.id, pos, vel});
    }
  }
  std::sort(updates.begin(), updates.end(),
            [](const MotionUpdate& a, const MotionUpdate& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.id < b.id;
            });
  return updates;
}

Status FleetGenerator::Populate(MostDatabase* db,
                                const std::string& class_name) const {
  if (!db->HasClass(class_name)) {
    MOST_RETURN_IF_ERROR(
        db->CreateClass(class_name, {}, /*spatial=*/true).status());
  }
  for (const ObjectState& s : initial_) {
    MOST_RETURN_IF_ERROR(db->RestoreObject(class_name, s.id).status());
    MOST_RETURN_IF_ERROR(
        db->SetMotion(class_name, s.id, s.position, s.velocity));
  }
  return Status::OK();
}

Status FleetGenerator::Apply(MostDatabase* db, const std::string& class_name,
                             const MotionUpdate& update) {
  return db->SetMotion(class_name, update.id, update.position,
                       update.velocity);
}

Polygon RandomRegion(Rng* rng, double area, double fraction) {
  double side = area * std::sqrt(std::clamp(fraction, 0.0001, 1.0));
  double x = rng->UniformDouble(0, area - side);
  double y = rng->UniformDouble(0, area - side);
  return Polygon::Rectangle({x, y}, {x + side, y + side});
}

}  // namespace most
