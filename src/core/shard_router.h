#ifndef MOST_CORE_SHARD_ROUTER_H_
#define MOST_CORE_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/types.h"

namespace most {

/// Finalizer of the splitmix64 generator: a cheap, well-mixed 64-bit hash.
/// Object ids are small dense integers (the database hands them out
/// sequentially), so hashing before the modulus is what makes the shard
/// assignment independent of creation order — `id % shards` would put all
/// of one class's early objects on low shards whenever creation batches
/// correlate with classes.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stable hash assignment of objects to shards (docs/sharding.md). The
/// assignment is a pure function of (id, shard_count): two processes with
/// the same shard count agree on every owner without coordination, and a
/// recovery replay routes each logged record to the shard that wrote it.
class ShardRouter {
 public:
  explicit ShardRouter(size_t shard_count) : shard_count_(shard_count) {}

  size_t shard_count() const { return shard_count_; }

  size_t ShardOf(ObjectId id) const {
    return static_cast<size_t>(SplitMix64(id) % shard_count_);
  }

 private:
  size_t shard_count_;
};

}  // namespace most

#endif  // MOST_CORE_SHARD_ROUTER_H_
