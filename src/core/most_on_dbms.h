#ifndef MOST_CORE_MOST_ON_DBMS_H_
#define MOST_CORE_MOST_ON_DBMS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/trajectory_index.h"
#include "storage/database.h"
#include "temporal/clock.h"
#include "temporal/dynamic_attribute.h"

namespace most {

/// Declares one column of a MOST table: static (ordinary DBMS column) or
/// dynamic (stored as the three sub-attribute columns).
struct MostColumnSpec {
  std::string name;
  bool dynamic = false;
  ValueType static_type = ValueType::kNull;  ///< For static columns.
};

/// Encodes a TimeFunction as a string so the `A.function` sub-attribute
/// can live in an ordinary DBMS column ("the MOST system stores each
/// dynamic attribute A as three DBMS attributes", Section 5.1).
std::string EncodeTimeFunction(const TimeFunction& f);
Result<TimeFunction> DecodeTimeFunction(const std::string& encoded);

/// The Section 5.1 software layer: MOST implemented on top of an existing
/// (here: most_storage) DBMS.
///
/// * Every dynamic attribute A becomes three host columns A.value,
///   A.updatetime, A.function.
/// * Queries are written against the *logical* schema (referencing A
///   directly). ExecuteSelect intercepts them, eliminates dynamic atoms
///   with the F = (F' AND p) OR (F'' AND NOT p) decomposition (up to 2^k
///   host queries for k dynamic atoms), post-filters with current values
///   computed from the sub-attributes, and re-assembles the result.
/// * Optionally, a Section 4 trajectory index on a dynamic attribute
///   answers `A cmp const` atoms without examining every row.
class MostOnDbms {
 public:
  MostOnDbms(Database* db, Clock* clock) : db_(db), clock_(clock) {}

  MostOnDbms(const MostOnDbms&) = delete;
  MostOnDbms& operator=(const MostOnDbms&) = delete;

  Status CreateTable(const std::string& name,
                     std::vector<MostColumnSpec> columns);

  /// Inserts a row given logical values.
  Result<RowId> Insert(const std::string& table,
                       const std::map<std::string, Value>& statics,
                       const std::map<std::string, DynamicAttribute>& dynamics);

  Status Delete(const std::string& table, RowId rid);

  Status UpdateStatic(const std::string& table, RowId rid,
                      const std::string& column, Value value);

  /// Explicit update of a dynamic attribute (sub-attributes are stamped
  /// with the clock's current time).
  Status UpdateDynamic(const std::string& table, RowId rid,
                       const std::string& column, double value,
                       TimeFunction function);

  /// Reads the current (time-dependent) value of a dynamic attribute.
  Result<double> ReadDynamic(const std::string& table, RowId rid,
                             const std::string& column) const;

  /// Builds a Section 4 trajectory index over a dynamic column.
  Status CreateDynamicIndex(const std::string& table,
                            const std::string& column,
                            TrajectoryIndex::Options options = {1024, 16});

  struct ExecOptions {
    /// Use a trajectory index for `A cmp const` conjuncts when available.
    bool use_dynamic_index = false;
    /// Constant-fold each decomposition branch's WHERE clause and skip
    /// branches that fold to FALSE. Off by default to reproduce the
    /// paper's "up to 2^k queries" cost model faithfully; the E6c
    /// ablation in bench_decomposition measures the saving.
    bool prune_trivial_branches = false;
  };

  /// Executes a SELECT against the logical schema. `query.where` may
  /// reference dynamic attributes by name; `query.project` may list them.
  Result<ResultSet> ExecuteSelect(const SelectQuery& query,
                                  QueryStats* stats, ExecOptions options) const;
  Result<ResultSet> ExecuteSelect(const SelectQuery& query,
                                  QueryStats* stats = nullptr) const {
    return ExecuteSelect(query, stats, ExecOptions());
  }

  /// Exposed for tests / benchmarks: the number of dynamic atoms the
  /// decomposition would eliminate for this WHERE clause.
  Result<size_t> CountDynamicAtoms(const std::string& table,
                                   const ExprPtr& where) const;

  Database* host() { return db_; }
  const Database* host() const { return db_; }

  /// The table's logical column declarations (used by the hybrid FTL
  /// executor to reconstruct objects from host rows).
  Result<std::vector<MostColumnSpec>> GetLogicalColumns(
      const std::string& table) const;

 private:
  struct TableMeta {
    std::set<std::string> dynamic_columns;
    std::vector<MostColumnSpec> logical_columns;
    // Section 4 index per indexed dynamic column.
    std::map<std::string, std::unique_ptr<TrajectoryIndex>> indexes;
  };

  Result<const TableMeta*> GetMeta(const std::string& table) const;

  /// Collects atoms (maximal non-boolean subexpressions) of `where` that
  /// reference at least one dynamic column.
  static void CollectDynamicAtoms(const ExprPtr& where,
                                  const std::set<std::string>& dynamic_columns,
                                  std::vector<ExprPtr>* atoms);

  /// Evaluates a dynamic atom on a host row by substituting the current
  /// values of its dynamic attributes (computed from sub-columns).
  Result<bool> EvalDynamicAtom(const ExprPtr& atom, const TableMeta& meta,
                               const Schema& schema, const Row& row) const;

  Result<double> CurrentValueFromRow(const Schema& schema, const Row& row,
                                     const std::string& column) const;

  Database* db_;
  Clock* clock_;
  std::map<std::string, TableMeta> tables_;
};

}  // namespace most

#endif  // MOST_CORE_MOST_ON_DBMS_H_
