#include "core/class_snapshot.h"

#include <algorithm>

namespace most {

void ClassSnapshot::Build(const ObjectClass& cls, Interval window) {
  window_ = window;
  const size_t n = cls.objects().size();
  ids_.clear();
  objects_.clear();
  last_update_.clear();
  spatial_ok_.clear();
  seg_begin_.clear();
  seg_t0_.clear();
  seg_t1_.clear();
  ox_.clear();
  oy_.clear();
  vx_.clear();
  vy_.clear();
  ids_.reserve(n);
  objects_.reserve(n);
  last_update_.reserve(n);
  spatial_ok_.reserve(n);
  seg_begin_.reserve(n + 1);
  // Single-piece motion is the common case: one segment per object.
  seg_t0_.reserve(n);
  seg_t1_.reserve(n);
  ox_.reserve(n);
  oy_.reserve(n);
  vx_.reserve(n);
  vy_.reserve(n);

  for (const auto& [id, obj] : cls.objects()) {
    ids_.push_back(id);
    objects_.push_back(&obj);
    last_update_.push_back(obj.last_update());
    seg_begin_.push_back(static_cast<uint32_t>(seg_t0_.size()));
    // One walk over the (tiny) dynamic-attribute map replaces the four
    // string-keyed lookups of IsSpatial() + GetDynamic(x) + GetDynamic(y).
    const DynamicAttribute* xp = nullptr;
    const DynamicAttribute* yp = nullptr;
    for (const auto& [name, attr] : obj.dynamics()) {
      if (name == kAttrX) {
        xp = &attr;
      } else if (name == kAttrY) {
        yp = &attr;
      }
    }
    const bool spatial = xp != nullptr && yp != nullptr;
    spatial_ok_.push_back(spatial ? 1 : 0);
    // An invalid window produces no motion segments (LinearPieces yields
    // none), so every kernel returns the empty set — same as the legacy
    // solvers on an invalid window.
    if (!spatial || !window.valid()) continue;
    // Same derivation as MostObject::MotionSegments — identical clamping
    // and identical floating-point expressions, so the coefficients are
    // bit-equal to the legacy path's.
    const DynamicAttribute& x = *xp;
    const DynamicAttribute& y = *yp;
    if (x.function().IsLinear() && y.function().IsLinear()) {
      // Plain linear motion (the overwhelmingly common case): one piece
      // spanning the whole window on each axis, no LinearPieces vectors.
      // Identical arithmetic to the general merge below.
      Tick lo = window.begin;
      double sx = x.function().pieces()[0].slope;
      double sy = y.function().pieces()[0].slope;
      double x_lo = x.ValueAt(lo);
      double y_lo = y.ValueAt(lo);
      seg_t0_.push_back(lo);
      seg_t1_.push_back(window.end);
      ox_.push_back(x_lo - sx * static_cast<double>(lo));
      oy_.push_back(y_lo - sy * static_cast<double>(lo));
      vx_.push_back(sx);
      vy_.push_back(sy);
      continue;
    }
    auto xs = x.LinearPieces(window);
    auto ys = y.LinearPieces(window);
    size_t i = 0, j = 0;
    while (i < xs.size() && j < ys.size()) {
      Tick lo = std::max(xs[i].ticks.begin, ys[j].ticks.begin);
      Tick hi = std::min(xs[i].ticks.end, ys[j].ticks.end);
      if (lo <= hi) {
        double x_lo = x.ValueAt(lo);
        double y_lo = y.ValueAt(lo);
        double sx = xs[i].slope;
        double sy = ys[j].slope;
        seg_t0_.push_back(lo);
        seg_t1_.push_back(hi);
        ox_.push_back(x_lo - sx * static_cast<double>(lo));
        oy_.push_back(y_lo - sy * static_cast<double>(lo));
        vx_.push_back(sx);
        vy_.push_back(sy);
      }
      if (xs[i].ticks.end < ys[j].ticks.end) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  seg_begin_.push_back(static_cast<uint32_t>(seg_t0_.size()));
}

size_t ClassSnapshot::IndexOf(ObjectId id) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return npos;
  return static_cast<size_t>(it - ids_.begin());
}

}  // namespace most
