#include "core/object_model.h"

#include <algorithm>

#include "common/failpoint.h"

namespace most {

Result<Value> MostObject::GetStatic(const std::string& name) const {
  auto it = statics_.find(name);
  if (it == statics_.end()) {
    return Status::NotFound("static attribute '" + name + "' of object " +
                            std::to_string(id_));
  }
  return it->second;
}

Result<const DynamicAttribute*> MostObject::GetDynamic(
    const std::string& name) const {
  auto it = dynamics_.find(name);
  if (it == dynamics_.end()) {
    return Status::NotFound("dynamic attribute '" + name + "' of object " +
                            std::to_string(id_));
  }
  return &it->second;
}

Point2 MostObject::PositionAt(Tick t) const {
  const DynamicAttribute& x = dynamics_.at(kAttrX);
  const DynamicAttribute& y = dynamics_.at(kAttrY);
  return {x.ValueAt(t), y.ValueAt(t)};
}

std::vector<MotionSegment> MostObject::MotionSegments(Interval window) const {
  std::vector<MotionSegment> out;
  const DynamicAttribute& x = dynamics_.at(kAttrX);
  const DynamicAttribute& y = dynamics_.at(kAttrY);
  auto xs = x.LinearPieces(window);
  auto ys = y.LinearPieces(window);
  size_t i = 0, j = 0;
  while (i < xs.size() && j < ys.size()) {
    Tick lo = std::max(xs[i].ticks.begin, ys[j].ticks.begin);
    Tick hi = std::min(xs[i].ticks.end, ys[j].ticks.end);
    if (lo <= hi) {
      MotionSegment seg;
      seg.ticks = Interval(lo, hi);
      // Motion parameterized by absolute time: origin = position at t=0 of
      // the segment's linear extension.
      double x_lo = x.ValueAt(lo);
      double y_lo = y.ValueAt(lo);
      Vec2 v{xs[i].slope, ys[j].slope};
      seg.motion = MovingPoint2(
          {x_lo - v.x * static_cast<double>(lo),
           y_lo - v.y * static_cast<double>(lo)},
          v);
      out.push_back(seg);
    }
    if (xs[i].ticks.end < ys[j].ticks.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

ObjectClass::ObjectClass(std::string name,
                         std::vector<AttributeDecl> attributes, bool spatial)
    : name_(std::move(name)),
      attributes_(std::move(attributes)),
      spatial_(spatial) {
  if (spatial_) {
    attributes_.push_back({kAttrX, /*dynamic=*/true, ValueType::kNull});
    attributes_.push_back({kAttrY, /*dynamic=*/true, ValueType::kNull});
  }
}

Result<MostObject*> ObjectClass::Get(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id) + " in class " +
                            name_);
  }
  return &it->second;
}

Result<const MostObject*> ObjectClass::Get(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id) + " in class " +
                            name_);
  }
  return &it->second;
}

Result<ObjectClass*> MostDatabase::CreateClass(
    const std::string& name, std::vector<AttributeDecl> attributes,
    bool spatial) {
  if (classes_.count(name) > 0) {
    return Status::AlreadyExists("object class '" + name + "'");
  }
  for (const AttributeDecl& decl : attributes) {
    if (decl.name == kAttrX || decl.name == kAttrY) {
      return Status::InvalidArgument("attribute '" + decl.name +
                                     "' is reserved for spatial classes");
    }
  }
  auto [it, inserted] = classes_.emplace(
      name, ObjectClass(name, std::move(attributes), spatial));
  return &it->second;
}

Result<ObjectClass*> MostDatabase::GetClass(const std::string& name) {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("object class '" + name + "'");
  }
  return &it->second;
}

Result<const ObjectClass*> MostDatabase::GetClass(
    const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("object class '" + name + "'");
  }
  return &it->second;
}

Status MostDatabase::DefineRegion(const std::string& name, Polygon polygon) {
  regions_.insert_or_assign(name, std::move(polygon));
  return Status::OK();
}

Result<const Polygon*> MostDatabase::GetRegion(const std::string& name) const {
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    return Status::NotFound("region '" + name + "'");
  }
  return &it->second;
}

Result<MostObject*> MostDatabase::CreateObject(const std::string& class_name) {
  return RestoreObject(class_name, next_id_);
}

Result<MostObject*> MostDatabase::RestoreObject(const std::string& class_name,
                                                ObjectId id) {
  MOST_ASSIGN_OR_RETURN(ObjectClass * cls, GetClass(class_name));
  if (cls->objects_.count(id) > 0) {
    return Status::AlreadyExists("object " + std::to_string(id));
  }
  MOST_FAILPOINT("core/create_object");
  next_id_ = std::max(next_id_, id + 1);
  MostObject obj(id, class_name);
  obj.set_last_update(Now());
  for (const AttributeDecl& decl : cls->attributes_) {
    if (decl.dynamic) {
      obj.SetDynamic(decl.name, DynamicAttribute(0.0, Now(), TimeFunction()));
    } else {
      obj.SetStatic(decl.name, Value::Null());
    }
  }
  auto [it, inserted] = cls->objects_.emplace(id, std::move(obj));
  update_count_.fetch_add(1, std::memory_order_relaxed);
  NotifyUpdate(class_name, id);
  return &it->second;
}

Status MostDatabase::DeleteObject(const std::string& class_name, ObjectId id) {
  MOST_ASSIGN_OR_RETURN(ObjectClass * cls, GetClass(class_name));
  if (cls->objects_.erase(id) == 0) {
    return Status::NotFound("object " + std::to_string(id));
  }
  update_count_.fetch_add(1, std::memory_order_relaxed);
  NotifyUpdate(class_name, id);
  return Status::OK();
}

Status MostDatabase::UpdateStatic(const std::string& class_name, ObjectId id,
                                  const std::string& attr, Value value) {
  MOST_ASSIGN_OR_RETURN(ObjectClass * cls, GetClass(class_name));
  MOST_ASSIGN_OR_RETURN(MostObject * obj, cls->Get(id));
  if (obj->statics().count(attr) == 0) {
    return Status::NotFound("static attribute '" + attr + "'");
  }
  MOST_FAILPOINT("core/update_static");
  obj->SetStatic(attr, std::move(value));
  obj->set_last_update(Now());
  update_count_.fetch_add(1, std::memory_order_relaxed);
  NotifyUpdate(class_name, id);
  return Status::OK();
}

Status MostDatabase::UpdateDynamic(const std::string& class_name, ObjectId id,
                                   const std::string& attr, double value,
                                   TimeFunction function) {
  MOST_ASSIGN_OR_RETURN(ObjectClass * cls, GetClass(class_name));
  MOST_ASSIGN_OR_RETURN(MostObject * obj, cls->Get(id));
  if (!obj->HasDynamic(attr)) {
    return Status::NotFound("dynamic attribute '" + attr + "'");
  }
  MOST_FAILPOINT("core/update_dynamic");
  obj->SetDynamic(attr, DynamicAttribute(value, Now(), std::move(function)));
  obj->set_last_update(Now());
  update_count_.fetch_add(1, std::memory_order_relaxed);
  NotifyUpdate(class_name, id);
  return Status::OK();
}

Status MostDatabase::SetMotion(const std::string& class_name, ObjectId id,
                               Point2 position, Vec2 velocity) {
  MOST_RETURN_IF_ERROR(UpdateDynamic(class_name, id, kAttrX, position.x,
                                     TimeFunction::Linear(velocity.x)));
  return UpdateDynamic(class_name, id, kAttrY, position.y,
                       TimeFunction::Linear(velocity.y));
}

void MostDatabase::NotifyUpdate(const std::string& class_name, ObjectId id) {
  for (const auto& [lid, listener] : listeners_) {
    listener(class_name, id);
  }
}

}  // namespace most
