#ifndef MOST_CORE_CLASS_SNAPSHOT_H_
#define MOST_CORE_CLASS_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/interval.h"
#include "common/types.h"
#include "core/object_model.h"

namespace most {

/// Structure-of-arrays snapshot of one object class over an evaluation
/// window.
///
/// The legacy hot path re-derives `MostObject::MotionSegments` (two
/// string-keyed map lookups, two LinearPieces vectors, one merge vector —
/// all heap-allocated) for every object inside every atomic predicate.
/// The snapshot performs that derivation once per class per evaluation and
/// lays the results out as contiguous per-class arrays: object ids (in
/// ascending `ObjectClass::objects()` order), update timestamps, and a
/// flattened segment table of motion coefficients (origin + velocity,
/// parameterized by absolute tick, exactly as `MotionSegments` computes
/// them). Atomic-predicate extraction (INSIDE / DIST crossings) then runs
/// tight index loops over these arrays — no maps, no strings, no
/// per-object allocation.
///
/// Coefficients are byte-identical to the legacy path's: Build() performs
/// the same LinearPieces clamping and the same `origin = value_at(lo) -
/// slope * lo` arithmetic in the same order, so every downstream root
/// solver sees bit-equal doubles and the two layouts produce identical
/// answers.
///
/// Lifetime: a snapshot borrows the evaluation's BumpArena for its arrays
/// and holds pointers into the database; it must not outlive either (it is
/// rebuilt each evaluation — see docs/eval_internals.md). Read-only after
/// Build(), so pool workers may share it.
class ClassSnapshot {
 public:
  ClassSnapshot() = default;  ///< Heap-backed (tests / no-arena callers).
  explicit ClassSnapshot(BumpArena* arena)
      : ids_(ArenaAllocator<ObjectId>(arena)),
        objects_(ArenaAllocator<const MostObject*>(arena)),
        last_update_(ArenaAllocator<Tick>(arena)),
        spatial_ok_(ArenaAllocator<uint8_t>(arena)),
        seg_begin_(ArenaAllocator<uint32_t>(arena)),
        seg_t0_(ArenaAllocator<Tick>(arena)),
        seg_t1_(ArenaAllocator<Tick>(arena)),
        ox_(ArenaAllocator<double>(arena)),
        oy_(ArenaAllocator<double>(arena)),
        vx_(ArenaAllocator<double>(arena)),
        vy_(ArenaAllocator<double>(arena)) {}

  /// Rebuilds the snapshot from `cls` over `window`. Non-spatial objects
  /// (or invalid windows) get zero segments and spatial_ok(i) == false.
  void Build(const ObjectClass& cls, Interval window);

  size_t size() const { return ids_.size(); }
  Interval window() const { return window_; }

  ObjectId id(size_t i) const { return ids_[i]; }
  const MostObject* object(size_t i) const { return objects_[i]; }
  Tick last_update(size_t i) const { return last_update_[i]; }
  bool spatial_ok(size_t i) const { return spatial_ok_[i] != 0; }

  /// Index of `id` in the per-object arrays (ids are ascending, so this is
  /// a binary search), or npos if the object is not in the snapshot.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOf(ObjectId id) const;

  /// Object i's segments occupy [seg_begin(i), seg_begin(i) + seg_count(i))
  /// in the flat segment arrays; segments tile the window in tick order.
  uint32_t seg_begin(size_t i) const { return seg_begin_[i]; }
  uint32_t seg_count(size_t i) const {
    return seg_begin_[i + 1] - seg_begin_[i];
  }
  size_t total_segments() const { return seg_t0_.size(); }

  const Tick* seg_t0() const { return seg_t0_.data(); }
  const Tick* seg_t1() const { return seg_t1_.data(); }
  const double* ox() const { return ox_.data(); }
  const double* oy() const { return oy_.data(); }
  const double* vx() const { return vx_.data(); }
  const double* vy() const { return vy_.data(); }

 private:
  Interval window_{0, -1};
  ArenaVector<ObjectId> ids_;
  ArenaVector<const MostObject*> objects_;
  ArenaVector<Tick> last_update_;
  ArenaVector<uint8_t> spatial_ok_;
  /// size() + 1 entries; seg_begin_[size()] == total_segments().
  ArenaVector<uint32_t> seg_begin_;
  ArenaVector<Tick> seg_t0_, seg_t1_;
  ArenaVector<double> ox_, oy_, vx_, vy_;
};

}  // namespace most

#endif  // MOST_CORE_CLASS_SNAPSHOT_H_
