#ifndef MOST_CORE_SHARDED_ENGINE_H_
#define MOST_CORE_SHARDED_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/motion_index_manager.h"
#include "core/object_model.h"
#include "core/shard_router.h"
#include "ftl/query_manager.h"
#include "obs/metrics.h"
#include "storage/shard_wal.h"

namespace most {

/// Shard-per-core continuous-query engine (docs/sharding.md).
///
/// The object domain is partitioned across N shards by a stable hash of
/// the object id (ShardRouter). The partition is *logical*: all shards
/// share one MostDatabase — physically splitting the store would break
/// cross-shard atoms such as DIST(o, n) where o and n hash apart — and
/// each shard owns
///
///  * a QueryManager whose Options::domain_partition restricts the first
///    FROM variable of every query to the shard's objects,
///  * an MPSC handoff queue of pending location updates routed by owner,
///  * a per-shard write-ahead log (ShardWal), and
///  * an ownership-filtered MotionIndexManager.
///
/// Safe concurrent mutation of the shared database comes from phase
/// discipline, not locks: structural operations (object create/delete,
/// query registration, reshard) run on the serial control plane; the data
/// plane (EnqueueMotion/EnqueueDynamic/EnqueueStatic) is lock-free from
/// any thread; and Tick() drains all queues in parallel — safe because
/// shards own disjoint objects, every db-level listener left registered
/// is thread-safe, and the update counter is a relaxed atomic — then
/// refreshes every shard's queries in parallel over a read-only database.
///
/// Continuous queries are evaluated scatter-gather. Because FTL relations
/// are pointwise in their bindings, restricting the first FROM variable
/// commutes with every connective: shard k's full relation is exactly the
/// oracle relation filtered to rows whose first binding is owned by k, so
/// the disjoint union over shards *is* the oracle relation. The gather
/// merges per-shard projected relations (projection can collapse a
/// binding present in several shards, whose tick sets then union and
/// re-coalesce) and flattens through QueryManager::FlattenAnswer — the
/// same code path a single-shard read uses — so answers are byte-
/// identical to an unsharded QueryManager at any shard count, which the
/// differential suite enforces.
///
/// Degradation follows the coordinator's completeness-marking idiom: a
/// shard that blows its refresh budget keeps serving its previous answer
/// as kStale instead of blocking the gather; the merged answer then
/// reports every tuple kStale and lists the shard in missing_shards.
class ShardedEngine {
 public:
  using QueryId = uint64_t;

  struct Options {
    /// Number of shards; 0 sizes to std::thread::hardware_concurrency().
    size_t shard_count = 0;
    /// Template for every per-shard QueryManager. thread_count is forced
    /// to 1 (parallelism comes from the engine fanning out across shards,
    /// not from nested per-shard pools), listen is forced off (the drain
    /// feeds coalesced NoteUpdates batches), and domain_partition is
    /// installed per shard. Options::motion_indexes may point to an
    /// external *unfiltered* manager — the engine's own per-shard managers
    /// are ownership-filtered and deliberately kept away from the
    /// evaluator, whose DIST-partner pruning assumes full class coverage.
    QueryManager::Options query_options;
    /// Directory for per-shard WALs (created if missing). Empty disables
    /// durability. Each drained update is appended to its owner shard's
    /// log, so N drain threads log without sharing a file or a lock.
    std::string wal_dir;
    /// Spatial classes each shard maintains an ownership-filtered motion
    /// index for (engine-level CandidatesNearObject unions the per-shard
    /// candidate sets).
    std::vector<std::string> index_classes;
  };

  /// The database must outlive the engine. Current objects are assigned
  /// to shards immediately; bulk-load the world first, then construct the
  /// engine (per-object structural ops through the engine are correct but
  /// heavier — each rewrites one shard's partition set).
  ShardedEngine(MostDatabase* db, Options options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(ObjectId id) const { return router_.ShardOf(id); }
  MostDatabase* database() { return db_; }

  // ---- Control plane (serial: never concurrent with Tick or enqueues) --

  /// Creates an object, assigns it to its hash shard (partition set,
  /// query partition, motion index), and dirties it in every shard's
  /// queries.
  Result<MostObject*> CreateObject(const std::string& class_name);
  /// Deletes an object and retires it from its shard; every shard's
  /// queries evict its rows on next refresh.
  Status DeleteObject(const std::string& class_name, ObjectId id);

  /// Registers the query in every shard (each restricted to its
  /// partition, windows anchored at the current tick). The returned id is
  /// engine-scoped.
  Result<QueryId> RegisterContinuous(const FtlQuery& query);
  Status Cancel(QueryId id);

  /// Rebuilds the engine over `new_shard_count` shards: drains every
  /// pending update, tears the shards down, re-partitions, and re-
  /// registers every live query. Query windows re-anchor at the current
  /// tick — answers afterwards equal a *fresh* oracle registered now, not
  /// the pre-reshard state. Old WAL files beyond the new count are left
  /// in place (replay probes up to the maximum shard count ever used).
  Status Reshard(size_t new_shard_count);

  // ---- Data plane (lock-free, any thread) ------------------------------

  void EnqueueMotion(const std::string& class_name, ObjectId id,
                     Point2 position, Vec2 velocity);
  void EnqueueDynamic(const std::string& class_name, ObjectId id,
                      const std::string& attr, double value,
                      TimeFunction function);
  void EnqueueStatic(const std::string& class_name, ObjectId id,
                     const std::string& attr, Value value);

  // ---- Tick ------------------------------------------------------------

  /// Advances the clock by `ticks`, then DrainAndRefresh().
  Status Advance(Tick ticks = 1);

  /// One scatter round: (1) in parallel per shard, pop the handoff queue,
  /// apply the updates to the shared database and append them to the
  /// shard WAL; (2) dirty the drained ids in *every* shard's queries (a
  /// non-first column of a multi-variable query can bind any object, so
  /// dirty marks fan out; single-variable queries drop non-owned marks
  /// inside the manager); (3) in parallel per shard, refresh all queries
  /// against the now read-only database. An update whose object vanished
  /// between enqueue and drain is counted dropped, not an error.
  Status DrainAndRefresh();

  // ---- Queries ---------------------------------------------------------

  /// Gathered continuous answer: per-shard snapshots merged per binding
  /// (tick sets unioned, then flattened in map order / interval order).
  /// `missing_shards` lists shards serving degraded (previous/partial)
  /// answers; when non-empty every tuple is demoted to kStale — the
  /// gather will not vouch for a partially-complete union.
  struct ShardedAnswer {
    std::vector<AnswerTuple> tuples;
    std::vector<size_t> missing_shards;
    bool complete() const { return missing_shards.empty(); }
  };
  Result<ShardedAnswer> ContinuousAnswer(QueryId id);

  /// Scatter-gather instantaneous evaluation on [now, now + horizon];
  /// byte-identical to an unsharded QueryManager::Evaluate.
  Result<TemporalRelation> Evaluate(const FtlQuery& query);

  /// Union of the per-shard motion-index candidate supersets near
  /// `probe`'s trajectory (sorted). nullopt if any shard cannot vouch for
  /// its partition (class not indexed, window escapes an epoch) — the
  /// caller must fall back to a class scan.
  std::optional<std::vector<ObjectId>> CandidatesNearObject(
      const std::string& class_name, const MostObject& probe, double radius,
      Interval window) const;

  /// Summed delta/full refresh counters across all shard managers.
  QueryManager::RefreshCounters TotalRefreshCounters() const;

  // ---- Introspection ---------------------------------------------------

  struct ShardStats {
    size_t shard = 0;
    size_t objects = 0;        ///< Owned objects (partition size).
    size_t queue_depth = 0;    ///< Approximate pending enqueued updates.
    uint64_t updates_applied = 0;
    uint64_t updates_dropped = 0;
    uint64_t delta_refreshes = 0;
    uint64_t full_refreshes = 0;
    double last_refresh_seconds = 0.0;  ///< Wall time of the last phase-3.
  };
  std::vector<ShardStats> Stats() const;

  /// Replays every shard WAL under `dir` (probing shard indices
  /// [0, shard_count)) into `db`: records are globally ordered by tick
  /// (stable, so each object's same-tick updates keep their append
  /// order — an object's records all live in one shard's log), the clock
  /// is advanced to each record's tick, and the update is re-applied.
  /// Object creations and deletions routed through the engine are
  /// replayed too; classes and regions are structural state the caller
  /// restores first (as durable_database does from its snapshot).
  struct ReplayReport {
    size_t applied = 0;
    RecoveryReport recovery;
  };
  static Result<ReplayReport> ReplayShardWals(const std::string& dir,
                                              size_t shard_count,
                                              MostDatabase* db);

 private:
  struct UpdateOp {
    enum class Kind : uint8_t { kMotion, kDynamic, kStatic };
    Kind kind = Kind::kMotion;
    std::string class_name;
    ObjectId id = kInvalidObjectId;
    Point2 position;        // kMotion.
    Vec2 velocity;          // kMotion.
    std::string attr;       // kDynamic / kStatic.
    double value = 0.0;     // kDynamic.
    TimeFunction function;  // kDynamic.
    Value static_value;     // kStatic.
  };

  struct Shard {
    std::shared_ptr<const std::set<ObjectId>> partition;
    std::unique_ptr<QueryManager> qm;
    std::unique_ptr<MotionIndexManager> indexes;
    MpscQueue<UpdateOp> queue;
    ShardWal wal;
    uint64_t updates_applied = 0;
    uint64_t updates_dropped = 0;
    uint64_t last_refresh_ns = 0;
    /// Drain scratch, reused across ticks.
    std::vector<UpdateOp> drained;
    /// Ids applied in the last drain, grouped by class (phase-2 input).
    std::map<std::string, std::vector<ObjectId>> drained_ids;
    // Registry-owned series (shard-labelled).
    obs::Counter* routed_total = nullptr;
    obs::Counter* applied_total = nullptr;
    obs::Counter* dropped_total = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* refresh_latency = nullptr;
  };

  struct EngineQuery {
    FtlQuery query;
    std::vector<QueryManager::QueryId> shard_ids;  ///< One per shard.
  };

  /// (Re)builds shards_ for router_.shard_count() shards from the
  /// database's current objects. Callers tear the old shards down first.
  Status BuildShards();
  /// Replaces the owner's partition set everywhere it is shared (query
  /// partition + index filter) after a structural change to `id`, then
  /// dirties `id` in every shard.
  void ReassignAfterStructuralChange(const std::string& class_name,
                                     ObjectId id);
  Status ApplyOp(const UpdateOp& op);
  /// Encodes `op` as a WAL record ("M"/"D"/"S" tagged kUpdate row).
  WalRecord EncodeOp(const UpdateOp& op, Tick now) const;
  void Route(UpdateOp op);

  MostDatabase* db_;
  Options options_;
  ShardRouter router_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when shard_count == 1.
  std::vector<std::unique_ptr<Shard>> shards_;
  QueryId next_query_id_ = 1;
  std::map<QueryId, EngineQuery> queries_;
  obs::Counter* gather_merges_total_ = nullptr;
  obs::Counter* degraded_gathers_total_ = nullptr;
};

}  // namespace most

#endif  // MOST_CORE_SHARDED_ENGINE_H_
