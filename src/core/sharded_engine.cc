#include "core/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "core/most_on_dbms.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace most {

namespace {

constexpr char kTagMotion[] = "M";
constexpr char kTagDynamic[] = "D";
constexpr char kTagStatic[] = "S";
constexpr char kTagCreate[] = "C";
constexpr char kTagDelete[] = "X";

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

ShardedEngine::ShardedEngine(MostDatabase* db, Options options)
    : db_(db),
      options_(std::move(options)),
      router_(options_.shard_count != 0
                  ? options_.shard_count
                  : std::max<size_t>(1, std::thread::hardware_concurrency())) {
  if (router_.shard_count() > 1) {
    pool_ = std::make_unique<ThreadPool>(router_.shard_count());
  }
  if (!options_.wal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.wal_dir, ec);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  gather_merges_total_ =
      reg.GetCounter("most_shard_gather_merges_total",
                     "Scatter-gather continuous-answer merges performed");
  degraded_gathers_total_ = reg.GetCounter(
      "most_shard_degraded_gathers_total",
      "Gathers that returned an incomplete (kStale) answer because at "
      "least one shard was degraded");
  Status s = BuildShards();
  // Construction failures (WAL open, index on a non-spatial class) are
  // surfaced on first use; the shards that did build stay consistent.
  (void)s;
}

ShardedEngine::~ShardedEngine() = default;

Status ShardedEngine::BuildShards() {
  const size_t n = router_.shard_count();
  // Partition the current object domain by stable hash. Ids are unique
  // across classes (the database hands them out from one counter), so a
  // flat per-shard set covers every class.
  std::vector<std::set<ObjectId>> owned(n);
  for (const auto& [class_name, cls] : db_->classes()) {
    for (const auto& [id, obj] : cls.objects()) {
      owned[router_.ShardOf(id)].insert(id);
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  shards_.clear();
  shards_.reserve(n);
  Status first_error = Status::OK();
  for (size_t k = 0; k < n; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->partition =
        std::make_shared<const std::set<ObjectId>>(std::move(owned[k]));
    QueryManager::Options qm_opts = options_.query_options;
    qm_opts.thread_count = 1;  // Parallelism is across shards, not within.
    qm_opts.listen = false;    // Fed by NoteUpdates batches in phase 2.
    qm_opts.domain_partition = shard->partition;
    qm_opts.shard_id = static_cast<int64_t>(k);
    shard->qm = std::make_unique<QueryManager>(db_, qm_opts);
    if (!options_.index_classes.empty()) {
      shard->indexes = std::make_unique<MotionIndexManager>(db_);
      shard->indexes->SetOwnershipFilter(shard->partition);
      for (const std::string& cls : options_.index_classes) {
        Status s = shard->indexes->IndexClass(cls);
        if (!s.ok() && first_error.ok()) first_error = s;
      }
    }
    if (!options_.wal_dir.empty()) {
      Status s = shard->wal.Open(options_.wal_dir, k);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    const obs::Labels labels{{"shard", std::to_string(k)}};
    shard->routed_total =
        reg.GetCounter("most_shard_updates_routed_total",
                       "Updates enqueued to a shard's handoff queue", labels);
    shard->applied_total =
        reg.GetCounter("most_shard_updates_applied_total",
                       "Updates a shard's drain applied to the database",
                       labels);
    shard->dropped_total = reg.GetCounter(
        "most_shard_updates_dropped_total",
        "Drained updates whose object had vanished (not an error)", labels);
    shard->queue_depth =
        reg.GetGauge("most_shard_queue_depth",
                     "Approximate pending updates in a shard's handoff queue",
                     labels);
    shard->refresh_latency = reg.GetHistogram(
        "most_shard_refresh_latency_seconds",
        "Per-shard wall time of one drain-and-refresh round's refresh phase",
        obs::ExponentialBuckets(1e-6, 4.0, 12), labels);
    shards_.push_back(std::move(shard));
  }
  return first_error;
}

Result<MostObject*> ShardedEngine::CreateObject(const std::string& class_name) {
  MOST_ASSIGN_OR_RETURN(MostObject * obj, db_->CreateObject(class_name));
  // The creation event fired before ownership was assigned, so every
  // filtered listener dropped it; assign it now and resync.
  ReassignAfterStructuralChange(class_name, obj->id());
  Shard& s = *shards_[router_.ShardOf(obj->id())];
  if (s.wal.is_open()) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kUpdate;
    rec.table = class_name;
    rec.rid = obj->id();
    rec.row = {Value(kTagCreate), Value(static_cast<int64_t>(db_->Now()))};
    MOST_RETURN_IF_ERROR(s.wal.Append(rec));
    MOST_RETURN_IF_ERROR(s.wal.Flush());
  }
  return obj;
}

Status ShardedEngine::DeleteObject(const std::string& class_name,
                                   ObjectId id) {
  // Delete *before* shrinking the partition: the owner's filtered motion
  // index still owns the id when the deletion event fires, so it drops
  // the entry itself.
  MOST_RETURN_IF_ERROR(db_->DeleteObject(class_name, id));
  ReassignAfterStructuralChange(class_name, id);
  Shard& s = *shards_[router_.ShardOf(id)];
  if (s.wal.is_open()) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kUpdate;
    rec.table = class_name;
    rec.rid = id;
    rec.row = {Value(kTagDelete), Value(static_cast<int64_t>(db_->Now()))};
    MOST_RETURN_IF_ERROR(s.wal.Append(rec));
    MOST_RETURN_IF_ERROR(s.wal.Flush());
  }
  return Status::OK();
}

void ShardedEngine::ReassignAfterStructuralChange(const std::string& class_name,
                                                  ObjectId id) {
  Shard& owner = *shards_[router_.ShardOf(id)];
  bool exists = false;
  auto cls = db_->GetClass(class_name);
  if (cls.ok()) exists = (*cls)->Get(id).ok();
  auto next = std::make_shared<std::set<ObjectId>>(*owner.partition);
  if (exists) {
    next->insert(id);
  } else {
    next->erase(id);
  }
  owner.partition = next;
  owner.qm->SetDomainPartition(next);
  if (owner.indexes != nullptr) {
    owner.indexes->SetOwnershipFilter(next);
    if (exists) owner.indexes->Resync(class_name, id);
  }
  // Dirty the id everywhere: any shard's multi-variable query can bind it
  // in a non-first column; the delta path evicts or re-derives its rows.
  const std::vector<ObjectId> ids{id};
  for (auto& shard : shards_) shard->qm->NoteUpdates(class_name, ids);
}

Result<ShardedEngine::QueryId> ShardedEngine::RegisterContinuous(
    const FtlQuery& query) {
  const size_t n = shards_.size();
  EngineQuery eq;
  eq.query = query;
  eq.shard_ids.assign(n, 0);
  std::vector<Status> sts(n, Status::OK());
  // Registration runs the initial (partition-restricted) evaluation per
  // shard; the database is read-only here, so shards evaluate in
  // parallel.
  ParallelFor(pool_.get(), n, [&](size_t k) {
    Result<QueryManager::QueryId> r = shards_[k]->qm->RegisterContinuous(query);
    if (r.ok()) {
      eq.shard_ids[k] = *r;
    } else {
      sts[k] = r.status();
    }
  });
  for (size_t k = 0; k < n; ++k) {
    if (!sts[k].ok()) {
      for (size_t j = 0; j < n; ++j) {
        if (sts[j].ok()) (void)shards_[j]->qm->Cancel(eq.shard_ids[j]);
      }
      return sts[k];
    }
  }
  QueryId id = next_query_id_++;
  queries_.emplace(id, std::move(eq));
  return id;
}

Status ShardedEngine::Cancel(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("sharded query " + std::to_string(id));
  }
  Status first_error = Status::OK();
  for (size_t k = 0; k < shards_.size(); ++k) {
    Status s = shards_[k]->qm->Cancel(it->second.shard_ids[k]);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  queries_.erase(it);
  return first_error;
}

Status ShardedEngine::Reshard(size_t new_shard_count) {
  if (new_shard_count == 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  // Flush every pending enqueued update into the database first; queued
  // ops must not be lost when their home queue is destroyed.
  MOST_RETURN_IF_ERROR(DrainAndRefresh());
  std::map<QueryId, EngineQuery> live = std::move(queries_);
  queries_.clear();
  shards_.clear();  // Closes WALs, unregisters index listeners.
  router_ = ShardRouter(new_shard_count);
  pool_ = new_shard_count > 1 ? std::make_unique<ThreadPool>(new_shard_count)
                              : nullptr;
  MOST_RETURN_IF_ERROR(BuildShards());
  // Re-register every live query under its old engine id. Windows
  // re-anchor at the current tick (docs/sharding.md): post-reshard
  // answers equal a fresh oracle registered now.
  for (auto& [id, eq] : live) {
    const size_t n = shards_.size();
    eq.shard_ids.assign(n, 0);
    std::vector<Status> sts(n, Status::OK());
    ParallelFor(pool_.get(), n, [&](size_t k) {
      Result<QueryManager::QueryId> r =
          shards_[k]->qm->RegisterContinuous(eq.query);
      if (r.ok()) {
        eq.shard_ids[k] = *r;
      } else {
        sts[k] = r.status();
      }
    });
    for (const Status& s : sts) {
      if (!s.ok()) return s;
    }
    queries_.emplace(id, std::move(eq));
  }
  return Status::OK();
}

void ShardedEngine::Route(UpdateOp op) {
  Shard& s = *shards_[router_.ShardOf(op.id)];
  s.queue.Push(std::move(op));
  if (obs::MetricsRegistry::Global().enabled()) s.routed_total->Inc();
}

void ShardedEngine::EnqueueMotion(const std::string& class_name, ObjectId id,
                                  Point2 position, Vec2 velocity) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kMotion;
  op.class_name = class_name;
  op.id = id;
  op.position = position;
  op.velocity = velocity;
  Route(std::move(op));
}

void ShardedEngine::EnqueueDynamic(const std::string& class_name, ObjectId id,
                                   const std::string& attr, double value,
                                   TimeFunction function) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kDynamic;
  op.class_name = class_name;
  op.id = id;
  op.attr = attr;
  op.value = value;
  op.function = std::move(function);
  Route(std::move(op));
}

void ShardedEngine::EnqueueStatic(const std::string& class_name, ObjectId id,
                                  const std::string& attr, Value value) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kStatic;
  op.class_name = class_name;
  op.id = id;
  op.attr = attr;
  op.static_value = std::move(value);
  Route(std::move(op));
}

Status ShardedEngine::ApplyOp(const UpdateOp& op) {
  switch (op.kind) {
    case UpdateOp::Kind::kMotion:
      return db_->SetMotion(op.class_name, op.id, op.position, op.velocity);
    case UpdateOp::Kind::kDynamic:
      return db_->UpdateDynamic(op.class_name, op.id, op.attr, op.value,
                                op.function);
    case UpdateOp::Kind::kStatic:
      return db_->UpdateStatic(op.class_name, op.id, op.attr, op.static_value);
  }
  return Status::Internal("unreachable update kind");
}

WalRecord ShardedEngine::EncodeOp(const UpdateOp& op, Tick now) const {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kUpdate;
  rec.table = op.class_name;
  rec.rid = op.id;
  const Value tick(static_cast<int64_t>(now));
  switch (op.kind) {
    case UpdateOp::Kind::kMotion:
      rec.row = {Value(kTagMotion),    tick,
                 Value(op.position.x), Value(op.position.y),
                 Value(op.velocity.x), Value(op.velocity.y)};
      break;
    case UpdateOp::Kind::kDynamic:
      rec.row = {Value(kTagDynamic), tick, Value(op.attr), Value(op.value),
                 Value(EncodeTimeFunction(op.function))};
      break;
    case UpdateOp::Kind::kStatic:
      rec.row = {Value(kTagStatic), tick, Value(op.attr), op.static_value};
      break;
  }
  return rec;
}

Status ShardedEngine::Advance(Tick ticks) {
  db_->clock().Advance(ticks);
  return DrainAndRefresh();
}

Status ShardedEngine::DrainAndRefresh() {
  const size_t n = shards_.size();
  const bool metrics = obs::MetricsRegistry::Global().enabled();
  const Tick now = db_->Now();
  // Root span for the whole tick; per-shard drain/refresh spans parent
  // under it explicitly (pool threads have no ambient context).
  obs::TraceSpan tick_span("shard/drain_and_refresh", "shard");
  tick_span.AnnotateU64("tick", static_cast<uint64_t>(now));
  const obs::TraceContext tick_ctx = tick_span.context();

  // Phase 1: parallel drain. Safe on the shared database because shards
  // own disjoint objects (no two threads mutate the same object), no
  // structural operation runs, and remaining listeners are thread-safe.
  std::vector<Status> drain_sts(n, Status::OK());
  ParallelFor(pool_.get(), n, [&](size_t k) {
    Shard& s = *shards_[k];
    obs::TraceSpan span("shard/drain", "shard", tick_ctx);
    span.AnnotateU64("shard", k);
    s.drained.clear();
    s.drained_ids.clear();
    s.queue.PopAll(&s.drained);
    for (const UpdateOp& op : s.drained) {
      Status as = ApplyOp(op);
      if (!as.ok()) {
        // The object raced deletion between enqueue and drain; the update
        // is dropped, not an error.
        ++s.updates_dropped;
        if (metrics) s.dropped_total->Inc();
        continue;
      }
      ++s.updates_applied;
      if (metrics) s.applied_total->Inc();
      s.drained_ids[op.class_name].push_back(op.id);
      if (s.wal.is_open()) {
        Status ws = s.wal.Append(EncodeOp(op, now));
        if (!ws.ok() && drain_sts[k].ok()) drain_sts[k] = ws;
      }
    }
    if (s.wal.is_open() && !s.drained.empty()) {
      Status fs = s.wal.Flush();
      if (!fs.ok() && drain_sts[k].ok()) drain_sts[k] = fs;
    }
    if (metrics) s.queue_depth->Set(static_cast<int64_t>(s.queue.ApproxDepth()));
  });

  // Barrier: collect every drained id once — phase 3 needs the *global*
  // dirty set (a non-first column of any shard's multi-variable query can
  // bind any object).
  std::map<std::string, std::vector<ObjectId>> all_dirty;
  for (const auto& shard : shards_) {
    for (const auto& [cls, ids] : shard->drained_ids) {
      std::vector<ObjectId>& dst = all_dirty[cls];
      dst.insert(dst.end(), ids.begin(), ids.end());
    }
  }

  // Phases 2+3 fused per shard: dirty-mark, then refresh. The database is
  // read-only again; each thread touches only its own shard's manager.
  std::vector<Status> refresh_sts(n, Status::OK());
  ParallelFor(pool_.get(), n, [&](size_t k) {
    Shard& s = *shards_[k];
    obs::TraceSpan span("shard/refresh", "shard", tick_ctx);
    span.AnnotateU64("shard", k);
    auto start = std::chrono::steady_clock::now();
    for (const auto& [cls, ids] : all_dirty) {
      s.qm->NoteUpdates(cls, ids);
    }
    refresh_sts[k] = s.qm->TickAll();
    s.last_refresh_ns = ElapsedNs(start);
    if (metrics) {
      s.refresh_latency->Observe(static_cast<double>(s.last_refresh_ns) * 1e-9);
    }
  });
  // Sample the telemetry timeline once per engine tick (idempotent: the
  // per-shard TickAll calls above already tried under the same tick).
  obs::TelemetryRecorder::Global().OnTick(now);

  for (const Status& s : drain_sts) {
    if (!s.ok()) return s;
  }
  for (const Status& s : refresh_sts) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<ShardedEngine::ShardedAnswer> ShardedEngine::ContinuousAnswer(
    QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("sharded query " + std::to_string(id));
  }
  const EngineQuery& eq = it->second;
  const size_t n = shards_.size();
  obs::TraceSpan gather_span("shard/gather", "shard");
  gather_span.AnnotateU64("query_id", id);
  const obs::TraceContext gather_ctx = gather_span.context();
  std::vector<QueryManager::AnswerSnapshot> snaps(n);
  std::vector<Status> sts(n, Status::OK());
  // Scatter: snapshot (refreshing lazily if stale) in parallel — the
  // database is read-only here by the control-plane discipline.
  ParallelFor(pool_.get(), n, [&](size_t k) {
    obs::TraceSpan span("shard/scatter", "shard", gather_ctx);
    span.AnnotateU64("shard", k);
    Result<QueryManager::AnswerSnapshot> r =
        shards_[k]->qm->SnapshotContinuousAnswer(eq.shard_ids[k]);
    if (r.ok()) {
      snaps[k] = std::move(*r);
    } else {
      sts[k] = r.status();
    }
  });
  for (const Status& s : sts) {
    if (!s.ok()) return s;
  }

  // Gather: merge the *relations* before flattening. Projection can
  // collapse one binding into several shards' rows; their tick sets must
  // union (and adjacent intervals re-coalesce) or flattening would not be
  // byte-identical to the single-shard oracle.
  ShardedAnswer out;
  TemporalRelation merged;
  merged.vars = snaps.empty() ? std::vector<std::string>{} : snaps[0].answer.vars;
  for (size_t k = 0; k < n; ++k) {
    if (snaps[k].degrade != DegradeReason::kNone) out.missing_shards.push_back(k);
    for (const auto& [binding, when] : snaps[k].answer.rows) {
      auto [row, inserted] = merged.rows.emplace(binding, when);
      if (!inserted) row->second = row->second.Union(when);
    }
  }
  if (obs::MetricsRegistry::Global().enabled()) {
    gather_merges_total_->Inc();
    if (!out.missing_shards.empty()) degraded_gathers_total_->Inc();
  }
  // FlattenAnswer is the exact read path ContinuousAnswer uses, so
  // confidence stamping cannot drift from the oracle. Any degraded shard
  // poisons the whole gather: the union is incomplete, so no tuple is
  // vouched for.
  out.tuples = shards_[0]->qm->FlattenAnswer(
      eq.query, merged, /*force_stale=*/!out.missing_shards.empty());
  return out;
}

Result<TemporalRelation> ShardedEngine::Evaluate(const FtlQuery& query) {
  const size_t n = shards_.size();
  obs::TraceSpan gather_span("shard/gather", "shard");
  const obs::TraceContext gather_ctx = gather_span.context();
  std::vector<TemporalRelation> parts(n);
  std::vector<Status> sts(n, Status::OK());
  ParallelFor(pool_.get(), n, [&](size_t k) {
    obs::TraceSpan span("shard/scatter", "shard", gather_ctx);
    span.AnnotateU64("shard", k);
    Result<TemporalRelation> r = shards_[k]->qm->Evaluate(query);
    if (r.ok()) {
      parts[k] = std::move(*r);
    } else {
      sts[k] = r.status();
    }
  });
  for (const Status& s : sts) {
    if (!s.ok()) return s;
  }
  TemporalRelation merged;
  merged.vars = parts.empty() ? std::vector<std::string>{} : parts[0].vars;
  for (TemporalRelation& part : parts) {
    for (auto& [binding, when] : part.rows) {
      auto [row, inserted] = merged.rows.emplace(binding, std::move(when));
      if (!inserted) row->second = row->second.Union(when);
    }
  }
  return merged;
}

std::optional<std::vector<ObjectId>> ShardedEngine::CandidatesNearObject(
    const std::string& class_name, const MostObject& probe, double radius,
    Interval window) const {
  std::vector<ObjectId> all;
  for (const auto& shard : shards_) {
    if (shard->indexes == nullptr) return std::nullopt;
    std::optional<std::vector<ObjectId>> part =
        shard->indexes->CandidatesNearObject(class_name, probe, radius,
                                             window);
    // One shard that cannot vouch for its partition makes the union
    // unsound as a superset.
    if (!part.has_value()) return std::nullopt;
    all.insert(all.end(), part->begin(), part->end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

QueryManager::RefreshCounters ShardedEngine::TotalRefreshCounters() const {
  QueryManager::RefreshCounters totals;
  for (const auto& shard : shards_) {
    QueryManager::RefreshCounters c = shard->qm->TotalRefreshCounters();
    totals.delta_evaluations += c.delta_evaluations;
    totals.full_evaluations += c.full_evaluations;
  }
  return totals;
}

std::vector<ShardedEngine::ShardStats> ShardedEngine::Stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Shard& s = *shards_[k];
    ShardStats st;
    st.shard = k;
    st.objects = s.partition->size();
    st.queue_depth = s.queue.ApproxDepth();
    st.updates_applied = s.updates_applied;
    st.updates_dropped = s.updates_dropped;
    QueryManager::RefreshCounters c = s.qm->TotalRefreshCounters();
    st.delta_refreshes = c.delta_evaluations;
    st.full_refreshes = c.full_evaluations;
    st.last_refresh_seconds = static_cast<double>(s.last_refresh_ns) * 1e-9;
    out.push_back(st);
  }
  return out;
}

Result<ShardedEngine::ReplayReport> ShardedEngine::ReplayShardWals(
    const std::string& dir, size_t shard_count, MostDatabase* db) {
  ReplayReport report;
  MOST_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                        ReadShardWals(dir, shard_count, &report.recovery));
  struct Decoded {
    Tick tick = 0;
    const WalRecord* rec = nullptr;
  };
  std::vector<Decoded> decoded;
  decoded.reserve(records.size());
  for (const WalRecord& rec : records) {
    if (rec.row.size() < 2 || rec.row[0].type() != ValueType::kString ||
        rec.row[1].type() != ValueType::kInt) {
      return Status::Corruption("shard WAL record without tag/tick header");
    }
    decoded.push_back({rec.row[1].int_value(), &rec});
  }
  // Global tick order; stable, so each object's same-tick records keep
  // their append order (every object's records live in one shard's log).
  std::stable_sort(decoded.begin(), decoded.end(),
                   [](const Decoded& a, const Decoded& b) {
                     return a.tick < b.tick;
                   });
  for (const Decoded& d : decoded) {
    const WalRecord& rec = *d.rec;
    db->clock().AdvanceTo(d.tick);
    const std::string& tag = rec.row[0].string_value();
    const ObjectId id = static_cast<ObjectId>(rec.rid);
    Status s = Status::OK();
    if (tag == kTagMotion) {
      if (rec.row.size() != 6) {
        return Status::Corruption("malformed motion record");
      }
      s = db->SetMotion(
          rec.table, id,
          {rec.row[2].double_value(), rec.row[3].double_value()},
          {rec.row[4].double_value(), rec.row[5].double_value()});
    } else if (tag == kTagDynamic) {
      if (rec.row.size() != 5) {
        return Status::Corruption("malformed dynamic record");
      }
      MOST_ASSIGN_OR_RETURN(TimeFunction fn,
                            DecodeTimeFunction(rec.row[4].string_value()));
      s = db->UpdateDynamic(rec.table, id, rec.row[2].string_value(),
                            rec.row[3].double_value(), std::move(fn));
    } else if (tag == kTagStatic) {
      if (rec.row.size() != 4) {
        return Status::Corruption("malformed static record");
      }
      s = db->UpdateStatic(rec.table, id, rec.row[2].string_value(),
                           rec.row[3]);
    } else if (tag == kTagCreate) {
      s = db->RestoreObject(rec.table, id).status();
    } else if (tag == kTagDelete) {
      s = db->DeleteObject(rec.table, id);
    } else {
      return Status::Corruption("unknown shard WAL tag '" + tag + "'");
    }
    MOST_RETURN_IF_ERROR(s);
    ++report.applied;
  }
  return report;
}

}  // namespace most
