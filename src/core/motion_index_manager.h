#ifndef MOST_CORE_MOTION_INDEX_MANAGER_H_
#define MOST_CORE_MOTION_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/object_model.h"
#include "index/motion_index.h"

namespace most {

/// Keeps a Section 4 motion index (the 3-D t/x/y variant) per chosen
/// spatial object class of a MostDatabase, synchronized through the
/// database's update listener. The FTL evaluator consults it to prune
/// candidate objects for INSIDE atoms instead of examining every object —
/// the combination of the paper's Section 4 with its Section 3.5
/// algorithm.
///
/// Horizon expiry is handled lazily: Get() rebuilds an index whose epoch
/// the clock has outrun.
class MotionIndexManager {
 public:
  explicit MotionIndexManager(MostDatabase* db)
      : MotionIndexManager(db, MotionIndex::Options()) {}
  MotionIndexManager(MostDatabase* db, MotionIndex::Options options);

  MotionIndexManager(const MotionIndexManager&) = delete;
  MotionIndexManager& operator=(const MotionIndexManager&) = delete;

  /// Starts indexing a spatial class (existing objects are indexed
  /// immediately; later updates are tracked automatically).
  Status IndexClass(const std::string& class_name);

  /// The class's index, rebuilt if its epoch expired; nullptr if the
  /// class is not indexed.
  MotionIndex* Get(const std::string& class_name) const;

  /// Candidates of `class_name` that may come within `radius` of `probe`'s
  /// trajectory at some tick of `window` (a conservative superset, sorted).
  /// nullopt when the class is not indexed, the probe is not spatial, or
  /// `window` escapes the index epoch — the caller must fall back to a
  /// class scan. Used by the FTL evaluator to prune the join partners of a
  /// restricted DIST atom during delta re-evaluation.
  std::optional<std::vector<ObjectId>> CandidatesNearObject(
      const std::string& class_name, const MostObject& probe, double radius,
      Interval window) const;

  uint64_t sync_operations() const { return sync_operations_; }

 private:
  void OnUpdate(const std::string& class_name, ObjectId id);

  MostDatabase* db_;
  MotionIndex::Options options_;
  // Mutable: Get() performs lazy horizon rebuilds.
  mutable std::map<std::string, std::unique_ptr<MotionIndex>> indexes_;
  uint64_t sync_operations_ = 0;
};

}  // namespace most

#endif  // MOST_CORE_MOTION_INDEX_MANAGER_H_
