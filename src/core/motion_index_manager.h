#ifndef MOST_CORE_MOTION_INDEX_MANAGER_H_
#define MOST_CORE_MOTION_INDEX_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/object_model.h"
#include "index/motion_index.h"

namespace most {

/// Keeps a Section 4 motion index (the 3-D t/x/y variant) per chosen
/// spatial object class of a MostDatabase, synchronized through the
/// database's update listener. The FTL evaluator consults it to prune
/// candidate objects for INSIDE atoms instead of examining every object —
/// the combination of the paper's Section 4 with its Section 3.5
/// algorithm.
///
/// Horizon expiry is handled lazily: Get() rebuilds an index whose epoch
/// the clock has outrun.
///
/// An *ownership filter* (SetOwnershipFilter) restricts the manager to a
/// subset of object ids: non-owned updates are ignored before any state
/// is touched, and IndexClass only indexes owned objects. The sharded
/// engine gives each shard a filtered manager so (a) index maintenance
/// cost is partitioned across shards and (b) during the parallel queue
/// drain each manager is only ever mutated by its own shard's drain
/// thread — the filter check is the first thing OnUpdate does, so cross-
/// shard notifications are read-only (docs/sharding.md). A filtered
/// index covers only the owned partition, so it must NOT be handed to an
/// FtlEvaluator (whose DIST-partner pruning assumes full class coverage);
/// union the per-shard candidate sets instead
/// (ShardedEngine::CandidatesNearObject).
class MotionIndexManager {
 public:
  explicit MotionIndexManager(MostDatabase* db)
      : MotionIndexManager(db, MotionIndex::Options()) {}
  MotionIndexManager(MostDatabase* db, MotionIndex::Options options);
  ~MotionIndexManager();

  MotionIndexManager(const MotionIndexManager&) = delete;
  MotionIndexManager& operator=(const MotionIndexManager&) = delete;

  /// Restricts the manager to `filter`'s ids (null = own everything, the
  /// default). Must be set before IndexClass and never changed while
  /// updates may be in flight.
  void SetOwnershipFilter(std::shared_ptr<const std::set<ObjectId>> filter) {
    filter_ = std::move(filter);
  }

  /// Starts indexing a spatial class (existing owned objects are indexed
  /// immediately; later updates are tracked automatically).
  Status IndexClass(const std::string& class_name);

  /// The class's index, rebuilt if its epoch expired; nullptr if the
  /// class is not indexed.
  MotionIndex* Get(const std::string& class_name) const;

  /// Candidates of `class_name` that may come within `radius` of `probe`'s
  /// trajectory at some tick of `window` (a conservative superset, sorted).
  /// nullopt when the class is not indexed, the probe is not spatial, or
  /// `window` escapes the index epoch — the caller must fall back to a
  /// class scan. Used by the FTL evaluator to prune the join partners of a
  /// restricted DIST atom during delta re-evaluation. With an ownership
  /// filter the superset only covers owned objects.
  std::optional<std::vector<ObjectId>> CandidatesNearObject(
      const std::string& class_name, const MostObject& probe, double radius,
      Interval window) const;

  /// Re-synchronizes one object with its class index (upsert, or removal
  /// when the object no longer exists), bypassing the ownership filter.
  /// The sharded engine calls this after *moving* an object into this
  /// manager's filter: the object's creation event fired before ownership
  /// was assigned, so the listener dropped it.
  void Resync(const std::string& class_name, ObjectId id);

  uint64_t sync_operations() const {
    return sync_operations_.load(std::memory_order_relaxed);
  }

 private:
  void OnUpdate(const std::string& class_name, ObjectId id);

  MostDatabase* db_;
  MotionIndex::Options options_;
  MostDatabase::ListenerId listener_id_ = 0;
  std::shared_ptr<const std::set<ObjectId>> filter_;
  // Mutable: Get() performs lazy horizon rebuilds.
  mutable std::map<std::string, std::unique_ptr<MotionIndex>> indexes_;
  /// Relaxed atomic: with an ownership filter, several filtered managers
  /// observe the same update stream from different drain threads.
  std::atomic<uint64_t> sync_operations_{0};
};

}  // namespace most

#endif  // MOST_CORE_MOTION_INDEX_MANAGER_H_
