#include "core/motion_index_manager.h"

namespace most {

MotionIndexManager::MotionIndexManager(MostDatabase* db,
                                       MotionIndex::Options options)
    : db_(db), options_(options) {
  listener_id_ = db_->AddUpdateListener(
      [this](const std::string& class_name, ObjectId id) {
        OnUpdate(class_name, id);
      });
}

MotionIndexManager::~MotionIndexManager() {
  // Managers may be torn down before the database (the sharded engine
  // rebuilds its per-shard managers on reshard); leaving the listener
  // behind would invoke a dangling callback on the next update.
  db_->RemoveUpdateListener(listener_id_);
}

Status MotionIndexManager::IndexClass(const std::string& class_name) {
  if (indexes_.count(class_name) > 0) {
    return Status::AlreadyExists("motion index on class '" + class_name +
                                 "'");
  }
  MOST_ASSIGN_OR_RETURN(const ObjectClass* cls, db_->GetClass(class_name));
  if (!cls->spatial()) {
    return Status::InvalidArgument("class '" + class_name +
                                   "' is not spatial");
  }
  auto index = std::make_unique<MotionIndex>(db_->Now(), options_);
  for (const auto& [id, obj] : cls->objects()) {
    if (filter_ != nullptr && filter_->count(id) == 0) continue;
    index->Upsert(id, *obj.GetDynamic(kAttrX).value(),
                  *obj.GetDynamic(kAttrY).value());
    sync_operations_.fetch_add(1, std::memory_order_relaxed);
  }
  indexes_.emplace(class_name, std::move(index));
  return Status::OK();
}

MotionIndex* MotionIndexManager::Get(const std::string& class_name) const {
  auto it = indexes_.find(class_name);
  if (it == indexes_.end()) return nullptr;
  if (it->second->NeedsRebuild(db_->Now())) {
    it->second->Rebuild(db_->Now());
  }
  return it->second.get();
}

std::optional<std::vector<ObjectId>> MotionIndexManager::CandidatesNearObject(
    const std::string& class_name, const MostObject& probe, double radius,
    Interval window) const {
  MotionIndex* index = Get(class_name);
  if (index == nullptr || !probe.IsSpatial()) return std::nullopt;
  // Segment boxes only cover the epoch: outside it the index cannot vouch
  // for absence, so pruning would be unsound.
  if (window.begin < index->epoch_start() || window.end >= index->epoch_end()) {
    return std::nullopt;
  }
  return index->QueryNearTrajectory(*probe.GetDynamic(kAttrX).value(),
                                    *probe.GetDynamic(kAttrY).value(),
                                    radius, window);
}

void MotionIndexManager::OnUpdate(const std::string& class_name,
                                  ObjectId id) {
  // Ownership check first: during the sharded engine's parallel drain a
  // non-owning manager sees foreign updates from other threads, and must
  // touch nothing mutable for them (docs/sharding.md).
  if (filter_ != nullptr && filter_->count(id) == 0) return;
  Resync(class_name, id);
}

void MotionIndexManager::Resync(const std::string& class_name, ObjectId id) {
  auto it = indexes_.find(class_name);
  if (it == indexes_.end()) return;
  MotionIndex* index = it->second.get();
  auto cls = db_->GetClass(class_name);
  if (!cls.ok()) return;
  auto obj = (*cls)->Get(id);
  if (!obj.ok()) {
    index->Remove(id);  // Object deleted.
    sync_operations_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!(*obj)->IsSpatial()) return;
  if (index->NeedsRebuild(db_->Now())) index->Rebuild(db_->Now());
  index->Upsert(id, *(*obj)->GetDynamic(kAttrX).value(),
                *(*obj)->GetDynamic(kAttrY).value());
  sync_operations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace most
