#ifndef MOST_CORE_OBJECT_MODEL_H_
#define MOST_CORE_OBJECT_MODEL_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "common/types.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "storage/value.h"
#include "temporal/clock.h"
#include "temporal/dynamic_attribute.h"

namespace most {

/// Declaration of one attribute of an object class: either static (a
/// traditional value, constant between explicit updates) or dynamic (the
/// paper's (value, updatetime, function) triple).
struct AttributeDecl {
  std::string name;
  bool dynamic = false;
  ValueType static_type = ValueType::kNull;  ///< Only for static attributes.
};

/// Names of the position attributes every spatial object class carries.
/// (The paper uses X.POSITION / Y.POSITION / Z.POSITION; this library
/// models planar motion.)
inline constexpr const char* kAttrX = "X.POSITION";
inline constexpr const char* kAttrY = "Y.POSITION";

/// One maximal stretch of jointly-linear planar motion of an object.
struct MotionSegment {
  Interval ticks;
  MovingPoint2 motion;  ///< Parameterized by absolute tick time.
};

/// An object (a "tuple" of an object class) with static and dynamic
/// attributes.
class MostObject {
 public:
  MostObject() = default;
  MostObject(ObjectId id, std::string class_name)
      : id_(id), class_name_(std::move(class_name)) {}

  ObjectId id() const { return id_; }
  const std::string& class_name() const { return class_name_; }

  /// Clock tick of the last explicit update of any attribute of this
  /// object (creation counts). Between updates the database dead-reckons
  /// along the stored motion function; the gap `now - last_update()` is
  /// how long the object has been silent, which degraded-mode query
  /// answers compare against a staleness horizon (docs/durability.md).
  Tick last_update() const { return last_update_; }
  void set_last_update(Tick t) { last_update_ = t; }

  const std::map<std::string, Value>& statics() const { return statics_; }
  const std::map<std::string, DynamicAttribute>& dynamics() const {
    return dynamics_;
  }

  Result<Value> GetStatic(const std::string& name) const;
  Result<const DynamicAttribute*> GetDynamic(const std::string& name) const;
  bool HasDynamic(const std::string& name) const {
    return dynamics_.count(name) > 0;
  }

  void SetStatic(const std::string& name, Value v) {
    statics_[name] = std::move(v);
  }
  void SetDynamic(const std::string& name, DynamicAttribute a) {
    dynamics_[name] = std::move(a);
  }

  /// True if the object carries both position attributes.
  bool IsSpatial() const {
    return HasDynamic(kAttrX) && HasDynamic(kAttrY);
  }

  /// Instantaneous position (requires IsSpatial()).
  Point2 PositionAt(Tick t) const;

  /// Decomposes the planar trajectory over `window` into jointly-linear
  /// segments (the form the kinematic solvers consume). Requires
  /// IsSpatial().
  std::vector<MotionSegment> MotionSegments(Interval window) const;

 private:
  ObjectId id_ = kInvalidObjectId;
  std::string class_name_;
  Tick last_update_ = 0;
  std::map<std::string, Value> statics_;
  std::map<std::string, DynamicAttribute> dynamics_;
};

/// True if `obj` has gone longer than `horizon` ticks without an explicit
/// update as of time `now`. A negative horizon disables staleness
/// tracking (nothing is ever stale).
inline bool IsStale(const MostObject& obj, Tick now, Tick horizon) {
  return horizon >= 0 && now - obj.last_update() > horizon;
}

/// An object class: attribute declarations plus the set of live objects.
class ObjectClass {
 public:
  ObjectClass() = default;
  ObjectClass(std::string name, std::vector<AttributeDecl> attributes,
              bool spatial);

  const std::string& name() const { return name_; }
  bool spatial() const { return spatial_; }
  const std::vector<AttributeDecl>& attributes() const { return attributes_; }
  size_t size() const { return objects_.size(); }

  const std::map<ObjectId, MostObject>& objects() const { return objects_; }

  Result<MostObject*> Get(ObjectId id);
  Result<const MostObject*> Get(ObjectId id) const;

 private:
  friend class MostDatabase;

  std::string name_;
  std::vector<AttributeDecl> attributes_;
  bool spatial_ = false;
  std::map<ObjectId, MostObject> objects_;
};

/// The MOST database: object classes, named spatial regions (polygons that
/// queries reference by name), and the global clock. All mutations go
/// through this class so that updates are clock-stamped and update
/// listeners (continuous-query re-evaluation, Section 2.3) fire.
class MostDatabase {
 public:
  MostDatabase() = default;
  explicit MostDatabase(Tick start_time) : clock_(start_time) {}

  MostDatabase(const MostDatabase&) = delete;
  MostDatabase& operator=(const MostDatabase&) = delete;

  Clock& clock() { return clock_; }
  const Clock& clock() const { return clock_; }
  Tick Now() const { return clock_.Now(); }

  /// Declares an object class. `spatial` classes implicitly receive the
  /// X.POSITION / Y.POSITION dynamic attributes.
  Result<ObjectClass*> CreateClass(const std::string& name,
                                   std::vector<AttributeDecl> attributes,
                                   bool spatial = false);

  Result<ObjectClass*> GetClass(const std::string& name);
  Result<const ObjectClass*> GetClass(const std::string& name) const;
  bool HasClass(const std::string& name) const {
    return classes_.count(name) > 0;
  }

  /// Registers a named region usable in spatial predicates (INSIDE etc.).
  Status DefineRegion(const std::string& name, Polygon polygon);
  Result<const Polygon*> GetRegion(const std::string& name) const;
  const std::map<std::string, Polygon>& regions() const { return regions_; }

  /// All object classes (catalog iteration for shadow databases).
  const std::map<std::string, ObjectClass>& classes() const {
    return classes_;
  }

  /// Creates an object of a class. Static attribute defaults are NULL;
  /// dynamic attributes start at value 0 with the zero function at the
  /// current time.
  Result<MostObject*> CreateObject(const std::string& class_name);

  /// Creates an object with a caller-chosen id (used when mirroring
  /// another database, e.g. persistent-query history shadows and
  /// distributed replicas, where bindings must stay comparable).
  Result<MostObject*> RestoreObject(const std::string& class_name,
                                    ObjectId id);

  Status DeleteObject(const std::string& class_name, ObjectId id);

  /// Explicit update of a static attribute, stamped with the current time.
  Status UpdateStatic(const std::string& class_name, ObjectId id,
                      const std::string& attr, Value value);

  /// Explicit update of a dynamic attribute: installs (value, now,
  /// function). This is "the motion vector changed" in the paper.
  Status UpdateDynamic(const std::string& class_name, ObjectId id,
                       const std::string& attr, double value,
                       TimeFunction function);

  /// Convenience: sets position and velocity of a spatial object at `now`.
  Status SetMotion(const std::string& class_name, ObjectId id, Point2 position,
                   Vec2 velocity);

  /// Update listeners run after every explicit update (object creation,
  /// deletion, attribute update). Used for continuous-query maintenance,
  /// temporal triggers, and atomic-interval cache invalidation. The
  /// returned id unregisters the listener (components whose lifetime is
  /// shorter than the database's must remove themselves on destruction).
  using UpdateListener = std::function<void(const std::string& class_name,
                                            ObjectId id)>;
  using ListenerId = uint64_t;
  ListenerId AddUpdateListener(UpdateListener listener) {
    ListenerId id = next_listener_id_++;
    listeners_.emplace_back(id, std::move(listener));
    return id;
  }
  void RemoveUpdateListener(ListenerId id) {
    std::erase_if(listeners_,
                  [id](const auto& entry) { return entry.first == id; });
  }

  /// Total explicit updates performed (experiment E1 counts these). The
  /// counter is a relaxed atomic so the sharded engine may apply updates
  /// to *disjoint* objects from several drain threads concurrently
  /// (docs/sharding.md): object state itself is still unsynchronized, so
  /// concurrent mutation is only safe when no two threads touch the same
  /// object, no structural create/delete runs, and every registered
  /// update listener is itself thread-safe.
  uint64_t update_count() const {
    return update_count_.load(std::memory_order_relaxed);
  }

 private:
  void NotifyUpdate(const std::string& class_name, ObjectId id);

  Clock clock_;
  std::map<std::string, ObjectClass> classes_;
  std::map<std::string, Polygon> regions_;
  std::vector<std::pair<ListenerId, UpdateListener>> listeners_;
  ListenerId next_listener_id_ = 1;
  ObjectId next_id_ = 0;
  std::atomic<uint64_t> update_count_{0};
};

}  // namespace most

#endif  // MOST_CORE_OBJECT_MODEL_H_
