#include "core/most_on_dbms.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace most {

std::string EncodeTimeFunction(const TimeFunction& f) {
  std::ostringstream os;
  bool first = true;
  for (const TimeFunction::Piece& p : f.pieces()) {
    if (!first) os << ";";
    first = false;
    os << p.start << ":" << p.slope;
    if (p.has_reset) os << ":" << p.reset_value;
  }
  return os.str();
}

Result<TimeFunction> DecodeTimeFunction(const std::string& encoded) {
  std::vector<TimeFunction::Piece> pieces;
  std::istringstream is(encoded);
  std::string segment;
  while (std::getline(is, segment, ';')) {
    TimeFunction::Piece piece;
    char* end = nullptr;
    piece.start = std::strtoll(segment.c_str(), &end, 10);
    if (end == segment.c_str() || *end != ':') {
      return Status::Corruption("bad time-function encoding: " + segment);
    }
    const char* slope_begin = end + 1;
    piece.slope = std::strtod(slope_begin, &end);
    if (end == slope_begin) {
      return Status::Corruption("bad time-function encoding: " + segment);
    }
    if (*end == ':') {
      const char* reset_begin = end + 1;
      piece.reset_value = std::strtod(reset_begin, &end);
      if (end == reset_begin) {
        return Status::Corruption("bad time-function encoding: " + segment);
      }
      piece.has_reset = true;
    }
    pieces.push_back(piece);
  }
  return TimeFunction::Piecewise(std::move(pieces));
}

namespace {

std::string ValueColumn(const std::string& a) { return a + ".value"; }
std::string UpdatetimeColumn(const std::string& a) { return a + ".updatetime"; }
std::string FunctionColumn(const std::string& a) { return a + ".function"; }

constexpr double kIndexInfinity = 1e15;

}  // namespace

Status MostOnDbms::CreateTable(const std::string& name,
                               std::vector<MostColumnSpec> columns) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("MOST table '" + name + "'");
  }
  std::vector<Column> host_columns;
  TableMeta meta;
  for (const MostColumnSpec& spec : columns) {
    if (spec.dynamic) {
      meta.dynamic_columns.insert(spec.name);
      host_columns.push_back({ValueColumn(spec.name), ValueType::kDouble});
      host_columns.push_back({UpdatetimeColumn(spec.name), ValueType::kInt});
      host_columns.push_back({FunctionColumn(spec.name), ValueType::kString});
    } else {
      host_columns.push_back({spec.name, spec.static_type});
    }
  }
  meta.logical_columns = std::move(columns);
  MOST_RETURN_IF_ERROR(
      db_->CreateTable(name, Schema(std::move(host_columns))).status());
  tables_.emplace(name, std::move(meta));
  return Status::OK();
}

Result<const MostOnDbms::TableMeta*> MostOnDbms::GetMeta(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("MOST table '" + table + "'");
  }
  return &it->second;
}

Result<RowId> MostOnDbms::Insert(
    const std::string& table, const std::map<std::string, Value>& statics,
    const std::map<std::string, DynamicAttribute>& dynamics) {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  MOST_ASSIGN_OR_RETURN(Table * host, db_->GetTable(table));
  Row row;
  for (const MostColumnSpec& spec : meta->logical_columns) {
    if (spec.dynamic) {
      DynamicAttribute attr(0.0, clock_->Now(), TimeFunction());
      auto it = dynamics.find(spec.name);
      if (it != dynamics.end()) attr = it->second;
      row.push_back(Value(attr.value()));
      row.push_back(Value(static_cast<int64_t>(attr.updatetime())));
      row.push_back(Value(EncodeTimeFunction(attr.function())));
    } else {
      auto it = statics.find(spec.name);
      row.push_back(it == statics.end() ? Value::Null() : it->second);
    }
  }
  MOST_ASSIGN_OR_RETURN(RowId rid, host->Insert(std::move(row)));
  for (auto& [column, index] : tables_.at(table).indexes) {
    auto it = dynamics.find(column);
    DynamicAttribute attr = (it != dynamics.end())
                                ? it->second
                                : DynamicAttribute(0.0, clock_->Now(),
                                                   TimeFunction());
    if (index->NeedsRebuild(clock_->Now())) index->Rebuild(clock_->Now());
    index->Upsert(rid, attr);
  }
  return rid;
}

Status MostOnDbms::Delete(const std::string& table, RowId rid) {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  MOST_ASSIGN_OR_RETURN(Table * host, db_->GetTable(table));
  MOST_RETURN_IF_ERROR(host->Delete(rid));
  for (auto& [column, index] : tables_.at(table).indexes) {
    index->Remove(rid);
  }
  (void)meta;
  return Status::OK();
}

Status MostOnDbms::UpdateStatic(const std::string& table, RowId rid,
                                const std::string& column, Value value) {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  if (meta->dynamic_columns.count(column) > 0) {
    return Status::InvalidArgument("'" + column +
                                   "' is dynamic; use UpdateDynamic");
  }
  MOST_ASSIGN_OR_RETURN(Table * host, db_->GetTable(table));
  MOST_ASSIGN_OR_RETURN(size_t idx, host->schema().IndexOf(column));
  return host->UpdateColumn(rid, idx, std::move(value));
}

Status MostOnDbms::UpdateDynamic(const std::string& table, RowId rid,
                                 const std::string& column, double value,
                                 TimeFunction function) {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  if (meta->dynamic_columns.count(column) == 0) {
    return Status::InvalidArgument("'" + column + "' is not dynamic");
  }
  MOST_ASSIGN_OR_RETURN(Table * host, db_->GetTable(table));
  const Schema& schema = host->schema();
  Tick now = clock_->Now();
  MOST_ASSIGN_OR_RETURN(size_t vi, schema.IndexOf(ValueColumn(column)));
  MOST_ASSIGN_OR_RETURN(size_t ui, schema.IndexOf(UpdatetimeColumn(column)));
  MOST_ASSIGN_OR_RETURN(size_t fi, schema.IndexOf(FunctionColumn(column)));
  MOST_RETURN_IF_ERROR(host->UpdateColumn(rid, vi, Value(value)));
  MOST_RETURN_IF_ERROR(
      host->UpdateColumn(rid, ui, Value(static_cast<int64_t>(now))));
  MOST_RETURN_IF_ERROR(
      host->UpdateColumn(rid, fi, Value(EncodeTimeFunction(function))));
  auto& indexes = tables_.at(table).indexes;
  auto idx_it = indexes.find(column);
  if (idx_it != indexes.end()) {
    if (idx_it->second->NeedsRebuild(now)) idx_it->second->Rebuild(now);
    idx_it->second->Upsert(rid, DynamicAttribute(value, now, function));
  }
  return Status::OK();
}

Result<double> MostOnDbms::CurrentValueFromRow(
    const Schema& schema, const Row& row, const std::string& column) const {
  MOST_ASSIGN_OR_RETURN(size_t vi, schema.IndexOf(ValueColumn(column)));
  MOST_ASSIGN_OR_RETURN(size_t ui, schema.IndexOf(UpdatetimeColumn(column)));
  MOST_ASSIGN_OR_RETURN(size_t fi, schema.IndexOf(FunctionColumn(column)));
  MOST_ASSIGN_OR_RETURN(double base, row[vi].AsDouble());
  if (row[ui].type() != ValueType::kInt ||
      row[fi].type() != ValueType::kString) {
    return Status::Corruption("malformed dynamic sub-attributes");
  }
  MOST_ASSIGN_OR_RETURN(TimeFunction f,
                        DecodeTimeFunction(row[fi].string_value()));
  DynamicAttribute attr(base, row[ui].int_value(), std::move(f));
  return attr.ValueAt(clock_->Now());
}

Result<double> MostOnDbms::ReadDynamic(const std::string& table, RowId rid,
                                       const std::string& column) const {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  if (meta->dynamic_columns.count(column) == 0) {
    return Status::InvalidArgument("'" + column + "' is not dynamic");
  }
  MOST_ASSIGN_OR_RETURN(const Table* host, db_->GetTable(table));
  const Row* row = host->Get(rid);
  if (row == nullptr) return Status::NotFound("row " + std::to_string(rid));
  return CurrentValueFromRow(host->schema(), *row, column);
}

Status MostOnDbms::CreateDynamicIndex(const std::string& table,
                                      const std::string& column,
                                      TrajectoryIndex::Options options) {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  if (meta->dynamic_columns.count(column) == 0) {
    return Status::InvalidArgument("'" + column + "' is not dynamic");
  }
  TableMeta& mutable_meta = tables_.at(table);
  if (mutable_meta.indexes.count(column) > 0) {
    return Status::AlreadyExists("dynamic index on " + column);
  }
  auto index = std::make_unique<TrajectoryIndex>(clock_->Now(), options);
  // Index existing rows.
  MOST_ASSIGN_OR_RETURN(const Table* host, db_->GetTable(table));
  const Schema& schema = host->schema();
  MOST_ASSIGN_OR_RETURN(size_t vi, schema.IndexOf(ValueColumn(column)));
  MOST_ASSIGN_OR_RETURN(size_t ui, schema.IndexOf(UpdatetimeColumn(column)));
  MOST_ASSIGN_OR_RETURN(size_t fi, schema.IndexOf(FunctionColumn(column)));
  Status status = Status::OK();
  host->Scan([&](RowId rid, const Row& row) {
    if (!status.ok()) return;
    auto f = DecodeTimeFunction(row[fi].string_value());
    if (!f.ok()) {
      status = f.status();
      return;
    }
    index->Upsert(rid, DynamicAttribute(row[vi].double_value(),
                                        row[ui].int_value(), *f));
  });
  MOST_RETURN_IF_ERROR(status);
  mutable_meta.indexes.emplace(column, std::move(index));
  return Status::OK();
}

void MostOnDbms::CollectDynamicAtoms(
    const ExprPtr& where, const std::set<std::string>& dynamic_columns,
    std::vector<ExprPtr>* atoms) {
  if (where == nullptr) return;
  switch (where->kind()) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      CollectDynamicAtoms(where->children()[0], dynamic_columns, atoms);
      CollectDynamicAtoms(where->children()[1], dynamic_columns, atoms);
      return;
    case Expr::Kind::kNot:
      CollectDynamicAtoms(where->children()[0], dynamic_columns, atoms);
      return;
    default: {
      std::set<std::string> cols;
      where->CollectColumns(&cols);
      bool dynamic = false;
      for (const std::string& c : cols) {
        if (dynamic_columns.count(c) > 0) dynamic = true;
      }
      if (!dynamic) return;
      for (const ExprPtr& existing : *atoms) {
        if (existing->Equals(*where)) return;  // Structural dedup.
      }
      atoms->push_back(where);
    }
  }
}

namespace {

/// Rewrites an atom (or any expression) by replacing references to dynamic
/// columns with their current values for one row.
Result<ExprPtr> SubstituteDynamics(
    const ExprPtr& expr, const std::set<std::string>& dynamic_columns,
    const std::function<Result<double>(const std::string&)>& current_value) {
  if (expr == nullptr) return expr;
  if (expr->kind() == Expr::Kind::kColumn &&
      dynamic_columns.count(expr->column()) > 0) {
    MOST_ASSIGN_OR_RETURN(double v, current_value(expr->column()));
    return Expr::Literal(Value(v));
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> rewritten;
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    MOST_ASSIGN_OR_RETURN(
        ExprPtr rc, SubstituteDynamics(c, dynamic_columns, current_value));
    changed |= (rc != c);
    rewritten.push_back(std::move(rc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case Expr::Kind::kCompare:
      return Expr::Compare(expr->cmp_op(), rewritten[0], rewritten[1]);
    case Expr::Kind::kAnd:
      return Expr::And(rewritten[0], rewritten[1]);
    case Expr::Kind::kOr:
      return Expr::Or(rewritten[0], rewritten[1]);
    case Expr::Kind::kNot:
      return Expr::Not(rewritten[0]);
    case Expr::Kind::kArith:
      return Expr::Arith(expr->arith_op(), rewritten[0], rewritten[1]);
    default:
      return expr;
  }
}

}  // namespace

Result<bool> MostOnDbms::EvalDynamicAtom(const ExprPtr& atom,
                                         const TableMeta& meta,
                                         const Schema& schema,
                                         const Row& row) const {
  MOST_ASSIGN_OR_RETURN(
      ExprPtr substituted,
      SubstituteDynamics(atom, meta.dynamic_columns,
                         [&](const std::string& col) {
                           return CurrentValueFromRow(schema, row, col);
                         }));
  MOST_ASSIGN_OR_RETURN(Value v, substituted->Eval(schema, row));
  if (v.type() != ValueType::kBool) {
    return Status::TypeError("dynamic atom is not boolean");
  }
  return v.bool_value();
}

Result<std::vector<MostColumnSpec>> MostOnDbms::GetLogicalColumns(
    const std::string& table) const {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  return meta->logical_columns;
}

Result<size_t> MostOnDbms::CountDynamicAtoms(const std::string& table,
                                             const ExprPtr& where) const {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(table));
  std::vector<ExprPtr> atoms;
  CollectDynamicAtoms(where, meta->dynamic_columns, &atoms);
  return atoms.size();
}

Result<ResultSet> MostOnDbms::ExecuteSelect(const SelectQuery& query,
                                            QueryStats* stats,
                                            ExecOptions options) const {
  MOST_ASSIGN_OR_RETURN(const TableMeta* meta, GetMeta(query.table));
  MOST_ASSIGN_OR_RETURN(const Table* host, db_->GetTable(query.table));
  const Schema& schema = host->schema();
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;

  // Output schema / logical projection.
  std::vector<std::string> projection = query.project;
  if (projection.empty()) {
    for (const MostColumnSpec& spec : meta->logical_columns) {
      projection.push_back(spec.name);
    }
  }
  std::vector<Column> out_columns;
  for (const std::string& name : projection) {
    if (meta->dynamic_columns.count(name) > 0) {
      out_columns.push_back({name, ValueType::kDouble});
    } else {
      bool found = false;
      for (const MostColumnSpec& spec : meta->logical_columns) {
        if (spec.name == name && !spec.dynamic) {
          out_columns.push_back({name, spec.static_type});
          found = true;
        }
      }
      if (!found) {
        return Status::NotFound("logical column '" + name + "'");
      }
    }
  }
  ResultSet result;
  result.schema = Schema(std::move(out_columns));

  auto emit_row = [&](const Row& row) -> Status {
    Row out;
    out.reserve(projection.size());
    for (const std::string& name : projection) {
      if (meta->dynamic_columns.count(name) > 0) {
        MOST_ASSIGN_OR_RETURN(double v, CurrentValueFromRow(schema, row, name));
        out.push_back(Value(v));
      } else {
        MOST_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
        out.push_back(row[idx]);
      }
    }
    result.rows.push_back(std::move(out));
    return Status::OK();
  };

  std::vector<ExprPtr> atoms;
  CollectDynamicAtoms(query.where, meta->dynamic_columns, &atoms);

  if (atoms.empty()) {
    // No dynamic atoms: pass through (Section 5.1's first case), fetching
    // full rows so dynamic SELECT columns can be computed.
    SelectQuery host_query{query.table, query.where, {}};
    MOST_ASSIGN_OR_RETURN(ResultSet rs, db_->ExecuteSelect(host_query, st));
    for (const Row& row : rs.rows) {
      MOST_RETURN_IF_ERROR(emit_row(row));
    }
    return result;
  }

  // Indexed path: a top-level conjunct `A cmp const` with a trajectory
  // index prunes candidates; the full predicate is verified per candidate.
  if (options.use_dynamic_index) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(query.where, &conjuncts);
    for (const ExprPtr& conjunct : conjuncts) {
      if (conjunct->kind() != Expr::Kind::kCompare) continue;
      const ExprPtr& lhs = conjunct->children()[0];
      const ExprPtr& rhs = conjunct->children()[1];
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      bool mirrored = false;
      if (lhs->kind() == Expr::Kind::kColumn &&
          rhs->kind() == Expr::Kind::kLiteral) {
        col = lhs.get();
        lit = rhs.get();
      } else if (rhs->kind() == Expr::Kind::kColumn &&
                 lhs->kind() == Expr::Kind::kLiteral) {
        col = rhs.get();
        lit = lhs.get();
        mirrored = true;
      } else {
        continue;
      }
      auto idx_it = meta->indexes.find(col->column());
      if (idx_it == meta->indexes.end()) continue;
      if (!lit->literal().is_numeric()) continue;
      double c = lit->literal().AsDouble().value();
      Expr::CmpOp op = conjunct->cmp_op();
      if (mirrored) {
        switch (op) {
          case Expr::CmpOp::kLt:
            op = Expr::CmpOp::kGt;
            break;
          case Expr::CmpOp::kLe:
            op = Expr::CmpOp::kGe;
            break;
          case Expr::CmpOp::kGt:
            op = Expr::CmpOp::kLt;
            break;
          case Expr::CmpOp::kGe:
            op = Expr::CmpOp::kLe;
            break;
          default:
            break;
        }
      }
      double lo = -kIndexInfinity, hi = kIndexInfinity;
      switch (op) {
        case Expr::CmpOp::kEq:
          lo = hi = c;
          break;
        case Expr::CmpOp::kLt:
        case Expr::CmpOp::kLe:
          hi = c;
          break;
        case Expr::CmpOp::kGt:
        case Expr::CmpOp::kGe:
          lo = c;
          break;
        case Expr::CmpOp::kNe:
          continue;  // Not a contiguous range.
      }
      TrajectoryIndex* index = idx_it->second.get();
      if (index->NeedsRebuild(clock_->Now())) index->Rebuild(clock_->Now());
      st->used_index = true;
      st->queries_executed += 1;
      for (ObjectId rid : index->QueryExact(lo, hi, clock_->Now())) {
        const Row* row = host->Get(rid);
        if (row == nullptr) continue;
        st->rows_examined += 1;
        MOST_ASSIGN_OR_RETURN(
            ExprPtr substituted,
            SubstituteDynamics(query.where, meta->dynamic_columns,
                               [&](const std::string& name) {
                                 return CurrentValueFromRow(schema, *row,
                                                            name);
                               }));
        MOST_ASSIGN_OR_RETURN(Value keep, substituted->Eval(schema, *row));
        if (keep.type() == ValueType::kBool && keep.bool_value()) {
          MOST_RETURN_IF_ERROR(emit_row(*row));
        }
      }
      return result;
    }
  }

  // Section 5.1 decomposition: eliminate each dynamic atom p via
  // F = (F' AND p) OR (F'' AND NOT p), yielding up to 2^k host queries
  // whose WHERE clauses are dynamic-free; each branch's rows are then
  // verified against the recorded truth assignment using current values.
  struct Branch {
    ExprPtr where;
    std::vector<bool> assignment;
  };
  std::vector<Branch> branches = {{query.where, {}}};
  for (const ExprPtr& atom : atoms) {
    std::vector<Branch> next;
    next.reserve(branches.size() * 2);
    for (const Branch& b : branches) {
      Branch with_true{SubstituteAtom(b.where, atom, Expr::True()),
                       b.assignment};
      with_true.assignment.push_back(true);
      Branch with_false{SubstituteAtom(b.where, atom, Expr::False()),
                        b.assignment};
      with_false.assignment.push_back(false);
      next.push_back(std::move(with_true));
      next.push_back(std::move(with_false));
    }
    branches = std::move(next);
  }

  for (const Branch& branch : branches) {
    ExprPtr branch_where = branch.where;
    if (options.prune_trivial_branches) {
      branch_where = SimplifyExpr(branch_where);
      if (IsBoolLiteral(branch_where, false)) {
        st->branches_pruned += 1;
        continue;  // No host query needed: the branch is unsatisfiable.
      }
      if (IsBoolLiteral(branch_where, true)) branch_where = nullptr;
    }
    SelectQuery host_query{query.table, branch_where, {}};
    MOST_ASSIGN_OR_RETURN(ResultSet rs, db_->ExecuteSelect(host_query, st));
    for (const Row& row : rs.rows) {
      bool keep = true;
      for (size_t i = 0; i < atoms.size() && keep; ++i) {
        MOST_ASSIGN_OR_RETURN(bool truth,
                              EvalDynamicAtom(atoms[i], *meta, schema, row));
        keep = (truth == branch.assignment[i]);
      }
      if (keep) {
        MOST_RETURN_IF_ERROR(emit_row(row));
      }
    }
  }
  return result;
}

}  // namespace most
