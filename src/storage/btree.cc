#include "storage/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace most {

struct BPlusTree::Node {
  bool is_leaf = true;
  // Leaf payload: sorted (key, rid) entries.
  std::vector<Entry> entries;
  // Internal payload: separators.size() == children.size() - 1. separators[i]
  // is the smallest composite entry in the subtree of children[i + 1].
  std::vector<Entry> separators;
  std::vector<std::unique_ptr<Node>> children;
  // Leaf sibling chain.
  Node* next = nullptr;
  Node* prev = nullptr;
};

int BPlusTree::CompareEntry(const Entry& a, const Entry& b) {
  int c = a.key.Compare(b.key);
  if (c != 0) return c;
  if (a.rid < b.rid) return -1;
  if (a.rid > b.rid) return 1;
  return 0;
}

BPlusTree::BPlusTree(size_t fanout) : fanout_(std::max<size_t>(4, fanout)) {
  root_ = std::make_unique<BPlusTree::Node>();
}

BPlusTree::~BPlusTree() = default;

namespace {

// Index of the child an entry routes to: the number of separators <= entry.
template <typename NodeT, typename EntryT, typename Cmp>
size_t ChildIndex(const NodeT& node, const EntryT& e, Cmp cmp) {
  size_t lo = 0, hi = node.separators.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cmp(node.separators[mid], e) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void BPlusTree::Insert(const Value& key, RowId rid) {
  Entry e{key, rid};

  struct SplitResult {
    Entry separator;
    std::unique_ptr<BPlusTree::Node> right;
  };

  // Recursive insert returning a split if the child overflowed.
  std::function<std::optional<SplitResult>(BPlusTree::Node*)> insert_rec =
      [&](BPlusTree::Node* node) -> std::optional<SplitResult> {
    if (node->is_leaf) {
      auto it = std::lower_bound(
          node->entries.begin(), node->entries.end(), e,
          [](const Entry& a, const Entry& b) { return CompareEntry(a, b) < 0; });
      node->entries.insert(it, e);
      if (node->entries.size() <= fanout_) return std::nullopt;
      // Split leaf.
      auto right = std::make_unique<BPlusTree::Node>();
      right->is_leaf = true;
      size_t mid = node->entries.size() / 2;
      right->entries.assign(node->entries.begin() + mid, node->entries.end());
      node->entries.resize(mid);
      right->next = node->next;
      right->prev = node;
      if (node->next != nullptr) node->next->prev = right.get();
      node->next = right.get();
      Entry sep = right->entries.front();
      return SplitResult{std::move(sep), std::move(right)};
    }
    size_t idx = ChildIndex(*node, e, &CompareEntry);
    auto split = insert_rec(node->children[idx].get());
    if (!split) return std::nullopt;
    node->separators.insert(node->separators.begin() + idx,
                            std::move(split->separator));
    node->children.insert(node->children.begin() + idx + 1,
                          std::move(split->right));
    if (node->children.size() <= fanout_) return std::nullopt;
    // Split internal node: promote the middle separator.
    auto right = std::make_unique<BPlusTree::Node>();
    right->is_leaf = false;
    size_t midc = node->children.size() / 2;
    Entry promoted = node->separators[midc - 1];
    right->separators.assign(node->separators.begin() + midc,
                             node->separators.end());
    right->children.reserve(node->children.size() - midc);
    for (size_t i = midc; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->separators.resize(midc - 1);
    node->children.resize(midc);
    return SplitResult{std::move(promoted), std::move(right)};
  };

  auto split = insert_rec(root_.get());
  if (split) {
    auto new_root = std::make_unique<BPlusTree::Node>();
    new_root->is_leaf = false;
    new_root->separators.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
}

bool BPlusTree::Erase(const Value& key, RowId rid) {
  Entry e{key, rid};
  const size_t min_leaf = fanout_ / 2;
  const size_t min_children = (fanout_ + 1) / 2;

  // Rebalances parent->children[idx] after an erase left it underfull.
  auto fix_child = [&](BPlusTree::Node* parent, size_t idx) {
    BPlusTree::Node* child = parent->children[idx].get();
    BPlusTree::Node* left =
        idx > 0 ? parent->children[idx - 1].get() : nullptr;
    BPlusTree::Node* right = idx + 1 < parent->children.size()
                                 ? parent->children[idx + 1].get()
                                 : nullptr;
    if (child->is_leaf) {
      if (left != nullptr && left->entries.size() > min_leaf) {
        child->entries.insert(child->entries.begin(), left->entries.back());
        left->entries.pop_back();
        parent->separators[idx - 1] = child->entries.front();
        return;
      }
      if (right != nullptr && right->entries.size() > min_leaf) {
        child->entries.push_back(right->entries.front());
        right->entries.erase(right->entries.begin());
        parent->separators[idx] = right->entries.front();
        return;
      }
      // Merge with a sibling (prefer left).
      if (left != nullptr) {
        left->entries.insert(left->entries.end(), child->entries.begin(),
                             child->entries.end());
        left->next = child->next;
        if (child->next != nullptr) child->next->prev = left;
        parent->separators.erase(parent->separators.begin() + idx - 1);
        parent->children.erase(parent->children.begin() + idx);
      } else if (right != nullptr) {
        child->entries.insert(child->entries.end(), right->entries.begin(),
                              right->entries.end());
        child->next = right->next;
        if (right->next != nullptr) right->next->prev = child;
        parent->separators.erase(parent->separators.begin() + idx);
        parent->children.erase(parent->children.begin() + idx + 1);
      }
      return;
    }
    // Internal child.
    if (left != nullptr && left->children.size() > min_children) {
      child->separators.insert(child->separators.begin(),
                               parent->separators[idx - 1]);
      parent->separators[idx - 1] = left->separators.back();
      left->separators.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
      return;
    }
    if (right != nullptr && right->children.size() > min_children) {
      child->separators.push_back(parent->separators[idx]);
      parent->separators[idx] = right->separators.front();
      right->separators.erase(right->separators.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
      return;
    }
    if (left != nullptr) {
      left->separators.push_back(parent->separators[idx - 1]);
      left->separators.insert(left->separators.end(),
                              child->separators.begin(),
                              child->separators.end());
      for (auto& c : child->children) left->children.push_back(std::move(c));
      parent->separators.erase(parent->separators.begin() + idx - 1);
      parent->children.erase(parent->children.begin() + idx);
    } else if (right != nullptr) {
      child->separators.push_back(parent->separators[idx]);
      child->separators.insert(child->separators.end(),
                               right->separators.begin(),
                               right->separators.end());
      for (auto& c : right->children) child->children.push_back(std::move(c));
      parent->separators.erase(parent->separators.begin() + idx);
      parent->children.erase(parent->children.begin() + idx + 1);
    }
  };

  auto is_underfull = [&](const BPlusTree::Node* node) {
    return node->is_leaf ? node->entries.size() < min_leaf
                         : node->children.size() < min_children;
  };

  std::function<bool(BPlusTree::Node*)> erase_rec =
      [&](BPlusTree::Node* node) -> bool {
    if (node->is_leaf) {
      auto it = std::lower_bound(
          node->entries.begin(), node->entries.end(), e,
          [](const Entry& a, const Entry& b) { return CompareEntry(a, b) < 0; });
      if (it == node->entries.end() || CompareEntry(*it, e) != 0) return false;
      node->entries.erase(it);
      return true;
    }
    size_t idx = ChildIndex(*node, e, &CompareEntry);
    if (!erase_rec(node->children[idx].get())) return false;
    if (is_underfull(node->children[idx].get())) fix_child(node, idx);
    return true;
  };

  if (!erase_rec(root_.get())) return false;
  --size_;
  // Shrink the root when it degenerates to a single child.
  while (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  return true;
}

std::vector<RowId> BPlusTree::Lookup(const Value& key) const {
  std::vector<RowId> out;
  ScanRange(key, /*lo_inclusive=*/true, key, /*hi_inclusive=*/true,
            [&](const Value&, RowId rid) { out.push_back(rid); });
  return out;
}

void BPlusTree::ScanRange(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive,
    const std::function<void(const Value&, RowId)>& fn) const {
  // Descend to the first candidate leaf.
  const BPlusTree::Node* node = root_.get();
  Entry probe{lo.value_or(Value()), 0};
  while (!node->is_leaf) {
    size_t idx = lo.has_value() ? ChildIndex(*node, probe, &CompareEntry) : 0;
    node = node->children[idx].get();
  }
  for (; node != nullptr; node = node->next) {
    for (const Entry& entry : node->entries) {
      if (lo.has_value()) {
        int c = entry.key.Compare(*lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        int c = entry.key.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      fn(entry.key, entry.rid);
    }
  }
}

int BPlusTree::height() const {
  int h = 1;
  const BPlusTree::Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

Status BPlusTree::CheckInvariants() const {
  const size_t min_leaf = fanout_ / 2;
  const size_t min_children = (fanout_ + 1) / 2;
  size_t counted = 0;

  // Returns subtree depth; -1 signals failure via status.
  Status status = Status::OK();
  std::function<int(const BPlusTree::Node*, const Entry*, const Entry*, bool)>
      check = [&](const BPlusTree::Node* node, const Entry* lo,
                  const Entry* hi, bool is_root) -> int {
    if (!status.ok()) return -1;
    if (node->is_leaf) {
      if (!is_root && node->entries.size() < min_leaf) {
        status = Status::Internal("underfull leaf");
        return -1;
      }
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (i > 0 &&
            CompareEntry(node->entries[i - 1], node->entries[i]) >= 0) {
          status = Status::Internal("leaf entries out of order");
          return -1;
        }
        if (lo != nullptr && CompareEntry(node->entries[i], *lo) < 0) {
          status = Status::Internal("leaf entry below subtree bound");
          return -1;
        }
        if (hi != nullptr && CompareEntry(node->entries[i], *hi) >= 0) {
          status = Status::Internal("leaf entry above subtree bound");
          return -1;
        }
      }
      counted += node->entries.size();
      return 1;
    }
    if (node->children.size() != node->separators.size() + 1) {
      status = Status::Internal("separator/children arity mismatch");
      return -1;
    }
    if (!is_root && node->children.size() < min_children) {
      status = Status::Internal("underfull internal node");
      return -1;
    }
    int depth = -1;
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Entry* clo = (i == 0) ? lo : &node->separators[i - 1];
      const Entry* chi =
          (i == node->separators.size()) ? hi : &node->separators[i];
      if (clo != nullptr && chi != nullptr &&
          CompareEntry(*clo, *chi) >= 0) {
        status = Status::Internal("separators out of order");
        return -1;
      }
      int d = check(node->children[i].get(), clo, chi, false);
      if (!status.ok()) return -1;
      if (depth == -1) depth = d;
      if (d != depth) {
        status = Status::Internal("non-uniform leaf depth");
        return -1;
      }
    }
    return depth + 1;
  };
  check(root_.get(), nullptr, nullptr, true);
  MOST_RETURN_IF_ERROR(status);
  if (counted != size_) {
    return Status::Internal("size mismatch: counted " +
                            std::to_string(counted) + " expected " +
                            std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace most
