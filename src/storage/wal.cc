#include "storage/wal.h"

#include <cinttypes>
#include <cstring>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace most {

namespace {

/// Registry-owned series for the durability path. Append/Sync each pay two
/// steady-clock reads when metrics are enabled, nothing when disabled.
struct WalRegistrySeries {
  obs::Counter* appends;
  obs::Counter* syncs;
  obs::Histogram* append_latency;
  obs::Histogram* sync_latency;

  static const WalRegistrySeries& Get() {
    static const WalRegistrySeries s = [] {
      auto& r = obs::MetricsRegistry::Global();
      WalRegistrySeries s;
      s.appends = r.GetCounter("most_wal_appends_total",
                               "WAL records appended (including failed)");
      s.syncs = r.GetCounter("most_wal_syncs_total",
                             "WAL fsync/fdatasync calls");
      s.append_latency = r.GetHistogram(
          "most_wal_append_latency_seconds", "WAL Append wall time",
          obs::ExponentialBuckets(1e-6, 4.0, 10));
      s.sync_latency = r.GetHistogram(
          "most_wal_sync_latency_seconds", "WAL Sync wall time",
          obs::ExponentialBuckets(1e-6, 4.0, 10));
      return s;
    }();
    return s;
  }
};

// Field escaping: '%', '|', ',', ':', newline, CR.
std::string Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '|':
        out += "%7C";
        break;
      case ',':
        out += "%2C";
        break;
      case ':':
        out += "%3A";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\r':
        out += "%0D";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    if (i + 2 >= in.size()) {
      return Status::Corruption("truncated escape sequence");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    int hi = hex(in[i + 1]);
    int lo = hex(in[i + 2]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad escape sequence");
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kBool:
      return v.bool_value() ? "B1" : "B0";
    case ValueType::kInt:
      return "I" + std::to_string(v.int_value());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "D%.17g", v.double_value());
      return buf;
    }
    case ValueType::kString:
      return "S" + Escape(v.string_value());
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& in) {
  if (in.empty()) return Status::Corruption("empty value encoding");
  const std::string payload = in.substr(1);
  switch (in[0]) {
    case 'N':
      return Value::Null();
    case 'B':
      return Value(payload == "1");
    case 'I': {
      char* end = nullptr;
      int64_t v = std::strtoll(payload.c_str(), &end, 10);
      if (end == payload.c_str() || *end != '\0') {
        return Status::Corruption("bad int encoding: " + in);
      }
      return Value(v);
    }
    case 'D': {
      char* end = nullptr;
      double v = std::strtod(payload.c_str(), &end);
      if (end == payload.c_str() || *end != '\0') {
        return Status::Corruption("bad double encoding: " + in);
      }
      return Value(v);
    }
    case 'S': {
      MOST_ASSIGN_OR_RETURN(std::string s, Unescape(payload));
      return Value(std::move(s));
    }
    default:
      return Status::Corruption("unknown value tag in: " + in);
  }
}

std::string EncodeRow(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    out += EncodeValue(row[i]);
  }
  return out;
}

Result<Row> DecodeRow(const std::string& in) {
  Row row;
  if (in.empty()) return row;
  std::istringstream is(in);
  std::string field;
  while (std::getline(is, field, ',')) {
    MOST_ASSIGN_OR_RETURN(Value v, DecodeValue(field));
    row.push_back(std::move(v));
  }
  return row;
}

std::string EncodeSchema(const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) out += ',';
    out += Escape(schema.column(i).name);
    out += ':';
    out += std::to_string(static_cast<int>(schema.column(i).type));
  }
  return out;
}

Result<Schema> DecodeSchema(const std::string& in) {
  std::vector<Column> columns;
  if (in.empty()) return Schema(std::move(columns));
  std::istringstream is(in);
  std::string field;
  while (std::getline(is, field, ',')) {
    size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad schema column: " + field);
    }
    MOST_ASSIGN_OR_RETURN(std::string name, Unescape(field.substr(0, colon)));
    int type = std::atoi(field.c_str() + colon + 1);
    if (type < 0 || type > static_cast<int>(ValueType::kString)) {
      return Status::Corruption("bad column type: " + field);
    }
    columns.push_back({std::move(name), static_cast<ValueType>(type)});
  }
  return Schema(std::move(columns));
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '|') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

// Serializes the version-independent record body: <kind>|<table>[|...].
std::string EncodeWalBody(const WalRecord& record) {
  std::string body;
  body += static_cast<char>(record.kind);
  body += '|';
  body += Escape(record.table);
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
      body += '|';
      body += EncodeSchema(record.schema);
      break;
    case WalRecord::Kind::kInsert:
    case WalRecord::Kind::kUpdate:
      body += '|';
      body += std::to_string(record.rid);
      body += '|';
      body += EncodeRow(record.row);
      break;
    case WalRecord::Kind::kDelete:
      body += '|';
      body += std::to_string(record.rid);
      break;
    case WalRecord::Kind::kCreateIndex:
      body += '|';
      body += Escape(record.column);
      break;
  }
  return body;
}

Result<WalRecord> DecodeWalBody(const std::string& body) {
  std::vector<std::string> fields = SplitFields(body);
  if (fields.size() < 2 || fields[0].size() != 1) {
    return Status::Corruption("malformed record: " + body);
  }
  WalRecord record;
  record.kind = static_cast<WalRecord::Kind>(fields[0][0]);
  MOST_ASSIGN_OR_RETURN(record.table, Unescape(fields[1]));
  auto need = [&](size_t n) -> Status {
    if (fields.size() != n) {
      return Status::Corruption("wrong field count in: " + body);
    }
    return Status::OK();
  };
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable: {
      MOST_RETURN_IF_ERROR(need(3));
      MOST_ASSIGN_OR_RETURN(record.schema, DecodeSchema(fields[2]));
      return record;
    }
    case WalRecord::Kind::kInsert:
    case WalRecord::Kind::kUpdate: {
      MOST_RETURN_IF_ERROR(need(4));
      record.rid = std::strtoull(fields[2].c_str(), nullptr, 10);
      MOST_ASSIGN_OR_RETURN(record.row, DecodeRow(fields[3]));
      return record;
    }
    case WalRecord::Kind::kDelete: {
      MOST_RETURN_IF_ERROR(need(3));
      record.rid = std::strtoull(fields[2].c_str(), nullptr, 10);
      return record;
    }
    case WalRecord::Kind::kCreateIndex: {
      MOST_RETURN_IF_ERROR(need(3));
      MOST_ASSIGN_OR_RETURN(record.column, Unescape(fields[2]));
      return record;
    }
  }
  return Status::Corruption("unknown record kind in: " + body);
}

// v2 line: #<version>|<crc32 hex8>|<len>|<body>.
Result<WalRecord> DecodeWalRecordV2(const std::string& line) {
  std::vector<std::string> head = SplitFields(line);
  if (head.size() < 4) {
    return Status::Corruption("short v2 record header");
  }
  if (head[0] != "#2") {
    return Status::Corruption("unsupported WAL record version: " + head[0]);
  }
  if (head[1].size() != 8) {
    return Status::Corruption("bad v2 CRC field");
  }
  char* end = nullptr;
  uint64_t declared_crc = std::strtoull(head[1].c_str(), &end, 16);
  if (end != head[1].c_str() + 8) {
    return Status::Corruption("bad v2 CRC field");
  }
  uint64_t declared_len = std::strtoull(head[2].c_str(), &end, 10);
  if (head[2].empty() || end != head[2].c_str() + head[2].size()) {
    return Status::Corruption("bad v2 length field");
  }
  // The body is everything after the third '|'.
  size_t body_at = head[0].size() + head[1].size() + head[2].size() + 3;
  std::string body = line.substr(body_at);
  if (body.size() != declared_len) {
    return Status::Corruption("v2 length mismatch (torn record?)");
  }
  if (Crc32(body.data(), body.size()) != static_cast<uint32_t>(declared_crc)) {
    return Status::Corruption("v2 CRC mismatch");
  }
  return DecodeWalBody(body);
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record, int format_version) {
  std::string body = EncodeWalBody(record);
  if (format_version <= 1) {
    // Length prefix guards against torn tail writes that happen to end in
    // a newline.
    return std::to_string(body.size()) + "|" + body;
  }
  char header[32];
  std::snprintf(header, sizeof(header), "#2|%08x|%zu|",
                Crc32(body.data(), body.size()), body.size());
  return header + body;
}

Result<WalRecord> DecodeWalRecord(const std::string& line) {
  if (!line.empty() && line[0] == '#') return DecodeWalRecordV2(line);
  size_t bar = line.find('|');
  if (bar == std::string::npos) {
    return Status::Corruption("missing length prefix");
  }
  char* end = nullptr;
  uint64_t declared = std::strtoull(line.c_str(), &end, 10);
  if (end != line.c_str() + bar) {
    return Status::Corruption("bad length prefix");
  }
  std::string body = line.substr(bar + 1);
  if (body.size() != declared) {
    return Status::Corruption("length mismatch (torn record?)");
  }
  return DecodeWalBody(body);
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, Options options) {
  Close();
  options_ = options;
  MOST_FAILPOINT("wal/open");
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL file: " + path);
  }
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("WAL is not open");
  obs::TraceSpan span("wal/append", "storage");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t t0 = registry.enabled() ? obs::MonotonicNowNs() : 0;
  Status status = AppendImpl(record);
  if (registry.enabled()) {
    const WalRegistrySeries& series = WalRegistrySeries::Get();
    series.appends->Inc();
    series.append_latency->Observe(
        static_cast<double>(obs::MonotonicNowNs() - t0) * 1e-9);
  }
  return status;
}

Status WalWriter::AppendImpl(const WalRecord& record) {
  std::string line = EncodeWalRecord(record, options_.format_version);
  line += '\n';
  // Device-full / I/O-error injection (distinct from wal/append/write torn
  // writes: nothing reaches the file, as ENOSPC on the first byte would).
  MOST_FAILPOINT("wal/append/enospc");
  FailpointRegistry::WriteFault fault =
      FailpointRegistry::Instance().CheckWrite("wal/append/write",
                                               line.size());
  if (fault.write_bytes > 0 &&
      std::fwrite(line.data(), 1, fault.write_bytes, file_) !=
          fault.write_bytes) {
    return Status::Internal("short WAL write");
  }
  if (!fault.status.ok()) {
    // Make the torn prefix actually reach the file, as a crash mid-append
    // would have: recovery must cope with it on the next Open.
    std::fflush(file_);
    return fault.status;
  }
  return Flush();
}

Status WalWriter::Flush() {
  if (file_ == nullptr) return Status::Internal("WAL is not open");
  MOST_FAILPOINT("wal/append/flush");
  if (std::fflush(file_) != 0) return Status::Internal("WAL flush failed");
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::Internal("WAL is not open");
  obs::TraceSpan span("wal/sync", "storage");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t t0 = registry.enabled() ? obs::MonotonicNowNs() : 0;
  Status status = SyncImpl();
  if (registry.enabled()) {
    const WalRegistrySeries& series = WalRegistrySeries::Get();
    series.syncs->Inc();
    series.sync_latency->Observe(
        static_cast<double>(obs::MonotonicNowNs() - t0) * 1e-9);
  }
  return status;
}

Status WalWriter::SyncImpl() {
  MOST_RETURN_IF_ERROR(Flush());
  MOST_FAILPOINT("wal/sync");
#if defined(__APPLE__)
  if (::fsync(fileno(file_)) != 0) {
    return Status::Internal("WAL fsync failed");
  }
#elif defined(__unix__)
  if (::fdatasync(fileno(file_)) != 0) {
    return Status::Internal("WAL fdatasync failed");
  }
#endif
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

namespace {

Result<std::string> ReadFileContents(const std::string& path, bool* missing) {
  *missing = false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    *missing = true;
    return std::string();
  }
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::Internal("cannot read WAL file: " + path);
  }
  return contents;
}

}  // namespace

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* tail_truncated) {
  if (tail_truncated != nullptr) *tail_truncated = false;
  bool missing = false;
  MOST_ASSIGN_OR_RETURN(std::string contents,
                        ReadFileContents(path, &missing));
  if (missing) return std::vector<WalRecord>{};  // No log yet.

  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn tail write: the last record never completed.
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;
    }
    std::string line = contents.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    Result<WalRecord> record = DecodeWalRecord(line);
    if (!record.ok()) {
      if (pos >= contents.size()) {
        // Corrupt final record: treat like a torn tail.
        if (tail_truncated != nullptr) *tail_truncated = true;
        break;
      }
      return record.status();  // Mid-file corruption is fatal.
    }
    records.push_back(std::move(record).value());
  }
  return records;
}

Result<std::vector<WalRecord>> RecoverWal(const std::string& path,
                                          RecoveryReport* report) {
  obs::TraceSpan span("wal/recover", "storage");
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport();
  bool missing = false;
  MOST_ASSIGN_OR_RETURN(std::string contents,
                        ReadFileContents(path, &missing));
  if (missing) return std::vector<WalRecord>{};  // No log yet.

  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn tail write: the last record never completed.
      rep.tail_truncated = true;
      ++rep.dropped;
      break;
    }
    std::string line = contents.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    Result<WalRecord> record = DecodeWalRecord(line);
    if (!record.ok()) {
      ++rep.dropped;
      if (rep.first_error.empty()) {
        rep.first_error = record.status().ToString();
      }
      continue;  // Salvage: skip the corrupt record, keep going.
    }
    ++rep.applied;
    if (rep.dropped > 0) ++rep.salvaged;
    records.push_back(std::move(record).value());
  }
  return records;
}

}  // namespace most
