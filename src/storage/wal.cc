#include "storage/wal.h"

#include <cinttypes>
#include <cstring>
#include <sstream>

namespace most {

namespace {

// Field escaping: '%', '|', ',', ':', newline, CR.
std::string Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '|':
        out += "%7C";
        break;
      case ',':
        out += "%2C";
        break;
      case ':':
        out += "%3A";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\r':
        out += "%0D";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    if (i + 2 >= in.size()) {
      return Status::Corruption("truncated escape sequence");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    int hi = hex(in[i + 1]);
    int lo = hex(in[i + 2]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad escape sequence");
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kBool:
      return v.bool_value() ? "B1" : "B0";
    case ValueType::kInt:
      return "I" + std::to_string(v.int_value());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "D%.17g", v.double_value());
      return buf;
    }
    case ValueType::kString:
      return "S" + Escape(v.string_value());
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& in) {
  if (in.empty()) return Status::Corruption("empty value encoding");
  const std::string payload = in.substr(1);
  switch (in[0]) {
    case 'N':
      return Value::Null();
    case 'B':
      return Value(payload == "1");
    case 'I': {
      char* end = nullptr;
      int64_t v = std::strtoll(payload.c_str(), &end, 10);
      if (end == payload.c_str() || *end != '\0') {
        return Status::Corruption("bad int encoding: " + in);
      }
      return Value(v);
    }
    case 'D': {
      char* end = nullptr;
      double v = std::strtod(payload.c_str(), &end);
      if (end == payload.c_str() || *end != '\0') {
        return Status::Corruption("bad double encoding: " + in);
      }
      return Value(v);
    }
    case 'S': {
      MOST_ASSIGN_OR_RETURN(std::string s, Unescape(payload));
      return Value(std::move(s));
    }
    default:
      return Status::Corruption("unknown value tag in: " + in);
  }
}

std::string EncodeRow(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    out += EncodeValue(row[i]);
  }
  return out;
}

Result<Row> DecodeRow(const std::string& in) {
  Row row;
  if (in.empty()) return row;
  std::istringstream is(in);
  std::string field;
  while (std::getline(is, field, ',')) {
    MOST_ASSIGN_OR_RETURN(Value v, DecodeValue(field));
    row.push_back(std::move(v));
  }
  return row;
}

std::string EncodeSchema(const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) out += ',';
    out += Escape(schema.column(i).name);
    out += ':';
    out += std::to_string(static_cast<int>(schema.column(i).type));
  }
  return out;
}

Result<Schema> DecodeSchema(const std::string& in) {
  std::vector<Column> columns;
  if (in.empty()) return Schema(std::move(columns));
  std::istringstream is(in);
  std::string field;
  while (std::getline(is, field, ',')) {
    size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Status::Corruption("bad schema column: " + field);
    }
    MOST_ASSIGN_OR_RETURN(std::string name, Unescape(field.substr(0, colon)));
    int type = std::atoi(field.c_str() + colon + 1);
    if (type < 0 || type > static_cast<int>(ValueType::kString)) {
      return Status::Corruption("bad column type: " + field);
    }
    columns.push_back({std::move(name), static_cast<ValueType>(type)});
  }
  return Schema(std::move(columns));
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '|') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string body;
  body += static_cast<char>(record.kind);
  body += '|';
  body += Escape(record.table);
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
      body += '|';
      body += EncodeSchema(record.schema);
      break;
    case WalRecord::Kind::kInsert:
    case WalRecord::Kind::kUpdate:
      body += '|';
      body += std::to_string(record.rid);
      body += '|';
      body += EncodeRow(record.row);
      break;
    case WalRecord::Kind::kDelete:
      body += '|';
      body += std::to_string(record.rid);
      break;
    case WalRecord::Kind::kCreateIndex:
      body += '|';
      body += Escape(record.column);
      break;
  }
  // Length prefix guards against torn tail writes that happen to end in a
  // newline.
  return std::to_string(body.size()) + "|" + body;
}

Result<WalRecord> DecodeWalRecord(const std::string& line) {
  size_t bar = line.find('|');
  if (bar == std::string::npos) {
    return Status::Corruption("missing length prefix");
  }
  char* end = nullptr;
  uint64_t declared = std::strtoull(line.c_str(), &end, 10);
  if (end != line.c_str() + bar) {
    return Status::Corruption("bad length prefix");
  }
  std::string body = line.substr(bar + 1);
  if (body.size() != declared) {
    return Status::Corruption("length mismatch (torn record?)");
  }
  std::vector<std::string> fields = SplitFields(body);
  if (fields.size() < 2 || fields[0].size() != 1) {
    return Status::Corruption("malformed record: " + body);
  }
  WalRecord record;
  record.kind = static_cast<WalRecord::Kind>(fields[0][0]);
  MOST_ASSIGN_OR_RETURN(record.table, Unescape(fields[1]));
  auto need = [&](size_t n) -> Status {
    if (fields.size() != n) {
      return Status::Corruption("wrong field count in: " + body);
    }
    return Status::OK();
  };
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable: {
      MOST_RETURN_IF_ERROR(need(3));
      MOST_ASSIGN_OR_RETURN(record.schema, DecodeSchema(fields[2]));
      return record;
    }
    case WalRecord::Kind::kInsert:
    case WalRecord::Kind::kUpdate: {
      MOST_RETURN_IF_ERROR(need(4));
      record.rid = std::strtoull(fields[2].c_str(), nullptr, 10);
      MOST_ASSIGN_OR_RETURN(record.row, DecodeRow(fields[3]));
      return record;
    }
    case WalRecord::Kind::kDelete: {
      MOST_RETURN_IF_ERROR(need(3));
      record.rid = std::strtoull(fields[2].c_str(), nullptr, 10);
      return record;
    }
    case WalRecord::Kind::kCreateIndex: {
      MOST_RETURN_IF_ERROR(need(3));
      MOST_ASSIGN_OR_RETURN(record.column, Unescape(fields[2]));
      return record;
    }
  }
  return Status::Corruption("unknown record kind in: " + body);
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL file: " + path);
  }
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("WAL is not open");
  std::string line = EncodeWalRecord(record);
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::Internal("short WAL write");
  }
  return Flush();
}

Status WalWriter::Flush() {
  if (file_ == nullptr) return Status::Internal("WAL is not open");
  if (std::fflush(file_) != 0) return Status::Internal("WAL flush failed");
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* tail_truncated) {
  if (tail_truncated != nullptr) *tail_truncated = false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::vector<WalRecord>{};  // No log yet.
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);

  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn tail write: the last record never completed.
      if (tail_truncated != nullptr) *tail_truncated = true;
      break;
    }
    std::string line = contents.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    Result<WalRecord> record = DecodeWalRecord(line);
    if (!record.ok()) {
      if (pos >= contents.size()) {
        // Corrupt final record: treat like a torn tail.
        if (tail_truncated != nullptr) *tail_truncated = true;
        break;
      }
      return record.status();  // Mid-file corruption is fatal.
    }
    records.push_back(std::move(record).value());
  }
  return records;
}

}  // namespace most
