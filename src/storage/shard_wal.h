#ifndef MOST_STORAGE_SHARD_WAL_H_
#define MOST_STORAGE_SHARD_WAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/wal.h"

namespace most {

/// Per-shard write-ahead log (docs/sharding.md): shard k of a sharded
/// engine appends to `<dir>/shard-<k>.wal`, so N drain threads log
/// concurrently without sharing a file or a lock, while reusing the
/// CRC-framed WalRecord line format (v2), torn-tail tolerance, salvage
/// recovery and the wal/* failpoint sites of the storage WAL wholesale.
///
/// The record *payload* convention is the caller's (the sharded engine
/// encodes object updates as Kind::kUpdate records whose row carries the
/// update tick, attribute and encoded time function); this class only
/// owns path layout and writer lifecycle.
class ShardWal {
 public:
  ShardWal() = default;

  ShardWal(const ShardWal&) = delete;
  ShardWal& operator=(const ShardWal&) = delete;

  /// `<dir>/shard-<shard>.wal` (no directory creation; `dir` must exist).
  static std::string PathFor(const std::string& dir, size_t shard);

  Status Open(const std::string& dir, size_t shard);
  bool is_open() const { return writer_.is_open(); }
  const std::string& path() const { return path_; }

  Status Append(const WalRecord& record) { return writer_.Append(record); }
  Status Flush() { return writer_.Flush(); }
  /// fdatasync, for callers that need OS-crash durability per batch.
  Status Sync() { return writer_.Sync(); }
  void Close() { writer_.Close(); }

 private:
  WalWriter writer_;
  std::string path_;
};

/// Salvage-reads every shard log under `dir` for shard indices
/// [0, shard_count) and concatenates the records shard by shard. A
/// missing shard file is an empty log (a shard that never saw an update
/// writes nothing). Cross-shard record order is by shard index — safe for
/// replay because shards own disjoint objects, so no two shards' records
/// ever touch the same object. `report` (optional) accumulates the
/// salvage counters across all shard files.
Result<std::vector<WalRecord>> ReadShardWals(const std::string& dir,
                                             size_t shard_count,
                                             RecoveryReport* report);

}  // namespace most

#endif  // MOST_STORAGE_SHARD_WAL_H_
