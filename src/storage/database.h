#ifndef MOST_STORAGE_DATABASE_H_
#define MOST_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/expression.h"
#include "storage/table.h"

namespace most {

/// A SELECT over one table of the host engine: optional WHERE expression
/// and projection list (empty = all columns). The paper's atomic
/// (non-temporal) queries bottom out here.
struct SelectQuery {
  std::string table;
  ExprPtr where;                     ///< May be null (no filter).
  std::vector<std::string> project;  ///< Empty = SELECT *.
};

/// Materialized query result. `row_ids` is parallel to `rows`, so callers
/// that need to re-fetch or mutate matching rows (e.g. the MOST layer) can
/// address them.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  std::vector<RowId> row_ids;
};

/// Execution counters, used by benchmarks to show scan-vs-index behaviour.
struct QueryStats {
  size_t rows_examined = 0;
  bool used_index = false;
  size_t queries_executed = 0;  ///< >1 after Section 5.1 decomposition.
  size_t branches_pruned = 0;   ///< Decomposition branches folded to FALSE.
};

/// The host "DBMS": a catalog of named tables plus a SELECT executor with a
/// one-rule planner (use a B+-tree index when a top-level conjunct is an
/// indexable comparison against a literal).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

  Result<ResultSet> ExecuteSelect(const SelectQuery& query,
                                  QueryStats* stats = nullptr) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace most

#endif  // MOST_STORAGE_DATABASE_H_
