#ifndef MOST_STORAGE_DURABLE_DATABASE_H_
#define MOST_STORAGE_DURABLE_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "storage/database.h"
#include "storage/wal.h"

namespace most {

/// A Database with write-ahead logging and crash recovery: every mutation
/// is appended (and flushed) to the log before being applied, and Open()
/// rebuilds the in-memory state by replaying the log. Checkpoint()
/// compacts the log to a snapshot of the current state.
///
/// This rounds out the "existing DBMS" substrate the paper layers MOST on
/// top of: position updates from vehicles survive a server crash.
class DurableDatabase {
 public:
  DurableDatabase() = default;
  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  /// Replays `path` (if it exists) and opens it for appending. A torn
  /// final record (crash mid-append) is dropped; `recovered_records`
  /// reports how many records were applied.
  Status Open(const std::string& path, size_t* recovered_records = nullptr);

  bool is_open() const { return writer_.is_open(); }

  // ---- Logged mutations --------------------------------------------------

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<RowId> Insert(const std::string& table, Row row);
  Status Update(const std::string& table, RowId rid, Row row);
  Status Delete(const std::string& table, RowId rid);
  Status CreateIndex(const std::string& table, const std::string& column);

  // ---- Reads (pass-through) ----------------------------------------------

  Result<ResultSet> ExecuteSelect(const SelectQuery& query,
                                  QueryStats* stats = nullptr) const {
    return db_.ExecuteSelect(query, stats);
  }
  Result<const Table*> GetTable(const std::string& name) const {
    return db_.GetTable(name);
  }
  const Database& database() const { return db_; }

  /// Rewrites the log as a snapshot of the current state (create-table +
  /// one insert per live row + index records), atomically replacing the
  /// old log. Bounds recovery time after long update streams.
  Status Checkpoint();

  const std::string& path() const { return path_; }

 private:
  Status Apply(const WalRecord& record);

  Database db_;
  WalWriter writer_;
  std::string path_;
  // Index definitions, re-logged by Checkpoint().
  std::map<std::string, std::set<std::string>> indexed_columns_;
};

}  // namespace most

#endif  // MOST_STORAGE_DURABLE_DATABASE_H_
