#ifndef MOST_STORAGE_DURABLE_DATABASE_H_
#define MOST_STORAGE_DURABLE_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "storage/database.h"
#include "storage/wal.h"

namespace most {

/// A Database with write-ahead logging and crash recovery: every mutation
/// is appended (and flushed) to the log before being applied, and Open()
/// rebuilds the in-memory state by replaying the log. Checkpoint()
/// compacts the log to a snapshot of the current state, replacing it
/// atomically (write tmp, rename over the log).
///
/// This rounds out the "existing DBMS" substrate the paper layers MOST on
/// top of: position updates from vehicles survive a server crash.
///
/// Failpoint sites (docs/durability.md lists the full catalog): the
/// WalWriter sites plus durable/checkpoint/begin and
/// durable/checkpoint/rename.
class DurableDatabase {
 public:
  struct Options {
    /// kFlush: fflush after every append (survives a process crash).
    /// kSync: additionally fdatasync on every commit and before the
    /// checkpoint rename (survives an OS crash). Cost tracked by
    /// BM_WalAppend (BENCH_wal.json).
    enum class Durability { kFlush, kSync };
    Durability durability = Durability::kFlush;
    /// Salvage recovery: Open() skips corrupt or unappliable records
    /// (reporting them in recovery_report()) instead of failing. Strict
    /// mode (the default) fails on mid-log corruption, leaving the
    /// database empty — never half-replayed.
    bool salvage = false;
    /// Record framing written for new appends (replay accepts both).
    int wal_format_version = kWalFormatVersion;
  };

  DurableDatabase() : DurableDatabase(Options()) {}
  explicit DurableDatabase(Options options)
      : options_(options), db_(std::make_unique<Database>()) {}
  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  /// Replays `path` (if it exists) and opens it for appending. A torn
  /// final record (crash mid-append) is dropped; `recovered_records`
  /// reports how many records were applied (recovery_report() has the
  /// full breakdown). On replay failure the in-memory state is reset —
  /// the database is never left half-replayed.
  Status Open(const std::string& path, size_t* recovered_records = nullptr);

  bool is_open() const { return writer_.is_open(); }

  /// What the last Open() recovered, salvaged, and dropped.
  const RecoveryReport& recovery_report() const { return report_; }

  // ---- Logged mutations --------------------------------------------------

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<RowId> Insert(const std::string& table, Row row);
  Status Update(const std::string& table, RowId rid, Row row);
  Status Delete(const std::string& table, RowId rid);
  Status CreateIndex(const std::string& table, const std::string& column);

  // ---- Reads (pass-through) ----------------------------------------------

  Result<ResultSet> ExecuteSelect(const SelectQuery& query,
                                  QueryStats* stats = nullptr) const {
    return db_->ExecuteSelect(query, stats);
  }
  Result<const Table*> GetTable(const std::string& name) const {
    return database().GetTable(name);
  }
  const Database& database() const { return *db_; }

  /// Rewrites the log as a snapshot of the current state (create-table +
  /// one insert per live row + index records), atomically replacing the
  /// old log. Bounds recovery time after long update streams. On failure
  /// the temporary snapshot is removed, the old log is left intact, and
  /// the database stays open and usable.
  ///
  /// Storage pressure (docs/robustness.md): a failed checkpoint — like a
  /// failed commit — raises the global ResourceGovernor's sticky
  /// storage-degraded flag and arms a capped exponential retry backoff; a
  /// successful checkpoint clears both. Reads are never affected.
  Status Checkpoint();

  /// True when a previous Checkpoint() failed and the backoff since then
  /// has elapsed, so a retry is worth attempting.
  bool CheckpointRetryDue() const {
    return checkpoint_failures_ > 0 && checkpoint_retry_countdown_ == 0;
  }
  /// Periodic retry driver (call once per maintenance tick): retries a
  /// failed checkpoint when the backoff has elapsed, otherwise counts the
  /// backoff down. No-op (OK) while the last checkpoint stands.
  Status MaybeRetryCheckpoint();
  /// Consecutive checkpoint failures since the last success.
  size_t checkpoint_failures() const { return checkpoint_failures_; }

  const std::string& path() const { return path_; }

 private:
  Status Apply(const WalRecord& record);
  // Uninstrumented checkpoint body; Checkpoint() times it into the
  // registry (most_checkpoint_latency_seconds, most_checkpoints_total).
  Status CheckpointImpl();
  /// Append + durability-appropriate sync: the commit point of every
  /// logged mutation.
  Status Commit(const WalRecord& record);
  Status WriteSnapshot(const std::string& tmp_path);

  Options options_;
  std::unique_ptr<Database> db_;
  WalWriter writer_;
  std::string path_;
  RecoveryReport report_;
  // Index definitions, re-logged by Checkpoint().
  std::map<std::string, std::set<std::string>> indexed_columns_;
  /// Checkpoint retry state: consecutive failures and the number of
  /// MaybeRetryCheckpoint() calls still to skip (capped exponential
  /// backoff, so a persistently full disk is not hammered every tick).
  size_t checkpoint_failures_ = 0;
  size_t checkpoint_retry_countdown_ = 0;
};

}  // namespace most

#endif  // MOST_STORAGE_DURABLE_DATABASE_H_
