#ifndef MOST_STORAGE_VALUE_H_
#define MOST_STORAGE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"

namespace most {

/// Column/value types of the host relational engine. Dynamic attributes are
/// a MOST-layer concept; at the storage layer they appear as their three
/// ordinary sub-attribute columns (value: kDouble, updatetime: kInt,
/// function: kString-encoded), exactly as Section 5.1 of the paper
/// prescribes for implementing MOST on top of a DBMS.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

std::string_view ValueTypeToString(ValueType t);

/// A dynamically typed value. Ordered comparisons require identical types
/// except for the numeric tower (int and double compare numerically).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(int i) : rep_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt;
      case 3:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Numeric view: ints widen to double. Error for other types.
  Result<double> AsDouble() const;

  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Three-way comparison. Null compares equal to null and less than
  /// everything else; cross-type numeric comparisons are by value; other
  /// cross-type comparisons order by type tag (total order for index keys).
  int Compare(const Value& o) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace most

#endif  // MOST_STORAGE_VALUE_H_
