#include "storage/schema.h"

#include <sstream>

namespace most {

Status Schema::Validate(const std::vector<Value>& values) const {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    ValueType vt = values[i].type();
    ValueType ct = columns_[i].type;
    bool ok = vt == ct || (ct == ValueType::kDouble && vt == ValueType::kInt);
    if (!ok) {
      return Status::TypeError("column '" + columns_[i].name + "' expects " +
                               std::string(ValueTypeToString(ct)) + ", got " +
                               std::string(ValueTypeToString(vt)));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ", ";
    os << columns_[i].name << " " << ValueTypeToString(columns_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace most
