#ifndef MOST_STORAGE_EXPRESSION_H_
#define MOST_STORAGE_EXPRESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace most {

class Expr;
/// Expressions are immutable and shared; rewrites (e.g. the Section 5.1
/// dynamic-atom elimination) build new trees that reuse untouched subtrees.
using ExprPtr = std::shared_ptr<const Expr>;

/// A scalar/boolean expression over the columns of one schema: literals,
/// column references, comparisons, boolean connectives and arithmetic.
/// This is the WHERE-clause language of the host DBMS.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumn,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kArith,
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  static ExprPtr Literal(Value v);
  static ExprPtr True() { return Literal(Value(true)); }
  static ExprPtr False() { return Literal(Value(false)); }
  static ExprPtr Column(std::string name);
  static ExprPtr Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

  Kind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& column() const { return column_; }
  CmpOp cmp_op() const { return cmp_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates against one row. Type errors surface as statuses.
  Result<Value> Eval(const Schema& schema, const Row& row) const;

  /// Names of all columns referenced anywhere in the tree.
  void CollectColumns(std::set<std::string>* out) const;

  /// Structural identity (used by the rewriter to locate atoms).
  bool Equals(const Expr& other) const;

  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  std::string column_;
  CmpOp cmp_op_ = CmpOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
};

std::string_view CmpOpToString(Expr::CmpOp op);
std::string_view ArithOpToString(Expr::ArithOp op);

/// Splits a boolean expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Replaces every occurrence of `atom` (by structural equality) in `expr`
/// with `replacement`, returning the rewritten tree. This is the primitive
/// behind the paper's F = (F' AND p) OR (F'' AND NOT p) decomposition.
ExprPtr SubstituteAtom(const ExprPtr& expr, const ExprPtr& atom,
                       const ExprPtr& replacement);

/// Boolean constant folding: AND/OR/NOT over TRUE/FALSE literals collapse
/// (e.g. `x AND FALSE` -> FALSE, `x OR FALSE` -> x). Decomposition
/// branches whose WHERE folds to FALSE need no host query at all.
ExprPtr SimplifyExpr(const ExprPtr& expr);

/// True if the expression is the literal boolean `value`.
bool IsBoolLiteral(const ExprPtr& expr, bool value);

}  // namespace most

#endif  // MOST_STORAGE_EXPRESSION_H_
