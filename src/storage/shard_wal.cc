#include "storage/shard_wal.h"

namespace most {

std::string ShardWal::PathFor(const std::string& dir, size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

Status ShardWal::Open(const std::string& dir, size_t shard) {
  path_ = PathFor(dir, shard);
  return writer_.Open(path_);
}

Result<std::vector<WalRecord>> ReadShardWals(const std::string& dir,
                                             size_t shard_count,
                                             RecoveryReport* report) {
  std::vector<WalRecord> all;
  for (size_t shard = 0; shard < shard_count; ++shard) {
    RecoveryReport shard_report;
    MOST_ASSIGN_OR_RETURN(
        std::vector<WalRecord> records,
        RecoverWal(ShardWal::PathFor(dir, shard), &shard_report));
    for (WalRecord& r : records) all.push_back(std::move(r));
    if (report != nullptr) {
      report->applied += shard_report.applied;
      report->salvaged += shard_report.salvaged;
      report->dropped += shard_report.dropped;
      report->tail_truncated |= shard_report.tail_truncated;
      if (report->first_error.empty()) {
        report->first_error = shard_report.first_error;
      }
    }
  }
  return all;
}

}  // namespace most
