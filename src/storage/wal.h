#ifndef MOST_STORAGE_WAL_H_
#define MOST_STORAGE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace most {

/// A logged mutation. The WAL is a line-oriented append-only file; each
/// record is one escaped line, so a torn final write (crash mid-append)
/// is detected as a truncated last line and ignored on replay.
///
/// Two record framings coexist in a log (the format is self-describing
/// per line, so v1 logs — and logs that gained v2 records after an
/// upgrade — still replay):
///
///   v1:  <len>|<body>                     length framing only
///   v2:  #2|<crc32 hex8>|<len>|<body>     + per-record CRC32 over the body
///
/// See docs/durability.md for the full format and recovery invariants.
struct WalRecord {
  enum class Kind : char {
    kCreateTable = 'T',
    kInsert = 'I',
    kUpdate = 'U',
    kDelete = 'D',
    kCreateIndex = 'X',
  };

  Kind kind = Kind::kInsert;
  std::string table;
  RowId rid = kInvalidRowId;
  Row row;             // kInsert / kUpdate.
  Schema schema;       // kCreateTable.
  std::string column;  // kCreateIndex.
};

/// Current (CRC-framed) record format version.
inline constexpr int kWalFormatVersion = 2;

/// Serializes a record as a single line (no trailing newline) in the given
/// format version (1 = legacy length-only framing, 2 = CRC32 framing).
std::string EncodeWalRecord(const WalRecord& record,
                            int format_version = kWalFormatVersion);
/// Parses one line of either version; Corruption on malformed input. A v2
/// line whose CRC does not match its body is Corruption (never mis-parses
/// as a different record).
Result<WalRecord> DecodeWalRecord(const std::string& line);

/// Append-only writer with explicit flush-on-append ("the log is the
/// database"; everything else is a cache, per the usual WAL discipline).
/// Failpoint sites: wal/open, wal/append/write (write site — supports
/// torn writes), wal/append/flush, wal/sync.
class WalWriter {
 public:
  struct Options {
    int format_version = kWalFormatVersion;
  };

  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens for appending (creates the file if absent).
  Status Open(const std::string& path) { return Open(path, Options()); }
  Status Open(const std::string& path, Options options);
  bool is_open() const { return file_ != nullptr; }

  Status Append(const WalRecord& record);
  Status Flush();
  /// Forces appended records to stable storage (fdatasync via fileno).
  /// Flush() survives a process crash; Sync() also survives an OS crash.
  Status Sync();
  void Close();

 private:
  // Uninstrumented bodies; the public wrappers time them into the metrics
  // registry (most_wal_append_latency_seconds / most_wal_sync_latency_...).
  Status AppendImpl(const WalRecord& record);
  Status SyncImpl();

  std::FILE* file_ = nullptr;
  Options options_;
};

/// Reads every complete record of a log file. A trailing partial line (torn
/// write) is tolerated and reported via `tail_truncated`; corruption in the
/// middle of the file is an error. (Strict mode — see RecoverWal for the
/// salvaging variant.)
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* tail_truncated = nullptr);

/// What salvage recovery did to a log. `applied` counts records that
/// replayed; `dropped` counts corrupt/torn/unappliable records skipped;
/// `salvaged` counts applied records that came after the first drop (they
/// would have been lost under strict replay).
struct RecoveryReport {
  size_t applied = 0;
  size_t salvaged = 0;
  size_t dropped = 0;
  bool tail_truncated = false;
  std::string first_error;  ///< First corruption message, for logging.
};

/// Salvaging reader: decodes every line it can, skipping corrupt records
/// (middle or tail) instead of aborting the replay. Only I/O-level
/// failures (unreadable file) are errors; a missing file is an empty log.
Result<std::vector<WalRecord>> RecoverWal(const std::string& path,
                                          RecoveryReport* report);

}  // namespace most

#endif  // MOST_STORAGE_WAL_H_
