#ifndef MOST_STORAGE_WAL_H_
#define MOST_STORAGE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace most {

/// A logged mutation. The WAL is a line-oriented append-only file; each
/// record is one escaped line, so a torn final write (crash mid-append)
/// is detected as a truncated last line and ignored on replay.
struct WalRecord {
  enum class Kind : char {
    kCreateTable = 'T',
    kInsert = 'I',
    kUpdate = 'U',
    kDelete = 'D',
    kCreateIndex = 'X',
  };

  Kind kind = Kind::kInsert;
  std::string table;
  RowId rid = kInvalidRowId;
  Row row;             // kInsert / kUpdate.
  Schema schema;       // kCreateTable.
  std::string column;  // kCreateIndex.
};

/// Serializes a record as a single line (no trailing newline).
std::string EncodeWalRecord(const WalRecord& record);
/// Parses one line; Corruption on malformed input.
Result<WalRecord> DecodeWalRecord(const std::string& line);

/// Append-only writer with explicit flush-on-append ("the log is the
/// database"; everything else is a cache, per the usual WAL discipline).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens for appending (creates the file if absent).
  Status Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }

  Status Append(const WalRecord& record);
  Status Flush();
  void Close();

 private:
  std::FILE* file_ = nullptr;
};

/// Reads every complete record of a log file. A trailing partial line (torn
/// write) is tolerated and reported via `tail_truncated`; corruption in the
/// middle of the file is an error.
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* tail_truncated = nullptr);

}  // namespace most

#endif  // MOST_STORAGE_WAL_H_
