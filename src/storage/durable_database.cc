#include "storage/durable_database.h"

#include <algorithm>
#include <cstdio>

#include "common/failpoint.h"
#include "obs/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace most {

namespace {

/// Flushes one recovery's RecoveryReport into engine-wide counters, so the
/// exporters can answer "how many records has salvage ever dropped".
void RecordRecovery(const RecoveryReport& report) {
  auto& r = obs::MetricsRegistry::Global();
  if (!r.enabled()) return;
  r.GetCounter("most_wal_recoveries_total", "Durable-database opens that "
               "replayed a log")->Inc();
  r.GetCounter("most_wal_recovered_records_total",
               "Records replayed across recoveries", {{"outcome", "applied"}})
      ->Inc(report.applied);
  r.GetCounter("most_wal_recovered_records_total",
               "Records replayed across recoveries", {{"outcome", "salvaged"}})
      ->Inc(report.salvaged);
  r.GetCounter("most_wal_recovered_records_total",
               "Records replayed across recoveries", {{"outcome", "dropped"}})
      ->Inc(report.dropped);
}

}  // namespace

Status DurableDatabase::Open(const std::string& path,
                             size_t* recovered_records) {
  path_ = path;
  db_ = std::make_unique<Database>();
  indexed_columns_.clear();
  report_ = RecoveryReport();

  const WalWriter::Options wopts{options_.wal_format_version};

  if (options_.salvage) {
    MOST_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                          RecoverWal(path, &report_));
    for (const WalRecord& record : records) {
      Status applied = Apply(record);
      if (!applied.ok()) {
        // A record that decoded but cannot replay (e.g. it depended on a
        // dropped record): skip it, like any other corrupt record.
        --report_.applied;
        ++report_.dropped;
        if (report_.first_error.empty()) {
          report_.first_error = applied.ToString();
        }
      }
    }
    report_.salvaged = std::min(report_.salvaged, report_.applied);
  } else {
    bool tail_truncated = false;
    Result<std::vector<WalRecord>> records = ReadWal(path, &tail_truncated);
    if (!records.ok()) return records.status();
    report_.tail_truncated = tail_truncated;
    for (const WalRecord& record : *records) {
      Status applied = Apply(record);
      if (!applied.ok()) {
        // Do not leave a half-replayed state behind a failed Open.
        db_ = std::make_unique<Database>();
        indexed_columns_.clear();
        report_ = RecoveryReport();
        return applied;
      }
      ++report_.applied;
    }
  }
  if (recovered_records != nullptr) *recovered_records = report_.applied;
  RecordRecovery(report_);
  return writer_.Open(path, wopts);
}

Status DurableDatabase::Apply(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
      return db_->CreateTable(record.table, record.schema).status();
    case WalRecord::Kind::kInsert: {
      MOST_ASSIGN_OR_RETURN(Table * table, db_->GetTable(record.table));
      return table->RestoreRow(record.rid, record.row);
    }
    case WalRecord::Kind::kUpdate: {
      MOST_ASSIGN_OR_RETURN(Table * table, db_->GetTable(record.table));
      return table->Update(record.rid, record.row);
    }
    case WalRecord::Kind::kDelete: {
      MOST_ASSIGN_OR_RETURN(Table * table, db_->GetTable(record.table));
      return table->Delete(record.rid);
    }
    case WalRecord::Kind::kCreateIndex: {
      MOST_ASSIGN_OR_RETURN(Table * table, db_->GetTable(record.table));
      indexed_columns_[record.table].insert(record.column);
      return table->CreateIndex(record.column);
    }
  }
  return Status::Corruption("unknown WAL record kind");
}

Status DurableDatabase::Commit(const WalRecord& record) {
  Status committed = writer_.Append(record);
  if (committed.ok() && options_.durability == Options::Durability::kSync) {
    committed = writer_.Sync();
  }
  if (!committed.ok()) {
    // ENOSPC / EIO on the commit path: the mutation is rolled back by the
    // caller, the database stays readable, and the process-wide health
    // flag goes up until a checkpoint proves the device writable again.
    ResourceGovernor::Global().ReportStorageDegraded(
        "wal commit failed: " + committed.message());
  }
  return committed;
}

Result<Table*> DurableDatabase::CreateTable(const std::string& name,
                                            Schema schema) {
  if (!is_open()) return Status::Internal("database is not open");
  if (db_->HasTable(name)) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kCreateTable;
  record.table = name;
  record.schema = schema;
  MOST_RETURN_IF_ERROR(Commit(record));
  return db_->CreateTable(name, std::move(schema));
}

Result<RowId> DurableDatabase::Insert(const std::string& table, Row row) {
  if (!is_open()) return Status::Internal("database is not open");
  MOST_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  // Validate first so the log only contains appliable records, then log
  // with the id the insert will receive.
  MOST_RETURN_IF_ERROR(t->schema().Validate(row));
  WalRecord record;
  record.kind = WalRecord::Kind::kInsert;
  record.table = table;
  record.row = row;
  // Peek the id by performing the insert after logging with the correct
  // id: Table assigns ids sequentially, and RestoreRow on replay follows
  // the logged id, so log-then-apply stays consistent.
  MOST_ASSIGN_OR_RETURN(RowId rid, t->Insert(std::move(row)));
  record.rid = rid;
  Status logged = Commit(record);
  if (!logged.ok()) {
    // Keep memory consistent with the log: roll the row back.
    (void)t->Delete(rid);
    return logged;
  }
  return rid;
}

Status DurableDatabase::Update(const std::string& table, RowId rid, Row row) {
  if (!is_open()) return Status::Internal("database is not open");
  MOST_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  MOST_RETURN_IF_ERROR(t->schema().Validate(row));
  if (t->Get(rid) == nullptr) {
    return Status::NotFound("row " + std::to_string(rid));
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kUpdate;
  record.table = table;
  record.rid = rid;
  record.row = row;
  MOST_RETURN_IF_ERROR(Commit(record));
  return t->Update(rid, std::move(row));
}

Status DurableDatabase::Delete(const std::string& table, RowId rid) {
  if (!is_open()) return Status::Internal("database is not open");
  MOST_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (t->Get(rid) == nullptr) {
    return Status::NotFound("row " + std::to_string(rid));
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kDelete;
  record.table = table;
  record.rid = rid;
  MOST_RETURN_IF_ERROR(Commit(record));
  return t->Delete(rid);
}

Status DurableDatabase::CreateIndex(const std::string& table,
                                    const std::string& column) {
  if (!is_open()) return Status::Internal("database is not open");
  MOST_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
  if (t->GetIndex(column) != nullptr) {
    return Status::AlreadyExists("index on " + table + "." + column);
  }
  if (!t->schema().HasColumn(column)) {
    return Status::NotFound("no column named '" + column + "'");
  }
  WalRecord record;
  record.kind = WalRecord::Kind::kCreateIndex;
  record.table = table;
  record.column = column;
  MOST_RETURN_IF_ERROR(Commit(record));
  Status status = t->CreateIndex(column);
  if (status.ok()) indexed_columns_[table].insert(column);
  return status;
}

Status DurableDatabase::WriteSnapshot(const std::string& tmp_path) {
  WalWriter snapshot;
  MOST_RETURN_IF_ERROR(
      snapshot.Open(tmp_path, WalWriter::Options{options_.wal_format_version}));
  Status status = Status::OK();
  for (const std::string& name : db_->TableNames()) {
    auto table = db_->GetTable(name);
    WalRecord create;
    create.kind = WalRecord::Kind::kCreateTable;
    create.table = name;
    create.schema = (*table)->schema();
    MOST_RETURN_IF_ERROR(snapshot.Append(create));
    (*table)->Scan([&](RowId rid, const Row& row) {
      if (!status.ok()) return;
      WalRecord insert;
      insert.kind = WalRecord::Kind::kInsert;
      insert.table = name;
      insert.rid = rid;
      insert.row = row;
      status = snapshot.Append(insert);
    });
    MOST_RETURN_IF_ERROR(status);
    auto indexed = indexed_columns_.find(name);
    if (indexed != indexed_columns_.end()) {
      for (const std::string& column : indexed->second) {
        WalRecord index;
        index.kind = WalRecord::Kind::kCreateIndex;
        index.table = name;
        index.column = column;
        MOST_RETURN_IF_ERROR(snapshot.Append(index));
      }
    }
  }
  if (options_.durability == Options::Durability::kSync) {
    // The snapshot must be on disk before the rename makes it the log.
    MOST_RETURN_IF_ERROR(snapshot.Sync());
  }
  return Status::OK();
}

Status DurableDatabase::Checkpoint() {
  if (!is_open()) return Status::Internal("database is not open");
  obs::TraceSpan span("storage/checkpoint");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t t0 = registry.enabled() ? obs::MonotonicNowNs() : 0;
  Status status = CheckpointImpl();
  if (status.ok()) {
    checkpoint_failures_ = 0;
    checkpoint_retry_countdown_ = 0;
    // A full snapshot reached disk and was renamed into place: the device
    // is demonstrably writable again.
    ResourceGovernor::Global().ClearStorageDegraded();
  } else {
    checkpoint_failures_ += 1;
    // Capped exponential backoff: 2, 4, 8, ... up to 64 skipped
    // MaybeRetryCheckpoint() calls between attempts.
    const size_t shift = std::min<size_t>(checkpoint_failures_, 6);
    checkpoint_retry_countdown_ = size_t{1} << shift;
    ResourceGovernor::Global().ReportStorageDegraded(
        "checkpoint failed: " + status.message());
  }
  if (registry.enabled()) {
    registry
        .GetCounter("most_checkpoints_total",
                    "Checkpoint attempts by outcome",
                    {{"outcome", status.ok() ? "ok" : "error"}})
        ->Inc();
    registry
        .GetHistogram("most_checkpoint_latency_seconds",
                      "Checkpoint wall time",
                      obs::ExponentialBuckets(1e-5, 4.0, 10))
        ->Observe(static_cast<double>(obs::MonotonicNowNs() - t0) * 1e-9);
  }
  return status;
}

Status DurableDatabase::CheckpointImpl() {
  MOST_FAILPOINT("durable/checkpoint/begin");
  const std::string tmp_path = path_ + ".checkpoint";
  Status written = WriteSnapshot(tmp_path);
  if (!written.ok()) {
    // Surface the snapshot error with the tmp file cleaned up; the live
    // log was never touched.
    std::remove(tmp_path.c_str());
    return written;
  }
  writer_.Close();
  Status renamed = FailpointRegistry::Instance().Check(
      "durable/checkpoint/rename");
  if (renamed.ok() && std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    renamed = Status::Internal("cannot replace WAL with checkpoint");
  }
  const WalWriter::Options wopts{options_.wal_format_version};
  if (!renamed.ok()) {
    // Keep the old log authoritative and the database usable.
    std::remove(tmp_path.c_str());
    Status reopened = writer_.Open(path_, wopts);
    return reopened.ok() ? renamed : reopened;
  }
  return writer_.Open(path_, wopts);
}

Status DurableDatabase::MaybeRetryCheckpoint() {
  if (checkpoint_failures_ == 0) return Status::OK();
  if (checkpoint_retry_countdown_ > 0) {
    checkpoint_retry_countdown_ -= 1;
    return Status::OK();  // Still backing off.
  }
  return Checkpoint();
}

}  // namespace most
