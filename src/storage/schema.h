#ifndef MOST_STORAGE_SCHEMA_H_
#define MOST_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace most {

/// One column of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of a column by name, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return i;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

  bool HasColumn(const std::string& name) const {
    return IndexOf(name).ok();
  }

  /// Checks that `values` is assignable to this schema (arity and types;
  /// kNull is assignable anywhere, ints are assignable to double columns).
  Status Validate(const std::vector<Value>& values) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A row. Rows are plain value vectors; interpretation requires a schema.
using Row = std::vector<Value>;

/// Identifies a row within a table for the lifetime of the table (row ids
/// are never reused).
using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = ~RowId{0};

}  // namespace most

#endif  // MOST_STORAGE_SCHEMA_H_
