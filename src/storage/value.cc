#include "storage/value.h"

#include <sstream>

namespace most {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(int_value());
    case ValueType::kDouble:
      return double_value();
    default:
      return Status::TypeError("value " + ToString() + " is not numeric");
  }
}

int Value::Compare(const Value& o) const {
  // Numeric tower: int/double compare by value.
  if (is_numeric() && o.is_numeric()) {
    double a = type() == ValueType::kInt ? static_cast<double>(int_value())
                                         : double_value();
    double b = o.type() == ValueType::kInt
                   ? static_cast<double>(o.int_value())
                   : o.double_value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != o.type()) {
    return static_cast<int>(type()) < static_cast<int>(o.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return static_cast<int>(bool_value()) - static_cast<int>(o.bool_value());
    case ValueType::kString: {
      int c = string_value().compare(o.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numeric handled above.
  }
}

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return os << "NULL";
    case ValueType::kBool:
      return os << (v.bool_value() ? "true" : "false");
    case ValueType::kInt:
      return os << v.int_value();
    case ValueType::kDouble:
      return os << v.double_value();
    case ValueType::kString:
      return os << '"' << v.string_value() << '"';
  }
  return os;
}

}  // namespace most
