#include "storage/expression.h"

#include <sstream>

namespace most {

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kCompare;
  e->cmp_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kAnd;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kOr;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kNot;
  e->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr());
  e->kind_ = Kind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

Result<Value> Expr::Eval(const Schema& schema, const Row& row) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kColumn: {
      MOST_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column_));
      return row[idx];
    }
    case Kind::kCompare: {
      MOST_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(schema, row));
      MOST_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(schema, row));
      int c = lhs.Compare(rhs);
      switch (cmp_op_) {
        case CmpOp::kEq:
          return Value(c == 0);
        case CmpOp::kNe:
          return Value(c != 0);
        case CmpOp::kLt:
          return Value(c < 0);
        case CmpOp::kLe:
          return Value(c <= 0);
        case CmpOp::kGt:
          return Value(c > 0);
        case CmpOp::kGe:
          return Value(c >= 0);
      }
      return Status::Internal("bad cmp op");
    }
    case Kind::kAnd:
    case Kind::kOr: {
      MOST_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(schema, row));
      if (lhs.type() != ValueType::kBool) {
        return Status::TypeError("AND/OR operand is not boolean");
      }
      // Short circuit.
      if (kind_ == Kind::kAnd && !lhs.bool_value()) return Value(false);
      if (kind_ == Kind::kOr && lhs.bool_value()) return Value(true);
      MOST_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(schema, row));
      if (rhs.type() != ValueType::kBool) {
        return Status::TypeError("AND/OR operand is not boolean");
      }
      return rhs;
    }
    case Kind::kNot: {
      MOST_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(schema, row));
      if (v.type() != ValueType::kBool) {
        return Status::TypeError("NOT operand is not boolean");
      }
      return Value(!v.bool_value());
    }
    case Kind::kArith: {
      MOST_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(schema, row));
      MOST_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(schema, row));
      MOST_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      MOST_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
      }
      return Status::Internal("bad arith op");
    }
  }
  return Status::Internal("bad expr kind");
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  if (kind_ == Kind::kColumn) out->insert(column_);
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kLiteral:
      if (!(literal_ == other.literal_) ||
          literal_.type() != other.literal_.type()) {
        return false;
      }
      break;
    case Kind::kColumn:
      if (column_ != other.column_) return false;
      break;
    case Kind::kCompare:
      if (cmp_op_ != other.cmp_op_) return false;
      break;
    case Kind::kArith:
      if (arith_op_ != other.arith_op_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string_view CmpOpToString(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return "=";
    case Expr::CmpOp::kNe:
      return "!=";
    case Expr::CmpOp::kLt:
      return "<";
    case Expr::CmpOp::kLe:
      return "<=";
    case Expr::CmpOp::kGt:
      return ">";
    case Expr::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(Expr::ArithOp op) {
  switch (op) {
    case Expr::ArithOp::kAdd:
      return "+";
    case Expr::ArithOp::kSub:
      return "-";
    case Expr::ArithOp::kMul:
      return "*";
    case Expr::ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kLiteral:
      os << literal_;
      break;
    case Kind::kColumn:
      os << column_;
      break;
    case Kind::kCompare:
      os << "(" << children_[0]->ToString() << " " << CmpOpToString(cmp_op_)
         << " " << children_[1]->ToString() << ")";
      break;
    case Kind::kAnd:
      os << "(" << children_[0]->ToString() << " AND "
         << children_[1]->ToString() << ")";
      break;
    case Kind::kOr:
      os << "(" << children_[0]->ToString() << " OR "
         << children_[1]->ToString() << ")";
      break;
    case Kind::kNot:
      os << "(NOT " << children_[0]->ToString() << ")";
      break;
    case Kind::kArith:
      os << "(" << children_[0]->ToString() << " "
         << ArithOpToString(arith_op_) << " " << children_[1]->ToString()
         << ")";
      break;
  }
  return os.str();
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kAnd) {
    SplitConjuncts(expr->children()[0], out);
    SplitConjuncts(expr->children()[1], out);
    return;
  }
  out->push_back(expr);
}

bool IsBoolLiteral(const ExprPtr& expr, bool value) {
  return expr != nullptr && expr->kind() == Expr::Kind::kLiteral &&
         expr->literal().type() == ValueType::kBool &&
         expr->literal().bool_value() == value;
}

ExprPtr SimplifyExpr(const ExprPtr& expr) {
  if (expr == nullptr) return expr;
  switch (expr->kind()) {
    case Expr::Kind::kAnd: {
      ExprPtr lhs = SimplifyExpr(expr->children()[0]);
      ExprPtr rhs = SimplifyExpr(expr->children()[1]);
      if (IsBoolLiteral(lhs, false) || IsBoolLiteral(rhs, false)) {
        return Expr::False();
      }
      if (IsBoolLiteral(lhs, true)) return rhs;
      if (IsBoolLiteral(rhs, true)) return lhs;
      return Expr::And(std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kOr: {
      ExprPtr lhs = SimplifyExpr(expr->children()[0]);
      ExprPtr rhs = SimplifyExpr(expr->children()[1]);
      if (IsBoolLiteral(lhs, true) || IsBoolLiteral(rhs, true)) {
        return Expr::True();
      }
      if (IsBoolLiteral(lhs, false)) return rhs;
      if (IsBoolLiteral(rhs, false)) return lhs;
      return Expr::Or(std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kNot: {
      ExprPtr inner = SimplifyExpr(expr->children()[0]);
      if (IsBoolLiteral(inner, true)) return Expr::False();
      if (IsBoolLiteral(inner, false)) return Expr::True();
      return Expr::Not(std::move(inner));
    }
    default:
      return expr;
  }
}

ExprPtr SubstituteAtom(const ExprPtr& expr, const ExprPtr& atom,
                       const ExprPtr& replacement) {
  if (expr == nullptr) return nullptr;
  if (expr->Equals(*atom)) return replacement;
  switch (expr->kind()) {
    case Expr::Kind::kAnd:
      return Expr::And(SubstituteAtom(expr->children()[0], atom, replacement),
                       SubstituteAtom(expr->children()[1], atom, replacement));
    case Expr::Kind::kOr:
      return Expr::Or(SubstituteAtom(expr->children()[0], atom, replacement),
                      SubstituteAtom(expr->children()[1], atom, replacement));
    case Expr::Kind::kNot:
      return Expr::Not(SubstituteAtom(expr->children()[0], atom, replacement));
    default:
      // Atoms (comparisons, literals, arithmetic) are replaced wholesale or
      // left alone; no recursion below boolean structure is needed for the
      // Section 5.1 rewriting.
      return expr;
  }
}

}  // namespace most
