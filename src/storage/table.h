#ifndef MOST_STORAGE_TABLE_H_
#define MOST_STORAGE_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/btree.h"
#include "storage/schema.h"

namespace most {

/// A heap-organized relation with optional secondary B+-tree indexes.
/// Row ids are assigned monotonically and never reused, so scans iterate in
/// insertion order and callers can hold RowIds across updates.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Validates the row against the schema and stores it.
  Result<RowId> Insert(Row row);

  /// Inserts with a caller-chosen row id (WAL replay / checkpoint load).
  /// Fails if the id is taken; future Insert() ids continue after it.
  Status RestoreRow(RowId rid, Row row);

  Status Delete(RowId rid);

  /// Replaces the whole row (indexes are maintained).
  Status Update(RowId rid, Row row);

  /// Replaces one column value.
  Status UpdateColumn(RowId rid, size_t column, Value value);

  /// The stored row, or nullptr if the id is absent.
  const Row* Get(RowId rid) const;

  /// Visits all rows in RowId (insertion) order.
  void Scan(const std::function<void(RowId, const Row&)>& fn) const;

  /// Builds a secondary index over `column_name`, indexing existing rows.
  Status CreateIndex(const std::string& column_name);

  /// The index over `column_name`, or nullptr.
  const BPlusTree* GetIndex(const std::string& column_name) const;

 private:
  struct SecondaryIndex {
    size_t column = 0;
    std::unique_ptr<BPlusTree> tree;
  };

  void IndexInsert(RowId rid, const Row& row);
  void IndexErase(RowId rid, const Row& row);

  std::string name_;
  Schema schema_;
  std::map<RowId, Row> rows_;
  RowId next_rid_ = 0;
  std::map<std::string, SecondaryIndex> indexes_;
};

}  // namespace most

#endif  // MOST_STORAGE_TABLE_H_
