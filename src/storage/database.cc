#include "storage/database.h"

#include <algorithm>

namespace most {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

namespace {

/// An index-usable comparison: `column op literal` (or mirrored) where the
/// column has a B+-tree. Yields the key range to scan.
struct IndexRange {
  const BPlusTree* tree = nullptr;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;
};

bool MatchIndexableConjunct(const Table& table, const ExprPtr& conjunct,
                            IndexRange* out) {
  if (conjunct->kind() != Expr::Kind::kCompare) return false;
  const ExprPtr& lhs = conjunct->children()[0];
  const ExprPtr& rhs = conjunct->children()[1];
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool mirrored = false;
  if (lhs->kind() == Expr::Kind::kColumn &&
      rhs->kind() == Expr::Kind::kLiteral) {
    col = lhs.get();
    lit = rhs.get();
  } else if (rhs->kind() == Expr::Kind::kColumn &&
             lhs->kind() == Expr::Kind::kLiteral) {
    col = rhs.get();
    lit = lhs.get();
    mirrored = true;
  } else {
    return false;
  }
  const BPlusTree* tree = table.GetIndex(col->column());
  if (tree == nullptr) return false;

  Expr::CmpOp op = conjunct->cmp_op();
  if (mirrored) {
    // lit op col  ==  col op' lit with the inequality flipped.
    switch (op) {
      case Expr::CmpOp::kLt:
        op = Expr::CmpOp::kGt;
        break;
      case Expr::CmpOp::kLe:
        op = Expr::CmpOp::kGe;
        break;
      case Expr::CmpOp::kGt:
        op = Expr::CmpOp::kLt;
        break;
      case Expr::CmpOp::kGe:
        op = Expr::CmpOp::kLe;
        break;
      default:
        break;
    }
  }
  out->tree = tree;
  const Value& v = lit->literal();
  switch (op) {
    case Expr::CmpOp::kEq:
      out->lo = v;
      out->hi = v;
      break;
    case Expr::CmpOp::kLt:
      out->hi = v;
      out->hi_inclusive = false;
      break;
    case Expr::CmpOp::kLe:
      out->hi = v;
      break;
    case Expr::CmpOp::kGt:
      out->lo = v;
      out->lo_inclusive = false;
      break;
    case Expr::CmpOp::kGe:
      out->lo = v;
      break;
    case Expr::CmpOp::kNe:
      return false;  // Not a contiguous range.
  }
  return true;
}

}  // namespace

Result<ResultSet> Database::ExecuteSelect(const SelectQuery& query,
                                          QueryStats* stats) const {
  MOST_ASSIGN_OR_RETURN(const Table* table, GetTable(query.table));
  const Schema& schema = table->schema();

  // Output schema / projection map.
  std::vector<size_t> projection;
  ResultSet result;
  if (query.project.empty()) {
    result.schema = schema;
    for (size_t i = 0; i < schema.num_columns(); ++i) projection.push_back(i);
  } else {
    std::vector<Column> cols;
    for (const std::string& name : query.project) {
      MOST_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
      projection.push_back(idx);
      cols.push_back(schema.column(idx));
    }
    result.schema = Schema(std::move(cols));
  }

  QueryStats local_stats;
  QueryStats* st = stats != nullptr ? stats : &local_stats;
  st->queries_executed += 1;

  Status row_error;  // First evaluation error, if any.
  auto emit = [&](RowId rid, const Row& row) {
    if (!row_error.ok()) return;
    st->rows_examined += 1;
    if (query.where != nullptr) {
      Result<Value> v = query.where->Eval(schema, row);
      if (!v.ok()) {
        row_error = v.status();
        return;
      }
      if (v->type() != ValueType::kBool) {
        row_error = Status::TypeError("WHERE clause is not boolean");
        return;
      }
      if (!v->bool_value()) return;
    }
    Row projected;
    projected.reserve(projection.size());
    for (size_t idx : projection) projected.push_back(row[idx]);
    result.rows.push_back(std::move(projected));
    result.row_ids.push_back(rid);
  };

  // Planner: use an index when some top-level conjunct allows it.
  IndexRange range;
  bool indexed = false;
  if (query.where != nullptr) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(query.where, &conjuncts);
    for (const ExprPtr& c : conjuncts) {
      if (MatchIndexableConjunct(*table, c, &range)) {
        indexed = true;
        break;
      }
    }
  }
  if (indexed) {
    st->used_index = true;
    // The full WHERE clause is re-applied to each candidate, so using the
    // index only prunes, never changes, the result.
    range.tree->ScanRange(range.lo, range.lo_inclusive, range.hi,
                          range.hi_inclusive,
                          [&](const Value&, RowId rid) {
                            const Row* row = table->Get(rid);
                            if (row != nullptr) emit(rid, *row);
                          });
  } else {
    table->Scan([&](RowId rid, const Row& row) { emit(rid, row); });
  }
  MOST_RETURN_IF_ERROR(row_error);
  return result;
}

}  // namespace most
