#include "storage/table.h"

namespace most {

Result<RowId> Table::Insert(Row row) {
  MOST_RETURN_IF_ERROR(schema_.Validate(row));
  RowId rid = next_rid_++;
  IndexInsert(rid, row);
  rows_.emplace(rid, std::move(row));
  return rid;
}

Status Table::RestoreRow(RowId rid, Row row) {
  MOST_RETURN_IF_ERROR(schema_.Validate(row));
  if (rows_.count(rid) > 0) {
    return Status::AlreadyExists("row " + std::to_string(rid));
  }
  next_rid_ = std::max(next_rid_, rid + 1);
  IndexInsert(rid, row);
  rows_.emplace(rid, std::move(row));
  return Status::OK();
}

Status Table::Delete(RowId rid) {
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in " + name_);
  }
  IndexErase(rid, it->second);
  rows_.erase(it);
  return Status::OK();
}

Status Table::Update(RowId rid, Row row) {
  MOST_RETURN_IF_ERROR(schema_.Validate(row));
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in " + name_);
  }
  IndexErase(rid, it->second);
  it->second = std::move(row);
  IndexInsert(rid, it->second);
  return Status::OK();
}

Status Table::UpdateColumn(RowId rid, size_t column, Value value) {
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("row " + std::to_string(rid) + " in " + name_);
  }
  if (column >= schema_.num_columns()) {
    return Status::OutOfRange("column index " + std::to_string(column));
  }
  Row updated = it->second;
  updated[column] = std::move(value);
  MOST_RETURN_IF_ERROR(schema_.Validate(updated));
  IndexErase(rid, it->second);
  it->second = std::move(updated);
  IndexInsert(rid, it->second);
  return Status::OK();
}

const Row* Table::Get(RowId rid) const {
  auto it = rows_.find(rid);
  return it == rows_.end() ? nullptr : &it->second;
}

void Table::Scan(const std::function<void(RowId, const Row&)>& fn) const {
  for (const auto& [rid, row] : rows_) {
    fn(rid, row);
  }
}

Status Table::CreateIndex(const std::string& column_name) {
  if (indexes_.count(column_name) > 0) {
    return Status::AlreadyExists("index on " + name_ + "." + column_name);
  }
  MOST_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column_name));
  SecondaryIndex index;
  index.column = col;
  index.tree = std::make_unique<BPlusTree>();
  for (const auto& [rid, row] : rows_) {
    index.tree->Insert(row[col], rid);
  }
  indexes_.emplace(column_name, std::move(index));
  return Status::OK();
}

const BPlusTree* Table::GetIndex(const std::string& column_name) const {
  auto it = indexes_.find(column_name);
  return it == indexes_.end() ? nullptr : it->second.tree.get();
}

void Table::IndexInsert(RowId rid, const Row& row) {
  for (auto& [name, index] : indexes_) {
    index.tree->Insert(row[index.column], rid);
  }
}

void Table::IndexErase(RowId rid, const Row& row) {
  for (auto& [name, index] : indexes_) {
    index.tree->Erase(row[index.column], rid);
  }
}

}  // namespace most
