#ifndef MOST_STORAGE_BTREE_H_
#define MOST_STORAGE_BTREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace most {

/// In-memory B+-tree mapping Value keys to row ids. Non-unique: entries are
/// (key, rid) composites, so duplicates of a key are adjacent and
/// individually erasable. This is the secondary-index structure the host
/// DBMS offers for *static* attributes; Section 4's trajectory index for
/// dynamic attributes is a separate structure (src/index).
class BPlusTree {
 public:
  /// Entries per node before splitting. Exposed for tests that want to
  /// force deep trees.
  static constexpr size_t kDefaultFanout = 64;

  explicit BPlusTree(size_t fanout = kDefaultFanout);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  void Insert(const Value& key, RowId rid);

  /// Removes one (key, rid) entry; returns false if absent.
  bool Erase(const Value& key, RowId rid);

  /// All row ids with exactly this key, in rid order.
  std::vector<RowId> Lookup(const Value& key) const;

  /// Scans keys in [lo, hi] (either bound may be absent = unbounded;
  /// inclusivity per flag). Visits entries in key order.
  void ScanRange(const std::optional<Value>& lo, bool lo_inclusive,
                 const std::optional<Value>& hi, bool hi_inclusive,
                 const std::function<void(const Value&, RowId)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Validates structural invariants (sortedness, fill factors, leaf chain
  /// consistency); used by tests. Returns Internal status on violation.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Value key;
    RowId rid;
  };

  static int CompareEntry(const Entry& a, const Entry& b);

  std::unique_ptr<Node> root_;
  size_t fanout_;
  size_t size_ = 0;
};

}  // namespace most

#endif  // MOST_STORAGE_BTREE_H_
