#ifndef MOST_FTL_LEXER_H_
#define MOST_FTL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace most {

enum class TokenKind {
  kEnd,
  kIdent,      ///< Identifier or keyword (keywords are matched by text).
  kNumber,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kAssignOp,   ///< :=
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< Identifier / keyword spelling or string body.
  double number = 0.0;   ///< For kNumber.
  size_t offset = 0;     ///< Byte offset in the source, for error messages.

  /// Case-insensitive keyword test.
  bool IsKeyword(std::string_view keyword) const;
};

/// Tokenizes an FTL query string. Fails with ParseError on malformed input
/// (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace most

#endif  // MOST_FTL_LEXER_H_
