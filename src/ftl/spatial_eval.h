#ifndef MOST_FTL_SPATIAL_EVAL_H_
#define MOST_FTL_SPATIAL_EVAL_H_

#include <functional>
#include <vector>

#include "common/interval.h"
#include "common/thread_pool.h"
#include "core/class_snapshot.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "geometry/kinematics.h"

namespace most {

/// Reusable per-thread scratch for the SoA extraction kernels: solver
/// event times, continuous solution intervals, and accumulated tick
/// intervals. Lives outside the kernels so steady-state extraction makes
/// no heap allocations beyond each object's final IntervalSet.
struct SpatialScratch {
  std::vector<double> events;
  std::vector<RealInterval> reals;
  std::vector<Interval> ticks;
};

/// Ticks in `window` at which the (possibly moving) object is inside the
/// polygon. Solved exactly per jointly-linear motion segment.
IntervalSet InsideTicks(const MostObject& obj, const Polygon& polygon,
                        Interval window);

/// Anchored variant: the polygon's coordinates are relative to the
/// anchor's position, i.e. the region moves as a rigid body with the
/// anchor (the paper's moving circle C). Solved exactly on the relative
/// motion obj(t) - anchor(t).
IntervalSet InsideTicksRelative(const MostObject& obj,
                                const MostObject& anchor,
                                const Polygon& polygon, Interval window);

/// Batch inside-extraction partitioned across `pool` (serial when pool is
/// null or has one worker): slot i of the result is InsideTicks(*objs[i])
/// — or InsideTicksRelative(*objs[i], *anchors[i]) when `anchors` is
/// non-empty (it must then be parallel to objs). Objects are independent,
/// every slot is produced by the same serial solver, and slot order is
/// fixed by the input, so the result is identical at any thread count.
std::vector<IntervalSet> InsideTicksBatch(
    const std::vector<const MostObject*>& objs,
    const std::vector<const MostObject*>& anchors, const Polygon& polygon,
    Interval window, ThreadPool* pool);

/// Ticks at which DIST(a, b) `op` bound holds. Exact: per pair of aligned
/// motion segments the distance is the square root of a quadratic in t.
IntervalSet DistCmpTicks(const MostObject& a, const MostObject& b,
                         FtlFormula::CmpOp op, double bound, Interval window);

/// SoA counterpart of InsideTicks: solves object `oi` of the snapshot
/// straight from the contiguous coefficient arrays, reusing `scratch`.
/// Produces the same tick set as InsideTicks (bit-equal solver inputs,
/// identical rounding), hence a byte-identical normalized IntervalSet.
IntervalSet SnapshotInsideTicks(const ClassSnapshot& snap, size_t oi,
                                const Polygon& polygon, Interval window,
                                SpatialScratch* scratch);

/// SoA counterpart of DistCmpTicks for objects `ai` of `a_snap` and `bi`
/// of `b_snap`. Unlike the legacy solver it computes only the side(s) of
/// the comparison the operator needs. Byte-identical result for the same
/// reason as SnapshotInsideTicks.
IntervalSet SnapshotDistCmpTicks(const ClassSnapshot& a_snap, size_t ai,
                                 const ClassSnapshot& b_snap, size_t bi,
                                 FtlFormula::CmpOp op, double bound,
                                 Interval window, SpatialScratch* scratch);

/// Aligns the motion segments of several objects on their common tick
/// ranges and calls fn(common_ticks, movers) for each elementary range on
/// which every object's motion is linear. The workhorse behind every
/// multi-object kinematic solver here.
void ForEachAlignedSegment(
    const std::vector<const MostObject*>& objects, Interval window,
    const std::function<void(Interval, const std::vector<MovingPoint2>&)>&
        fn);

/// Ticks at which all objects fit in a circle of radius r (the paper's
/// WITHIN-A-SPHERE relation, planar case).
IntervalSet SphereTicks(const std::vector<const MostObject*>& objects,
                        double radius, Interval window);

}  // namespace most

#endif  // MOST_FTL_SPATIAL_EVAL_H_
