#ifndef MOST_FTL_EVAL_H_
#define MOST_FTL_EVAL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/budget.h"
#include "common/interval.h"
#include "common/result.h"
#include "core/class_snapshot.h"
#include "core/motion_index_manager.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "obs/profile.h"

namespace most {

class ThreadPool;
class IntervalCache;

/// The relation R_g the appendix associates with a subformula g: one row
/// per instantiation of g's free object variables, carrying the set of
/// ticks at which g is satisfied under that instantiation. Rows with empty
/// tick sets are not stored. The interval sets are normalized (sorted,
/// non-overlapping, non-consecutive), exactly the appendix's invariant.
struct TemporalRelation {
  std::vector<std::string> vars;  ///< Sorted variable names (columns).
  std::map<std::vector<ObjectId>, IntervalSet> rows;

  /// Projects onto a subset of columns, unioning tick sets of rows that
  /// collapse together.
  TemporalRelation Project(const std::vector<std::string>& keep) const;

  std::string ToString() const;
};

/// Counters exposed for the benchmarks (experiments E4/E5).
struct FtlEvalStats {
  size_t atomic_evaluations = 0;  ///< Atomic predicate solves.
  size_t instantiations = 0;      ///< Object tuples enumerated.
  size_t join_pairs = 0;          ///< Row pairs examined by joins.
  size_t assign_subevals = 0;     ///< Body evaluations for [x := q].
  size_t index_pruned = 0;        ///< Objects skipped thanks to an index.
  size_t cache_hits = 0;          ///< Atomic solves answered by the cache.
  size_t cache_misses = 0;        ///< Atomic solves that had to run.
  size_t arena_bytes = 0;         ///< Bump-arena bytes drawn by evaluations.
  size_t arena_heap_fallbacks = 0;  ///< Oversize arena requests sent to heap.
};

/// Memory layout of the atomic-extraction hot path.
enum class EvalLayout {
  /// Resolve from the MOST_EVAL_LAYOUT environment variable ("legacy" or
  /// "soa"); unset or unrecognized means kSoa.
  kAuto,
  /// Per-object solves walking MostObject/DynamicAttribute maps — the
  /// original pointer-chasing path, kept as the differential oracle.
  kLegacy,
  /// Structure-of-arrays class snapshots: motion coefficients gathered
  /// once per evaluation into contiguous arrays (docs/eval_internals.md).
  /// Answers are byte-identical to kLegacy.
  kSoa,
};

/// Evaluates FTL formulas over the implicit future history of a MOST
/// database, per the paper's appendix: bottom-up computation of interval
/// relations with interval-intersection joins (AND), maximal-chain merges
/// (UNTIL), and substitution joins (assignment quantifier).
///
/// The evaluation window is the finite prefix [window.begin, window.end]
/// of the infinite future history (the paper: "a continuous query expires
/// after a predefined (but very large) amount of time"). Temporal
/// operators treat window.end as the end of history.
class FtlEvaluator {
 public:
  struct Options {
    /// Negation is outside the paper's conjunctive subset; when allowed it
    /// is evaluated by complementation over the full variable domain.
    bool allow_negation = true;
    /// Safety valve on domain enumeration (cross products).
    size_t max_instantiations = 4u << 20;
    /// AND evaluates its cheaper side first and restricts the other
    /// side's variable domains to joinable bindings (a semi-join).
    bool enable_semijoin = true;
    /// Optional Section 4 motion indexes: INSIDE atoms over indexed
    /// classes examine only the index's candidates instead of every
    /// object (the paper's combination of the index with the FTL
    /// algorithm). Not owned; may be null.
    const MotionIndexManager* motion_indexes = nullptr;
    /// Optional thread pool for atomic-predicate extraction: objects are
    /// independent until the join stages, so INSIDE / DIST / attribute
    /// range atoms are partitioned across the pool's workers and merged
    /// back in deterministic binding order. Null (or a 1-worker pool) is
    /// the exact legacy serial path; any thread count produces
    /// byte-identical relations (see docs/parallel_eval.md). Not owned.
    ThreadPool* pool = nullptr;
    /// Optional cache of atomic-predicate interval sets, keyed by
    /// (predicate fingerprint, window, object ids) and invalidated per
    /// object through the database's update listeners. Shared safely by
    /// concurrent evaluators. Not owned; may be null.
    IntervalCache* interval_cache = nullptr;
    /// Restricts the listed object variables to the given candidate ids
    /// for the whole evaluation: the result is exactly the unrestricted
    /// relation filtered to rows whose binding for each listed variable
    /// lies in its set (FTL relations are pointwise in their bindings —
    /// a row's tick set depends only on the bound objects' states — so
    /// the restriction commutes with every connective). This is the
    /// engine of the query manager's delta re-evaluation: one pass per
    /// FROM position with that variable pinned to the updated objects
    /// (docs/incremental_eval.md). Variables absent from the map are
    /// unrestricted.
    std::map<std::string, std::shared_ptr<const std::set<ObjectId>>>
        domain_restrictions;
    /// Optional profiling sink: when set, every evaluated subformula
    /// appends one child node (mirroring the formula tree — the appendix
    /// computes one interval relation R_g per subformula g) annotated with
    /// its wall time, result cardinalities and counter deltas. Null = no
    /// profiling, no clock reads. Not owned; must outlive the evaluation.
    obs::ProfileNode* profile = nullptr;
    /// Hot-path memory layout (see EvalLayout). Every layout produces
    /// byte-identical relations; kLegacy exists as the differential oracle
    /// and escape hatch.
    EvalLayout layout = EvalLayout::kAuto;
    /// Per-evaluation resource budget. The default (all zero) imposes
    /// nothing. When any field is set, the evaluator checks it at coarse
    /// safe points (per subformula, per snapshot build, per join) and
    /// aborts with Status::ResourceExhausted the moment one trips; the
    /// caller (the query manager) degrades to a stale answer instead of
    /// failing the query. Aborting — rather than truncating the relation
    /// mid-build — is what keeps budgeted evaluation sound: a truncated
    /// intermediate under NOT would over-approximate (docs/robustness.md).
    Budget budget;
  };

  explicit FtlEvaluator(const MostDatabase& db) : FtlEvaluator(db, Options()) {}
  FtlEvaluator(const MostDatabase& db, Options options)
      : db_(db), options_(options), layout_soa_(ResolveLayoutSoa(options_)) {}

  /// Evaluates a full query over the window, returning the Answer relation
  /// projected onto the RETRIEVE variables.
  Result<TemporalRelation> EvaluateQuery(const FtlQuery& query,
                                         Interval window);

  /// Same evaluation, but without the final projection: one column per
  /// variable of the WHERE formula plus every RETRIEVE variable. Because
  /// the unprojected relation is pointwise in its bindings, it is the
  /// representation the query manager's delta splice maintains (projection
  /// aggregates over dropped variables and would not be spliceable).
  Result<TemporalRelation> EvaluateQueryUnprojected(const FtlQuery& query,
                                                    Interval window);

  /// Evaluates a formula whose object variables are bound to classes by
  /// `var_classes`. Exposed for tests and for the query manager.
  Result<TemporalRelation> EvalFormula(
      const FormulaPtr& formula,
      const std::map<std::string, std::string>& var_classes, Interval window);

  const FtlEvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FtlEvalStats(); }

  /// Which budget limit aborted the last evaluation (kNone if it ran to
  /// completion). Valid after EvaluateQuery*/EvalFormula returns.
  DegradeReason degrade_reason() const { return gate_.tripped(); }

 private:
  struct Domains;  // Resolved per-variable object class extents.

  static bool ResolveLayoutSoa(const Options& options);

  Result<TemporalRelation> EvaluateQueryUnprojectedImpl(const FtlQuery& query,
                                                        Interval window);
  /// Profiling wrapper: records one ProfileNode per subformula (when
  /// Options::profile is set), then dispatches to EvalNode.
  Result<TemporalRelation> Eval(const FormulaPtr& f, const Domains& domains,
                                Interval window);
  Result<TemporalRelation> EvalNode(const FormulaPtr& f,
                                    const Domains& domains, Interval window);
  Result<TemporalRelation> EvalCompare(const FtlFormula& f,
                                       const Domains& domains,
                                       Interval window);
  Result<TemporalRelation> EvalAssign(const FtlFormula& f,
                                      const Domains& domains,
                                      Interval window);

  /// SoA fast paths. Both replicate the legacy path's counting, caching,
  /// error and result semantics exactly; they differ only in where the
  /// motion coefficients are read from and how scratch memory is managed.
  Result<TemporalRelation> EvalInsideSoA(const FtlFormula& f,
                                         const Domains& domains,
                                         Interval window,
                                         const std::string& fp,
                                         bool is_inside, bool self_anchored,
                                         const ObjectClass* cls,
                                         const Polygon& region);
  Result<TemporalRelation> EvalDistSoA(const FtlFormula& f,
                                       const Domains& domains, Interval window,
                                       const std::string& fp,
                                       const FtlTerm* dist,
                                       const TermPtr& other,
                                       FtlFormula::CmpOp op,
                                       const std::vector<std::string>& vars);

  /// The per-class SoA snapshot for this evaluation, built on first use.
  /// Snapshots and every other per-evaluation scratch structure live in
  /// arena_; ResetEvalScratch() drops them wholesale at the start of each
  /// top-level evaluation (nothing arena-allocated escapes an evaluation —
  /// docs/eval_internals.md).
  const ClassSnapshot& GetSnapshot(const ObjectClass* cls, Interval window);
  void ResetEvalScratch();
  /// Cooperative budget checkpoint: OK while within Options::budget,
  /// Status::ResourceExhausted once a limit trips. `rows_hint` is the
  /// cardinality of whatever relation the caller just materialized (0
  /// when the checkpoint guards time/memory only). A single branch when
  /// no budget is armed.
  Status BudgetCheckpoint(size_t rows_hint);
  /// Folds the arena's per-cycle stats into stats_ (called once per
  /// top-level evaluation, after the result is produced).
  void AccumulateArenaStats();

  const MostDatabase& db_;
  Options options_;
  FtlEvalStats stats_;
  const bool layout_soa_;
  BudgetGate gate_;
  BumpArena arena_;
  std::map<const ObjectClass*, ClassSnapshot> snapshots_;
  /// Parent node the next Eval() attaches its child to; null = profiling
  /// off. Only mutated by the single thread driving the recursion (pool
  /// workers never call Eval).
  obs::ProfileNode* profile_current_ = nullptr;
};

}  // namespace most

#endif  // MOST_FTL_EVAL_H_
