#include "ftl/interval_cache.h"

#include <algorithm>
#include <mutex>

namespace most {

IntervalCache::IntervalCache(size_t max_entries, size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {
  auto& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_interval_cache_hits_total",
                      "Interval cache lookups that hit", {}, &hits_),
      r.AttachCounter("most_interval_cache_misses_total",
                      "Interval cache lookups that missed", {}, &misses_),
      r.AttachCounter("most_interval_cache_invalidations_total",
                      "Cache entries dropped by object updates or window "
                      "eviction",
                      {}, &invalidations_),
      r.AttachCounter("most_interval_cache_evictions_total",
                      "Cache entries dropped by the LRU byte budget", {},
                      &evictions_),
      r.AttachGauge("most_interval_cache_entries", "Live cache entries", {},
                    &entries_gauge_),
      r.AttachGauge("most_interval_cache_bytes",
                    "Approximate resident bytes of the interval cache", {},
                    &bytes_gauge_),
  };
}

IntervalCache::~IntervalCache() {
  Detach();
  auto& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

void IntervalCache::AttachTo(MostDatabase* db) {
  Detach();
  attached_db_ = db;
  listener_id_ = db->AddUpdateListener(
      [this](const std::string& /*class_name*/, ObjectId id) {
        Invalidate(id);
      });
}

void IntervalCache::Detach() {
  if (attached_db_ != nullptr) {
    attached_db_->RemoveUpdateListener(listener_id_);
    attached_db_ = nullptr;
    listener_id_ = 0;
  }
}

size_t IntervalCache::EntryBytes(const Key& key, const IntervalSet& when) {
  // Fixed overhead covers the two hash-table nodes (entries_ plus the
  // reverse-index slot) and the small-vector headers; the variable part is
  // what actually grows with workload size.
  constexpr size_t kEntryOverhead = 96;
  return kEntryOverhead + key.fingerprint.size() +
         key.objs.size() * sizeof(ObjectId) +
         when.intervals().size() * sizeof(Interval);
}

bool IntervalCache::Lookup(const std::string& fingerprint,
                           const std::vector<ObjectId>& objs,
                           IntervalSet* out) const {
  if (max_bytes_ == 0) {
    // No byte budget: the legacy shared-lock fast path. No LRU bookkeeping
    // means concurrent extraction workers never serialize on probes.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(Key{fingerprint, objs});
    if (it == entries_.end()) {
      misses_.Inc();
      return false;
    }
    hits_.Inc();
    *out = it->second.when;
    return true;
  }
  // Byte-budgeted: exclusive lock so the hit can refresh LRU recency.
  IntervalCache* self = const_cast<IntervalCache*>(this);
  std::unique_lock<std::shared_mutex> lock(self->mu_);
  auto it = self->entries_.find(Key{fingerprint, objs});
  if (it == self->entries_.end()) {
    misses_.Inc();
    return false;
  }
  hits_.Inc();
  it->second.last_used = ++self->lru_clock_;
  *out = it->second.when;
  return true;
}

void IntervalCache::Insert(const std::string& fingerprint,
                           const std::vector<ObjectId>& objs,
                           const IntervalSet& when) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.size() >= max_entries_) {
    entries_.clear();
    by_object_.clear();
    approx_bytes_ = 0;
  }
  Key key{fingerprint, objs};
  size_t bytes = EntryBytes(key, when);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    approx_bytes_ -= it->second.bytes;
    it->second = Entry{when, bytes, ++lru_clock_};
  } else {
    entries_.emplace(key, Entry{when, bytes, ++lru_clock_});
    for (ObjectId id : objs) by_object_[id].push_back(key);
  }
  approx_bytes_ += bytes;
  if (max_bytes_ > 0 && approx_bytes_ > max_bytes_) EvictOverBudgetLocked();
  UpdateGaugesLocked();
}

void IntervalCache::EraseEntryLocked(
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  approx_bytes_ -= it->second.bytes;
  for (ObjectId id : it->first.objs) {
    auto oit = by_object_.find(id);
    if (oit == by_object_.end()) continue;
    auto& keys = oit->second;
    keys.erase(std::remove(keys.begin(), keys.end(), it->first), keys.end());
    if (keys.empty()) by_object_.erase(oit);
  }
  entries_.erase(it);
}

void IntervalCache::EvictOverBudgetLocked() {
  // Evict to 3/4 of the budget so a steady insert stream doesn't evict on
  // every call; oldest recency first.
  const size_t target = max_bytes_ - max_bytes_ / 4;
  std::vector<std::pair<uint64_t, const Key*>> order;
  order.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    order.emplace_back(entry.last_used, &key);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t evicted = 0;
  for (const auto& [lru, key] : order) {
    if (approx_bytes_ <= target) break;
    auto it = entries_.find(*key);
    if (it == entries_.end()) continue;
    EraseEntryLocked(it);
    ++evicted;
  }
  if (evicted > 0) evictions_.Inc(evicted);
}

void IntervalCache::UpdateGaugesLocked() {
  entries_gauge_.Set(static_cast<int64_t>(entries_.size()));
  bytes_gauge_.Set(static_cast<int64_t>(approx_bytes_));
}

void IntervalCache::Invalidate(ObjectId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_object_.find(id);
  if (it == by_object_.end()) return;
  // Detach the key list first: EraseEntryLocked edits by_object_ and would
  // otherwise invalidate the list being walked.
  std::vector<Key> keys = std::move(it->second);
  by_object_.erase(it);
  for (const Key& key : keys) {
    auto eit = entries_.find(key);
    if (eit == entries_.end()) continue;
    EraseEntryLocked(eit);
    invalidations_.Inc();
  }
  UpdateGaugesLocked();
}

size_t IntervalCache::EvictWindowsEndingBefore(Tick t) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t before = entries_.size();
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::string& fp = it->first.fingerprint;
    size_t at = fp.rfind('@');
    size_t comma = fp.rfind(',');
    bool expired = false;
    if (at != std::string::npos && comma != std::string::npos && comma > at) {
      char* end = nullptr;
      long long window_end = std::strtoll(fp.c_str() + comma + 1, &end, 10);
      expired = end != fp.c_str() + comma + 1 &&
                window_end < static_cast<long long>(t);
    }
    if (expired) {
      approx_bytes_ -= it->second.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  size_t dropped = before - entries_.size();
  if (dropped > 0) {
    invalidations_.Inc(dropped);
    // Rebuild the reverse index so it does not accumulate keys for
    // evicted windows forever.
    by_object_.clear();
    for (const auto& [key, entry] : entries_) {
      for (ObjectId id : key.objs) by_object_[id].push_back(key);
    }
    UpdateGaugesLocked();
  }
  return dropped;
}

void IntervalCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
  by_object_.clear();
  approx_bytes_ = 0;
  UpdateGaugesLocked();
}

size_t IntervalCache::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return approx_bytes_;
}

IntervalCache::Stats IntervalCache::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.invalidations = invalidations_.value();
  s.evictions = evictions_.value();
  s.entries = entries_.size();
  s.approx_bytes = approx_bytes_;
  return s;
}

}  // namespace most
