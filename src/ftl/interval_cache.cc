#include "ftl/interval_cache.h"

#include <mutex>

namespace most {

IntervalCache::IntervalCache(size_t max_entries) : max_entries_(max_entries) {
  auto& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_interval_cache_hits_total",
                      "Interval cache lookups that hit", {}, &hits_),
      r.AttachCounter("most_interval_cache_misses_total",
                      "Interval cache lookups that missed", {}, &misses_),
      r.AttachCounter("most_interval_cache_invalidations_total",
                      "Cache entries dropped by object updates or window "
                      "eviction",
                      {}, &invalidations_),
      r.AttachGauge("most_interval_cache_entries", "Live cache entries", {},
                    &entries_gauge_),
  };
}

IntervalCache::~IntervalCache() {
  Detach();
  auto& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

void IntervalCache::AttachTo(MostDatabase* db) {
  Detach();
  attached_db_ = db;
  listener_id_ = db->AddUpdateListener(
      [this](const std::string& /*class_name*/, ObjectId id) {
        Invalidate(id);
      });
}

void IntervalCache::Detach() {
  if (attached_db_ != nullptr) {
    attached_db_->RemoveUpdateListener(listener_id_);
    attached_db_ = nullptr;
    listener_id_ = 0;
  }
}

bool IntervalCache::Lookup(const std::string& fingerprint,
                           const std::vector<ObjectId>& objs,
                           IntervalSet* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key{fingerprint, objs});
  if (it == entries_.end()) {
    misses_.Inc();
    return false;
  }
  hits_.Inc();
  *out = it->second;
  return true;
}

void IntervalCache::Insert(const std::string& fingerprint,
                           const std::vector<ObjectId>& objs,
                           const IntervalSet& when) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.size() >= max_entries_) {
    entries_.clear();
    by_object_.clear();
  }
  Key key{fingerprint, objs};
  auto [it, inserted] = entries_.insert_or_assign(key, when);
  if (inserted) {
    for (ObjectId id : objs) by_object_[id].push_back(key);
  }
  entries_gauge_.Set(static_cast<int64_t>(entries_.size()));
}

void IntervalCache::Invalidate(ObjectId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_object_.find(id);
  if (it == by_object_.end()) return;
  for (const Key& key : it->second) {
    invalidations_.Inc(entries_.erase(key));
  }
  by_object_.erase(it);
  entries_gauge_.Set(static_cast<int64_t>(entries_.size()));
}

size_t IntervalCache::EvictWindowsEndingBefore(Tick t) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t before = entries_.size();
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::string& fp = it->first.fingerprint;
    size_t at = fp.rfind('@');
    size_t comma = fp.rfind(',');
    bool expired = false;
    if (at != std::string::npos && comma != std::string::npos && comma > at) {
      char* end = nullptr;
      long long window_end = std::strtoll(fp.c_str() + comma + 1, &end, 10);
      expired = end != fp.c_str() + comma + 1 &&
                window_end < static_cast<long long>(t);
    }
    it = expired ? entries_.erase(it) : std::next(it);
  }
  size_t dropped = before - entries_.size();
  if (dropped > 0) {
    invalidations_.Inc(dropped);
    entries_gauge_.Set(static_cast<int64_t>(entries_.size()));
    // Rebuild the reverse index so it does not accumulate keys for
    // evicted windows forever.
    by_object_.clear();
    for (const auto& [key, when] : entries_) {
      for (ObjectId id : key.objs) by_object_[id].push_back(key);
    }
  }
  return dropped;
}

void IntervalCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
  by_object_.clear();
  entries_gauge_.Set(0);
}

IntervalCache::Stats IntervalCache::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.invalidations = invalidations_.value();
  s.entries = entries_.size();
  return s;
}

}  // namespace most
