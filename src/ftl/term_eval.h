#ifndef MOST_FTL_TERM_EVAL_H_
#define MOST_FTL_TERM_EVAL_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "ftl/plf.h"

namespace most {

/// An instantiation of object variables to concrete objects.
using Instantiation = std::map<std::string, const MostObject*>;

/// True if the term's value cannot change between database states without
/// an explicit update: literals, static attributes, and the value /
/// updatetime sub-attributes of dynamic attributes. (The current value of
/// a dynamic attribute and `time` are NOT time-invariant.)
bool IsTimeInvariant(const TermPtr& term);

/// True if the term (or any subterm) is a DIST(o1, o2) application, whose
/// value is not piecewise linear in time.
bool ContainsDist(const TermPtr& term);

/// Evaluates the term at one tick. Works for every term kind, including
/// DIST; value variables must have been substituted away.
Result<Value> EvalTermAt(const TermPtr& term, const Instantiation& inst,
                         Tick t);

/// Builds the term's value as a piecewise-linear function of time over
/// `window`. Fails for non-numeric terms, unbound value variables, DIST
/// (not linear), and nonlinear arithmetic (product of two varying terms).
Result<Plf> BuildTermPlf(const TermPtr& term, const Instantiation& inst,
                         Interval window);

}  // namespace most

#endif  // MOST_FTL_TERM_EVAL_H_
