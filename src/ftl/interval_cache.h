#ifndef MOST_FTL_INTERVAL_CACHE_H_
#define MOST_FTL_INTERVAL_CACHE_H_

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "core/object_model.h"
#include "obs/metrics.h"

namespace most {

/// Cache of atomic-predicate interval extractions.
///
/// The appendix's bottom-up algorithm spends almost all of its time turning
/// atomic predicates (INSIDE, DIST comparisons, attribute ranges) into
/// per-object interval sets. Those sets depend only on (a) the predicate —
/// including the evaluation window, which callers fold into the fingerprint
/// string — and (b) the motion/attribute state of the objects bound by the
/// predicate. Between explicit database updates that state is immutable
/// (that is the whole point of the MOST data model), so the extraction can
/// be cached and re-evaluation after an update only re-extracts the objects
/// that actually posted one (cf. Mülle & Böhlen's ongoing-query results
/// that "remain valid as time passes by").
///
/// Keys are (fingerprint, bound object ids). Invalidation is per object:
/// any entry whose key mentions an updated object id is dropped. Entries
/// whose key binds no object (e.g. `time <= 5`) depend only on the window
/// and are never invalidated.
///
/// Memory: every entry's approximate footprint is accounted
/// (ApproxBytes(), exported as the most_interval_cache_bytes gauge).
/// Callers that opt into a byte budget (`max_bytes` > 0) get LRU eviction:
/// when an insert pushes the cache over budget, least-recently-used
/// entries are evicted until it fits comfortably again. With the budget
/// off (the default) only the wholesale max_entries clear applies — the
/// pre-governance behaviour, byte for byte.
///
/// Thread safety: all operations are safe to call concurrently. With the
/// byte budget off, lookups take a shared lock so parallel extraction
/// workers don't serialize on cache probes; with it on, lookups take the
/// exclusive lock to maintain LRU recency (a documented cost of bounding
/// memory — docs/robustness.md).
class IntervalCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  ///< Entries dropped by object updates.
    uint64_t evictions = 0;      ///< Entries dropped by the LRU byte budget.
    size_t entries = 0;
    size_t approx_bytes = 0;
  };

  /// When the cache would exceed `max_entries` it is cleared wholesale (a
  /// cheap, obviously-correct eviction policy; callers that want an upper
  /// bound on entry count set this, benchmarks leave it large). A non-zero
  /// `max_bytes` additionally bounds the approximate resident footprint
  /// with LRU eviction.
  explicit IntervalCache(size_t max_entries = 1u << 20, size_t max_bytes = 0);
  ~IntervalCache();

  IntervalCache(const IntervalCache&) = delete;
  IntervalCache& operator=(const IntervalCache&) = delete;

  /// Subscribes to `db`'s update listeners so every explicit update
  /// invalidates the updated object's entries. The cache must not outlive
  /// the database; the destructor (or Detach) unregisters the listener.
  /// Owners that already run their own update listener (QueryManager) can
  /// skip this and forward invalidations to Invalidate() directly.
  void AttachTo(MostDatabase* db);
  void Detach();

  /// True and *out filled if (fingerprint, objs) is cached.
  bool Lookup(const std::string& fingerprint,
              const std::vector<ObjectId>& objs, IntervalSet* out) const;

  void Insert(const std::string& fingerprint,
              const std::vector<ObjectId>& objs, const IntervalSet& when);

  /// Drops every entry whose key binds `id`.
  void Invalidate(ObjectId id);

  /// Drops entries whose fingerprint's evaluation window ends before `t`
  /// (fingerprints carry a trailing "@begin,end" window tag). Every live
  /// evaluation window satisfies end >= now, so the query manager calls
  /// this with the current tick when a continuous query's window expires
  /// and re-anchors: entries keyed to outrun windows can never be probed
  /// again and would otherwise linger until a wholesale clear. Returns the
  /// number of entries dropped.
  size_t EvictWindowsEndingBefore(Tick t);

  void Clear();

  /// Approximate resident footprint of the cached entries (keys + interval
  /// sets + fixed per-entry overhead). Maintained whether or not a byte
  /// budget is configured.
  size_t ApproxBytes() const;
  size_t max_bytes() const { return max_bytes_; }

  Stats stats() const;

 private:
  struct Key {
    std::string fingerprint;
    std::vector<ObjectId> objs;
    bool operator==(const Key& o) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // FNV-1a over the fingerprint bytes and ids.
      uint64_t h = 1469598103934665603ULL;
      for (char c : k.fingerprint) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      for (ObjectId id : k.objs) {
        h = (h ^ static_cast<uint64_t>(id)) * 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    IntervalSet when;
    size_t bytes = 0;
    uint64_t last_used = 0;  ///< LRU recency (lru_clock_ at last touch).
  };

  static size_t EntryBytes(const Key& key, const IntervalSet& when);
  /// Erases one entry (must exist), maintaining bytes and the reverse
  /// index. Caller holds the exclusive lock.
  void EraseEntryLocked(
      std::unordered_map<Key, Entry, KeyHash>::iterator it);
  /// Evicts least-recently-used entries until the footprint is at or
  /// under 3/4 of max_bytes_. Caller holds the exclusive lock.
  void EvictOverBudgetLocked();
  void UpdateGaugesLocked();

  size_t max_entries_;
  size_t max_bytes_;
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  size_t approx_bytes_ = 0;
  uint64_t lru_clock_ = 0;
  /// Reverse index for invalidation. May hold stale keys (already erased
  /// via another object of a multi-object predicate); erasing a missing
  /// key is a no-op, so staleness only costs a lookup. LRU eviction does
  /// clean its keys out eagerly so a byte-budgeted cache's index cannot
  /// grow without bound.
  std::unordered_map<ObjectId, std::vector<Key>> by_object_;
  /// The metric objects this instance owns; Stats is a thin snapshot view
  /// over them, and they are attached to the global registry for the
  /// cache's lifetime (same-name series across caches are summed; the
  /// registry folds final counter values into retired accumulators on
  /// detach, keeping engine totals monotone).
  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  obs::Counter invalidations_;
  obs::Counter evictions_;
  obs::Gauge entries_gauge_;
  obs::Gauge bytes_gauge_;
  std::vector<uint64_t> attach_ids_;
  MostDatabase* attached_db_ = nullptr;
  MostDatabase::ListenerId listener_id_ = 0;
};

}  // namespace most

#endif  // MOST_FTL_INTERVAL_CACHE_H_
