#ifndef MOST_FTL_INTERVAL_CACHE_H_
#define MOST_FTL_INTERVAL_CACHE_H_

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "core/object_model.h"
#include "obs/metrics.h"

namespace most {

/// Cache of atomic-predicate interval extractions.
///
/// The appendix's bottom-up algorithm spends almost all of its time turning
/// atomic predicates (INSIDE, DIST comparisons, attribute ranges) into
/// per-object interval sets. Those sets depend only on (a) the predicate —
/// including the evaluation window, which callers fold into the fingerprint
/// string — and (b) the motion/attribute state of the objects bound by the
/// predicate. Between explicit database updates that state is immutable
/// (that is the whole point of the MOST data model), so the extraction can
/// be cached and re-evaluation after an update only re-extracts the objects
/// that actually posted one (cf. Mülle & Böhlen's ongoing-query results
/// that "remain valid as time passes by").
///
/// Keys are (fingerprint, bound object ids). Invalidation is per object:
/// any entry whose key mentions an updated object id is dropped. Entries
/// whose key binds no object (e.g. `time <= 5`) depend only on the window
/// and are never invalidated.
///
/// Thread safety: all operations are safe to call concurrently; lookups
/// take a shared lock so parallel extraction workers don't serialize on
/// cache probes.
class IntervalCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  ///< Entries dropped by object updates.
    size_t entries = 0;
  };

  /// When the cache would exceed `max_entries` it is cleared wholesale (a
  /// cheap, obviously-correct eviction policy; callers that want an upper
  /// bound on memory set this, benchmarks leave it large).
  explicit IntervalCache(size_t max_entries = 1u << 20);
  ~IntervalCache();

  IntervalCache(const IntervalCache&) = delete;
  IntervalCache& operator=(const IntervalCache&) = delete;

  /// Subscribes to `db`'s update listeners so every explicit update
  /// invalidates the updated object's entries. The cache must not outlive
  /// the database; the destructor (or Detach) unregisters the listener.
  /// Owners that already run their own update listener (QueryManager) can
  /// skip this and forward invalidations to Invalidate() directly.
  void AttachTo(MostDatabase* db);
  void Detach();

  /// True and *out filled if (fingerprint, objs) is cached.
  bool Lookup(const std::string& fingerprint,
              const std::vector<ObjectId>& objs, IntervalSet* out) const;

  void Insert(const std::string& fingerprint,
              const std::vector<ObjectId>& objs, const IntervalSet& when);

  /// Drops every entry whose key binds `id`.
  void Invalidate(ObjectId id);

  /// Drops entries whose fingerprint's evaluation window ends before `t`
  /// (fingerprints carry a trailing "@begin,end" window tag). Every live
  /// evaluation window satisfies end >= now, so the query manager calls
  /// this with the current tick when a continuous query's window expires
  /// and re-anchors: entries keyed to outrun windows can never be probed
  /// again and would otherwise linger until a wholesale clear. Returns the
  /// number of entries dropped.
  size_t EvictWindowsEndingBefore(Tick t);

  void Clear();

  Stats stats() const;

 private:
  struct Key {
    std::string fingerprint;
    std::vector<ObjectId> objs;
    bool operator==(const Key& o) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // FNV-1a over the fingerprint bytes and ids.
      uint64_t h = 1469598103934665603ULL;
      for (char c : k.fingerprint) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      }
      for (ObjectId id : k.objs) {
        h = (h ^ static_cast<uint64_t>(id)) * 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, IntervalSet, KeyHash> entries_;
  /// Reverse index for invalidation. May hold stale keys (already erased
  /// via another object of a multi-object predicate); erasing a missing
  /// key is a no-op, so staleness only costs a lookup.
  std::unordered_map<ObjectId, std::vector<Key>> by_object_;
  /// The metric objects this instance owns; Stats is a thin snapshot view
  /// over them, and they are attached to the global registry for the
  /// cache's lifetime (same-name series across caches are summed; the
  /// registry folds final counter values into retired accumulators on
  /// detach, keeping engine totals monotone).
  mutable obs::Counter hits_;
  mutable obs::Counter misses_;
  obs::Counter invalidations_;
  obs::Gauge entries_gauge_;
  std::vector<uint64_t> attach_ids_;
  MostDatabase* attached_db_ = nullptr;
  MostDatabase::ListenerId listener_id_ = 0;
};

}  // namespace most

#endif  // MOST_FTL_INTERVAL_CACHE_H_
