#ifndef MOST_FTL_NAIVE_EVAL_H_
#define MOST_FTL_NAIVE_EVAL_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "ftl/eval.h"
#include "ftl/term_eval.h"

namespace most {

/// Reference evaluator: walks the database history state by state and
/// checks the FTL semantics directly (Section 3.3). Exponentially slower
/// than FtlEvaluator's interval algorithm but obviously correct — property
/// tests cross-check the two, and benchmark E4 measures the gap. Unlike
/// the interval evaluator it also handles arbitrary negation for free.
class NaiveFtlEvaluator {
 public:
  explicit NaiveFtlEvaluator(const MostDatabase& db) : db_(db) {}

  /// Truth of `f` at tick `t` for the given instantiation, on the finite
  /// history prefix `window` (window.end acts as the end of history, the
  /// same convention FtlEvaluator uses).
  Result<bool> Holds(const FormulaPtr& f, const Instantiation& inst, Tick t,
                     Interval window) const;

  /// Full query evaluation by brute force: every instantiation, every tick.
  Result<TemporalRelation> EvaluateQuery(const FtlQuery& query,
                                         Interval window) const;

 private:
  const MostDatabase& db_;
};

}  // namespace most

#endif  // MOST_FTL_NAIVE_EVAL_H_
