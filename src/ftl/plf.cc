#include "ftl/plf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace most {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

Plf Plf::Constant(Interval window, double value) {
  Plf f;
  f.window_ = window;
  f.pieces_ = {{window, value, 0.0}};
  return f;
}

Plf Plf::TimeLine(Interval window) {
  Plf f;
  f.window_ = window;
  f.pieces_ = {{window, static_cast<double>(window.begin), 1.0}};
  return f;
}

Plf Plf::FromPieces(Interval window, std::vector<Piece> pieces) {
  Plf f;
  f.window_ = window;
  f.pieces_ = std::move(pieces);
  MOST_DCHECK(!f.pieces_.empty());
  MOST_DCHECK(f.pieces_.front().ticks.begin == window.begin);
  MOST_DCHECK(f.pieces_.back().ticks.end == window.end);
  return f;
}

bool Plf::IsConstant() const {
  double v = pieces_.front().value_at_begin;
  for (const Piece& p : pieces_) {
    if (p.slope != 0.0 || p.value_at_begin != v) return false;
  }
  return true;
}

double Plf::At(Tick t) const {
  for (const Piece& p : pieces_) {
    if (p.ticks.Contains(t)) return p.At(t);
  }
  // Out of window: extrapolate the nearest piece.
  if (t < window_.begin) return pieces_.front().At(t);
  return pieces_.back().At(t);
}

Plf Plf::Negate() const { return Scale(-1.0); }

Plf Plf::Scale(double k) const {
  Plf out = *this;
  for (Piece& p : out.pieces_) {
    p.value_at_begin *= k;
    p.slope *= k;
  }
  return out;
}

Plf Plf::AddConstant(double k) const {
  Plf out = *this;
  for (Piece& p : out.pieces_) p.value_at_begin += k;
  return out;
}

Plf Plf::Add(const Plf& other) const {
  MOST_DCHECK(window_ == other.window_);
  Plf out;
  out.window_ = window_;
  size_t i = 0, j = 0;
  while (i < pieces_.size() && j < other.pieces_.size()) {
    const Piece& a = pieces_[i];
    const Piece& b = other.pieces_[j];
    Tick lo = std::max(a.ticks.begin, b.ticks.begin);
    Tick hi = std::min(a.ticks.end, b.ticks.end);
    if (lo <= hi) {
      Piece p;
      p.ticks = Interval(lo, hi);
      p.value_at_begin = a.At(lo) + b.At(lo);
      p.slope = a.slope + b.slope;
      out.pieces_.push_back(p);
    }
    if (a.ticks.end < b.ticks.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

Plf Plf::Sub(const Plf& other) const { return Add(other.Negate()); }

Result<Plf> Plf::Mul(const Plf& other) const {
  if (other.IsConstant()) return Scale(other.pieces_.front().value_at_begin);
  if (IsConstant()) return other.Scale(pieces_.front().value_at_begin);
  return Status::Unimplemented(
      "product of two time-varying terms is not piecewise linear");
}

Result<Plf> Plf::Div(const Plf& other) const {
  if (!other.IsConstant()) {
    return Status::Unimplemented(
        "division by a time-varying term is not piecewise linear");
  }
  double d = other.pieces_.front().value_at_begin;
  if (d == 0.0) return Status::InvalidArgument("division by zero");
  return Scale(1.0 / d);
}

IntervalSet Plf::TicksLe(const Plf& other) const {
  // this <= other  <=>  diff = this - other <= 0.
  Plf diff = Sub(other);
  std::vector<Interval> out;
  for (const Piece& p : diff.pieces_) {
    double t0 = static_cast<double>(p.ticks.begin);
    double t1 = static_cast<double>(p.ticks.end);
    double lo_t, hi_t;
    if (p.slope == 0.0) {
      if (p.value_at_begin > kEps) continue;
      lo_t = t0;
      hi_t = t1;
    } else {
      // value(t) = v0 + s (t - t0) <= 0.
      double root = t0 - p.value_at_begin / p.slope;
      if (p.slope > 0.0) {
        lo_t = t0;
        hi_t = std::min(t1, root);
      } else {
        lo_t = std::max(t0, root);
        hi_t = t1;
      }
      if (lo_t > hi_t) continue;
    }
    Tick first = static_cast<Tick>(std::ceil(lo_t - kEps));
    Tick last = static_cast<Tick>(std::floor(hi_t + kEps));
    first = std::max(first, p.ticks.begin);
    last = std::min(last, p.ticks.end);
    if (first <= last) out.push_back(Interval(first, last));
  }
  return IntervalSet::FromIntervals(std::move(out));
}

IntervalSet Plf::TicksGe(const Plf& other) const { return other.TicksLe(*this); }

IntervalSet Plf::TicksEq(const Plf& other) const {
  return TicksLe(other).Intersect(TicksGe(other));
}

}  // namespace most
