#ifndef MOST_FTL_QUERY_MANAGER_H_
#define MOST_FTL_QUERY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "ftl/eval.h"
#include "ftl/interval_cache.h"

namespace most {

/// The three query types of Section 2.3.
enum class QueryType { kInstantaneous, kContinuous, kPersistent };

/// Confidence of an answer tuple under missing location updates. A tuple
/// is kCertain while every bound object has reported an update within the
/// staleness horizon; once an object goes silent past the horizon its
/// tuples are kStale — still computed from the stored motion functions
/// (dead reckoning), but no longer vouched for. Stale tuples belong to
/// the *may* answer, not the *must* answer (docs/durability.md).
enum class Confidence { kCertain, kStale };

/// One entry of Answer(CQ): an instantiation plus the interval during
/// which it satisfies the query.
struct AnswerTuple {
  std::vector<ObjectId> binding;
  Interval interval;
  Confidence confidence = Confidence::kCertain;

  bool operator==(const AnswerTuple& o) const = default;
};

/// Runs MOST queries against a MostDatabase, implementing the paper's
/// processing model:
///
/// * Instantaneous query at time t: evaluated once on the future history
///   [t, t + horizon]; the user sees the tuples whose interval contains t
///   (or the whole Answer relation, for reaching-time style queries).
/// * Continuous query: evaluated once into Answer(CQ); at each clock tick
///   the current display is a lookup, not a re-evaluation. Only an
///   explicit database update triggers re-evaluation (Section 2.3), or
///   expiry of the evaluation window.
/// * Persistent query at time t0: a sequence of instantaneous queries all
///   evaluated on the history starting at t0. Updates between t0 and now
///   are recorded and stitched into the evaluated history, so e.g. the
///   paper's "speed doubled within 10 minutes" query R observes the two
///   explicit speed updates.
///
/// Temporal triggers (Section 2.3) are continuous queries coupled with an
/// action fired when a tuple's interval is entered.
class QueryManager {
 public:
  struct Options {
    /// Length of the evaluated future-history prefix: "a continuous query
    /// expires after a predefined (but very large) amount of time".
    Tick horizon = 1024;
    /// Optional Section 4 motion indexes consulted by the evaluator (not
    /// owned; may be null).
    const MotionIndexManager* motion_indexes = nullptr;
    /// Worker threads for atomic-predicate extraction and for batch
    /// re-evaluation (TickAll). 1 keeps the exact legacy serial path; any
    /// value produces byte-identical answers (docs/parallel_eval.md).
    size_t thread_count = 1;
    /// Caches atomic-predicate interval sets across re-evaluations,
    /// invalidated per object by database update listeners. Off by
    /// default; safe to combine with any thread_count.
    bool enable_interval_cache = false;
    /// Degraded-mode staleness horizon: an object that has not received
    /// an explicit update for more than this many ticks is considered
    /// stale, and continuous/persistent answer tuples binding it are
    /// reported with Confidence::kStale (excluded from CurrentAnswer,
    /// retained in PossibleAnswer). Negative disables staleness tracking
    /// (every tuple is kCertain, the pre-degraded-mode behaviour).
    Tick staleness_horizon = -1;
  };

  explicit QueryManager(MostDatabase* db) : QueryManager(db, Options()) {}
  QueryManager(MostDatabase* db, Options options);
  ~QueryManager();

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  // ---- Instantaneous queries -------------------------------------------

  /// Full Answer relation on [now, now + horizon].
  Result<TemporalRelation> Evaluate(const FtlQuery& query);

  /// Instantiations satisfying the query right now (interval contains the
  /// current tick).
  Result<std::vector<std::vector<ObjectId>>> Instantaneous(
      const FtlQuery& query);

  /// The paper's "(motel, reaching-time)" form: every instantiation that
  /// satisfies the query somewhere in the window, with the earliest tick
  /// at which it does.
  struct ReachingTime {
    std::vector<ObjectId> binding;
    Tick at = 0;
  };
  Result<std::vector<ReachingTime>> FirstSatisfactionTimes(
      const FtlQuery& query);

  // ---- Continuous queries ----------------------------------------------

  using QueryId = uint64_t;

  Result<QueryId> RegisterContinuous(const FtlQuery& query);
  Status Cancel(QueryId id);

  /// The materialized Answer(CQ) (re-evaluated lazily if a relevant update
  /// or window expiry invalidated it). Each tuple carries its confidence
  /// (kStale when a bound object is past the staleness horizon).
  Result<std::vector<AnswerTuple>> ContinuousAnswer(QueryId id);

  /// What the user's display shows at the current tick: the *must*
  /// answer. Tuples binding stale objects are excluded — the database
  /// refuses to vouch for dead-reckoned fiction.
  Result<std::vector<std::vector<ObjectId>>> CurrentAnswer(QueryId id);

  /// The *may* answer at the current tick: CurrentAnswer plus the tuples
  /// carried only by stale (dead-reckoned) objects. Equal to
  /// CurrentAnswer when staleness tracking is disabled.
  Result<std::vector<std::vector<ObjectId>>> PossibleAnswer(QueryId id);

  /// Number of times this query's Answer set was (re)computed — the
  /// quantity experiment E3 compares against per-tick re-evaluation.
  Result<uint64_t> EvaluationCount(QueryId id) const;

  /// Advances every registered continuous query to the current tick in one
  /// batch: stale answers (dirty or expired) are re-evaluated, fanned out
  /// across the worker pool when thread_count > 1. Answers are identical
  /// to refreshing each query serially; returns the first error in query
  /// id order. Database mutations must not run concurrently with this.
  Status TickAll();

  /// The shared atomic-interval cache, or null when not enabled.
  IntervalCache* interval_cache() { return cache_.get(); }

  /// The worker pool, or null when thread_count <= 1.
  ThreadPool* pool() { return pool_.get(); }

  // ---- Persistent queries ----------------------------------------------

  /// Registers a persistent query anchored at the current time t0; from
  /// now on updates to dynamic and numeric static attributes are recorded.
  Result<QueryId> RegisterPersistent(const FtlQuery& query);

  /// Evaluates the persistent query on the recorded history starting at
  /// its registration time and returns the tuples satisfied at that
  /// anchor (the paper evaluates the same instantaneous query repeatedly
  /// as the history gets refined by updates).
  Result<std::vector<AnswerTuple>> PersistentAnswer(QueryId id);

  // ---- Temporal triggers -----------------------------------------------

  /// Fired with the tuple and the tick at which its interval was entered.
  using TriggerAction =
      std::function<void(const std::vector<ObjectId>& binding, Tick at)>;

  /// Couples a continuous query with an action. Poll() fires the action
  /// once per (tuple, interval) when the clock enters the interval.
  Result<QueryId> RegisterTrigger(const FtlQuery& query,
                                  TriggerAction action);

  /// Advances trigger state to the current clock tick, firing any actions
  /// whose intervals were entered since the last poll.
  Status Poll();

 private:
  struct Continuous {
    FtlQuery query;
    TemporalRelation answer;
    Tick evaluated_at = 0;
    Tick expires_at = 0;
    bool dirty = true;
    uint64_t evaluations = 0;
    // Trigger state.
    TriggerAction action;
    Tick last_polled = -1;
    std::map<std::vector<ObjectId>, Tick> fired;  // binding -> last fire tick.
  };

  struct RecordedAttribute {
    // (update time, state). For numeric statics the state is a constant
    // DynamicAttribute.
    std::vector<std::pair<Tick, DynamicAttribute>> timeline;
  };

  struct Persistent {
    FtlQuery query;
    Tick anchored_at = 0;
    // (class, object, attribute) -> recorded timeline since t0.
    std::map<std::tuple<std::string, ObjectId, std::string>,
             RecordedAttribute>
        recordings;
  };

  /// Re-evaluates one entry. Callers must either hold mu_ or (TickAll)
  /// guarantee exclusive access to this entry; distinct entries may be
  /// refreshed concurrently.
  Status Refresh(Continuous* cq);
  /// kStale if any object bound by `binding` (whose positions correspond
  /// to the sorted `vars`, each declared in `query.from`) is past the
  /// staleness horizon at `now`; kCertain otherwise.
  Confidence BindingConfidence(const FtlQuery& query,
                               const std::vector<std::string>& vars,
                               const std::vector<ObjectId>& binding,
                               Tick now) const;
  FtlEvaluator::Options EvalOptions() const;
  void OnUpdate(const std::string& class_name, ObjectId id);

  // mu_-held implementations behind the public locking wrappers.
  Result<QueryId> RegisterContinuousLocked(const FtlQuery& query);
  Result<std::vector<AnswerTuple>> ContinuousAnswerLocked(QueryId id);

  /// Builds the shadow database representing the history recorded by a
  /// persistent query: dynamic attributes become stitched piecewise
  /// functions (with resets at update times).
  Result<std::unique_ptr<MostDatabase>> BuildHistoryDatabase(
      const Persistent& pq) const;

  MostDatabase* db_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;     // Null when thread_count <= 1.
  std::unique_ptr<IntervalCache> cache_; // Null unless enabled.
  MostDatabase::ListenerId listener_id_ = 0;

  /// Guards the query registries. Evaluation reads the database without a
  /// lock (the evaluator is read-only), so database mutations must be
  /// externally serialized against query evaluation; the registries
  /// themselves are safe to use from concurrent threads.
  mutable std::mutex mu_;
  QueryId next_id_ = 1;
  std::map<QueryId, Continuous> continuous_;
  std::map<QueryId, Persistent> persistent_;
};

}  // namespace most

#endif  // MOST_FTL_QUERY_MANAGER_H_
