#ifndef MOST_FTL_QUERY_MANAGER_H_
#define MOST_FTL_QUERY_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "ftl/eval.h"
#include "ftl/interval_cache.h"
#include "obs/profile.h"

namespace most {

/// The three query types of Section 2.3.
enum class QueryType { kInstantaneous, kContinuous, kPersistent };

/// Confidence of an answer tuple under missing location updates. A tuple
/// is kCertain while every bound object has reported an update within the
/// staleness horizon; once an object goes silent past the horizon its
/// tuples are kStale — still computed from the stored motion functions
/// (dead reckoning), but no longer vouched for. Stale tuples belong to
/// the *may* answer, not the *must* answer (docs/durability.md).
enum class Confidence { kCertain, kStale };

/// One entry of Answer(CQ): an instantiation plus the interval during
/// which it satisfies the query.
struct AnswerTuple {
  std::vector<ObjectId> binding;
  Interval interval;
  Confidence confidence = Confidence::kCertain;

  bool operator==(const AnswerTuple& o) const = default;
};

/// Splices a wire-form Answer(CQ) delta into a per-object answer mirror.
/// Each upsert replaces that object's whole satisfaction set (an empty set
/// erases the entry — no-match is represented by absence, matching the
/// coordinator's matches map); each removal erases outright. This is the
/// per-object dirty-set splice the manager's OnUpdate performs locally,
/// lifted to the wire (AnswerDelta in distributed/network.h): applying the
/// deltas for every object dirtied since a mirror's anchor yields the same
/// map a full re-send would.
void SpliceAnswerDelta(
    std::map<ObjectId, IntervalSet>* mirror,
    const std::vector<std::pair<ObjectId, IntervalSet>>& upserts,
    const std::vector<ObjectId>& removals);

/// Runs MOST queries against a MostDatabase, implementing the paper's
/// processing model:
///
/// * Instantaneous query at time t: evaluated once on the future history
///   [t, t + horizon]; the user sees the tuples whose interval contains t
///   (or the whole Answer relation, for reaching-time style queries).
/// * Continuous query: evaluated once into Answer(CQ); at each clock tick
///   the current display is a lookup, not a re-evaluation. Only an
///   explicit database update triggers re-evaluation (Section 2.3), or
///   expiry of the evaluation window.
/// * Persistent query at time t0: a sequence of instantaneous queries all
///   evaluated on the history starting at t0. Updates between t0 and now
///   are recorded and stitched into the evaluated history, so e.g. the
///   paper's "speed doubled within 10 minutes" query R observes the two
///   explicit speed updates.
///
/// Temporal triggers (Section 2.3) are continuous queries coupled with an
/// action fired when a tuple's interval is entered.
class QueryManager {
 public:
  struct Options {
    /// Length of the evaluated future-history prefix: "a continuous query
    /// expires after a predefined (but very large) amount of time".
    Tick horizon = 1024;
    /// Optional Section 4 motion indexes consulted by the evaluator (not
    /// owned; may be null).
    const MotionIndexManager* motion_indexes = nullptr;
    /// Worker threads for atomic-predicate extraction and for batch
    /// re-evaluation (TickAll). 1 keeps the exact legacy serial path
    /// (no pool at all); 0 sizes the pool to
    /// std::thread::hardware_concurrency(); any value produces
    /// byte-identical answers (docs/parallel_eval.md). Earlier releases
    /// treated 0 as silently serial — ask for 1 explicitly if that is
    /// what you want.
    size_t thread_count = 1;
    /// Register an update listener on the database (the default). The
    /// sharded engine turns this off and instead feeds each shard's
    /// manager coalesced per-tick batches through NoteUpdates, so the
    /// parallel queue drain never funnels every update through every
    /// manager's listener serially (docs/sharding.md).
    bool listen = true;
    /// Standing partition of the object domain: when set, the FIRST FROM
    /// variable of every query this manager runs is restricted to these
    /// ids (composed into full and delta refreshes and instantaneous
    /// evaluation alike). Because FTL relations are pointwise in their
    /// bindings, the manager's answers are then exactly the unpartitioned
    /// answers filtered to rows whose first-variable binding is owned —
    /// which is what makes the sharded engine's union-over-shards gather
    /// byte-identical to a single-shard oracle (docs/sharding.md).
    std::shared_ptr<const std::set<ObjectId>> domain_partition;
    /// Caches atomic-predicate interval sets across re-evaluations,
    /// invalidated per object by database update listeners. Off by
    /// default; safe to combine with any thread_count.
    bool enable_interval_cache = false;
    /// Degraded-mode staleness horizon: an object that has not received
    /// an explicit update for more than this many ticks is considered
    /// stale, and continuous/persistent answer tuples binding it are
    /// reported with Confidence::kStale (excluded from CurrentAnswer,
    /// retained in PossibleAnswer). Negative disables staleness tracking
    /// (every tuple is kCertain, the pre-degraded-mode behaviour).
    Tick staleness_horizon = -1;
    /// Delta re-evaluation: an update to object o only invalidates the
    /// Answer(CQ) rows that bind o (FTL relations are pointwise in their
    /// bindings), so a refresh triggered purely by updates evicts those
    /// rows and re-derives them with the evaluator's variable domains
    /// restricted to the updated objects, instead of re-running the whole
    /// query (docs/incremental_eval.md). Answers are byte-identical to a
    /// full re-evaluation; disable to force the legacy full path.
    bool enable_delta_refresh = true;
    /// Fall back to a full re-evaluation when the coalesced dirty set
    /// exceeds this fraction of the query's combined FROM domains — with
    /// most objects dirty the restricted passes would approach full cost
    /// while paying eviction and splice overhead on top.
    double delta_max_dirty_fraction = 0.25;
    /// Record a per-subformula evaluation profile on every refresh,
    /// retrievable via Explain(id). Costs one ProfileNode per subformula
    /// per refresh (never touches the per-tuple hot paths) and does not
    /// change any answer.
    bool enable_profiling = true;
    /// Hot-path memory layout forwarded to the evaluator (SoA snapshots
    /// vs. the legacy pointer-chasing path; answers are byte-identical —
    /// docs/eval_internals.md). kAuto reads MOST_EVAL_LAYOUT.
    EvalLayout layout = EvalLayout::kAuto;
    /// Per-refresh evaluation budget (docs/robustness.md). A refresh that
    /// exhausts it is *shed*: the evaluator aborts, the query keeps its
    /// previous materialized answer (the delta path keeps the surviving —
    /// still exactly correct — subset), and every tuple reads as kStale
    /// with a DegradeReason until a later refresh completes. Fields left
    /// at zero fall back to ResourceGovernor::Global().limits(); all-zero
    /// everywhere means unlimited, the pre-governance behaviour.
    Budget refresh_budget;
    /// Cap on refreshes admitted per TickAll batch. Beyond it the entries
    /// that have waited longest are shed (reason kQueue) to may-answers
    /// and retried next tick. 0 = governor fallback, then unlimited.
    size_t refresh_queue_limit = 0;
    /// After a refresh exhausts its budget the query is not retried for
    /// this many ticks (it keeps serving its stale answer), so a query
    /// that repeatedly blows the budget cannot monopolize refresh
    /// capacity. 0 = governor fallback, then no cooldown.
    Tick degrade_cooldown_ticks = 0;
    /// Byte budget for the shared interval cache (LRU eviction; the
    /// most_interval_cache_bytes gauge tracks the footprint either way).
    /// 0 = governor fallback, then unbounded.
    size_t interval_cache_max_bytes = 0;
    /// Shard this manager serves inside a sharded engine (-1 standalone).
    /// Purely observational: stamped onto trace spans and slow-query-log
    /// entries so a slow line names the shard it ran on.
    int64_t shard_id = -1;
  };

  explicit QueryManager(MostDatabase* db) : QueryManager(db, Options()) {}
  QueryManager(MostDatabase* db, Options options);
  ~QueryManager();

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  // ---- Instantaneous queries -------------------------------------------

  /// Full Answer relation on [now, now + horizon].
  Result<TemporalRelation> Evaluate(const FtlQuery& query);

  /// Instantiations satisfying the query right now (interval contains the
  /// current tick).
  Result<std::vector<std::vector<ObjectId>>> Instantaneous(
      const FtlQuery& query);

  /// The paper's "(motel, reaching-time)" form: every instantiation that
  /// satisfies the query somewhere in the window, with the earliest tick
  /// at which it does.
  struct ReachingTime {
    std::vector<ObjectId> binding;
    Tick at = 0;
  };
  Result<std::vector<ReachingTime>> FirstSatisfactionTimes(
      const FtlQuery& query);

  // ---- Continuous queries ----------------------------------------------

  using QueryId = uint64_t;

  Result<QueryId> RegisterContinuous(const FtlQuery& query);
  Status Cancel(QueryId id);

  /// The materialized Answer(CQ) (re-evaluated lazily if a relevant update
  /// or window expiry invalidated it). Each tuple carries its confidence
  /// (kStale when a bound object is past the staleness horizon).
  Result<std::vector<AnswerTuple>> ContinuousAnswer(QueryId id);

  /// The raw materialized projected relation behind ContinuousAnswer,
  /// refreshed first if stale. This is the sharded engine's gather hook:
  /// the per-shard *relations* must be merged (projection can collapse a
  /// binding present in several shards, whose tick sets then union and
  /// re-coalesce) before tuples are flattened, so handing out the tuple
  /// list would lose the byte-identity contract (docs/sharding.md).
  /// `degrade` is kNone while the relation is fully up to date; anything
  /// else means this is a previous/partial answer the caller must not
  /// vouch for.
  struct AnswerSnapshot {
    TemporalRelation answer;
    DegradeReason degrade = DegradeReason::kNone;
    Tick evaluated_at = 0;
  };
  Result<AnswerSnapshot> SnapshotContinuousAnswer(QueryId id);

  /// Flattens a projected relation into the tuple form ContinuousAnswer
  /// returns: rows in map order, intervals in order, confidence re-derived
  /// per binding at the current tick (`force_stale` demotes every tuple,
  /// as a degraded answer does). ContinuousAnswer itself goes through this
  /// helper, so the sharded engine's gather — which merges per-shard
  /// snapshot relations and then flattens the union — produces tuples byte
  /// for byte as a single-shard manager would (docs/sharding.md).
  std::vector<AnswerTuple> FlattenAnswer(const FtlQuery& query,
                                         const TemporalRelation& relation,
                                         bool force_stale) const;

  /// Replaces the standing domain partition (Options::domain_partition).
  /// The caller owns re-derivation: swap the partition, then mark every id
  /// whose ownership changed dirty (NoteUpdates) so the delta path evicts
  /// or re-derives exactly those rows — the sharded engine does this when
  /// an object is created or deleted. Must not run concurrently with
  /// refreshes.
  void SetDomainPartition(std::shared_ptr<const std::set<ObjectId>> partition);

  /// What the user's display shows at the current tick: the *must*
  /// answer. Tuples binding stale objects are excluded — the database
  /// refuses to vouch for dead-reckoned fiction.
  Result<std::vector<std::vector<ObjectId>>> CurrentAnswer(QueryId id);

  /// The *may* answer at the current tick: CurrentAnswer plus the tuples
  /// carried only by stale (dead-reckoned) objects. Equal to
  /// CurrentAnswer when staleness tracking is disabled.
  Result<std::vector<std::vector<ObjectId>>> PossibleAnswer(QueryId id);

  /// Number of times this query's Answer set was (re)computed — the
  /// quantity experiment E3 compares against per-tick re-evaluation.
  /// Delta and full refreshes both count.
  Result<uint64_t> EvaluationCount(QueryId id) const;

  /// How a query's refreshes were served: by the delta path (evict dirty
  /// rows + restricted re-evaluation + splice) or by a full window
  /// re-evaluation. The benchmark and the CI differential stage assert
  /// delta_evaluations > 0 to prove the fast path actually ran.
  struct RefreshCounters {
    uint64_t delta_evaluations = 0;
    uint64_t full_evaluations = 0;
  };
  Result<RefreshCounters> QueryRefreshCounters(QueryId id) const;
  /// Manager-wide totals across all queries (including cancelled ones).
  /// The pair is taken under one lock, so concurrent refreshes can never
  /// produce a torn read (a delta counted without its sibling).
  RefreshCounters TotalRefreshCounters() const;

  /// Degraded-answer state of one continuous query. `reason` is kNone
  /// while the answer is fully up to date; otherwise the query is serving
  /// a stale (previous or partial) answer and every tuple reads kStale.
  struct DegradeInfo {
    DegradeReason reason = DegradeReason::kNone;
    std::string detail;
    Tick at = -1;  ///< Tick of the most recent shed (-1 = never shed).
    uint64_t shed_refreshes = 0;  ///< Lifetime shed count for this query.
  };
  Result<DegradeInfo> QueryDegradeInfo(QueryId id) const;

  /// EXPLAIN ANALYZE for FTL: renders the profile recorded by the query's
  /// most recent refresh — the chosen path (delta/full) with its reason,
  /// and one node per subformula with wall time, result cardinalities and
  /// counter deltas (the appendix's bottom-up algorithm computes one
  /// interval relation per subformula, so the profile tree mirrors the
  /// formula tree). `include_timings=false` masks wall times for
  /// deterministic golden output. NotFound for an unknown id,
  /// InvalidArgument when profiling is disabled.
  Result<std::string> Explain(QueryId id, bool include_timings = true) const;
  /// The raw profile behind Explain (shared snapshot; safe to hold after
  /// further refreshes, which install a fresh profile object).
  Result<std::shared_ptr<const obs::QueryProfile>> Profile(QueryId id) const;

  /// Advances every registered continuous query to the current tick in one
  /// batch: stale answers (dirty or expired) are re-evaluated, fanned out
  /// across the worker pool when thread_count > 1. Answers are identical
  /// to refreshing each query serially; returns the first error in query
  /// id order. Database mutations must not run concurrently with this.
  Status TickAll();

  /// The shared atomic-interval cache, or null when not enabled.
  IntervalCache* interval_cache() { return cache_.get(); }

  /// The worker pool, or null when thread_count == 1.
  ThreadPool* pool() { return pool_.get(); }

  /// Batch form of the update listener, for managers created with
  /// Options::listen == false: invalidates the ids' cached interval sets,
  /// marks continuous-query dirty sets, and extends persistent-query
  /// recordings — everything OnUpdate does, under one lock acquisition
  /// for the whole batch. Safe to call concurrently from several threads
  /// (the sharded engine calls it once per shard per drained tick).
  void NoteUpdates(const std::string& class_name,
                   const std::vector<ObjectId>& ids);

  // ---- Persistent queries ----------------------------------------------

  /// Registers a persistent query anchored at the current time t0; from
  /// now on updates to dynamic and numeric static attributes are recorded.
  Result<QueryId> RegisterPersistent(const FtlQuery& query);

  /// Evaluates the persistent query on the recorded history starting at
  /// its registration time and returns the tuples satisfied at that
  /// anchor (the paper evaluates the same instantaneous query repeatedly
  /// as the history gets refined by updates).
  Result<std::vector<AnswerTuple>> PersistentAnswer(QueryId id);

  // ---- Temporal triggers -----------------------------------------------

  /// Fired with the tuple and the tick at which its interval was entered.
  using TriggerAction =
      std::function<void(const std::vector<ObjectId>& binding, Tick at)>;

  /// Couples a continuous query with an action. Poll() fires the action
  /// once per (tuple, interval) when the clock enters the interval.
  Result<QueryId> RegisterTrigger(const FtlQuery& query,
                                  TriggerAction action);

  /// Advances trigger state to the current clock tick, firing any actions
  /// whose intervals were entered since the last poll. Fired-state entries
  /// whose intervals are entirely in the past (or whose binding left the
  /// answer, e.g. a deleted object) are garbage-collected so the per-
  /// trigger memory tracks the live answer, not the query's history.
  Status Poll();

  /// Number of (binding -> last fire tick) entries a trigger currently
  /// retains; exposed so tests can pin down the Poll-time GC.
  Result<size_t> TriggerFiredEntries(QueryId id) const;

 private:
  struct Continuous {
    QueryId id = 0;  ///< Registry key, echoed into slow-query-log entries.
    FtlQuery query;
    /// Unprojected Answer relation (one column per WHERE/RETRIEVE
    /// variable). This is the representation the delta path maintains:
    /// its rows are pointwise in their bindings, so rows touching updated
    /// objects can be evicted and re-derived independently. `answer` is
    /// its projection onto the RETRIEVE variables (projection aggregates
    /// over dropped columns, so it cannot be spliced directly).
    TemporalRelation full;
    TemporalRelation answer;
    Tick evaluated_at = 0;
    /// Evaluation window [window_begin, expires_at]. Re-anchored to
    /// [now, now + horizon] only at first evaluation and on expiry;
    /// update-triggered refreshes re-evaluate over the existing window so
    /// the delta splice and a full re-evaluation agree byte for byte.
    Tick window_begin = 0;
    Tick expires_at = 0;
    /// Force a full re-evaluation (registration; delta-path failure).
    bool dirty = true;
    /// Updates coalesced since the last refresh: class -> updated object
    /// ids. Many updates to one object collapse into one dirty entry, so
    /// refresh cost scales with distinct dirty objects, not update count.
    std::map<std::string, std::set<ObjectId>> dirty_objects;
    uint64_t evaluations = 0;
    uint64_t delta_evaluations = 0;
    uint64_t full_evaluations = 0;
    /// Degraded-answer state (docs/robustness.md). Non-kNone means the
    /// last refresh attempt was shed and the materialized relation is a
    /// previous (full path) or partial-but-correct (delta path) answer;
    /// reads force every tuple to kStale until a refresh completes.
    DegradeReason degrade = DegradeReason::kNone;
    std::string degrade_detail;
    Tick degraded_at = -1;        ///< Cooldown anchor (tick of last shed).
    uint64_t shed_refreshes = 0;
    /// Tick at which the entry first went stale since its last completed
    /// refresh (-1 = clean, or stale for a non-update reason such as
    /// window expiry, which admission control treats as oldest).
    Tick first_dirty_at = -1;
    /// Profile of the most recent refresh (null until the first refresh
    /// or when profiling is disabled).
    std::shared_ptr<const obs::QueryProfile> last_profile;
    // Trigger state.
    TriggerAction action;
    Tick last_polled = -1;
    std::map<std::vector<ObjectId>, Tick> fired;  // binding -> last fire tick.
  };

  struct RecordedAttribute {
    // (update time, state). For numeric statics the state is a constant
    // DynamicAttribute.
    std::vector<std::pair<Tick, DynamicAttribute>> timeline;
  };

  struct Persistent {
    FtlQuery query;
    Tick anchored_at = 0;
    // (class, object, attribute) -> recorded timeline since t0.
    std::map<std::tuple<std::string, ObjectId, std::string>,
             RecordedAttribute>
        recordings;
  };

  /// True when the entry's answer is not current: forced dirty, pending
  /// coalesced updates, or the evaluation window has expired.
  bool NeedsRefresh(const Continuous& cq, Tick now) const;
  /// Brings one entry up to date: no-op when clean, delta when only a
  /// small dirty set is pending, full otherwise (or when the delta path
  /// errors). Callers must either hold mu_ or (TickAll) guarantee
  /// exclusive access to this entry; distinct entries may be refreshed
  /// concurrently.
  Status Refresh(Continuous* cq);
  /// Full window re-evaluation; re-anchors the window at registration and
  /// on expiry (evicting outrun interval-cache windows). `reason` says why
  /// the full path ran (initial/expired/forced/dirty_fraction/delta_error/
  /// delta_disabled) — recorded in the profile and the fallback counters.
  Status RefreshFull(Continuous* cq, const char* reason);
  /// Delta re-evaluation over the existing window: evicts rows binding a
  /// dirty object, runs one domain-restricted pass per dirty column, and
  /// splices the results back into the unprojected relation.
  Status RefreshDelta(Continuous* cq);

  /// Per-column staleness lookup state, resolved once per relation read
  /// instead of rescanning query.from and the class registry for every
  /// row (the read path is O(rows); the resolution is O(vars * from)).
  struct ConfidenceColumns {
    struct Column {
      const ObjectClass* cls = nullptr;  ///< Null with check => missing class.
      bool check = false;                ///< Column is a FROM variable.
    };
    std::vector<Column> columns;
  };
  ConfidenceColumns ResolveConfidenceColumns(
      const FtlQuery& query, const std::vector<std::string>& vars) const;
  /// kStale if any checked column's object is past the staleness horizon
  /// at `now` (or deleted, or its class vanished); kCertain otherwise.
  Confidence BindingConfidence(const ConfidenceColumns& cols,
                               const std::vector<ObjectId>& binding,
                               Tick now) const;
  FtlEvaluator::Options EvalOptions() const;
  /// Composes Options::domain_partition into an evaluation: restricts the
  /// query's first FROM variable to the partition (no-op when
  /// unpartitioned or variable-free).
  void ApplyPartition(FtlEvaluator::Options* opts,
                      const FtlQuery& query) const;
  void OnUpdate(const std::string& class_name, ObjectId id);
  /// One update's registry bookkeeping (dirty marking + persistent
  /// recording), shared by OnUpdate and NoteUpdates. Caller holds mu_.
  void NoteUpdateLocked(const std::string& class_name, ObjectId id,
                        Tick now);

  /// Per-field resolution of the governance knobs: the Options value when
  /// non-zero, else the global governor's limit (zero-for-zero, so the
  /// all-defaults configuration stays byte-identical to pre-governance).
  Budget EffectiveBudget() const;
  size_t EffectiveQueueLimit() const;
  Tick EffectiveCooldown() const;
  /// Delta→full fallback threshold: the governor's value *overrides* the
  /// Options default when set (> 0) — this is the knob the telemetry
  /// watchdog tightens under observed refresh-latency pressure.
  double EffectiveDeltaFraction() const;
  /// True while a budget-exhausted query must keep serving its stale
  /// answer instead of being re-attempted (queue sheds don't cool down —
  /// the entry just waits for the next TickAll round).
  bool InCooldown(const Continuous& cq, Tick now) const;
  /// Records one shed refresh: flips the entry into degraded mode, feeds
  /// the governor's event ring and most_qm_shed_refreshes_total, and logs
  /// a degrade-tagged slow-query entry.
  void NoteShed(Continuous* cq, DegradeReason reason, Tick now,
                const std::string& detail, const char* path,
                uint64_t dur_ns);

  // mu_-held implementations behind the public locking wrappers.
  Result<QueryId> RegisterContinuousLocked(const FtlQuery& query);
  Result<std::vector<AnswerTuple>> ContinuousAnswerLocked(QueryId id);

  /// Builds the shadow database representing the history recorded by a
  /// persistent query: dynamic attributes become stitched piecewise
  /// functions (with resets at update times).
  Result<std::unique_ptr<MostDatabase>> BuildHistoryDatabase(
      const Persistent& pq) const;

  MostDatabase* db_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;     // Null when thread_count <= 1.
  std::unique_ptr<IntervalCache> cache_; // Null unless enabled.
  MostDatabase::ListenerId listener_id_ = 0;

  /// Guards the query registries. Evaluation reads the database without a
  /// lock (the evaluator is read-only), so database mutations must be
  /// externally serialized against query evaluation; the registries
  /// themselves are safe to use from concurrent threads.
  mutable std::mutex mu_;
  QueryId next_id_ = 1;
  std::map<QueryId, Continuous> continuous_;
  std::map<QueryId, Persistent> persistent_;
  /// Manager-wide refresh totals. TickAll fans refreshes of distinct
  /// entries out across the pool while holding mu_, so the pair lives
  /// under its own small mutex: writers increment one member, readers
  /// snapshot both consistently (two independent atomics allowed a torn
  /// read that counted a refresh in neither or one of the two).
  mutable std::mutex totals_mu_;
  RefreshCounters totals_;
};

}  // namespace most

#endif  // MOST_FTL_QUERY_MANAGER_H_
