#ifndef MOST_FTL_PARSER_H_
#define MOST_FTL_PARSER_H_

#include <string>

#include "common/result.h"
#include "ftl/ast.h"

namespace most {

/// Parses an FTL query. Concrete syntax (keywords case-insensitive):
///
///   RETRIEVE o, n
///   FROM PLANES o, PLANES n
///   WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))
///
/// Formulas:
///   f AND g | f OR g | NOT f | f UNTIL g | f UNTIL WITHIN c g
///   NEXTTIME f | EVENTUALLY f | EVENTUALLY WITHIN c f
///   EVENTUALLY AFTER c f | ALWAYS f | ALWAYS FOR c f
///   [x := term] f      (also the paper's arrow spelling [x <- term] f)
///   TRUE | FALSE | (f) | term cmp term
///   INSIDE(o, Region) | OUTSIDE(o, Region)
///   WITHIN_SPHERE(r, o1, ..., ok)
///
/// Terms:
///   number | 'string' | time | x (assignment variable)
///   o.ATTR | o.ATTR.value | o.ATTR.updatetime | SPEED(o.ATTR)
///   DIST(o1, o2) | term (+|-|*|/) term | (term)
///
/// Attribute names may themselves contain dots (e.g. o.X.POSITION); the
/// trailing `.value` / `.updatetime` selectors are recognized only after a
/// multi-component attribute path.
Result<FtlQuery> ParseQuery(const std::string& source);

/// Parses a bare formula (no RETRIEVE/FROM wrapper); used by tests and the
/// trigger API.
Result<FormulaPtr> ParseFormula(const std::string& source);

}  // namespace most

#endif  // MOST_FTL_PARSER_H_
