#ifndef MOST_FTL_NEAREST_H_
#define MOST_FTL_NEAREST_H_

#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "core/object_model.h"

namespace most {

/// Answers the paper's opening query — "How far is the car with license
/// plate RWW860 from the nearest hospital?" — against moving (or
/// stationary) objects, both instantaneously and over a future window.

struct NearestResult {
  ObjectId id = kInvalidObjectId;
  double distance = 0.0;
};

/// Nearest object of `class_name` to `from` at tick `t` (excluding `from`
/// itself if it belongs to the class). NotFound if the class is empty.
Result<NearestResult> NearestNeighbor(const MostDatabase& db,
                                      const std::string& class_name,
                                      const MostObject& from, Tick t);

/// Time-parameterized nearest neighbor: for each object that is nearest
/// at some point of the window, the exact tick intervals during which it
/// is nearest (the lower envelope of the pairwise distance functions;
/// ties go to the smaller object id). Intervals partition the window.
///
/// Exact: distances between linearly moving points are sqrt-quadratics,
/// so "i is nearer than j" reduces to the sign of a quadratic, solved in
/// closed form per aligned motion segment.
Result<std::vector<std::pair<ObjectId, IntervalSet>>> NearestOverWindow(
    const MostDatabase& db, const std::string& class_name,
    const MostObject& from, Interval window);

}  // namespace most

#endif  // MOST_FTL_NEAREST_H_
