#include "ftl/query_manager.h"

#include <algorithm>
#include <sstream>

#include "common/failpoint.h"
#include "obs/governor.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace most {

namespace {

/// Registry-owned series the query manager's refresh paths report into.
/// Looked up once; refreshes are per-update events, not per-tuple, so the
/// flush cost is a few relaxed atomics per refresh.
struct QmRegistrySeries {
  obs::Counter* delta_refreshes;
  obs::Counter* full_refreshes;
  obs::Histogram* delta_latency;
  obs::Histogram* full_latency;
  obs::Histogram* dirty_set_size;

  static const QmRegistrySeries& Get() {
    static const QmRegistrySeries s = [] {
      auto& r = obs::MetricsRegistry::Global();
      QmRegistrySeries s;
      s.delta_refreshes =
          r.GetCounter("most_qm_refreshes_total",
                       "Continuous-query refreshes by path",
                       {{"path", "delta"}});
      s.full_refreshes =
          r.GetCounter("most_qm_refreshes_total",
                       "Continuous-query refreshes by path",
                       {{"path", "full"}});
      s.delta_latency = r.GetHistogram(
          "most_qm_refresh_latency_seconds", "Refresh wall time by path",
          obs::ExponentialBuckets(1e-5, 4.0, 10), {{"path", "delta"}});
      s.full_latency = r.GetHistogram(
          "most_qm_refresh_latency_seconds", "Refresh wall time by path",
          obs::ExponentialBuckets(1e-5, 4.0, 10), {{"path", "full"}});
      s.dirty_set_size = r.GetHistogram(
          "most_qm_dirty_set_size",
          "Distinct dirty objects coalesced per delta refresh",
          {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024});
      return s;
    }();
    return s;
  }
};

/// Why the full path ran, as a labelled counter (one series per reason).
void CountFullRefreshReason(const char* reason) {
  auto& r = obs::MetricsRegistry::Global();
  if (!r.enabled()) return;
  r.GetCounter("most_qm_full_refresh_reason_total",
               "Full (non-delta) refreshes by trigger reason",
               {{"reason", reason}})
      ->Inc();
}

std::string RenderWindow(Tick begin, Tick end) {
  std::ostringstream os;
  os << "[" << begin << ", " << end << "]";
  return os.str();
}

size_t DirtyTotal(const std::map<std::string, std::set<ObjectId>>& dirty) {
  size_t total = 0;
  for (const auto& [cls, ids] : dirty) total += ids.size();
  return total;
}

}  // namespace

void SpliceAnswerDelta(
    std::map<ObjectId, IntervalSet>* mirror,
    const std::vector<std::pair<ObjectId, IntervalSet>>& upserts,
    const std::vector<ObjectId>& removals) {
  for (const auto& [id, when] : upserts) {
    if (when.empty()) {
      mirror->erase(id);
    } else {
      (*mirror)[id] = when;
    }
  }
  for (ObjectId id : removals) mirror->erase(id);
}

QueryManager::QueryManager(MostDatabase* db, Options options)
    : db_(db), options_(options) {
  // thread_count == 1 is the exact serial path (no pool); 0 delegates to
  // ThreadPool's hardware_concurrency sizing (docs/parallel_eval.md).
  if (options_.thread_count != 1) {
    pool_ = std::make_unique<ThreadPool>(options_.thread_count);
  }
  if (options_.enable_interval_cache) {
    size_t max_bytes = options_.interval_cache_max_bytes != 0
                           ? options_.interval_cache_max_bytes
                           : ResourceGovernor::Global()
                                 .limits()
                                 .interval_cache_max_bytes;
    cache_ = std::make_unique<IntervalCache>(1u << 20, max_bytes);
  }
  if (options_.listen) {
    listener_id_ = db_->AddUpdateListener(
        [this](const std::string& class_name, ObjectId id) {
          OnUpdate(class_name, id);
        });
  }
}

QueryManager::~QueryManager() {
  if (options_.listen) db_->RemoveUpdateListener(listener_id_);
}

FtlEvaluator::Options QueryManager::EvalOptions() const {
  FtlEvaluator::Options o;
  o.motion_indexes = options_.motion_indexes;
  o.pool = pool_.get();
  o.interval_cache = cache_.get();
  o.layout = options_.layout;
  o.budget = EffectiveBudget();
  return o;
}

Budget QueryManager::EffectiveBudget() const {
  Budget b = options_.refresh_budget;
  if (b.deadline_ns != 0 && b.max_arena_bytes != 0 && b.max_rows != 0) {
    return b;  // Fully specified; skip the governor lock.
  }
  const Budget fallback =
      ResourceGovernor::Global().limits().refresh_budget;
  if (b.deadline_ns == 0) b.deadline_ns = fallback.deadline_ns;
  if (b.max_arena_bytes == 0) b.max_arena_bytes = fallback.max_arena_bytes;
  if (b.max_rows == 0) b.max_rows = fallback.max_rows;
  return b;
}

size_t QueryManager::EffectiveQueueLimit() const {
  if (options_.refresh_queue_limit != 0) return options_.refresh_queue_limit;
  return ResourceGovernor::Global().limits().refresh_queue_limit;
}

Tick QueryManager::EffectiveCooldown() const {
  if (options_.degrade_cooldown_ticks != 0) {
    return options_.degrade_cooldown_ticks;
  }
  return ResourceGovernor::Global().limits().degrade_cooldown_ticks;
}

double QueryManager::EffectiveDeltaFraction() const {
  // Unlike the other knobs (whose Options default is 0 = unset), the
  // fraction has a meaningful default, so the governor's value *overrides*
  // when set: the telemetry watchdog arms it engine-wide under pressure
  // and a 0 governor value (the default) leaves Options untouched.
  const double governed =
      ResourceGovernor::Global().limits().delta_max_dirty_fraction;
  return governed > 0.0 ? governed : options_.delta_max_dirty_fraction;
}

bool QueryManager::InCooldown(const Continuous& cq, Tick now) const {
  // Only evaluation-budget sheds cool down; a queue shed just waits for
  // the next admission round, and kNone means nothing was shed at all.
  if (cq.degrade != DegradeReason::kDeadline &&
      cq.degrade != DegradeReason::kMemory &&
      cq.degrade != DegradeReason::kRows) {
    return false;
  }
  Tick cooldown = EffectiveCooldown();
  if (cooldown <= 0 || cq.degraded_at < 0) return false;
  return now < TickSaturatingAdd(cq.degraded_at, cooldown);
}

void QueryManager::NoteShed(Continuous* cq, DegradeReason reason, Tick now,
                            const std::string& detail, const char* path,
                            uint64_t dur_ns) {
  // The gate always names the tripped limit when it aborts; the fallback
  // only guards a future caller passing kNone by mistake.
  if (reason == DegradeReason::kNone) reason = DegradeReason::kDeadline;
  cq->degrade = reason;
  cq->degrade_detail = detail;
  cq->degraded_at = now;
  ++cq->shed_refreshes;
  ResourceGovernor::Global().NoteDegrade(reason, cq->id, now, detail);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (registry.enabled()) {
    registry
        .GetCounter("most_qm_shed_refreshes_total",
                    "Refreshes shed by resource governance (the query keeps "
                    "serving its previous answer as kStale)",
                    {{"path", path}})
        ->Inc();
  }
  // Degrade entries bypass the latency threshold (see SlowQueryLog).
  obs::SlowQueryLog::Entry entry;
  entry.query_id = cq->id;
  entry.query = cq->query.ToString();
  entry.path = path;
  entry.duration_ns = dur_ns;
  entry.refresh_seq = cq->evaluations;
  entry.degrade = std::string(DegradeReasonToString(reason));
  entry.shard_id = options_.shard_id;
  entry.trace_id = obs::CurrentTraceContext().trace_id;
  obs::SlowQueryLog::Global().MaybeRecord(std::move(entry));
}

void QueryManager::OnUpdate(const std::string& class_name, ObjectId id) {
  // Drop the updated object's cached interval sets before anything can
  // re-evaluate against stale entries.
  if (cache_ != nullptr) cache_->Invalidate(id);
  std::lock_guard<std::mutex> lock(mu_);
  NoteUpdateLocked(class_name, id, db_->Now());
}

void QueryManager::NoteUpdates(const std::string& class_name,
                               const std::vector<ObjectId>& ids) {
  if (ids.empty()) return;
  if (cache_ != nullptr) {
    for (ObjectId id : ids) cache_->Invalidate(id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Tick now = db_->Now();
  for (ObjectId id : ids) NoteUpdateLocked(class_name, id, now);
}

void QueryManager::NoteUpdateLocked(const std::string& class_name,
                                    ObjectId id, Tick now) {
  // Continuous queries over the updated class must be re-evaluated
  // ("a continuous query CQ has to be reevaluated when an update occurs
  // that may change the set of tuples Answer(CQ)", Section 2.3) — but an
  // update to one object only disturbs the Answer rows that bind it, so
  // record *which* object went dirty and coalesce repeats; Refresh then
  // re-derives just those rows (docs/incremental_eval.md).
  for (auto& [qid, cq] : continuous_) {
    for (const FromBinding& fb : cq.query.from) {
      if (fb.class_name == class_name) {
        // A partitioned manager's single-variable query binds only owned
        // objects (its one object column is the partitioned first FROM
        // variable), so a foreign object's update cannot change any of
        // its rows — skipping the dirty mark keeps single-variable
        // refresh cost truly per-shard. Multi-variable queries may bind
        // the foreign object in a later column and stay dirty-marked.
        if (options_.domain_partition != nullptr &&
            cq.query.from.size() == 1 &&
            options_.domain_partition->count(id) == 0) {
          break;
        }
        cq.dirty_objects[class_name].insert(id);
        // First staleness since the last completed refresh: admission
        // control refreshes longest-stale entries first.
        if (cq.first_dirty_at < 0) cq.first_dirty_at = now;
        break;
      }
    }
  }
  // Persistent queries record the updated object's attribute states.
  for (auto& [qid, pq] : persistent_) {
    bool relevant = false;
    for (const FromBinding& fb : pq.query.from) {
      if (fb.class_name == class_name) relevant = true;
    }
    if (!relevant) continue;
    auto cls = db_->GetClass(class_name);
    if (!cls.ok()) continue;
    auto obj = (*cls)->Get(id);
    if (!obj.ok()) continue;  // Deleted object: stop recording it.
    for (const auto& [attr, dyn] : (*obj)->dynamics()) {
      pq.recordings[{class_name, id, attr}].timeline.emplace_back(now, dyn);
    }
    for (const auto& [attr, val] : (*obj)->statics()) {
      if (!val.is_numeric()) continue;
      pq.recordings[{class_name, id, attr}].timeline.emplace_back(
          now, DynamicAttribute(val.AsDouble().value(), now, TimeFunction()));
    }
  }
}

void QueryManager::ApplyPartition(FtlEvaluator::Options* opts,
                                  const FtlQuery& query) const {
  if (options_.domain_partition == nullptr || query.from.empty()) return;
  opts->domain_restrictions[query.from.front().var] =
      options_.domain_partition;
}

Result<TemporalRelation> QueryManager::Evaluate(const FtlQuery& query) {
  Tick now = db_->Now();
  FtlEvaluator::Options opts = EvalOptions();
  ApplyPartition(&opts, query);
  FtlEvaluator eval(*db_, opts);
  return eval.EvaluateQuery(
      query, Interval(now, TickSaturatingAdd(now, options_.horizon)));
}

Result<std::vector<std::vector<ObjectId>>> QueryManager::Instantaneous(
    const FtlQuery& query) {
  MOST_ASSIGN_OR_RETURN(TemporalRelation rel, Evaluate(query));
  Tick now = db_->Now();
  std::vector<std::vector<ObjectId>> out;
  for (const auto& [binding, when] : rel.rows) {
    if (when.Contains(now)) out.push_back(binding);
  }
  return out;
}

Result<std::vector<QueryManager::ReachingTime>>
QueryManager::FirstSatisfactionTimes(const FtlQuery& query) {
  MOST_ASSIGN_OR_RETURN(TemporalRelation rel, Evaluate(query));
  std::vector<ReachingTime> out;
  for (const auto& [binding, when] : rel.rows) {
    out.push_back({binding, when.Min()});
  }
  std::sort(out.begin(), out.end(),
            [](const ReachingTime& a, const ReachingTime& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.binding < b.binding;
            });
  return out;
}

Result<QueryManager::QueryId> QueryManager::RegisterContinuous(
    const FtlQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterContinuousLocked(query);
}

Result<QueryManager::QueryId> QueryManager::RegisterContinuousLocked(
    const FtlQuery& query) {
  QueryId id = next_id_++;
  Continuous cq;
  cq.id = id;
  cq.query = query;
  auto [it, inserted] = continuous_.emplace(id, std::move(cq));
  MOST_RETURN_IF_ERROR(Refresh(&it->second));
  return id;
}

Status QueryManager::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (continuous_.erase(id) > 0) return Status::OK();
  if (persistent_.erase(id) > 0) return Status::OK();
  return Status::NotFound("query " + std::to_string(id));
}

bool QueryManager::NeedsRefresh(const Continuous& cq, Tick now) const {
  return cq.dirty || !cq.dirty_objects.empty() || now > cq.expires_at;
}

Status QueryManager::Refresh(Continuous* cq) {
  Tick now = db_->Now();
  if (!NeedsRefresh(*cq, now)) return Status::OK();
  // A query whose last refresh blew its budget keeps serving the stale
  // answer through the cooldown instead of burning the budget again; its
  // dirty set is retained, so the first post-cooldown read recovers.
  if (InCooldown(*cq, now)) return Status::OK();
  // Decide the path and remember why, so the profile and the
  // most_qm_full_refresh_reason_total counters can say which guard fired.
  const char* full_reason = nullptr;
  if (cq->evaluations == 0) {
    full_reason = "initial";
  } else if (now > cq->expires_at) {
    full_reason = "expired";
  } else if (cq->dirty) {
    full_reason = "forced";
  } else if (!options_.enable_delta_refresh) {
    full_reason = "delta_disabled";
  } else {
    // Bail to the full path when most of the domain is dirty: the
    // restricted passes would approach full cost, plus eviction/splice.
    size_t dirty_total = DirtyTotal(cq->dirty_objects);
    size_t domain_total = 0;
    for (const FromBinding& fb : cq->query.from) {
      auto cls = db_->GetClass(fb.class_name);
      if (!cls.ok()) continue;
      size_t extent = (*cls)->size();
      // A partitioned manager's first variable ranges over the owned ids
      // only, so measure the dirty fraction against that (heuristic only;
      // both paths stay byte-identical).
      if (options_.domain_partition != nullptr &&
          &fb == &cq->query.from.front()) {
        extent = std::min(extent, options_.domain_partition->size());
      }
      domain_total += extent;
    }
    if (domain_total > 0 &&
        static_cast<double>(dirty_total) <=
            EffectiveDeltaFraction() * static_cast<double>(domain_total)) {
      Status delta = RefreshDelta(cq);
      if (delta.ok()) return delta;
      // Delta failed (e.g. an injected fault): the relation may be
      // half-spliced, so fall through to a full re-evaluation.
      full_reason = "delta_error";
    } else {
      full_reason = "dirty_fraction";
    }
  }
  return RefreshFull(cq, full_reason);
}

Status QueryManager::RefreshFull(Continuous* cq, const char* reason) {
  obs::TraceSpan span("qm/refresh_full", "ftl");
  Tick now = db_->Now();
  span.AnnotateU64("query_id", cq->id);
  span.AnnotateU64("tick", static_cast<uint64_t>(now));
  span.Annotate("reason", reason);
  if (options_.shard_id >= 0) {
    span.AnnotateU64("shard", static_cast<uint64_t>(options_.shard_id));
  }
  if (cq->evaluations == 0 || now > cq->expires_at) {
    // Re-anchor the window only at registration and on expiry. Update-
    // triggered refreshes keep the window so delta and full paths stay
    // byte-identical (and interval-cache fingerprints, which embed the
    // window, stay warm).
    cq->window_begin = now;
    cq->expires_at = TickSaturatingAdd(now, options_.horizon);
    // Entries keyed to windows the clock has outrun can never be probed
    // again; drop them instead of letting them crowd the cache.
    if (cache_ != nullptr) cache_->EvictWindowsEndingBefore(now);
  }
  const size_t dirty_total = DirtyTotal(cq->dirty_objects);
  auto profile =
      options_.enable_profiling ? std::make_shared<obs::QueryProfile>()
                                : nullptr;
  FtlEvaluator::Options opts = EvalOptions();
  ApplyPartition(&opts, cq->query);
  if (profile != nullptr) {
    profile->query = cq->query.ToString();
    profile->window = RenderWindow(cq->window_begin, cq->expires_at);
    profile->path = "full";
    profile->reason = reason;
    profile->refresh_seq = cq->evaluations + 1;
    profile->dirty_objects = dirty_total;
    profile->root.label = "EvaluateQuery";
    opts.profile = &profile->root;
  }
  const uint64_t t0 = obs::MonotonicNowNs();
  FtlEvaluator eval(*db_, opts);
  Result<TemporalRelation> evaluated = eval.EvaluateQueryUnprojected(
      cq->query, Interval(cq->window_begin, cq->expires_at));
  const uint64_t dur_ns = obs::MonotonicNowNs() - t0;
  if (!evaluated.ok()) {
    if (evaluated.status().code() != StatusCode::kResourceExhausted) {
      return evaluated.status();
    }
    // Budget exhausted mid-evaluation. The half-built relation was
    // discarded (truncating it would be unsound under negation —
    // docs/robustness.md); keep the previous materialized answer, serve
    // it as kStale, and leave dirty state in place so a post-cooldown
    // refresh recovers.
    NoteShed(cq, eval.degrade_reason(), now, evaluated.status().message(),
             "full", dur_ns);
    return Status::OK();
  }
  cq->full = std::move(*evaluated);
  if (profile != nullptr) {
    profile->arena_bytes = eval.stats().arena_bytes;
    profile->arena_heap_fallbacks = eval.stats().arena_heap_fallbacks;
  }
  cq->answer = cq->full.Project(cq->query.retrieve);
  cq->evaluated_at = now;
  cq->dirty = false;
  cq->dirty_objects.clear();
  cq->degrade = DegradeReason::kNone;
  cq->degrade_detail.clear();
  cq->first_dirty_at = -1;
  ++cq->evaluations;
  ++cq->full_evaluations;
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    ++totals_.full_evaluations;
  }
  if (profile != nullptr) {
    profile->total_ns = dur_ns;
    cq->last_profile = std::move(profile);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (registry.enabled()) {
    const QmRegistrySeries& series = QmRegistrySeries::Get();
    series.full_refreshes->Inc();
    series.full_latency->Observe(static_cast<double>(dur_ns) * 1e-9);
    CountFullRefreshReason(reason);
  }
  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
  if (slow_log.enabled()) {
    obs::SlowQueryLog::Entry entry;
    entry.query_id = cq->id;
    entry.query = cq->query.ToString();
    entry.path = "full";
    entry.duration_ns = dur_ns;
    entry.refresh_seq = cq->evaluations;
    entry.shard_id = options_.shard_id;
    entry.trace_id = span.context().trace_id;
    slow_log.MaybeRecord(std::move(entry));
  }
  return Status::OK();
}

Status QueryManager::RefreshDelta(Continuous* cq) {
  MOST_FAILPOINT("ftl/delta/refresh");
  obs::TraceSpan span("qm/refresh_delta", "ftl");
  Tick now = db_->Now();
  span.AnnotateU64("query_id", cq->id);
  span.AnnotateU64("tick", static_cast<uint64_t>(now));
  if (options_.shard_id >= 0) {
    span.AnnotateU64("shard", static_cast<uint64_t>(options_.shard_id));
  }
  Interval window(cq->window_begin, cq->expires_at);
  const size_t dirty_total = DirtyTotal(cq->dirty_objects);
  auto profile =
      options_.enable_profiling ? std::make_shared<obs::QueryProfile>()
                                : nullptr;
  if (profile != nullptr) {
    profile->query = cq->query.ToString();
    profile->window = RenderWindow(cq->window_begin, cq->expires_at);
    profile->path = "delta";
    profile->reason = "coalesced updates";
    profile->refresh_seq = cq->evaluations + 1;
    profile->dirty_objects = dirty_total;
    profile->root.label = "DeltaRefresh";
  }
  const uint64_t t0 = obs::MonotonicNowNs();
  const std::vector<std::string>& vars = cq->full.vars;
  // Dirty ids per relation column (null = column's class saw no update).
  std::vector<const std::set<ObjectId>*> col_dirty(vars.size(), nullptr);
  for (size_t i = 0; i < vars.size(); ++i) {
    for (const FromBinding& fb : cq->query.from) {
      if (fb.var == vars[i]) {
        auto it = cq->dirty_objects.find(fb.class_name);
        if (it != cq->dirty_objects.end()) col_dirty[i] = &it->second;
        break;
      }
    }
  }
  // 1. Evict every row binding a dirty object: those are exactly the rows
  //    an update can have changed (the relation is pointwise in its
  //    bindings), including rows of deleted objects, which the restricted
  //    passes will simply not re-derive.
  for (auto it = cq->full.rows.begin(); it != cq->full.rows.end();) {
    bool evict = false;
    for (size_t i = 0; i < vars.size() && !evict; ++i) {
      evict = col_dirty[i] != nullptr && col_dirty[i]->count(it->first[i]) > 0;
    }
    it = evict ? cq->full.rows.erase(it) : std::next(it);
  }
  // 2. One restricted pass per dirty column: variable i pinned to the
  //    dirty ids, every other domain unrestricted. A row binding dirty
  //    objects in several columns is re-derived by each of their passes
  //    with identical tick sets, so the splice dedupes by binding. A
  //    partitioned manager additionally pins the first FROM variable to
  //    the owned partition in every pass (and intersects the pass's dirty
  //    set with it when the dirty column *is* the partitioned variable),
  //    so the passes re-derive exactly the evicted rows of the
  //    partition-filtered relation (docs/sharding.md).
  const std::string* part_var =
      (options_.domain_partition != nullptr && !cq->query.from.empty())
          ? &cq->query.from.front().var
          : nullptr;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (col_dirty[i] == nullptr) continue;
    FtlEvaluator::Options opts = EvalOptions();
    ApplyPartition(&opts, cq->query);
    if (part_var != nullptr && vars[i] == *part_var) {
      auto owned_dirty = std::make_shared<std::set<ObjectId>>();
      for (ObjectId id : *col_dirty[i]) {
        if (options_.domain_partition->count(id) > 0) {
          owned_dirty->insert(id);
        }
      }
      // All dirty ids of this column are foreign: no owned row was
      // evicted by this column, nothing to re-derive for it.
      if (owned_dirty->empty()) continue;
      opts.domain_restrictions[vars[i]] = std::move(owned_dirty);
    } else {
      opts.domain_restrictions[vars[i]] =
          std::make_shared<const std::set<ObjectId>>(*col_dirty[i]);
    }
    if (profile != nullptr) {
      obs::ProfileNode* pass = profile->root.AddChild(
          "RestrictedPass " + vars[i] + " (" +
          std::to_string(col_dirty[i]->size()) + " dirty)");
      opts.profile = pass;
    }
    FtlEvaluator eval(*db_, opts);
    Result<TemporalRelation> part =
        eval.EvaluateQueryUnprojected(cq->query, window);
    if (!part.ok()) {
      if (part.status().code() != StatusCode::kResourceExhausted) {
        return part.status();
      }
      // Budget exhausted mid-delta. Every surviving row is exactly
      // correct (eviction plus completed splices never fabricate rows),
      // so the relation is a sound subset of the true answer: serve it
      // as kStale. dirty_objects stays populated, so a post-cooldown
      // refresh re-derives the missing rows.
      cq->answer = cq->full.Project(cq->query.retrieve);
      NoteShed(cq, eval.degrade_reason(), now, part.status().message(),
               "delta", obs::MonotonicNowNs() - t0);
      return Status::OK();
    }
    if (profile != nullptr) {
      profile->arena_bytes += eval.stats().arena_bytes;
      profile->arena_heap_fallbacks += eval.stats().arena_heap_fallbacks;
    }
    for (auto& [binding, when] : part->rows) {
      cq->full.rows.emplace(binding, std::move(when));
    }
  }
  cq->answer = cq->full.Project(cq->query.retrieve);
  const uint64_t dur_ns = obs::MonotonicNowNs() - t0;
  cq->evaluated_at = now;
  cq->dirty_objects.clear();
  cq->degrade = DegradeReason::kNone;
  cq->degrade_detail.clear();
  cq->first_dirty_at = -1;
  ++cq->evaluations;
  ++cq->delta_evaluations;
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    ++totals_.delta_evaluations;
  }
  if (profile != nullptr) {
    profile->total_ns = dur_ns;
    profile->root.duration_ns = dur_ns;
    profile->root.tuples = cq->full.rows.size();
    cq->last_profile = std::move(profile);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (registry.enabled()) {
    const QmRegistrySeries& series = QmRegistrySeries::Get();
    series.delta_refreshes->Inc();
    series.delta_latency->Observe(static_cast<double>(dur_ns) * 1e-9);
    series.dirty_set_size->Observe(static_cast<double>(dirty_total));
  }
  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
  if (slow_log.enabled()) {
    obs::SlowQueryLog::Entry entry;
    entry.query_id = cq->id;
    entry.query = cq->query.ToString();
    entry.path = "delta";
    entry.duration_ns = dur_ns;
    entry.refresh_seq = cq->evaluations;
    entry.shard_id = options_.shard_id;
    entry.trace_id = span.context().trace_id;
    slow_log.MaybeRecord(std::move(entry));
  }
  return Status::OK();
}

Result<std::vector<AnswerTuple>> QueryManager::ContinuousAnswer(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return ContinuousAnswerLocked(id);
}

Result<QueryManager::AnswerSnapshot> QueryManager::SnapshotContinuousAnswer(
    QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  Continuous& cq = it->second;
  if (NeedsRefresh(cq, db_->Now())) {
    MOST_RETURN_IF_ERROR(Refresh(&cq));
  }
  return AnswerSnapshot{cq.answer, cq.degrade, cq.evaluated_at};
}

QueryManager::ConfidenceColumns QueryManager::ResolveConfidenceColumns(
    const FtlQuery& query, const std::vector<std::string>& vars) const {
  // Resolved once per relation read; the per-row loop then only does
  // object lookups instead of rescanning query.from and the class
  // registry for every (row, column) pair.
  ConfidenceColumns cols;
  cols.columns.resize(vars.size());
  if (options_.staleness_horizon < 0) return cols;
  for (size_t i = 0; i < vars.size(); ++i) {
    for (const FromBinding& fb : query.from) {
      if (fb.var == vars[i]) {
        cols.columns[i].check = true;
        auto cls = db_->GetClass(fb.class_name);
        if (cls.ok()) cols.columns[i].cls = *cls;
        break;
      }
    }
  }
  return cols;
}

Confidence QueryManager::BindingConfidence(
    const ConfidenceColumns& cols, const std::vector<ObjectId>& binding,
    Tick now) const {
  if (options_.staleness_horizon < 0) return Confidence::kCertain;
  for (size_t i = 0; i < cols.columns.size() && i < binding.size(); ++i) {
    const ConfidenceColumns::Column& col = cols.columns[i];
    if (!col.check) continue;
    if (col.cls == nullptr) return Confidence::kStale;  // Class vanished.
    auto obj = col.cls->Get(binding[i]);
    // A deleted object is as silent as an object past the horizon.
    if (!obj.ok()) return Confidence::kStale;
    if (IsStale(**obj, now, options_.staleness_horizon)) {
      return Confidence::kStale;
    }
  }
  return Confidence::kCertain;
}

std::vector<AnswerTuple> QueryManager::FlattenAnswer(
    const FtlQuery& query, const TemporalRelation& relation,
    bool force_stale) const {
  Tick now = db_->Now();
  ConfidenceColumns cols = ResolveConfidenceColumns(query, relation.vars);
  std::vector<AnswerTuple> out;
  for (const auto& [binding, when] : relation.rows) {
    // Confidence is re-derived at read time, not cached at evaluation
    // time: objects drift into staleness as the clock advances with no
    // update (and pop back to certain on a fresh one) without any
    // re-evaluation.
    Confidence confidence = force_stale ? Confidence::kStale
                                        : BindingConfidence(cols, binding, now);
    for (const Interval& iv : when.intervals()) {
      out.push_back({binding, iv, confidence});
    }
  }
  return out;
}

void QueryManager::SetDomainPartition(
    std::shared_ptr<const std::set<ObjectId>> partition) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.domain_partition = std::move(partition);
}

Result<std::vector<AnswerTuple>> QueryManager::ContinuousAnswerLocked(
    QueryId id) {
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  Continuous& cq = it->second;
  if (NeedsRefresh(cq, db_->Now())) {
    MOST_RETURN_IF_ERROR(Refresh(&cq));
  }
  // While degraded the materialized relation is a previous or partial
  // answer: the engine will not vouch for any of it, so every tuple is
  // demoted to the may-answer regardless of per-object staleness.
  return FlattenAnswer(cq.query, cq.answer,
                       /*force_stale=*/cq.degrade != DegradeReason::kNone);
}

Result<std::vector<std::vector<ObjectId>>> QueryManager::CurrentAnswer(
    QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  MOST_ASSIGN_OR_RETURN(std::vector<AnswerTuple> tuples,
                        ContinuousAnswerLocked(id));
  Tick now = db_->Now();
  std::vector<std::vector<ObjectId>> out;
  for (const AnswerTuple& t : tuples) {
    if (t.confidence != Confidence::kCertain) continue;  // Must answers only.
    if (t.interval.Contains(now)) out.push_back(t.binding);
  }
  return out;
}

Result<std::vector<std::vector<ObjectId>>> QueryManager::PossibleAnswer(
    QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  MOST_ASSIGN_OR_RETURN(std::vector<AnswerTuple> tuples,
                        ContinuousAnswerLocked(id));
  Tick now = db_->Now();
  std::vector<std::vector<ObjectId>> out;
  for (const AnswerTuple& t : tuples) {
    if (t.interval.Contains(now)) out.push_back(t.binding);
  }
  return out;
}

Result<uint64_t> QueryManager::EvaluationCount(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  return it->second.evaluations;
}

Result<QueryManager::RefreshCounters> QueryManager::QueryRefreshCounters(
    QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  return RefreshCounters{it->second.delta_evaluations,
                         it->second.full_evaluations};
}

QueryManager::RefreshCounters QueryManager::TotalRefreshCounters() const {
  std::lock_guard<std::mutex> lock(totals_mu_);
  return totals_;
}

Result<QueryManager::DegradeInfo> QueryManager::QueryDegradeInfo(
    QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  const Continuous& cq = it->second;
  return DegradeInfo{cq.degrade, cq.degrade_detail, cq.degraded_at,
                     cq.shed_refreshes};
}

Result<std::string> QueryManager::Explain(QueryId id,
                                          bool include_timings) const {
  MOST_ASSIGN_OR_RETURN(std::shared_ptr<const obs::QueryProfile> profile,
                        Profile(id));
  return profile->Render(include_timings);
}

Result<std::shared_ptr<const obs::QueryProfile>> QueryManager::Profile(
    QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  if (it->second.last_profile == nullptr) {
    return Status::InvalidArgument(
        "no profile recorded for query " + std::to_string(id) +
        " (Options::enable_profiling is off)");
  }
  return it->second.last_profile;
}

Status QueryManager::TickAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Tick now = db_->Now();
  obs::TraceSpan span("qm/tick_all", "ftl");
  span.AnnotateU64("tick", static_cast<uint64_t>(now));
  if (options_.shard_id >= 0) {
    span.AnnotateU64("shard", static_cast<uint64_t>(options_.shard_id));
  }
  obs::TelemetryRecorder::Global().OnTick(now);
  std::vector<Continuous*> stale;
  for (auto& [id, cq] : continuous_) {
    if (NeedsRefresh(cq, now)) stale.push_back(&cq);
  }
  // Admission control: with a bounded refresh queue, a batch larger than
  // the bound sheds its longest-stale entries (reason kQueue) — they keep
  // serving their answers as kStale and re-enter the queue next tick.
  // Longest-stale-first shedding keeps the bound from making *every*
  // answer a little stale: the freshest work completes, the oldest (whose
  // answers are already furthest behind) degrades explicitly.
  const size_t queue_limit = EffectiveQueueLimit();
  if (queue_limit > 0 && stale.size() > queue_limit) {
    std::stable_sort(stale.begin(), stale.end(),
                     [](const Continuous* a, const Continuous* b) {
                       // -1 (expired window / forced) sorts oldest; ties
                       // break by id for determinism.
                       if (a->first_dirty_at != b->first_dirty_at) {
                         return a->first_dirty_at < b->first_dirty_at;
                       }
                       return a->id < b->id;
                     });
    const size_t shed_n = stale.size() - queue_limit;
    for (size_t i = 0; i < shed_n; ++i) {
      NoteShed(stale[i], DegradeReason::kQueue, now,
               "refresh queue over limit (" + std::to_string(stale.size()) +
                   " stale > " + std::to_string(queue_limit) + ")",
               "queue", 0);
    }
    stale.erase(stale.begin(), stale.begin() + shed_n);
  }
  // One batch through the pool: map nodes are stable and each worker
  // refreshes a distinct entry, so no further locking is needed. Each
  // refresh may itself fan its atomic extraction out to the same pool
  // (ParallelFor callers participate, so nesting cannot deadlock).
  std::vector<Status> statuses(stale.size());
  const obs::TraceContext batch_ctx = span.context();
  ParallelFor(pool_.get(), stale.size(), [&](size_t i) {
    // Pool threads have no ambient context; install the batch span's so
    // each Refresh's span parents under qm/tick_all across threads.
    obs::TraceContextGuard guard(batch_ctx);
    statuses[i] = Refresh(stale[i]);
  });
  for (const Status& s : statuses) {
    MOST_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<QueryManager::QueryId> QueryManager::RegisterTrigger(
    const FtlQuery& query, TriggerAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  MOST_ASSIGN_OR_RETURN(QueryId id, RegisterContinuousLocked(query));
  continuous_.at(id).action = std::move(action);
  continuous_.at(id).last_polled = db_->Now() - 1;
  return id;
}

Status QueryManager::Poll() {
  // Collect pending firings under the lock, fire after releasing it: an
  // action may update the database (whose listener re-enters OnUpdate) or
  // register further queries, which must not happen while iterating.
  struct PendingFire {
    TriggerAction action;
    std::vector<ObjectId> binding;
    Tick at;
  };
  std::vector<PendingFire> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Tick now = db_->Now();
    for (auto& [id, cq] : continuous_) {
      if (!cq.action) continue;
      if (NeedsRefresh(cq, now)) {
        MOST_RETURN_IF_ERROR(Refresh(&cq));
      }
      for (const auto& [binding, when] : cq.answer.rows) {
        for (const Interval& iv : when.intervals()) {
          if (iv.begin > now) break;  // Intervals sorted; nothing entered yet.
          if (iv.end < cq.last_polled + 1) continue;  // Fully in the past.
          Tick entered = std::max(iv.begin, cq.last_polled + 1);
          auto fired_it = cq.fired.find(binding);
          if (fired_it != cq.fired.end() && fired_it->second >= iv.begin) {
            continue;  // Already fired for this interval.
          }
          cq.fired[binding] = entered;
          pending.push_back({cq.action, binding, entered});
        }
      }
      cq.last_polled = now;
      // GC fired state the advancing clock has made unreachable. An entry
      // can only suppress a future fire for an interval containing a tick
      // >= now (everything earlier is skipped by the last_polled guard),
      // so entries whose binding left the answer (deleted / updated away)
      // or whose intervals all ended before now are dead weight — without
      // this the map grows with every binding the trigger ever fired on.
      for (auto fit = cq.fired.begin(); fit != cq.fired.end();) {
        auto row = cq.answer.rows.find(fit->first);
        bool live = row != cq.answer.rows.end() && !row->second.empty() &&
                    row->second.Max() >= now;
        fit = live ? std::next(fit) : cq.fired.erase(fit);
      }
    }
  }
  for (PendingFire& fire : pending) {
    fire.action(fire.binding, fire.at);
  }
  return Status::OK();
}

Result<size_t> QueryManager::TriggerFiredEntries(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("continuous query " + std::to_string(id));
  }
  return it->second.fired.size();
}

Result<QueryManager::QueryId> QueryManager::RegisterPersistent(
    const FtlQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryId id = next_id_++;
  Persistent pq;
  pq.query = query;
  pq.anchored_at = db_->Now();
  // Initial snapshot of every object of the referenced classes.
  for (const FromBinding& fb : query.from) {
    MOST_ASSIGN_OR_RETURN(const ObjectClass* cls, db_->GetClass(fb.class_name));
    for (const auto& [oid, obj] : cls->objects()) {
      for (const auto& [attr, dyn] : obj.dynamics()) {
        pq.recordings[{fb.class_name, oid, attr}].timeline.emplace_back(
            pq.anchored_at, dyn);
      }
      for (const auto& [attr, val] : obj.statics()) {
        if (!val.is_numeric()) continue;
        pq.recordings[{fb.class_name, oid, attr}].timeline.emplace_back(
            pq.anchored_at,
            DynamicAttribute(val.AsDouble().value(), pq.anchored_at,
                             TimeFunction()));
      }
    }
  }
  persistent_.emplace(id, std::move(pq));
  return id;
}

Result<std::unique_ptr<MostDatabase>> QueryManager::BuildHistoryDatabase(
    const Persistent& pq) const {
  auto shadow = std::make_unique<MostDatabase>(pq.anchored_at);
  for (const auto& [name, polygon] : db_->regions()) {
    MOST_RETURN_IF_ERROR(shadow->DefineRegion(name, polygon));
  }
  Tick history_end =
      TickSaturatingAdd(pq.anchored_at, options_.horizon);

  for (const FromBinding& fb : pq.query.from) {
    if (shadow->HasClass(fb.class_name)) continue;
    MOST_ASSIGN_OR_RETURN(const ObjectClass* cls, db_->GetClass(fb.class_name));
    // Re-declare the class (position attributes are added implicitly for
    // spatial classes, so filter them out of the explicit list).
    std::vector<AttributeDecl> decls;
    for (const AttributeDecl& d : cls->attributes()) {
      if (d.name == kAttrX || d.name == kAttrY) continue;
      decls.push_back(d);
    }
    MOST_RETURN_IF_ERROR(
        shadow->CreateClass(fb.class_name, decls, cls->spatial()).status());

    for (const auto& [oid, obj] : cls->objects()) {
      MOST_ASSIGN_OR_RETURN(MostObject * mirror,
                            shadow->RestoreObject(fb.class_name, oid));
      // Non-numeric statics keep their current value (static history is
      // recorded only for numeric attributes).
      for (const auto& [attr, val] : obj.statics()) {
        mirror->SetStatic(attr, val);
      }
      // Dynamic (and recorded numeric static) attributes: stitch the
      // recorded timeline into one piecewise function with resets.
      for (const auto& [attr, dyn] : obj.dynamics()) {
        auto rec = pq.recordings.find({fb.class_name, oid, attr});
        if (rec == pq.recordings.end()) {
          mirror->SetDynamic(attr, dyn);  // Created after anchoring.
          continue;
        }
        const auto& timeline = rec->second.timeline;
        std::vector<TimeFunction::Piece> pieces;
        for (size_t i = 0; i < timeline.size(); ++i) {
          Tick seg_begin = std::max(timeline[i].first, pq.anchored_at);
          Tick seg_end = (i + 1 < timeline.size())
                             ? timeline[i + 1].first - 1
                             : history_end;
          if (seg_begin > seg_end) continue;
          for (const auto& lp :
               timeline[i].second.LinearPieces(Interval(seg_begin, seg_end))) {
            TimeFunction::Piece piece;
            piece.start = lp.ticks.begin - pq.anchored_at;
            piece.slope = lp.slope;
            piece.has_reset = true;
            piece.reset_value = lp.value_at_begin;
            pieces.push_back(piece);
          }
        }
        if (pieces.empty() || pieces.front().start != 0) {
          // Extend the first record backwards to the anchor.
          if (!pieces.empty()) {
            TimeFunction::Piece lead = pieces.front();
            double backstep =
                static_cast<double>(pieces.front().start) * lead.slope;
            lead.start = 0;
            lead.reset_value -= backstep;
            pieces.insert(pieces.begin(), lead);
          }
        }
        if (pieces.empty()) {
          mirror->SetDynamic(attr, dyn);
          continue;
        }
        MOST_ASSIGN_OR_RETURN(TimeFunction stitched,
                              TimeFunction::Piecewise(std::move(pieces)));
        mirror->SetDynamic(
            attr, DynamicAttribute(0.0, pq.anchored_at, std::move(stitched)));
      }
      // Recorded numeric statics become constant-piecewise dynamics so the
      // evaluated history sees their changes over time.
      for (const auto& [attr, val] : obj.statics()) {
        auto rec = pq.recordings.find({fb.class_name, oid, attr});
        if (rec == pq.recordings.end()) continue;
        const auto& timeline = rec->second.timeline;
        std::vector<TimeFunction::Piece> pieces;
        for (size_t i = 0; i < timeline.size(); ++i) {
          TimeFunction::Piece piece;
          piece.start =
              std::max(timeline[i].first, pq.anchored_at) - pq.anchored_at;
          piece.slope = 0.0;
          piece.has_reset = true;
          piece.reset_value = timeline[i].second.value();
          if (!pieces.empty() && pieces.back().start == piece.start) {
            pieces.back() = piece;
          } else {
            pieces.push_back(piece);
          }
        }
        if (!pieces.empty() && pieces.front().start == 0) {
          MOST_ASSIGN_OR_RETURN(TimeFunction stitched,
                                TimeFunction::Piecewise(std::move(pieces)));
          mirror->SetDynamic(attr, DynamicAttribute(0.0, pq.anchored_at,
                                                    std::move(stitched)));
        }
      }
    }
  }
  return shadow;
}

Result<std::vector<AnswerTuple>> QueryManager::PersistentAnswer(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = persistent_.find(id);
  if (it == persistent_.end()) {
    return Status::NotFound("persistent query " + std::to_string(id));
  }
  const Persistent& pq = it->second;
  MOST_ASSIGN_OR_RETURN(std::unique_ptr<MostDatabase> shadow,
                        BuildHistoryDatabase(pq));
  FtlEvaluator eval(*shadow);
  MOST_ASSIGN_OR_RETURN(
      TemporalRelation rel,
      eval.EvaluateQuery(pq.query,
                         Interval(pq.anchored_at,
                                  TickSaturatingAdd(pq.anchored_at,
                                                    options_.horizon))));
  Tick now = db_->Now();
  // Staleness is judged against the live database, not the shadow
  // history: a silent object casts doubt on answers derived from its
  // recorded (and extrapolated) timeline too.
  ConfidenceColumns cols = ResolveConfidenceColumns(pq.query, rel.vars);
  std::vector<AnswerTuple> out;
  for (const auto& [binding, when] : rel.rows) {
    Confidence confidence = BindingConfidence(cols, binding, now);
    for (const Interval& iv : when.intervals()) {
      out.push_back({binding, iv, confidence});
    }
  }
  return out;
}

}  // namespace most
