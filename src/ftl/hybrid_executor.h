#ifndef MOST_FTL_HYBRID_EXECUTOR_H_
#define MOST_FTL_HYBRID_EXECUTOR_H_

#include <memory>
#include <set>
#include <string>

#include "core/most_on_dbms.h"
#include "ftl/ast.h"
#include "ftl/eval.h"

namespace most {

/// Section 5.1, final paragraph: processing FTL formulas when the objects
/// live in a MOST table on top of the host DBMS. "In the given FTL formula
/// f, we identify the maximal non-temporal subformulas ... we compute this
/// relation by using the decomposition method for non-temporal queries
/// described above. All the relations computed in this fashion are
/// combined using the procedure in the appendix."
///
/// This executor handles single-variable queries over one MOST table:
///  1. Top-level conjuncts of the WHERE formula that are non-temporal and
///     time-invariant (static attribute comparisons) are translated into a
///     host WHERE clause and evaluated by the DBMS — using its indexes and
///     the Section 5.1 machinery.
///  2. Only the qualifying rows are materialized as MOST objects, and the
///     residual (temporal) formula runs through the appendix's interval
///     algorithm on that reduced object set.
///
/// Dynamic columns named X.POSITION / Y.POSITION become the object's
/// position; other dynamic columns become dynamic attributes; statics stay
/// static. Row ids become object ids, so results are directly comparable
/// with a full in-memory evaluation.
class HybridFtlExecutor {
 public:
  HybridFtlExecutor(MostOnDbms* most, Clock* clock,
                    std::map<std::string, Polygon> regions)
      : most_(most), clock_(clock), regions_(std::move(regions)) {}

  struct ExecStats {
    size_t host_rows_qualifying = 0;  ///< Rows surviving the pushdown.
    size_t table_rows = 0;
    size_t pushed_conjuncts = 0;      ///< Conjuncts answered by the DBMS.
    QueryStats host_stats;            ///< Host-side execution counters.
  };

  /// Evaluates a single-variable FTL query whose FROM class names a MOST
  /// table of `most_`.
  Result<TemporalRelation> Evaluate(const FtlQuery& query, Interval window,
                                    ExecStats* stats = nullptr);

 private:
  /// Translates an FTL atomic comparison over time-invariant terms of
  /// `var` (static attributes, value/updatetime sub-attributes) into a
  /// host expression; returns null if not translatable.
  static ExprPtr TranslateStaticConjunct(
      const FormulaPtr& f, const std::string& var,
      const std::set<std::string>& static_columns);

  MostOnDbms* most_;
  Clock* clock_;
  std::map<std::string, Polygon> regions_;
};

}  // namespace most

#endif  // MOST_FTL_HYBRID_EXECUTOR_H_
