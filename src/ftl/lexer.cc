#include "ftl/lexer.h"

#include <cctype>
#include <cstdlib>

namespace most {

bool Token::IsKeyword(std::string_view keyword) const {
  if (kind != TokenKind::kIdent) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  auto push = [&](TokenKind kind, size_t offset, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, start, source.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n &&
             (std::isdigit(static_cast<unsigned char>(source[j])) ||
              (source[j] == '.' && !seen_dot && j + 1 < n &&
               std::isdigit(static_cast<unsigned char>(source[j + 1]))))) {
        if (source[j] == '.') seen_dot = true;
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = source.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      size_t j = i + 1;
      while (j < n && source[j] != c) ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kString, start, source.substr(i + 1, j - i - 1));
      i = j + 1;
      continue;
    }
    auto two = [&](char next) { return i + 1 < n && source[i + 1] == next; };
    switch (c) {
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case ':':
        if (two('=')) {
          push(TokenKind::kAssignOp, start);
          i += 2;
        } else {
          return Status::ParseError("stray ':' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (two('-')) {
          // The paper writes the assignment quantifier [x <- q].
          push(TokenKind::kAssignOp, start);
          i += 2;
        } else if (two('>')) {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("stray '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace most
