#include "ftl/eval.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string_view>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "ftl/interval_cache.h"
#include "ftl/spatial_eval.h"
#include "ftl/term_eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace most {

struct FtlEvaluator::Domains {
  /// Object class extent for each object variable.
  std::map<std::string, const ObjectClass*> classes;
  /// Optional per-variable candidate restriction installed by the AND
  /// semi-join: only these ids can contribute to the enclosing join, so
  /// enumeration skips everything else. Soundness: every relation row is
  /// computed per binding independently, and rows outside the filter
  /// cannot match the already-evaluated sibling.
  std::map<std::string, std::shared_ptr<const std::set<ObjectId>>> filters;
};

namespace {

constexpr double kCmpEps = 1e-9;

std::vector<std::string> SortedVars(const std::set<std::string>& s) {
  return std::vector<std::string>(s.begin(), s.end());
}

/// Shared numeric/ordinal comparison semantics for both evaluators:
/// numeric comparisons absorb float noise with a small epsilon, everything
/// else compares exactly.
Result<bool> CompareFtlValues(FtlFormula::CmpOp op, const Value& lhs,
                              const Value& rhs) {
  if (lhs.is_numeric() && rhs.is_numeric()) {
    double diff = lhs.AsDouble().value() - rhs.AsDouble().value();
    switch (op) {
      case FtlFormula::CmpOp::kLe:
        return diff <= kCmpEps;
      case FtlFormula::CmpOp::kLt:
        return diff < -kCmpEps;
      case FtlFormula::CmpOp::kGe:
        return diff >= -kCmpEps;
      case FtlFormula::CmpOp::kGt:
        return diff > kCmpEps;
      case FtlFormula::CmpOp::kEq:
        return std::abs(diff) <= kCmpEps;
      case FtlFormula::CmpOp::kNe:
        return std::abs(diff) > kCmpEps;
    }
    return Status::Internal("bad cmp op");
  }
  if (lhs.type() != rhs.type()) {
    return Status::TypeError("comparison between " +
                             std::string(ValueTypeToString(lhs.type())) +
                             " and " +
                             std::string(ValueTypeToString(rhs.type())));
  }
  int c = lhs.Compare(rhs);
  switch (op) {
    case FtlFormula::CmpOp::kLe:
      return c <= 0;
    case FtlFormula::CmpOp::kLt:
      return c < 0;
    case FtlFormula::CmpOp::kGe:
      return c >= 0;
    case FtlFormula::CmpOp::kGt:
      return c > 0;
    case FtlFormula::CmpOp::kEq:
      return c == 0;
    case FtlFormula::CmpOp::kNe:
      return c != 0;
  }
  return Status::Internal("bad cmp op");
}

using ClassMap = std::map<std::string, const ObjectClass*>;
using FilterMap =
    std::map<std::string, std::shared_ptr<const std::set<ObjectId>>>;

/// Calls fn(binding, instantiation) for every tuple in the cross product of
/// the variables' class extents (restricted per-variable by `filters`).
/// Bindings are parallel to `vars`.
Status EnumerateInstantiations(
    const std::vector<std::string>& vars, const ClassMap& classes,
    const FilterMap& filters, size_t max_count, size_t* counter,
    const std::function<Status(const std::vector<ObjectId>&,
                               const Instantiation&)>& fn) {
  if (vars.empty()) {
    ++*counter;
    return fn({}, {});
  }
  // Materialize per-variable candidate lists (filtered).
  std::vector<std::vector<std::pair<ObjectId, const MostObject*>>> extents(
      vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    auto it = classes.find(vars[i]);
    if (it == classes.end()) {
      return Status::InvalidArgument("object variable '" + vars[i] +
                                     "' is not bound by the FROM clause");
    }
    auto filter_it = filters.find(vars[i]);
    if (filter_it != filters.end() && filter_it->second != nullptr) {
      for (ObjectId id : *filter_it->second) {
        auto obj = it->second->Get(id);
        if (obj.ok()) extents[i].emplace_back(id, *obj);
      }
    } else {
      for (const auto& [id, obj] : it->second->objects()) {
        extents[i].emplace_back(id, &obj);
      }
    }
    if (extents[i].empty()) return Status::OK();  // Empty cross product.
  }
  std::vector<size_t> odometer(vars.size(), 0);
  std::vector<ObjectId> binding(vars.size());
  Instantiation inst;
  while (true) {
    if (++*counter > max_count) {
      return Status::OutOfRange("instantiation limit exceeded (" +
                                std::to_string(max_count) + ")");
    }
    for (size_t i = 0; i < vars.size(); ++i) {
      binding[i] = extents[i][odometer[i]].first;
      inst[vars[i]] = extents[i][odometer[i]].second;
    }
    MOST_RETURN_IF_ERROR(fn(binding, inst));
    // Advance odometer.
    size_t d = vars.size();
    while (d > 0) {
      --d;
      if (++odometer[d] < extents[d].size()) break;
      odometer[d] = 0;
      if (d == 0) return Status::OK();
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel, cache-aware atomic extraction.
//
// Atomic predicates are solved per variable instantiation, and
// instantiations are independent of each other, so the extraction is
// partitioned across a thread pool and the per-binding interval sets are
// merged back in enumeration order. The merge target is a std::map keyed by
// the binding, so the resulting relation is byte-identical to the serial
// path no matter how the work was scheduled. Solved sets are also cached by
// (predicate fingerprint, binding) so a re-evaluation after an update only
// re-solves the objects that were invalidated.
// ---------------------------------------------------------------------------

/// Lossless fingerprint rendering of a double (hex mantissa), so two
/// distinct assigned values can never alias in the cache the way a rounded
/// decimal print could.
void AppendHexDouble(double v, std::string* out) {
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::hex);
  out->append(buf, ptr);
  out->push_back('|');
}

/// Appends the exact values of every literal in the term. ToString()
/// renders literals in decimal (fine for printing, lossy for keying);
/// fingerprints append this suffix to disambiguate.
void AppendTermLiterals(const TermPtr& term, std::string* out) {
  if (term == nullptr) return;
  if (term->kind() == FtlTerm::Kind::kLiteral &&
      term->literal().is_numeric()) {
    AppendHexDouble(term->literal().AsDouble().value(), out);
  }
  for (const TermPtr& child : term->children()) {
    AppendTermLiterals(child, out);
  }
}

void AppendWindow(Interval window, std::string* out) {
  out->push_back('@');
  out->append(std::to_string(window.begin));
  out->push_back(',');
  out->append(std::to_string(window.end));
}

/// Region geometry folded into the fingerprint: DefineRegion may rebind a
/// name to a new polygon without any object update firing, so the cache
/// must key on the shape itself, not the name.
void AppendPolygon(const Polygon& polygon, std::string* out) {
  for (const Point2& p : polygon.vertices()) {
    AppendHexDouble(p.x, out);
    AppendHexDouble(p.y, out);
  }
}

/// One unit of atomic-extraction work: a fully materialized instantiation.
struct AtomicJob {
  std::vector<ObjectId> binding;
  Instantiation inst;
};

Result<std::vector<AtomicJob>> MaterializeJobs(
    const std::vector<std::string>& vars, const ClassMap& classes,
    const FilterMap& filters, size_t max_count, size_t* counter) {
  std::vector<AtomicJob> jobs;
  MOST_RETURN_IF_ERROR(EnumerateInstantiations(
      vars, classes, filters, max_count, counter,
      [&](const std::vector<ObjectId>& binding, const Instantiation& inst) {
        jobs.push_back({binding, inst});
        return Status::OK();
      }));
  return jobs;
}

/// Solve-loop batch size between budget checks: small enough that an
/// exhausted budget aborts within a few hundred microseconds of work,
/// large enough that the check is free relative to the batch.
constexpr size_t kBudgetBatchJobs = 4096;

/// Solves one atomic relation over pre-materialized jobs: probes the cache,
/// partitions the misses across the pool, stores them back, and merges
/// every row in deterministic binding order. `fingerprint` empty disables
/// caching for this atom. `solve` must be a pure function of the job (it
/// runs concurrently on pool workers). `checkpoint` (may be empty) is the
/// evaluator's budget gate, polled between batches on the calling thread
/// so the quadratic loop cannot sail past its deadline.
Result<TemporalRelation> SolveAtomicRelation(
    std::vector<std::string> vars, const std::vector<AtomicJob>& jobs,
    const std::string& fingerprint, const FtlEvaluator::Options& options,
    FtlEvalStats* stats,
    const std::function<Result<IntervalSet>(const AtomicJob&)>& solve,
    const std::function<Status(size_t)>& checkpoint = {}) {
  TemporalRelation out;
  out.vars = std::move(vars);

  std::vector<IntervalSet> results(jobs.size());
  std::vector<char> have(jobs.size(), 0);
  IntervalCache* cache =
      fingerprint.empty() ? nullptr : options.interval_cache;
  if (cache != nullptr) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (cache->Lookup(fingerprint, jobs[i].binding, &results[i])) {
        have[i] = 1;
        ++stats->cache_hits;
      } else {
        ++stats->cache_misses;
      }
    }
  }
  std::vector<size_t> misses;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!have[i]) misses.push_back(i);
  }

  std::vector<Status> errors(misses.size());
  for (size_t base = 0; base < misses.size(); base += kBudgetBatchJobs) {
    if (checkpoint) MOST_RETURN_IF_ERROR(checkpoint(0));
    const size_t batch = std::min(kBudgetBatchJobs, misses.size() - base);
    ParallelFor(options.pool, batch, [&](size_t k) {
      const size_t m = base + k;
      const AtomicJob& job = jobs[misses[m]];
      Result<IntervalSet> r = solve(job);
      if (!r.ok()) {
        errors[m] = r.status();
        return;
      }
      results[misses[m]] = std::move(r).value();
      if (cache != nullptr) {
        cache->Insert(fingerprint, job.binding, results[misses[m]]);
      }
    });
  }
  stats->atomic_evaluations += misses.size();
  for (const Status& s : errors) {
    MOST_RETURN_IF_ERROR(s);
  }
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!results[i].empty()) {
      out.rows.emplace(jobs[i].binding, std::move(results[i]));
    }
    if (checkpoint && (i % kBudgetBatchJobs) == kBudgetBatchJobs - 1) {
      MOST_RETURN_IF_ERROR(checkpoint(out.rows.size()));
    }
  }
  return out;
}

/// Expands a relation to a superset of variables: missing variables range
/// over their full class extents (cross product).
Result<TemporalRelation> ExpandToVars(const TemporalRelation& rel,
                                      const std::vector<std::string>& target,
                                      const ClassMap& classes,
                                      const FilterMap& filters,
                                      size_t max_count, size_t* counter) {
  if (rel.vars == target) return rel;
  std::vector<std::string> missing;
  for (const std::string& v : target) {
    if (std::find(rel.vars.begin(), rel.vars.end(), v) == rel.vars.end()) {
      missing.push_back(v);
    }
  }
  // Positions of the original columns within the target layout.
  std::vector<size_t> orig_pos(rel.vars.size());
  std::vector<size_t> miss_pos(missing.size());
  for (size_t i = 0; i < rel.vars.size(); ++i) {
    orig_pos[i] = std::find(target.begin(), target.end(), rel.vars[i]) -
                  target.begin();
  }
  for (size_t i = 0; i < missing.size(); ++i) {
    miss_pos[i] = std::find(target.begin(), target.end(), missing[i]) -
                  target.begin();
  }
  TemporalRelation out;
  out.vars = target;
  Status status = EnumerateInstantiations(
      missing, classes, filters, max_count, counter,
      [&](const std::vector<ObjectId>& mbinding, const Instantiation&) {
        for (const auto& [binding, when] : rel.rows) {
          std::vector<ObjectId> full(target.size());
          for (size_t i = 0; i < binding.size(); ++i) {
            full[orig_pos[i]] = binding[i];
          }
          for (size_t i = 0; i < mbinding.size(); ++i) {
            full[miss_pos[i]] = mbinding[i];
          }
          out.rows.emplace(std::move(full), when);
        }
        return Status::OK();
      });
  MOST_RETURN_IF_ERROR(status);
  return out;
}

std::vector<std::string> UnionVars(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  std::set<std::string> s(a.begin(), a.end());
  s.insert(b.begin(), b.end());
  return SortedVars(s);
}

/// Natural join on shared variables with per-row interval intersection
/// (the appendix's AND rule), as a sort-merge join: both sides' rows are
/// flattened into arena-backed (key, row*) runs sorted by the shared-
/// variable key, then merged with galloping so a side whose keys are
/// sparse in the other is skipped in logarithmic hops instead of row by
/// row. Matching runs produce the same pairs (and the same join_pairs
/// count) as the old map-index scan; Union over canonical interval sets
/// is order-independent, so the output relation is byte-identical.
TemporalRelation JoinAnd(const TemporalRelation& r1,
                         const TemporalRelation& r2, FtlEvalStats* stats,
                         BumpArena* arena) {
  TemporalRelation out;
  out.vars = UnionVars(r1.vars, r2.vars);

  // Shared variable positions in each input.
  std::vector<size_t> shared1, shared2;
  for (size_t i = 0; i < r1.vars.size(); ++i) {
    auto it = std::find(r2.vars.begin(), r2.vars.end(), r1.vars[i]);
    if (it != r2.vars.end()) {
      shared1.push_back(i);
      shared2.push_back(it - r2.vars.begin());
    }
  }
  // Column positions in the output layout.
  std::vector<size_t> pos1(r1.vars.size()), pos2(r2.vars.size());
  for (size_t i = 0; i < r1.vars.size(); ++i) {
    pos1[i] = std::find(out.vars.begin(), out.vars.end(), r1.vars[i]) -
              out.vars.begin();
  }
  for (size_t i = 0; i < r2.vars.size(); ++i) {
    pos2[i] = std::find(out.vars.begin(), out.vars.end(), r2.vars[i]) -
              out.vars.begin();
  }

  const size_t k = shared1.size();
  using Row = std::pair<const std::vector<ObjectId>, IntervalSet>;

  ArenaVector<const Row*> rows1{ArenaAllocator<const Row*>(arena)};
  ArenaVector<const Row*> rows2{ArenaAllocator<const Row*>(arena)};
  ArenaVector<ObjectId> keys1{ArenaAllocator<ObjectId>(arena)};
  ArenaVector<ObjectId> keys2{ArenaAllocator<ObjectId>(arena)};
  rows1.reserve(r1.rows.size());
  keys1.reserve(k * r1.rows.size());
  for (const Row& row : r1.rows) {
    rows1.push_back(&row);
    for (size_t i = 0; i < k; ++i) keys1.push_back(row.first[shared1[i]]);
  }
  rows2.reserve(r2.rows.size());
  keys2.reserve(k * r2.rows.size());
  for (const Row& row : r2.rows) {
    rows2.push_back(&row);
    for (size_t i = 0; i < k; ++i) keys2.push_back(row.first[shared2[i]]);
  }
  const size_t m = rows1.size(), n = rows2.size();

  // Row order sorted by key; ties keep binding (map) order.
  ArenaVector<uint32_t> ord1{ArenaAllocator<uint32_t>(arena)};
  ArenaVector<uint32_t> ord2{ArenaAllocator<uint32_t>(arena)};
  ord1.resize(m);
  ord2.resize(n);
  for (size_t i = 0; i < m; ++i) ord1[i] = static_cast<uint32_t>(i);
  for (size_t j = 0; j < n; ++j) ord2[j] = static_cast<uint32_t>(j);
  auto key_cmp = [k](const ObjectId* a, const ObjectId* b) -> int {
    for (size_t t = 0; t < k; ++t) {
      if (a[t] < b[t]) return -1;
      if (a[t] > b[t]) return 1;
    }
    return 0;
  };
  auto sort_by_key = [&](ArenaVector<uint32_t>& ord,
                         const ArenaVector<ObjectId>& keys) {
    std::sort(ord.begin(), ord.end(), [&](uint32_t a, uint32_t b) {
      int c = key_cmp(keys.data() + a * k, keys.data() + b * k);
      return c != 0 ? c < 0 : a < b;
    });
  };
  sort_by_key(ord1, keys1);
  sort_by_key(ord2, keys2);

  // First position >= from whose key is not lexicographically below
  // `target`: exponential probe, then binary search over the bracket.
  auto gallop = [&](const ArenaVector<uint32_t>& ord,
                    const ArenaVector<ObjectId>& keys, size_t from,
                    size_t size, const ObjectId* target) -> size_t {
    auto below = [&](size_t idx) {
      return key_cmp(keys.data() + ord[idx] * k, target) < 0;
    };
    if (from >= size || !below(from)) return from;
    size_t step = 1, prev = from, cur = from + 1;
    while (cur < size && below(cur)) {
      prev = cur;
      step <<= 1;
      cur = from + step;
    }
    size_t lo = prev + 1, hi = std::min(cur, size);
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (below(mid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  size_t i = 0, j = 0;
  while (i < m && j < n) {
    const ObjectId* ki = keys1.data() + ord1[i] * k;
    const ObjectId* kj = keys2.data() + ord2[j] * k;
    int c = key_cmp(ki, kj);
    if (c < 0) {
      i = gallop(ord1, keys1, i + 1, m, kj);
      continue;
    }
    if (c > 0) {
      j = gallop(ord2, keys2, j + 1, n, ki);
      continue;
    }
    // Equal keys: delimit both runs and cross them.
    size_t i_end = i + 1;
    while (i_end < m && key_cmp(keys1.data() + ord1[i_end] * k, ki) == 0) {
      ++i_end;
    }
    size_t j_end = j + 1;
    while (j_end < n && key_cmp(keys2.data() + ord2[j_end] * k, ki) == 0) {
      ++j_end;
    }
    for (size_t a = i; a < i_end; ++a) {
      const Row* row1 = rows1[ord1[a]];
      for (size_t b = j; b < j_end; ++b) {
        const Row* row2 = rows2[ord2[b]];
        ++stats->join_pairs;
        IntervalSet when = row1->second.Intersect(row2->second);
        if (when.empty()) continue;
        std::vector<ObjectId> merged(out.vars.size());
        for (size_t t = 0; t < row1->first.size(); ++t) {
          merged[pos1[t]] = row1->first[t];
        }
        for (size_t t = 0; t < row2->first.size(); ++t) {
          merged[pos2[t]] = row2->first[t];
        }
        auto [pos, inserted] = out.rows.emplace(std::move(merged), when);
        if (!inserted) pos->second = pos->second.Union(when);
      }
    }
    i = i_end;
    j = j_end;
  }
  return out;
}

const char* FormulaOpName(FtlFormula::Kind kind) {
  switch (kind) {
    case FtlFormula::Kind::kBoolLit:
      return "BoolLit";
    case FtlFormula::Kind::kCompare:
      return "Compare";
    case FtlFormula::Kind::kInside:
      return "Inside";
    case FtlFormula::Kind::kOutside:
      return "Outside";
    case FtlFormula::Kind::kWithinSphere:
      return "WithinSphere";
    case FtlFormula::Kind::kAnd:
      return "And";
    case FtlFormula::Kind::kOr:
      return "Or";
    case FtlFormula::Kind::kNot:
      return "Not";
    case FtlFormula::Kind::kUntil:
      return "Until";
    case FtlFormula::Kind::kUntilWithin:
      return "UntilWithin";
    case FtlFormula::Kind::kNexttime:
      return "Nexttime";
    case FtlFormula::Kind::kEventually:
      return "Eventually";
    case FtlFormula::Kind::kEventuallyWithin:
      return "EventuallyWithin";
    case FtlFormula::Kind::kEventuallyAfter:
      return "EventuallyAfter";
    case FtlFormula::Kind::kAlways:
      return "Always";
    case FtlFormula::Kind::kAlwaysFor:
      return "AlwaysFor";
    case FtlFormula::Kind::kAssign:
      return "Assign";
  }
  return "Formula";
}

std::string FormulaLabel(const FtlFormula& f) {
  std::string label = FormulaOpName(f.kind());
  label += " ";
  std::string text = f.ToString();
  constexpr size_t kMaxText = 60;
  if (text.size() > kMaxText) {
    text.resize(kMaxText - 3);
    text += "...";
  }
  label += text;
  return label;
}

/// Counter deltas accumulated inside one subformula (inclusive of its
/// children, like EXPLAIN ANALYZE's inclusive timings). Only non-zero
/// deltas are noted to keep renderings compact.
void NoteStatsDelta(const FtlEvalStats& before, const FtlEvalStats& after,
                    obs::ProfileNode* node) {
  auto note = [node](const char* name, size_t b, size_t a) {
    if (a > b) node->Note(name, a - b);
  };
  note("atoms", before.atomic_evaluations, after.atomic_evaluations);
  note("inst", before.instantiations, after.instantiations);
  note("join_pairs", before.join_pairs, after.join_pairs);
  note("assign_subevals", before.assign_subevals, after.assign_subevals);
  note("index_pruned", before.index_pruned, after.index_pruned);
  note("cache_hit", before.cache_hits, after.cache_hits);
  note("cache_miss", before.cache_misses, after.cache_misses);
}

/// Registry-owned series the evaluator flushes its per-evaluation stats
/// deltas into at the EvaluateQueryUnprojected boundary. Hot paths touch
/// only the plain FtlEvalStats fields; the registry sees one batch of
/// relaxed increments per evaluation, so instrumentation overhead is a
/// handful of atomics per query, not per tuple.
struct FtlRegistrySeries {
  obs::Counter* evaluations;
  obs::Counter* atomic_evaluations;
  obs::Counter* instantiations;
  obs::Counter* join_pairs;
  obs::Counter* assign_subevals;
  obs::Counter* index_pruned;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* arena_bytes;
  obs::Counter* arena_heap_fallbacks;
  obs::Histogram* latency;

  static const FtlRegistrySeries& Get() {
    static const FtlRegistrySeries s = [] {
      auto& r = obs::MetricsRegistry::Global();
      FtlRegistrySeries s;
      s.evaluations = r.GetCounter("most_ftl_evaluations_total",
                                   "FTL query evaluations completed");
      s.atomic_evaluations =
          r.GetCounter("most_ftl_atomic_evaluations_total",
                       "Atomic predicate extractions actually solved");
      s.instantiations = r.GetCounter("most_ftl_instantiations_total",
                                      "Object tuples enumerated");
      s.join_pairs = r.GetCounter("most_ftl_join_pairs_total",
                                  "Row pairs examined by interval joins");
      s.assign_subevals =
          r.GetCounter("most_ftl_assign_subevals_total",
                       "Assignment-quantifier body evaluations");
      s.index_pruned =
          r.GetCounter("most_ftl_index_pruned_total",
                       "Objects skipped thanks to a motion index");
      s.cache_hits = r.GetCounter("most_ftl_cache_hits_total",
                                  "Atomic solves answered by the cache");
      s.cache_misses = r.GetCounter("most_ftl_cache_misses_total",
                                    "Atomic solves that had to run");
      s.arena_bytes = r.GetCounter(
          "most_ftl_arena_bytes_total",
          "Bump-arena bytes drawn by per-evaluation scratch structures");
      s.arena_heap_fallbacks = r.GetCounter(
          "most_ftl_arena_heap_fallbacks_total",
          "Arena requests too large for a block, served as dedicated blocks");
      s.latency = r.GetHistogram(
          "most_ftl_eval_latency_seconds", "EvaluateQuery wall time",
          obs::ExponentialBuckets(1e-5, 4.0, 10));
      return s;
    }();
    return s;
  }
};

}  // namespace

TemporalRelation TemporalRelation::Project(
    const std::vector<std::string>& keep) const {
  TemporalRelation out;
  std::set<std::string> keep_set(keep.begin(), keep.end());
  out.vars = SortedVars(keep_set);
  std::vector<size_t> positions;
  for (const std::string& v : out.vars) {
    positions.push_back(std::find(vars.begin(), vars.end(), v) - vars.begin());
  }
  for (const auto& [binding, when] : rows) {
    std::vector<ObjectId> projected;
    projected.reserve(positions.size());
    for (size_t p : positions) projected.push_back(binding[p]);
    auto [pos, inserted] = out.rows.emplace(std::move(projected), when);
    if (!inserted) pos->second = pos->second.Union(when);
  }
  return out;
}

std::string TemporalRelation::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i) os << ", ";
    os << vars[i];
  }
  os << ") {";
  bool first = true;
  for (const auto& [binding, when] : rows) {
    if (!first) os << "; ";
    first = false;
    os << "[";
    for (size_t i = 0; i < binding.size(); ++i) {
      if (i) os << ",";
      os << binding[i];
    }
    os << "] -> " << when.ToString();
  }
  os << "}";
  return os.str();
}

bool FtlEvaluator::ResolveLayoutSoa(const Options& options) {
  switch (options.layout) {
    case EvalLayout::kLegacy:
      return false;
    case EvalLayout::kSoa:
      return true;
    case EvalLayout::kAuto:
      break;
  }
  const char* env = std::getenv("MOST_EVAL_LAYOUT");
  if (env != nullptr && std::string_view(env) == "legacy") return false;
  return true;
}

const ClassSnapshot& FtlEvaluator::GetSnapshot(const ObjectClass* cls,
                                               Interval window) {
  auto it = snapshots_.find(cls);
  if (it == snapshots_.end()) {
    it = snapshots_.emplace(cls, ClassSnapshot(&arena_)).first;
    it->second.Build(*cls, window);
  }
  return it->second;
}

void FtlEvaluator::ResetEvalScratch() {
  // Snapshot containers must die before the arena backing them resets.
  snapshots_.clear();
  arena_.Reset();
}

Status FtlEvaluator::BudgetCheckpoint(size_t rows_hint) {
  if (!gate_.active()) return Status::OK();
  // Only reachable with a budget armed: lets tests inject a sleep here to
  // trip tiny deadlines deterministically, with zero effect on unbudgeted
  // evaluation.
  MOST_FAILPOINT("ftl/eval/checkpoint");
  DegradeReason reason =
      gate_.Check(arena_.stats().bytes_allocated, rows_hint);
  if (reason == DegradeReason::kNone) return Status::OK();
  return Status::ResourceExhausted("evaluation budget exhausted: " +
                                   std::string(DegradeReasonToString(reason)));
}

void FtlEvaluator::AccumulateArenaStats() {
  const BumpArena::Stats& as = arena_.stats();
  stats_.arena_bytes += as.bytes_allocated;
  stats_.arena_heap_fallbacks += as.heap_fallbacks;
}

Result<TemporalRelation> FtlEvaluator::EvaluateQuery(const FtlQuery& query,
                                                     Interval window) {
  MOST_ASSIGN_OR_RETURN(TemporalRelation rel,
                        EvaluateQueryUnprojected(query, window));
  // Identity projection: RETRIEVE covers exactly the evaluated columns, so
  // Project would rebuild the same map row by row — hand the relation back.
  std::set<std::string> keep(query.retrieve.begin(), query.retrieve.end());
  if (rel.vars == SortedVars(keep)) return rel;
  return rel.Project(query.retrieve);
}

Result<TemporalRelation> FtlEvaluator::EvaluateQueryUnprojected(
    const FtlQuery& query, Interval window) {
  obs::TraceSpan span("ftl/evaluate_query");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const bool metrics_on = registry.enabled();
  const bool timed = metrics_on || options_.profile != nullptr;
  const FtlEvalStats before = stats_;
  const uint64_t t0 = timed ? obs::MonotonicNowNs() : 0;
  obs::ProfileNode* saved = profile_current_;
  profile_current_ = options_.profile;
  Result<TemporalRelation> result =
      EvaluateQueryUnprojectedImpl(query, window);
  profile_current_ = saved;
  AccumulateArenaStats();
  const uint64_t dur_ns = timed ? obs::MonotonicNowNs() - t0 : 0;
  if (options_.profile != nullptr) {
    options_.profile->duration_ns += dur_ns;
    if (result.ok()) {
      options_.profile->tuples = result->rows.size();
      uint64_t intervals = 0;
      for (const auto& [binding, when] : result->rows) {
        intervals += when.intervals().size();
      }
      options_.profile->intervals = intervals;
    }
  }
  if (metrics_on) {
    const FtlRegistrySeries& s = FtlRegistrySeries::Get();
    s.evaluations->Inc();
    s.latency->Observe(static_cast<double>(dur_ns) * 1e-9);
    s.atomic_evaluations->Inc(stats_.atomic_evaluations -
                              before.atomic_evaluations);
    s.instantiations->Inc(stats_.instantiations - before.instantiations);
    s.join_pairs->Inc(stats_.join_pairs - before.join_pairs);
    s.assign_subevals->Inc(stats_.assign_subevals - before.assign_subevals);
    s.index_pruned->Inc(stats_.index_pruned - before.index_pruned);
    s.cache_hits->Inc(stats_.cache_hits - before.cache_hits);
    s.cache_misses->Inc(stats_.cache_misses - before.cache_misses);
    s.arena_bytes->Inc(stats_.arena_bytes - before.arena_bytes);
    s.arena_heap_fallbacks->Inc(stats_.arena_heap_fallbacks -
                                before.arena_heap_fallbacks);
  }
  return result;
}

Result<TemporalRelation> FtlEvaluator::EvaluateQueryUnprojectedImpl(
    const FtlQuery& query, Interval window) {
  ResetEvalScratch();
  gate_.Arm(options_.budget);
  if (!window.valid()) {
    return Status::InvalidArgument("invalid evaluation window");
  }
  Domains domains;
  std::map<std::string, std::string> var_classes;
  for (const FromBinding& fb : query.from) {
    if (var_classes.count(fb.var) > 0) {
      return Status::InvalidArgument("duplicate FROM variable '" + fb.var +
                                     "'");
    }
    var_classes[fb.var] = fb.class_name;
  }
  for (auto& [var, cls] : var_classes) {
    MOST_ASSIGN_OR_RETURN(const ObjectClass* oc, db_.GetClass(cls));
    domains.classes[var] = oc;
  }
  for (const auto& [var, ids] : options_.domain_restrictions) {
    if (ids != nullptr) domains.filters[var] = ids;
  }
  if (query.where == nullptr) {
    return Status::InvalidArgument("query has no WHERE formula");
  }
  std::set<std::string> free_vars;
  query.where->CollectObjectVars(&free_vars);
  for (const std::string& v : free_vars) {
    if (domains.classes.count(v) == 0) {
      return Status::InvalidArgument("object variable '" + v +
                                     "' is not bound by the FROM clause");
    }
  }
  std::set<std::string> free_value_vars;
  query.where->CollectFreeValueVars(&free_value_vars);
  if (!free_value_vars.empty()) {
    return Status::InvalidArgument("free value variable '" +
                                   *free_value_vars.begin() + "'");
  }
  for (const std::string& v : query.retrieve) {
    if (domains.classes.count(v) == 0) {
      return Status::InvalidArgument("RETRIEVE variable '" + v +
                                     "' is not bound by the FROM clause");
    }
  }

  MOST_ASSIGN_OR_RETURN(TemporalRelation rel,
                        Eval(query.where, domains, window));
  // Variables mentioned in RETRIEVE but not constrained by the formula
  // range over their whole class.
  std::set<std::string> target_set(rel.vars.begin(), rel.vars.end());
  target_set.insert(query.retrieve.begin(), query.retrieve.end());
  MOST_ASSIGN_OR_RETURN(
      rel, ExpandToVars(rel, SortedVars(target_set), domains.classes,
                        domains.filters, options_.max_instantiations,
                        &stats_.instantiations));
  return rel;
}

Result<TemporalRelation> FtlEvaluator::EvalFormula(
    const FormulaPtr& formula,
    const std::map<std::string, std::string>& var_classes, Interval window) {
  ResetEvalScratch();
  gate_.Arm(options_.budget);
  Domains domains;
  for (const auto& [var, cls] : var_classes) {
    MOST_ASSIGN_OR_RETURN(const ObjectClass* oc, db_.GetClass(cls));
    domains.classes[var] = oc;
  }
  for (const auto& [var, ids] : options_.domain_restrictions) {
    if (ids != nullptr) domains.filters[var] = ids;
  }
  Result<TemporalRelation> result = Eval(formula, domains, window);
  AccumulateArenaStats();
  return result;
}

Result<TemporalRelation> FtlEvaluator::Eval(const FormulaPtr& f,
                                            const Domains& domains,
                                            Interval window) {
  obs::ProfileNode* parent = profile_current_;
  if (parent == nullptr) return EvalNode(f, domains, window);
  // One profile node per subformula. The child vector only ever grows at
  // the current level while deeper frames run, and children are heap
  // allocations, so `node` stays valid across the recursive call.
  obs::ProfileNode* node = parent->AddChild(FormulaLabel(*f));
  const FtlEvalStats before = stats_;
  const uint64_t t0 = obs::MonotonicNowNs();
  profile_current_ = node;
  Result<TemporalRelation> result = EvalNode(f, domains, window);
  profile_current_ = parent;
  node->duration_ns = obs::MonotonicNowNs() - t0;
  if (result.ok()) {
    node->tuples = result->rows.size();
    for (const auto& [binding, when] : result->rows) {
      node->intervals += when.intervals().size();
    }
  }
  NoteStatsDelta(before, stats_, node);
  return result;
}

Result<TemporalRelation> FtlEvaluator::EvalNode(const FormulaPtr& f,
                                                const Domains& domains,
                                                Interval window) {
  MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));
  switch (f->kind()) {
    case FtlFormula::Kind::kBoolLit: {
      TemporalRelation out;
      if (f->bool_value()) {
        out.rows.emplace(std::vector<ObjectId>{}, IntervalSet(window));
      }
      return out;
    }

    case FtlFormula::Kind::kCompare:
      return EvalCompare(*f, domains, window);

    case FtlFormula::Kind::kInside:
    case FtlFormula::Kind::kOutside: {
      MOST_ASSIGN_OR_RETURN(const Polygon* region, db_.GetRegion(f->region()));
      const bool is_inside = f->kind() == FtlFormula::Kind::kInside;

      // Cache fingerprint: kind + printed atom (variable and region names)
      // + exact region geometry + window.
      std::string fp = is_inside ? "IN|" : "OUT|";
      fp += f->ToString();
      fp.push_back('|');
      AppendPolygon(*region, &fp);
      AppendWindow(window, &fp);

      // Anchored (moving) region with a distinct anchor variable: a
      // two-variable atomic relation over the exact relative motion.
      if (!f->anchor().empty() && f->anchor() != f->var()) {
        std::set<std::string> var_set = {f->var(), f->anchor()};
        std::vector<std::string> vars = SortedVars(var_set);
        MOST_ASSIGN_OR_RETURN(
            std::vector<AtomicJob> jobs,
            MaterializeJobs(vars, domains.classes, domains.filters,
                            options_.max_instantiations,
                            &stats_.instantiations));
        return SolveAtomicRelation(
            std::move(vars), jobs, fp, options_, &stats_,
            [&](const AtomicJob& job) -> Result<IntervalSet> {
              const MostObject* obj = job.inst.at(f->var());
              const MostObject* anchor = job.inst.at(f->anchor());
              if (!obj->IsSpatial() || !anchor->IsSpatial()) {
                return Status::TypeError(
                    "INSIDE/OUTSIDE over non-spatial object");
              }
              IntervalSet inside =
                  InsideTicksRelative(*obj, *anchor, *region, window);
              return is_inside ? inside : inside.Complement(window);
            },
            [this](size_t rows) { return BudgetCheckpoint(rows); });
      }

      const bool self_anchored = !f->anchor().empty();
      auto domain_it = domains.classes.find(f->var());
      if (domain_it == domains.classes.end()) {
        return Status::InvalidArgument("object variable '" + f->var() +
                                       "' is not bound by the FROM clause");
      }
      const ObjectClass* cls = domain_it->second;

      if (layout_soa_) {
        return EvalInsideSoA(*f, domains, window, fp, is_inside,
                             self_anchored, cls, *region);
      }

      // Materialize the object list. INSIDE over an indexed class: only
      // the index's candidates can intersect the region during the window;
      // everyone else is trivially outside. (OUTSIDE needs the complement,
      // so the index cannot prune it; neither can it prune a self-anchored
      // region, which never depends on absolute position.)
      std::vector<AtomicJob> jobs;
      MotionIndex* index =
          (is_inside && !self_anchored && options_.motion_indexes != nullptr)
              ? options_.motion_indexes->Get(cls->name())
              : nullptr;
      if (index != nullptr) {
        BoundingBox query_box{region->bounding_box().min,
                              region->bounding_box().max};
        std::vector<ObjectId> candidates =
            index->QueryRegionCandidates(query_box, window);
        // Under a domain restriction (the delta path) the candidate list
        // is the intersection: outside the restriction the row is excluded
        // by definition, outside the index's candidates it is trivially
        // empty.
        const std::set<ObjectId>* filter = nullptr;
        auto filter_it = domains.filters.find(f->var());
        if (filter_it != domains.filters.end() &&
            filter_it->second != nullptr) {
          filter = filter_it->second.get();
        }
        size_t domain_size = filter != nullptr ? filter->size() : cls->size();
        jobs.reserve(candidates.size());
        for (ObjectId id : candidates) {
          if (filter != nullptr && filter->count(id) == 0) continue;
          ++stats_.instantiations;
          MOST_ASSIGN_OR_RETURN(const MostObject* obj, cls->Get(id));
          jobs.push_back({{id}, {{f->var(), obj}}});
        }
        stats_.index_pruned += domain_size - jobs.size();
      } else {
        MOST_ASSIGN_OR_RETURN(
            jobs, MaterializeJobs({f->var()}, domains.classes,
                                  domains.filters,
                                  options_.max_instantiations,
                                  &stats_.instantiations));
      }
      for (const AtomicJob& job : jobs) {
        if (!job.inst.at(f->var())->IsSpatial()) {
          return Status::TypeError("INSIDE/OUTSIDE over non-spatial object");
        }
      }

      // Probe the cache, then extract the misses as one batch partitioned
      // across the pool (spatial_eval owns the per-object kinematics).
      TemporalRelation out;
      out.vars = {f->var()};
      std::vector<IntervalSet> results(jobs.size());
      std::vector<char> have(jobs.size(), 0);
      IntervalCache* cache = options_.interval_cache;
      if (cache != nullptr) {
        for (size_t i = 0; i < jobs.size(); ++i) {
          if (cache->Lookup(fp, jobs[i].binding, &results[i])) {
            have[i] = 1;
            ++stats_.cache_hits;
          } else {
            ++stats_.cache_misses;
          }
        }
      }
      std::vector<size_t> misses;
      std::vector<const MostObject*> miss_objs;
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (!have[i]) {
          misses.push_back(i);
          miss_objs.push_back(jobs[i].inst.at(f->var()));
        }
      }
      std::vector<IntervalSet> solved = InsideTicksBatch(
          miss_objs,
          self_anchored ? miss_objs : std::vector<const MostObject*>{},
          *region, window, options_.pool);
      stats_.atomic_evaluations += misses.size();
      for (size_t m = 0; m < misses.size(); ++m) {
        IntervalSet when = is_inside ? std::move(solved[m])
                                     : solved[m].Complement(window);
        if (cache != nullptr) {
          cache->Insert(fp, jobs[misses[m]].binding, when);
        }
        results[misses[m]] = std::move(when);
      }
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (!results[i].empty()) {
          out.rows.emplace(jobs[i].binding, std::move(results[i]));
        }
      }
      return out;
    }

    case FtlFormula::Kind::kWithinSphere: {
      std::set<std::string> var_set(f->sphere_vars().begin(),
                                    f->sphere_vars().end());
      std::vector<std::string> vars = SortedVars(var_set);
      std::string fp = "SPH|";
      fp += f->ToString();
      fp.push_back('|');
      AppendHexDouble(f->radius(), &fp);
      AppendWindow(window, &fp);
      MOST_ASSIGN_OR_RETURN(
          std::vector<AtomicJob> jobs,
          MaterializeJobs(vars, domains.classes, domains.filters,
                          options_.max_instantiations,
                          &stats_.instantiations));
      return SolveAtomicRelation(
          std::move(vars), jobs, fp, options_, &stats_,
          [&](const AtomicJob& job) -> Result<IntervalSet> {
            std::vector<const MostObject*> objects;
            for (const std::string& v : f->sphere_vars()) {
              const MostObject* obj = job.inst.at(v);
              if (!obj->IsSpatial()) {
                return Status::TypeError(
                    "WITHIN_SPHERE over non-spatial object");
              }
              objects.push_back(obj);
            }
            return SphereTicks(objects, f->radius(), window);
          },
          [this](size_t rows) { return BudgetCheckpoint(rows); });
    }

    case FtlFormula::Kind::kAnd: {
      if (!options_.enable_semijoin) {
        MOST_ASSIGN_OR_RETURN(TemporalRelation r1,
                              Eval(f->children()[0], domains, window));
        MOST_ASSIGN_OR_RETURN(TemporalRelation r2,
                              Eval(f->children()[1], domains, window));
        TemporalRelation joined = JoinAnd(r1, r2, &stats_, &arena_);
        MOST_RETURN_IF_ERROR(BudgetCheckpoint(joined.rows.size()));
        return joined;
      }
      // Semi-join: evaluate the side with fewer free variables first and
      // restrict the other side's domains to bindings that can still
      // join. Rows outside the restriction cannot survive the AND.
      std::set<std::string> lhs_vars, rhs_vars;
      f->children()[0]->CollectObjectVars(&lhs_vars);
      f->children()[1]->CollectObjectVars(&rhs_vars);
      FormulaPtr first = f->children()[0];
      FormulaPtr second = f->children()[1];
      if (rhs_vars.size() < lhs_vars.size()) std::swap(first, second);
      MOST_ASSIGN_OR_RETURN(TemporalRelation r1, Eval(first, domains, window));
      Domains restricted = domains;
      for (size_t col = 0; col < r1.vars.size(); ++col) {
        auto ids = std::make_shared<std::set<ObjectId>>();
        for (const auto& [binding, when] : r1.rows) ids->insert(binding[col]);
        auto existing = restricted.filters.find(r1.vars[col]);
        if (existing != restricted.filters.end() &&
            existing->second != nullptr) {
          // Intersect with an enclosing restriction.
          auto narrowed = std::make_shared<std::set<ObjectId>>();
          for (ObjectId id : *ids) {
            if (existing->second->count(id)) narrowed->insert(id);
          }
          ids = narrowed;
        }
        restricted.filters[r1.vars[col]] = std::move(ids);
      }
      MOST_ASSIGN_OR_RETURN(TemporalRelation r2,
                            Eval(second, restricted, window));
      TemporalRelation joined = JoinAnd(r1, r2, &stats_, &arena_);
      MOST_RETURN_IF_ERROR(BudgetCheckpoint(joined.rows.size()));
      return joined;
    }

    case FtlFormula::Kind::kOr: {
      MOST_ASSIGN_OR_RETURN(TemporalRelation r1,
                            Eval(f->children()[0], domains, window));
      MOST_ASSIGN_OR_RETURN(TemporalRelation r2,
                            Eval(f->children()[1], domains, window));
      std::vector<std::string> target = UnionVars(r1.vars, r2.vars);
      MOST_ASSIGN_OR_RETURN(
          TemporalRelation e1,
          ExpandToVars(r1, target, domains.classes, domains.filters,
                       options_.max_instantiations, &stats_.instantiations));
      MOST_ASSIGN_OR_RETURN(
          TemporalRelation e2,
          ExpandToVars(r2, target, domains.classes, domains.filters,
                       options_.max_instantiations, &stats_.instantiations));
      TemporalRelation out = std::move(e1);
      for (const auto& [binding, when] : e2.rows) {
        auto [pos, inserted] = out.rows.emplace(binding, when);
        if (!inserted) pos->second = pos->second.Union(when);
      }
      return out;
    }

    case FtlFormula::Kind::kNot: {
      if (!options_.allow_negation) {
        return Status::InvalidArgument(
            "negation is outside the conjunctive subset (enable "
            "allow_negation to evaluate it by domain complementation)");
      }
      MOST_ASSIGN_OR_RETURN(TemporalRelation r,
                            Eval(f->children()[0], domains, window));
      TemporalRelation out;
      out.vars = r.vars;
      auto hint = out.rows.end();
      Status status = EnumerateInstantiations(
          r.vars, domains.classes, domains.filters,
          options_.max_instantiations, &stats_.instantiations,
          [&](const std::vector<ObjectId>& binding, const Instantiation&) {
            auto it = r.rows.find(binding);
            IntervalSet when = (it == r.rows.end())
                                   ? IntervalSet(window)
                                   : it->second.Complement(window);
            // Enumeration yields ascending bindings; end hint = O(1).
            if (!when.empty()) {
              hint = out.rows.emplace_hint(hint, binding, std::move(when));
            }
            return Status::OK();
          });
      MOST_RETURN_IF_ERROR(status);
      return out;
    }

    case FtlFormula::Kind::kUntil:
    case FtlFormula::Kind::kUntilWithin: {
      Tick bound = f->kind() == FtlFormula::Kind::kUntilWithin ? f->bound()
                                                               : kTickMax;
      MOST_ASSIGN_OR_RETURN(TemporalRelation r1,
                            Eval(f->children()[0], domains, window));
      MOST_ASSIGN_OR_RETURN(TemporalRelation r2,
                            Eval(f->children()[1], domains, window));
      // Every satisfaction needs a g2 witness, so the result's rows come
      // from r2 (expanded to the union variables); the matching g1 tick
      // set (empty if r1 has no such row) feeds the chain merge.
      std::vector<std::string> target = UnionVars(r1.vars, r2.vars);
      MOST_ASSIGN_OR_RETURN(
          TemporalRelation e2,
          ExpandToVars(r2, target, domains.classes, domains.filters,
                       options_.max_instantiations, &stats_.instantiations));
      std::vector<size_t> r1_positions;
      for (const std::string& v : r1.vars) {
        r1_positions.push_back(
            std::find(target.begin(), target.end(), v) - target.begin());
      }
      TemporalRelation out;
      out.vars = target;
      auto hint = out.rows.end();
      for (const auto& [binding, g2_when] : e2.rows) {
        std::vector<ObjectId> key(r1_positions.size());
        for (size_t i = 0; i < r1_positions.size(); ++i) {
          key[i] = binding[r1_positions[i]];
        }
        auto it = r1.rows.find(key);
        ++stats_.join_pairs;
        IntervalSet g1_when =
            (it == r1.rows.end()) ? IntervalSet() : it->second;
        IntervalSet when = g2_when.UntilWith(g1_when, bound).Clamp(window);
        // Source rows arrive in ascending binding order, so the end hint
        // makes each insert O(1).
        if (!when.empty()) {
          hint = out.rows.emplace_hint(hint, binding, std::move(when));
        }
      }
      return out;
    }

    case FtlFormula::Kind::kNexttime:
    case FtlFormula::Kind::kEventually:
    case FtlFormula::Kind::kEventuallyWithin:
    case FtlFormula::Kind::kEventuallyAfter:
    case FtlFormula::Kind::kAlways:
    case FtlFormula::Kind::kAlwaysFor: {
      MOST_ASSIGN_OR_RETURN(TemporalRelation r,
                            Eval(f->children()[0], domains, window));
      Tick window_len = window.end - window.begin;
      // Keys survive the transform unchanged, so the child's relation is
      // rewritten in place — no node churn, no key copies — and rows whose
      // set becomes empty are erased. The in-place fused transforms produce
      // the same canonical sets as the const chains they replace.
      for (auto it = r.rows.begin(); it != r.rows.end();) {
        IntervalSet& when = it->second;
        switch (f->kind()) {
          case FtlFormula::Kind::kNexttime:
            when.ShiftClampInPlace(-1, window);
            break;
          case FtlFormula::Kind::kEventually:
            when.DilateLeftClampInPlace(window_len, window);
            break;
          case FtlFormula::Kind::kEventuallyWithin:
            when.DilateLeftClampInPlace(f->bound(), window);
            break;
          case FtlFormula::Kind::kEventuallyAfter:
            // DilateLeft(L).Shift(-b).Clamp(w): the unclamped dilation uses
            // the full tick universe, the shift applies the window clamp.
            when.DilateLeftClampInPlace(window_len,
                                        Interval(kTickMin, kTickMax));
            when.ShiftClampInPlace(-f->bound(), window);
            break;
          case FtlFormula::Kind::kAlways: {
            // Satisfied from t to the end of the evaluated history.
            IntervalSet transformed;
            if (!when.empty() && when.Max() >= window.end) {
              transformed =
                  IntervalSet(Interval(when.intervals().back().begin,
                                       window.end));
            }
            when = std::move(transformed);
            break;
          }
          case FtlFormula::Kind::kAlwaysFor:
            when.ErodeRightClampInPlace(f->bound(), window);
            break;
          default:
            break;
        }
        it = when.empty() ? r.rows.erase(it) : std::next(it);
      }
      return r;
    }

    case FtlFormula::Kind::kAssign:
      return EvalAssign(*f, domains, window);
  }
  return Status::Internal("bad formula kind");
}

Result<TemporalRelation> FtlEvaluator::EvalCompare(const FtlFormula& f,
                                                   const Domains& domains,
                                                   Interval window) {
  std::set<std::string> var_set;
  f.lhs_term()->CollectObjectVars(&var_set);
  f.rhs_term()->CollectObjectVars(&var_set);
  std::vector<std::string> vars = SortedVars(var_set);

  // Direct DIST(o1,o2) `op` constant pattern -> exact quadratic solver.
  const FtlTerm* dist = nullptr;
  TermPtr other;
  FtlFormula::CmpOp op = f.cmp_op();
  if (f.lhs_term()->kind() == FtlTerm::Kind::kDist &&
      IsTimeInvariant(f.rhs_term())) {
    dist = f.lhs_term().get();
    other = f.rhs_term();
  } else if (f.rhs_term()->kind() == FtlTerm::Kind::kDist &&
             IsTimeInvariant(f.lhs_term())) {
    dist = f.rhs_term().get();
    other = f.lhs_term();
    // c op DIST  ==  DIST op' c with the inequality mirrored.
    switch (op) {
      case FtlFormula::CmpOp::kLt:
        op = FtlFormula::CmpOp::kGt;
        break;
      case FtlFormula::CmpOp::kLe:
        op = FtlFormula::CmpOp::kGe;
        break;
      case FtlFormula::CmpOp::kGt:
        op = FtlFormula::CmpOp::kLt;
        break;
      case FtlFormula::CmpOp::kGe:
        op = FtlFormula::CmpOp::kLe;
        break;
      default:
        break;
    }
  }

  bool lhs_dist = ContainsDist(f.lhs_term());
  bool rhs_dist = ContainsDist(f.rhs_term());
  bool invariant =
      IsTimeInvariant(f.lhs_term()) && IsTimeInvariant(f.rhs_term());

  // Cache fingerprint: printed comparison plus hexfloat renderings of every
  // literal (assignment substitution may have planted values whose decimal
  // printout is lossy) and the window.
  std::string fp = "CMP|";
  fp += f.ToString();
  fp.push_back('|');
  AppendTermLiterals(f.lhs_term(), &fp);
  AppendTermLiterals(f.rhs_term(), &fp);
  AppendWindow(window, &fp);

  // Index-pruned DIST join: with one side of DIST(a,b) <= c pinned by a
  // domain restriction (a delta re-evaluation pass) and the partner's
  // class indexed, the motion index supplies the partner candidates near
  // each pinned object's trajectory instead of scanning the class. Sound
  // because the candidate set is a conservative superset: a skipped
  // partner stays farther than c throughout the window, so its row is
  // empty either way.
  std::vector<AtomicJob> jobs;
  bool jobs_materialized = false;
  if (dist != nullptr && options_.motion_indexes != nullptr &&
      vars.size() == 2 && dist->var() != dist->var2() &&
      (op == FtlFormula::CmpOp::kLe || op == FtlFormula::CmpOp::kLt)) {
    std::set<std::string> bound_vars;
    other->CollectObjectVars(&bound_vars);
    auto fa = domains.filters.find(dist->var());
    auto fb = domains.filters.find(dist->var2());
    bool a_pinned = fa != domains.filters.end() && fa->second != nullptr;
    bool b_pinned = fb != domains.filters.end() && fb->second != nullptr;
    if (bound_vars.empty() && a_pinned != b_pinned) {
      const std::string& probe_var = a_pinned ? dist->var() : dist->var2();
      const std::string& partner_var = a_pinned ? dist->var2() : dist->var();
      const std::set<ObjectId>& probes =
          a_pinned ? *fa->second : *fb->second;
      auto probe_cls = domains.classes.find(probe_var);
      auto partner_cls = domains.classes.find(partner_var);
      Result<Value> bound_v = EvalTermAt(other, Instantiation(), window.begin);
      if (probe_cls != domains.classes.end() &&
          partner_cls != domains.classes.end() && bound_v.ok() &&
          bound_v->is_numeric()) {
        // Small slack over the comparison epsilon so boundary contacts
        // are never pruned.
        double radius = std::max(0.0, bound_v->AsDouble().value()) + 1e-3;
        bool pruned_all = true;
        for (ObjectId pid : probes) {
          auto pobj = probe_cls->second->Get(pid);
          if (!pobj.ok()) continue;  // Deleted probe: no rows.
          std::optional<std::vector<ObjectId>> candidates =
              options_.motion_indexes->CandidatesNearObject(
                  partner_cls->second->name(), **pobj, radius, window);
          if (!candidates.has_value()) {
            pruned_all = false;  // Unindexed or epoch escape: full scan.
            break;
          }
          stats_.index_pruned +=
              partner_cls->second->size() - candidates->size();
          for (ObjectId nid : *candidates) {
            auto nobj = partner_cls->second->Get(nid);
            if (!nobj.ok()) continue;
            ++stats_.instantiations;
            AtomicJob job;
            job.binding = vars[0] == probe_var
                              ? std::vector<ObjectId>{pid, nid}
                              : std::vector<ObjectId>{nid, pid};
            job.inst[probe_var] = *pobj;
            job.inst[partner_var] = *nobj;
            jobs.push_back(std::move(job));
          }
        }
        if (pruned_all) {
          jobs_materialized = true;
        } else {
          jobs.clear();
        }
      }
    }
  }
  // SoA fast path for the plain two-variable DIST comparison against an
  // instantiation-independent bound (the overwhelmingly common shape).
  // The index-pruned join above has priority: when it materialized jobs,
  // the candidate set is not the full cross product.
  if (layout_soa_ && !jobs_materialized && dist != nullptr &&
      vars.size() == 2 && dist->var() != dist->var2()) {
    std::set<std::string> other_vars;
    other->CollectObjectVars(&other_vars);
    if (other_vars.empty()) {
      return EvalDistSoA(f, domains, window, fp, dist, other, op, vars);
    }
  }
  if (!jobs_materialized) {
    MOST_ASSIGN_OR_RETURN(
        jobs, MaterializeJobs(vars, domains.classes, domains.filters,
                              options_.max_instantiations,
                              &stats_.instantiations));
  }
  return SolveAtomicRelation(
      std::move(vars), jobs, fp, options_, &stats_,
      [&](const AtomicJob& job) -> Result<IntervalSet> {
        const Instantiation& inst = job.inst;
        IntervalSet when;
        if (dist != nullptr) {
          MOST_ASSIGN_OR_RETURN(Value bound_v,
                                EvalTermAt(other, inst, window.begin));
          MOST_ASSIGN_OR_RETURN(double bound, bound_v.AsDouble());
          const MostObject* a = inst.at(dist->var());
          const MostObject* b = inst.at(dist->var2());
          if (!a->IsSpatial() || !b->IsSpatial()) {
            return Status::TypeError("DIST over non-spatial objects");
          }
          when = DistCmpTicks(*a, *b, op, bound, window);
        } else if (invariant) {
          MOST_ASSIGN_OR_RETURN(Value lhs,
                                EvalTermAt(f.lhs_term(), inst, window.begin));
          MOST_ASSIGN_OR_RETURN(Value rhs,
                                EvalTermAt(f.rhs_term(), inst, window.begin));
          MOST_ASSIGN_OR_RETURN(bool holds,
                                CompareFtlValues(f.cmp_op(), lhs, rhs));
          if (holds) when = IntervalSet(window);
        } else if (lhs_dist || rhs_dist) {
          // Nested DIST arithmetic: per-tick fallback.
          std::vector<Interval> ticks;
          for (Tick t = window.begin; t <= window.end; ++t) {
            MOST_ASSIGN_OR_RETURN(Value lhs, EvalTermAt(f.lhs_term(), inst, t));
            MOST_ASSIGN_OR_RETURN(Value rhs, EvalTermAt(f.rhs_term(), inst, t));
            MOST_ASSIGN_OR_RETURN(bool holds,
                                  CompareFtlValues(f.cmp_op(), lhs, rhs));
            if (holds) ticks.push_back(Interval(t, t));
          }
          when = IntervalSet::FromIntervals(std::move(ticks));
        } else {
          MOST_ASSIGN_OR_RETURN(Plf lhs,
                                BuildTermPlf(f.lhs_term(), inst, window));
          MOST_ASSIGN_OR_RETURN(Plf rhs,
                                BuildTermPlf(f.rhs_term(), inst, window));
          switch (f.cmp_op()) {
            case FtlFormula::CmpOp::kLe:
              when = lhs.TicksLe(rhs);
              break;
            case FtlFormula::CmpOp::kGe:
              when = lhs.TicksGe(rhs);
              break;
            case FtlFormula::CmpOp::kLt:
              when = lhs.TicksGe(rhs).Complement(window);
              break;
            case FtlFormula::CmpOp::kGt:
              when = lhs.TicksLe(rhs).Complement(window);
              break;
            case FtlFormula::CmpOp::kEq:
              when = lhs.TicksEq(rhs);
              break;
            case FtlFormula::CmpOp::kNe:
              when = lhs.TicksEq(rhs).Complement(window);
              break;
          }
          when = when.Clamp(window);
        }
        return when;
      },
      [this](size_t rows) { return BudgetCheckpoint(rows); });
}

Result<TemporalRelation> FtlEvaluator::EvalInsideSoA(
    const FtlFormula& f, const Domains& domains, Interval window,
    const std::string& fp, bool is_inside, bool self_anchored,
    const ObjectClass* cls, const Polygon& region) {
  // Snapshot builds draw arena memory proportional to the class; check
  // the budget before, and again after so the bytes just drawn count.
  MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));
  const ClassSnapshot& snap = GetSnapshot(cls, window);
  MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));

  const std::set<ObjectId>* filter = nullptr;
  auto filter_it = domains.filters.find(f.var());
  if (filter_it != domains.filters.end() && filter_it->second != nullptr) {
    filter = filter_it->second.get();
  }

  // Candidate snapshot indices, ascending. Same candidate set, the same
  // instantiation / index_pruned counting and the same error behaviour as
  // the legacy materialization.
  ArenaVector<uint32_t> cand{ArenaAllocator<uint32_t>(&arena_)};
  MotionIndex* index =
      (is_inside && !self_anchored && options_.motion_indexes != nullptr)
          ? options_.motion_indexes->Get(cls->name())
          : nullptr;
  if (index != nullptr) {
    BoundingBox query_box{region.bounding_box().min,
                          region.bounding_box().max};
    std::vector<ObjectId> candidates =
        index->QueryRegionCandidates(query_box, window);
    size_t domain_size = filter != nullptr ? filter->size() : cls->size();
    cand.reserve(candidates.size());
    for (ObjectId id : candidates) {
      if (filter != nullptr && filter->count(id) == 0) continue;
      ++stats_.instantiations;
      size_t oi = snap.IndexOf(id);
      if (oi == ClassSnapshot::npos) return cls->Get(id).status();
      cand.push_back(static_cast<uint32_t>(oi));
    }
    stats_.index_pruned += domain_size - cand.size();
    std::sort(cand.begin(), cand.end());
  } else {
    if (filter != nullptr) {
      cand.reserve(filter->size());
      for (ObjectId id : *filter) {
        size_t oi = snap.IndexOf(id);
        if (oi == ClassSnapshot::npos) continue;  // Deleted id: no row.
        cand.push_back(static_cast<uint32_t>(oi));
      }
    } else {
      cand.reserve(snap.size());
      for (size_t oi = 0; oi < snap.size(); ++oi) {
        cand.push_back(static_cast<uint32_t>(oi));
      }
    }
    if (!cand.empty()) {
      stats_.instantiations += cand.size();
      if (stats_.instantiations > options_.max_instantiations) {
        return Status::OutOfRange(
            "instantiation limit exceeded (" +
            std::to_string(options_.max_instantiations) + ")");
      }
    }
  }
  for (uint32_t oi : cand) {
    if (!snap.spatial_ok(oi)) {
      return Status::TypeError("INSIDE/OUTSIDE over non-spatial object");
    }
  }

  TemporalRelation out;
  out.vars = {f.var()};
  const size_t n = cand.size();
  std::vector<IntervalSet> results(n);
  std::vector<char> have(n, 0);
  IntervalCache* cache = options_.interval_cache;
  std::vector<ObjectId> key(1);
  if (cache != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      key[0] = snap.id(cand[i]);
      if (cache->Lookup(fp, key, &results[i])) {
        have[i] = 1;
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
    }
  }
  ArenaVector<uint32_t> misses{ArenaAllocator<uint32_t>(&arena_)};
  misses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!have[i]) misses.push_back(static_cast<uint32_t>(i));
  }

  {
    obs::TraceSpan span("ftl/inside_ticks_batch");
    if (self_anchored) {
      // Relative to itself every object sits at the origin
      // (cf. InsideTicksRelative).
      IntervalSet base =
          region.Contains({0, 0}) ? IntervalSet(window) : IntervalSet();
      for (uint32_t m : misses) results[m] = base;
    } else {
      ParallelFor(options_.pool, misses.size(), [&](size_t mi) {
        thread_local SpatialScratch scratch;
        uint32_t m = misses[mi];
        results[m] =
            SnapshotInsideTicks(snap, cand[m], region, window, &scratch);
      });
    }
  }
  stats_.atomic_evaluations += misses.size();
  for (uint32_t m : misses) {
    IntervalSet when =
        is_inside ? std::move(results[m]) : results[m].Complement(window);
    if (cache != nullptr) {
      key[0] = snap.id(cand[m]);
      cache->Insert(fp, key, when);
    }
    results[m] = std::move(when);
  }
  auto hint = out.rows.end();
  for (size_t i = 0; i < n; ++i) {
    if (results[i].empty()) continue;
    hint = out.rows.emplace_hint(hint,
                                 std::vector<ObjectId>{snap.id(cand[i])},
                                 std::move(results[i]));
  }
  return out;
}

Result<TemporalRelation> FtlEvaluator::EvalDistSoA(
    const FtlFormula& f, const Domains& domains, Interval window,
    const std::string& fp, const FtlTerm* dist, const TermPtr& other,
    FtlFormula::CmpOp op, const std::vector<std::string>& vars) {
  TemporalRelation out;
  out.vars = vars;

  const ObjectClass* cls[2];
  for (size_t s = 0; s < 2; ++s) {
    auto it = domains.classes.find(vars[s]);
    if (it == domains.classes.end()) {
      return Status::InvalidArgument("object variable '" + vars[s] +
                                     "' is not bound by the FROM clause");
    }
    cls[s] = it->second;
  }
  MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));
  const ClassSnapshot* snap[2] = {&GetSnapshot(cls[0], window),
                                  &GetSnapshot(cls[1], window)};
  MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));

  // Per-variable extents as snapshot indices, ascending — the order
  // EnumerateInstantiations produces.
  ArenaVector<uint32_t> ext0{ArenaAllocator<uint32_t>(&arena_)};
  ArenaVector<uint32_t> ext1{ArenaAllocator<uint32_t>(&arena_)};
  ArenaVector<uint32_t>* ext[2] = {&ext0, &ext1};
  for (size_t s = 0; s < 2; ++s) {
    const std::set<ObjectId>* filter = nullptr;
    auto filter_it = domains.filters.find(vars[s]);
    if (filter_it != domains.filters.end() && filter_it->second != nullptr) {
      filter = filter_it->second.get();
    }
    if (filter != nullptr) {
      ext[s]->reserve(filter->size());
      for (ObjectId id : *filter) {
        size_t oi = snap[s]->IndexOf(id);
        if (oi == ClassSnapshot::npos) continue;  // Deleted id: no row.
        ext[s]->push_back(static_cast<uint32_t>(oi));
      }
    } else {
      ext[s]->reserve(snap[s]->size());
      for (size_t oi = 0; oi < snap[s]->size(); ++oi) {
        ext[s]->push_back(static_cast<uint32_t>(oi));
      }
    }
    if (ext[s]->empty()) return out;  // Empty cross product.
  }
  const size_t n0 = ext0.size(), n1 = ext1.size();
  const size_t total = n0 * n1;
  stats_.instantiations += total;
  if (stats_.instantiations > options_.max_instantiations) {
    return Status::OutOfRange("instantiation limit exceeded (" +
                              std::to_string(options_.max_instantiations) +
                              ")");
  }

  // The bound is instantiation-independent here; the legacy solver
  // evaluates it per job (before its spatial check), failing identically
  // for every miss, so evaluating it once preserves error behaviour.
  Instantiation empty_inst;
  MOST_ASSIGN_OR_RETURN(Value bound_v,
                        EvalTermAt(other, empty_inst, window.begin));
  MOST_ASSIGN_OR_RETURN(double bound, bound_v.AsDouble());
  for (size_t s = 0; s < 2; ++s) {
    for (uint32_t oi : *ext[s]) {
      if (!snap[s]->spatial_ok(oi)) {
        return Status::TypeError("DIST over non-spatial objects");
      }
    }
  }

  std::vector<IntervalSet> results(total);
  std::vector<char> have;
  IntervalCache* cache = options_.interval_cache;
  std::vector<ObjectId> key(2);
  if (cache != nullptr) {
    have.assign(total, 0);
    size_t p = 0;
    for (size_t i0 = 0; i0 < n0; ++i0) {
      MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));
      key[0] = snap[0]->id(ext0[i0]);
      for (size_t i1 = 0; i1 < n1; ++i1, ++p) {
        key[1] = snap[1]->id(ext1[i1]);
        if (cache->Lookup(fp, key, &results[p])) {
          have[p] = 1;
          ++stats_.cache_hits;
        } else {
          ++stats_.cache_misses;
        }
      }
    }
  }
  ArenaVector<uint64_t> misses{ArenaAllocator<uint64_t>(&arena_)};
  misses.reserve(total);
  for (size_t p = 0; p < total; ++p) {
    if (have.empty() || !have[p]) misses.push_back(p);
  }

  // Column s of `vars` maps to DIST's (a, b) argument order.
  const bool dist_first = vars[0] == dist->var();
  const ClassSnapshot& a_snap = dist_first ? *snap[0] : *snap[1];
  const ClassSnapshot& b_snap = dist_first ? *snap[1] : *snap[0];
  // The quadratic solve dwarfs the snapshot builds; run it in batches
  // with a budget check between them so a deadline overrun aborts within
  // one batch of extra work instead of sailing to the end.
  constexpr size_t kBatch = 4096;
  for (size_t base = 0; base < misses.size(); base += kBatch) {
    MOST_RETURN_IF_ERROR(BudgetCheckpoint(0));
    const size_t batch = std::min(kBatch, misses.size() - base);
    ParallelFor(options_.pool, batch, [&](size_t k) {
      thread_local SpatialScratch scratch;
      const size_t p = static_cast<size_t>(misses[base + k]);
      const uint32_t e0 = ext0[p / n1], e1 = ext1[p % n1];
      const uint32_t ai = dist_first ? e0 : e1;
      const uint32_t bi = dist_first ? e1 : e0;
      results[p] = SnapshotDistCmpTicks(a_snap, ai, b_snap, bi, op, bound,
                                        window, &scratch);
    });
  }
  stats_.atomic_evaluations += misses.size();
  if (cache != nullptr) {
    for (uint64_t p64 : misses) {
      const size_t p = static_cast<size_t>(p64);
      key[0] = snap[0]->id(ext0[p / n1]);
      key[1] = snap[1]->id(ext1[p % n1]);
      cache->Insert(fp, key, results[p]);
    }
  }

  auto hint = out.rows.end();
  size_t p = 0;
  for (size_t i0 = 0; i0 < n0; ++i0) {
    const ObjectId id0 = snap[0]->id(ext0[i0]);
    MOST_RETURN_IF_ERROR(BudgetCheckpoint(out.rows.size()));
    for (size_t i1 = 0; i1 < n1; ++i1, ++p) {
      if (results[p].empty()) continue;
      hint = out.rows.emplace_hint(
          hint, std::vector<ObjectId>{id0, snap[1]->id(ext1[i1])},
          std::move(results[p]));
    }
  }
  return out;
}

Result<TemporalRelation> FtlEvaluator::EvalAssign(const FtlFormula& f,
                                                  const Domains& domains,
                                                  Interval window) {
  const TermPtr& q = f.assign_term();
  const FormulaPtr& body = f.children()[0];
  std::set<std::string> q_var_set;
  q->CollectObjectVars(&q_var_set);
  std::vector<std::string> q_vars = SortedVars(q_var_set);

  TemporalRelation result;
  bool result_initialized = false;
  // Body evaluations are cached per distinct assigned value.
  std::map<Value, TemporalRelation> body_cache;

  Status status = EnumerateInstantiations(
      q_vars, domains.classes, domains.filters,
      options_.max_instantiations, &stats_.instantiations,
      [&](const std::vector<ObjectId>& binding, const Instantiation& inst) {
        // Decompose the term's value over the window into
        // (value, tick-interval) tuples: the relation Q of the appendix.
        std::vector<std::pair<Value, IntervalSet>> tuples;
        if (IsTimeInvariant(q)) {
          MOST_ASSIGN_OR_RETURN(Value v, EvalTermAt(q, inst, window.begin));
          tuples.emplace_back(std::move(v), IntervalSet(window));
        } else if (!ContainsDist(q)) {
          MOST_ASSIGN_OR_RETURN(Plf plf, BuildTermPlf(q, inst, window));
          for (const Plf::Piece& piece : plf.pieces()) {
            if (piece.slope == 0.0) {
              tuples.emplace_back(Value(piece.value_at_begin),
                                  IntervalSet(piece.ticks));
            } else {
              for (Tick t = piece.ticks.begin; t <= piece.ticks.end; ++t) {
                tuples.emplace_back(Value(piece.At(t)),
                                    IntervalSet(Interval(t, t)));
              }
            }
          }
        } else {
          for (Tick t = window.begin; t <= window.end; ++t) {
            MOST_ASSIGN_OR_RETURN(Value v, EvalTermAt(q, inst, t));
            tuples.emplace_back(std::move(v), IntervalSet(Interval(t, t)));
          }
        }

        TemporalRelation q_row;
        q_row.vars = q_vars;

        for (auto& [v, valid_when] : tuples) {
          auto cache_it = body_cache.find(v);
          if (cache_it == body_cache.end()) {
            ++stats_.assign_subevals;
            FormulaPtr substituted = SubstituteValueVar(body, f.var(), v);
            MOST_ASSIGN_OR_RETURN(TemporalRelation body_rel,
                                  Eval(substituted, domains, window));
            cache_it = body_cache.emplace(v, std::move(body_rel)).first;
          }
          // Constrain the body relation to this q-instantiation and to the
          // ticks where the term has this value.
          q_row.rows.clear();
          q_row.rows.emplace(binding, valid_when);
          TemporalRelation joined = JoinAnd(cache_it->second, q_row, &stats_, &arena_);
          if (!result_initialized) {
            result.vars = joined.vars;
            result_initialized = true;
          }
          for (auto& [b, when] : joined.rows) {
            auto [pos, inserted] = result.rows.emplace(b, when);
            if (!inserted) pos->second = pos->second.Union(when);
          }
        }
        return Status::OK();
      });
  MOST_RETURN_IF_ERROR(status);
  if (!result_initialized) {
    // Determine the output arity even when empty.
    std::set<std::string> body_vars;
    body->CollectObjectVars(&body_vars);
    body_vars.insert(q_var_set.begin(), q_var_set.end());
    result.vars = SortedVars(body_vars);
  }
  return result;
}

}  // namespace most
