#include "ftl/parser.h"

#include <cmath>

#include "ftl/lexer.h"

namespace most {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FtlQuery> ParseQueryAll() {
    FtlQuery query;
    if (!MatchKeyword("RETRIEVE")) {
      return Error("expected RETRIEVE");
    }
    while (true) {
      MOST_ASSIGN_OR_RETURN(std::string var, ExpectIdent("RETRIEVE variable"));
      query.retrieve.push_back(std::move(var));
      if (!Match(TokenKind::kComma)) break;
    }
    if (!MatchKeyword("FROM")) {
      return Error("expected FROM");
    }
    while (true) {
      MOST_ASSIGN_OR_RETURN(std::string cls, ExpectIdent("object class name"));
      MOST_ASSIGN_OR_RETURN(std::string var, ExpectIdent("object variable"));
      query.from.push_back({std::move(cls), std::move(var)});
      if (!Match(TokenKind::kComma)) break;
    }
    if (!MatchKeyword("WHERE")) {
      return Error("expected WHERE");
    }
    MOST_ASSIGN_OR_RETURN(query.where, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    return query;
  }

  Result<FormulaPtr> ParseFormulaAll() {
    MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    return f;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) return tokens_.back();
    return tokens_[i];
  }

  const Token& Consume() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool MatchKeyword(const char* keyword) {
    if (!Peek().IsKeyword(keyword)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return Consume().text;
  }

  Result<Tick> ParseBound() {
    bool negative = Match(TokenKind::kMinus);
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected a numeric time bound");
    }
    double v = Consume().number;
    if (negative || v < 0 || v != std::floor(v)) {
      return Status::ParseError("time bound must be a non-negative integer");
    }
    return static_cast<Tick>(v);
  }

  // or := and (OR and)*
  Result<FormulaPtr> ParseOr() {
    MOST_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      MOST_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAnd());
      lhs = FtlFormula::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // and := until (AND until)*
  Result<FormulaPtr> ParseAnd() {
    MOST_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUntil());
    while (MatchKeyword("AND")) {
      MOST_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUntil());
      lhs = FtlFormula::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // until := unary (UNTIL (WITHIN c)? until)?   -- right associative.
  Result<FormulaPtr> ParseUntil() {
    MOST_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary());
    if (!MatchKeyword("UNTIL")) return lhs;
    if (MatchKeyword("WITHIN")) {
      MOST_ASSIGN_OR_RETURN(Tick bound, ParseBound());
      MOST_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUntil());
      return FtlFormula::UntilWithin(bound, std::move(lhs), std::move(rhs));
    }
    MOST_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUntil());
    return FtlFormula::Until(std::move(lhs), std::move(rhs));
  }

  Result<FormulaPtr> ParseUnary() {
    if (MatchKeyword("NOT")) {
      MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return FtlFormula::Not(std::move(f));
    }
    if (MatchKeyword("NEXTTIME")) {
      MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return FtlFormula::Nexttime(std::move(f));
    }
    if (MatchKeyword("EVENTUALLY")) {
      if (MatchKeyword("WITHIN")) {
        MOST_ASSIGN_OR_RETURN(Tick bound, ParseBound());
        MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
        return FtlFormula::EventuallyWithin(bound, std::move(f));
      }
      if (MatchKeyword("AFTER")) {
        MOST_ASSIGN_OR_RETURN(Tick bound, ParseBound());
        MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
        return FtlFormula::EventuallyAfter(bound, std::move(f));
      }
      MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return FtlFormula::Eventually(std::move(f));
    }
    if (MatchKeyword("ALWAYS")) {
      if (MatchKeyword("FOR")) {
        MOST_ASSIGN_OR_RETURN(Tick bound, ParseBound());
        MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
        return FtlFormula::AlwaysFor(bound, std::move(f));
      }
      MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return FtlFormula::Always(std::move(f));
    }
    if (Match(TokenKind::kLBracket)) {
      MOST_ASSIGN_OR_RETURN(std::string var, ExpectIdent("assignment variable"));
      if (!Match(TokenKind::kAssignOp)) {
        return Error("expected ':=' in assignment quantifier");
      }
      MOST_ASSIGN_OR_RETURN(TermPtr term, ParseTerm());
      if (!Match(TokenKind::kRBracket)) {
        return Error("expected ']' closing assignment quantifier");
      }
      MOST_ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
      return FtlFormula::Assign(std::move(var), std::move(term),
                                std::move(body));
    }
    return ParsePrimary();
  }

  Result<FormulaPtr> ParsePrimary() {
    if (MatchKeyword("TRUE")) return FtlFormula::BoolLit(true);
    if (MatchKeyword("FALSE")) return FtlFormula::BoolLit(false);
    if (Peek().IsKeyword("INSIDE") || Peek().IsKeyword("OUTSIDE")) {
      bool inside = Peek().IsKeyword("INSIDE");
      Consume();
      if (!Match(TokenKind::kLParen)) return Error("expected '('");
      MOST_ASSIGN_OR_RETURN(std::string var, ExpectIdent("object variable"));
      if (!Match(TokenKind::kComma)) return Error("expected ','");
      MOST_ASSIGN_OR_RETURN(std::string region, ExpectIdent("region name"));
      std::string anchor;
      if (Match(TokenKind::kComma)) {
        MOST_ASSIGN_OR_RETURN(anchor, ExpectIdent("anchor variable"));
      }
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      return inside ? FtlFormula::Inside(std::move(var), std::move(region),
                                         std::move(anchor))
                    : FtlFormula::Outside(std::move(var), std::move(region),
                                          std::move(anchor));
    }
    if (MatchKeyword("WITHIN_SPHERE")) {
      if (!Match(TokenKind::kLParen)) return Error("expected '('");
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected sphere radius");
      }
      double radius = Consume().number;
      std::vector<std::string> vars;
      while (Match(TokenKind::kComma)) {
        MOST_ASSIGN_OR_RETURN(std::string var, ExpectIdent("object variable"));
        vars.push_back(std::move(var));
      }
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      if (vars.empty()) {
        return Status::ParseError("WITHIN_SPHERE needs at least one object");
      }
      return FtlFormula::WithinSphere(radius, std::move(vars));
    }

    // Either `term cmp term` or a parenthesized formula; try the
    // comparison first and backtrack.
    size_t saved = pos_;
    Result<FormulaPtr> cmp = TryComparison();
    if (cmp.ok()) return cmp;
    pos_ = saved;
    if (Match(TokenKind::kLParen)) {
      MOST_ASSIGN_OR_RETURN(FormulaPtr f, ParseOr());
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      return f;
    }
    return cmp.status();  // The comparison error is the more informative one.
  }

  Result<FormulaPtr> TryComparison() {
    MOST_ASSIGN_OR_RETURN(TermPtr lhs, ParseTerm());
    FtlFormula::CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kLt:
        op = FtlFormula::CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = FtlFormula::CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = FtlFormula::CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = FtlFormula::CmpOp::kGe;
        break;
      case TokenKind::kEq:
        op = FtlFormula::CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = FtlFormula::CmpOp::kNe;
        break;
      default:
        return Error("expected a comparison operator");
    }
    Consume();
    MOST_ASSIGN_OR_RETURN(TermPtr rhs, ParseTerm());
    return FtlFormula::Compare(op, std::move(lhs), std::move(rhs));
  }

  // term := muldiv ((+|-) muldiv)*
  Result<TermPtr> ParseTerm() {
    MOST_ASSIGN_OR_RETURN(TermPtr lhs, ParseMulDiv());
    while (true) {
      if (Match(TokenKind::kPlus)) {
        MOST_ASSIGN_OR_RETURN(TermPtr rhs, ParseMulDiv());
        lhs = FtlTerm::Arith(FtlTerm::ArithOp::kAdd, std::move(lhs),
                             std::move(rhs));
      } else if (Match(TokenKind::kMinus)) {
        MOST_ASSIGN_OR_RETURN(TermPtr rhs, ParseMulDiv());
        lhs = FtlTerm::Arith(FtlTerm::ArithOp::kSub, std::move(lhs),
                             std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<TermPtr> ParseMulDiv() {
    MOST_ASSIGN_OR_RETURN(TermPtr lhs, ParseTermPrimary());
    while (true) {
      if (Match(TokenKind::kStar)) {
        MOST_ASSIGN_OR_RETURN(TermPtr rhs, ParseTermPrimary());
        lhs = FtlTerm::Arith(FtlTerm::ArithOp::kMul, std::move(lhs),
                             std::move(rhs));
      } else if (Match(TokenKind::kSlash)) {
        MOST_ASSIGN_OR_RETURN(TermPtr rhs, ParseTermPrimary());
        lhs = FtlTerm::Arith(FtlTerm::ArithOp::kDiv, std::move(lhs),
                             std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<TermPtr> ParseTermPrimary() {
    if (Match(TokenKind::kMinus)) {
      MOST_ASSIGN_OR_RETURN(TermPtr operand, ParseTermPrimary());
      if (operand->kind() == FtlTerm::Kind::kLiteral &&
          operand->literal().is_numeric()) {
        return FtlTerm::Literal(
            Value(-operand->literal().AsDouble().value()));
      }
      return FtlTerm::Arith(FtlTerm::ArithOp::kSub,
                            FtlTerm::Literal(Value(0.0)), std::move(operand));
    }
    if (Peek().kind == TokenKind::kNumber) {
      return FtlTerm::Literal(Value(Consume().number));
    }
    if (Peek().kind == TokenKind::kString) {
      return FtlTerm::Literal(Value(Consume().text));
    }
    if (Peek().IsKeyword("time") && Peek(1).kind != TokenKind::kDot) {
      Consume();
      return FtlTerm::Time();
    }
    if (MatchKeyword("DIST")) {
      if (!Match(TokenKind::kLParen)) return Error("expected '('");
      MOST_ASSIGN_OR_RETURN(std::string a, ExpectIdent("object variable"));
      if (!Match(TokenKind::kComma)) return Error("expected ','");
      MOST_ASSIGN_OR_RETURN(std::string b, ExpectIdent("object variable"));
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      return FtlTerm::Dist(std::move(a), std::move(b));
    }
    if (MatchKeyword("SPEED")) {
      if (!Match(TokenKind::kLParen)) return Error("expected '('");
      MOST_ASSIGN_OR_RETURN(TermPtr ref, ParseAttrPath());
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      if (ref->kind() != FtlTerm::Kind::kAttrRef ||
          ref->sub() != FtlTerm::AttrSub::kCurrent) {
        return Status::ParseError("SPEED expects var.ATTRIBUTE");
      }
      return FtlTerm::AttrRef(ref->var(), ref->attr(),
                              FtlTerm::AttrSub::kSpeed);
    }
    if (Peek().kind == TokenKind::kIdent) {
      return ParseAttrPath();
    }
    if (Match(TokenKind::kLParen)) {
      MOST_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      return t;
    }
    return Error("expected a term");
  }

  // ident ('.' ident)*: a bare identifier is a value variable; a dotted
  // path is var.ATTR[...], with trailing `.value` / `.updatetime`
  // recognized as sub-attribute selectors after >= 2 path components.
  Result<TermPtr> ParseAttrPath() {
    MOST_ASSIGN_OR_RETURN(std::string head, ExpectIdent("identifier"));
    std::vector<std::string> components;
    while (Match(TokenKind::kDot)) {
      MOST_ASSIGN_OR_RETURN(std::string c, ExpectIdent("attribute name"));
      components.push_back(std::move(c));
    }
    if (components.empty()) {
      return FtlTerm::VarRef(std::move(head));
    }
    FtlTerm::AttrSub sub = FtlTerm::AttrSub::kCurrent;
    if (components.size() >= 2) {
      const std::string& last = components.back();
      Token probe;
      probe.kind = TokenKind::kIdent;
      probe.text = last;
      if (probe.IsKeyword("value")) {
        sub = FtlTerm::AttrSub::kValue;
        components.pop_back();
      } else if (probe.IsKeyword("updatetime")) {
        sub = FtlTerm::AttrSub::kUpdatetime;
        components.pop_back();
      }
    }
    std::string attr = components[0];
    for (size_t i = 1; i < components.size(); ++i) {
      attr += "." + components[i];
    }
    return FtlTerm::AttrRef(std::move(head), std::move(attr), sub);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FtlQuery> ParseQuery(const std::string& source) {
  MOST_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseQueryAll();
}

Result<FormulaPtr> ParseFormula(const std::string& source) {
  MOST_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseFormulaAll();
}

}  // namespace most
