#include "ftl/ast.h"

#include <sstream>

namespace most {

// ---------------------------------------------------------------------------
// Term factories
// ---------------------------------------------------------------------------

TermPtr FtlTerm::Literal(Value v) {
  auto t = std::make_shared<FtlTerm>(FtlTerm());
  t->kind_ = Kind::kLiteral;
  t->literal_ = std::move(v);
  return t;
}

TermPtr FtlTerm::VarRef(std::string name) {
  auto t = std::make_shared<FtlTerm>(FtlTerm());
  t->kind_ = Kind::kVarRef;
  t->var_ = std::move(name);
  return t;
}

TermPtr FtlTerm::AttrRef(std::string object_var, std::string attr,
                         AttrSub sub) {
  auto t = std::make_shared<FtlTerm>(FtlTerm());
  t->kind_ = Kind::kAttrRef;
  t->var_ = std::move(object_var);
  t->attr_ = std::move(attr);
  t->sub_ = sub;
  return t;
}

TermPtr FtlTerm::Time() {
  auto t = std::make_shared<FtlTerm>(FtlTerm());
  t->kind_ = Kind::kTime;
  return t;
}

TermPtr FtlTerm::Arith(ArithOp op, TermPtr lhs, TermPtr rhs) {
  auto t = std::make_shared<FtlTerm>(FtlTerm());
  t->kind_ = Kind::kArith;
  t->arith_op_ = op;
  t->children_ = {std::move(lhs), std::move(rhs)};
  return t;
}

TermPtr FtlTerm::Dist(std::string var1, std::string var2) {
  auto t = std::make_shared<FtlTerm>(FtlTerm());
  t->kind_ = Kind::kDist;
  t->var_ = std::move(var1);
  t->var2_ = std::move(var2);
  return t;
}

void FtlTerm::CollectObjectVars(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kAttrRef:
      out->insert(var_);
      break;
    case Kind::kDist:
      out->insert(var_);
      out->insert(var2_);
      break;
    default:
      break;
  }
  for (const TermPtr& c : children_) c->CollectObjectVars(out);
}

void FtlTerm::CollectValueVars(std::set<std::string>* out) const {
  if (kind_ == Kind::kVarRef) out->insert(var_);
  for (const TermPtr& c : children_) c->CollectValueVars(out);
}

std::string FtlTerm::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kLiteral:
      os << literal_;
      break;
    case Kind::kVarRef:
      os << var_;
      break;
    case Kind::kAttrRef:
      switch (sub_) {
        case AttrSub::kCurrent:
          os << var_ << "." << attr_;
          break;
        case AttrSub::kValue:
          os << var_ << "." << attr_ << ".value";
          break;
        case AttrSub::kUpdatetime:
          os << var_ << "." << attr_ << ".updatetime";
          break;
        case AttrSub::kSpeed:
          os << "SPEED(" << var_ << "." << attr_ << ")";
          break;
      }
      break;
    case Kind::kTime:
      os << "time";
      break;
    case Kind::kArith: {
      const char* op = "?";
      switch (arith_op_) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      os << "(" << children_[0]->ToString() << " " << op << " "
         << children_[1]->ToString() << ")";
      break;
    }
    case Kind::kDist:
      os << "DIST(" << var_ << ", " << var2_ << ")";
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Formula factories
// ---------------------------------------------------------------------------

FormulaPtr FtlFormula::BoolLit(bool value) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kBoolLit;
  f->bool_value_ = value;
  return f;
}

FormulaPtr FtlFormula::Compare(CmpOp op, TermPtr lhs, TermPtr rhs) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kCompare;
  f->cmp_op_ = op;
  f->lhs_term_ = std::move(lhs);
  f->rhs_term_ = std::move(rhs);
  return f;
}

FormulaPtr FtlFormula::Inside(std::string var, std::string region,
                              std::string anchor) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kInside;
  f->var_ = std::move(var);
  f->region_ = std::move(region);
  f->anchor_ = std::move(anchor);
  return f;
}

FormulaPtr FtlFormula::Outside(std::string var, std::string region,
                               std::string anchor) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kOutside;
  f->var_ = std::move(var);
  f->region_ = std::move(region);
  f->anchor_ = std::move(anchor);
  return f;
}

FormulaPtr FtlFormula::WithinSphere(double radius,
                                    std::vector<std::string> vars) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kWithinSphere;
  f->radius_ = radius;
  f->sphere_vars_ = std::move(vars);
  return f;
}

FormulaPtr FtlFormula::And(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kAnd;
  f->children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr FtlFormula::Or(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kOr;
  f->children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr FtlFormula::Not(FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kNot;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::Until(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kUntil;
  f->children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr FtlFormula::UntilWithin(Tick bound, FormulaPtr lhs,
                                   FormulaPtr rhs) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kUntilWithin;
  f->bound_ = bound;
  f->children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr FtlFormula::Nexttime(FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kNexttime;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::Eventually(FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kEventually;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::EventuallyWithin(Tick bound, FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kEventuallyWithin;
  f->bound_ = bound;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::EventuallyAfter(Tick bound, FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kEventuallyAfter;
  f->bound_ = bound;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::Always(FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kAlways;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::AlwaysFor(Tick bound, FormulaPtr inner) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kAlwaysFor;
  f->bound_ = bound;
  f->children_ = {std::move(inner)};
  return f;
}

FormulaPtr FtlFormula::Assign(std::string var, TermPtr term,
                              FormulaPtr body) {
  auto f = std::make_shared<FtlFormula>(FtlFormula());
  f->kind_ = Kind::kAssign;
  f->var_ = std::move(var);
  f->assign_term_ = std::move(term);
  f->children_ = {std::move(body)};
  return f;
}

void FtlFormula::CollectObjectVars(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kCompare:
      lhs_term_->CollectObjectVars(out);
      rhs_term_->CollectObjectVars(out);
      break;
    case Kind::kInside:
    case Kind::kOutside:
      out->insert(var_);
      if (!anchor_.empty()) out->insert(anchor_);
      break;
    case Kind::kWithinSphere:
      for (const std::string& v : sphere_vars_) out->insert(v);
      break;
    case Kind::kAssign:
      assign_term_->CollectObjectVars(out);
      break;
    default:
      break;
  }
  for (const FormulaPtr& c : children_) c->CollectObjectVars(out);
}

void FtlFormula::CollectFreeValueVars(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kCompare: {
      lhs_term_->CollectValueVars(out);
      rhs_term_->CollectValueVars(out);
      break;
    }
    case Kind::kAssign: {
      assign_term_->CollectValueVars(out);
      std::set<std::string> body;
      children_[0]->CollectFreeValueVars(&body);
      body.erase(var_);
      out->insert(body.begin(), body.end());
      return;
    }
    default:
      break;
  }
  for (const FormulaPtr& c : children_) c->CollectFreeValueVars(out);
}

bool FtlFormula::IsConjunctive() const {
  if (kind_ == Kind::kNot) return false;
  for (const FormulaPtr& c : children_) {
    if (!c->IsConjunctive()) return false;
  }
  return true;
}

bool FtlFormula::IsNonTemporal() const {
  switch (kind_) {
    case Kind::kUntil:
    case Kind::kUntilWithin:
    case Kind::kNexttime:
    case Kind::kEventually:
    case Kind::kEventuallyWithin:
    case Kind::kEventuallyAfter:
    case Kind::kAlways:
    case Kind::kAlwaysFor:
      return false;
    default:
      break;
  }
  for (const FormulaPtr& c : children_) {
    if (!c->IsNonTemporal()) return false;
  }
  return true;
}

std::string_view CmpOpToString(FtlFormula::CmpOp op) {
  switch (op) {
    case FtlFormula::CmpOp::kEq:
      return "=";
    case FtlFormula::CmpOp::kNe:
      return "!=";
    case FtlFormula::CmpOp::kLt:
      return "<";
    case FtlFormula::CmpOp::kLe:
      return "<=";
    case FtlFormula::CmpOp::kGt:
      return ">";
    case FtlFormula::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string FtlFormula::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kBoolLit:
      os << (bool_value_ ? "TRUE" : "FALSE");
      break;
    case Kind::kCompare:
      os << lhs_term_->ToString() << " " << CmpOpToString(cmp_op_) << " "
         << rhs_term_->ToString();
      break;
    case Kind::kInside:
    case Kind::kOutside:
      os << (kind_ == Kind::kInside ? "INSIDE(" : "OUTSIDE(") << var_
         << ", " << region_;
      if (!anchor_.empty()) os << ", " << anchor_;
      os << ")";
      break;
    case Kind::kWithinSphere: {
      os << "WITHIN_SPHERE(" << radius_;
      for (const std::string& v : sphere_vars_) os << ", " << v;
      os << ")";
      break;
    }
    case Kind::kAnd:
      os << "(" << children_[0]->ToString() << " AND "
         << children_[1]->ToString() << ")";
      break;
    case Kind::kOr:
      os << "(" << children_[0]->ToString() << " OR "
         << children_[1]->ToString() << ")";
      break;
    case Kind::kNot:
      os << "(NOT " << children_[0]->ToString() << ")";
      break;
    case Kind::kUntil:
      os << "(" << children_[0]->ToString() << " UNTIL "
         << children_[1]->ToString() << ")";
      break;
    case Kind::kUntilWithin:
      os << "(" << children_[0]->ToString() << " UNTIL WITHIN " << bound_
         << " " << children_[1]->ToString() << ")";
      break;
    case Kind::kNexttime:
      os << "NEXTTIME (" << children_[0]->ToString() << ")";
      break;
    case Kind::kEventually:
      os << "EVENTUALLY (" << children_[0]->ToString() << ")";
      break;
    case Kind::kEventuallyWithin:
      os << "EVENTUALLY WITHIN " << bound_ << " ("
         << children_[0]->ToString() << ")";
      break;
    case Kind::kEventuallyAfter:
      os << "EVENTUALLY AFTER " << bound_ << " ("
         << children_[0]->ToString() << ")";
      break;
    case Kind::kAlways:
      os << "ALWAYS (" << children_[0]->ToString() << ")";
      break;
    case Kind::kAlwaysFor:
      os << "ALWAYS FOR " << bound_ << " (" << children_[0]->ToString()
         << ")";
      break;
    case Kind::kAssign:
      os << "[" << var_ << " := " << assign_term_->ToString() << "] ("
         << children_[0]->ToString() << ")";
      break;
  }
  return os.str();
}

TermPtr SubstituteValueVar(const TermPtr& term, const std::string& var,
                           const Value& v) {
  switch (term->kind()) {
    case FtlTerm::Kind::kVarRef:
      if (term->var() == var) return FtlTerm::Literal(v);
      return term;
    case FtlTerm::Kind::kArith:
      return FtlTerm::Arith(
          term->arith_op(),
          SubstituteValueVar(term->children()[0], var, v),
          SubstituteValueVar(term->children()[1], var, v));
    default:
      return term;
  }
}

FormulaPtr SubstituteValueVar(const FormulaPtr& f, const std::string& var,
                              const Value& v) {
  switch (f->kind()) {
    case FtlFormula::Kind::kCompare:
      return FtlFormula::Compare(f->cmp_op(),
                                 SubstituteValueVar(f->lhs_term(), var, v),
                                 SubstituteValueVar(f->rhs_term(), var, v));
    case FtlFormula::Kind::kAssign: {
      TermPtr term = SubstituteValueVar(f->assign_term(), var, v);
      if (f->var() == var) {
        // Inner binding shadows; only the assignment term sees `var`.
        return FtlFormula::Assign(f->var(), term, f->children()[0]);
      }
      return FtlFormula::Assign(f->var(), term,
                                SubstituteValueVar(f->children()[0], var, v));
    }
    case FtlFormula::Kind::kAnd:
      return FtlFormula::And(SubstituteValueVar(f->children()[0], var, v),
                             SubstituteValueVar(f->children()[1], var, v));
    case FtlFormula::Kind::kOr:
      return FtlFormula::Or(SubstituteValueVar(f->children()[0], var, v),
                            SubstituteValueVar(f->children()[1], var, v));
    case FtlFormula::Kind::kNot:
      return FtlFormula::Not(SubstituteValueVar(f->children()[0], var, v));
    case FtlFormula::Kind::kUntil:
      return FtlFormula::Until(SubstituteValueVar(f->children()[0], var, v),
                               SubstituteValueVar(f->children()[1], var, v));
    case FtlFormula::Kind::kUntilWithin:
      return FtlFormula::UntilWithin(
          f->bound(), SubstituteValueVar(f->children()[0], var, v),
          SubstituteValueVar(f->children()[1], var, v));
    case FtlFormula::Kind::kNexttime:
      return FtlFormula::Nexttime(
          SubstituteValueVar(f->children()[0], var, v));
    case FtlFormula::Kind::kEventually:
      return FtlFormula::Eventually(
          SubstituteValueVar(f->children()[0], var, v));
    case FtlFormula::Kind::kEventuallyWithin:
      return FtlFormula::EventuallyWithin(
          f->bound(), SubstituteValueVar(f->children()[0], var, v));
    case FtlFormula::Kind::kEventuallyAfter:
      return FtlFormula::EventuallyAfter(
          f->bound(), SubstituteValueVar(f->children()[0], var, v));
    case FtlFormula::Kind::kAlways:
      return FtlFormula::Always(SubstituteValueVar(f->children()[0], var, v));
    case FtlFormula::Kind::kAlwaysFor:
      return FtlFormula::AlwaysFor(
          f->bound(), SubstituteValueVar(f->children()[0], var, v));
    default:
      return f;  // Atomic formulas without value-variable terms.
  }
}

std::string FtlQuery::ToString() const {
  std::ostringstream os;
  os << "RETRIEVE ";
  for (size_t i = 0; i < retrieve.size(); ++i) {
    if (i) os << ", ";
    os << retrieve[i];
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) os << ", ";
    os << from[i].class_name << " " << from[i].var;
  }
  if (where != nullptr) {
    os << " WHERE " << where->ToString();
  }
  return os.str();
}

}  // namespace most
