#include "ftl/naive_eval.h"

#include <algorithm>
#include <cmath>

#include "geometry/mec.h"

namespace most {

namespace {

constexpr double kCmpEps = 1e-9;

Result<bool> CompareAt(FtlFormula::CmpOp op, const Value& lhs,
                       const Value& rhs) {
  if (lhs.is_numeric() && rhs.is_numeric()) {
    double diff = lhs.AsDouble().value() - rhs.AsDouble().value();
    switch (op) {
      case FtlFormula::CmpOp::kLe:
        return diff <= kCmpEps;
      case FtlFormula::CmpOp::kLt:
        return diff < -kCmpEps;
      case FtlFormula::CmpOp::kGe:
        return diff >= -kCmpEps;
      case FtlFormula::CmpOp::kGt:
        return diff > kCmpEps;
      case FtlFormula::CmpOp::kEq:
        return std::abs(diff) <= kCmpEps;
      case FtlFormula::CmpOp::kNe:
        return std::abs(diff) > kCmpEps;
    }
    return Status::Internal("bad cmp op");
  }
  if (lhs.type() != rhs.type()) {
    return Status::TypeError("comparison between mismatched types");
  }
  int c = lhs.Compare(rhs);
  switch (op) {
    case FtlFormula::CmpOp::kLe:
      return c <= 0;
    case FtlFormula::CmpOp::kLt:
      return c < 0;
    case FtlFormula::CmpOp::kGe:
      return c >= 0;
    case FtlFormula::CmpOp::kGt:
      return c > 0;
    case FtlFormula::CmpOp::kEq:
      return c == 0;
    case FtlFormula::CmpOp::kNe:
      return c != 0;
  }
  return Status::Internal("bad cmp op");
}

}  // namespace

Result<bool> NaiveFtlEvaluator::Holds(const FormulaPtr& f,
                                      const Instantiation& inst, Tick t,
                                      Interval window) const {
  if (t < window.begin || t > window.end) return false;
  switch (f->kind()) {
    case FtlFormula::Kind::kBoolLit:
      return f->bool_value();

    case FtlFormula::Kind::kCompare: {
      MOST_ASSIGN_OR_RETURN(Value lhs, EvalTermAt(f->lhs_term(), inst, t));
      MOST_ASSIGN_OR_RETURN(Value rhs, EvalTermAt(f->rhs_term(), inst, t));
      return CompareAt(f->cmp_op(), lhs, rhs);
    }

    case FtlFormula::Kind::kInside:
    case FtlFormula::Kind::kOutside: {
      MOST_ASSIGN_OR_RETURN(const Polygon* region, db_.GetRegion(f->region()));
      auto it = inst.find(f->var());
      if (it == inst.end()) {
        return Status::Internal("uninstantiated variable '" + f->var() + "'");
      }
      if (!it->second->IsSpatial()) {
        return Status::TypeError("INSIDE/OUTSIDE over non-spatial object");
      }
      Point2 position = it->second->PositionAt(t);
      if (!f->anchor().empty()) {
        // Moving region: coordinates are relative to the anchor.
        auto anchor_it = inst.find(f->anchor());
        if (anchor_it == inst.end()) {
          return Status::Internal("uninstantiated variable '" + f->anchor() +
                                  "'");
        }
        if (!anchor_it->second->IsSpatial()) {
          return Status::TypeError("INSIDE/OUTSIDE over non-spatial anchor");
        }
        position = position - anchor_it->second->PositionAt(t);
      }
      bool inside = region->Contains(position);
      return f->kind() == FtlFormula::Kind::kInside ? inside : !inside;
    }

    case FtlFormula::Kind::kWithinSphere: {
      std::vector<Point2> points;
      for (const std::string& v : f->sphere_vars()) {
        auto it = inst.find(v);
        if (it == inst.end()) {
          return Status::Internal("uninstantiated variable '" + v + "'");
        }
        if (!it->second->IsSpatial()) {
          return Status::TypeError("WITHIN_SPHERE over non-spatial object");
        }
        points.push_back(it->second->PositionAt(t));
      }
      return MinimalEnclosingCircle(points).radius <= f->radius() + 1e-9;
    }

    case FtlFormula::Kind::kAnd: {
      MOST_ASSIGN_OR_RETURN(bool lhs, Holds(f->children()[0], inst, t, window));
      if (!lhs) return false;
      return Holds(f->children()[1], inst, t, window);
    }
    case FtlFormula::Kind::kOr: {
      MOST_ASSIGN_OR_RETURN(bool lhs, Holds(f->children()[0], inst, t, window));
      if (lhs) return true;
      return Holds(f->children()[1], inst, t, window);
    }
    case FtlFormula::Kind::kNot: {
      MOST_ASSIGN_OR_RETURN(bool v, Holds(f->children()[0], inst, t, window));
      return !v;
    }

    case FtlFormula::Kind::kUntil:
    case FtlFormula::Kind::kUntilWithin: {
      Tick limit = window.end;
      if (f->kind() == FtlFormula::Kind::kUntilWithin) {
        limit = std::min(limit, TickSaturatingAdd(t, f->bound()));
      }
      for (Tick tp = t; tp <= limit; ++tp) {
        MOST_ASSIGN_OR_RETURN(bool g2,
                              Holds(f->children()[1], inst, tp, window));
        if (g2) return true;
        MOST_ASSIGN_OR_RETURN(bool g1,
                              Holds(f->children()[0], inst, tp, window));
        if (!g1) return false;
      }
      return false;
    }

    case FtlFormula::Kind::kNexttime:
      if (t + 1 > window.end) return false;
      return Holds(f->children()[0], inst, t + 1, window);

    case FtlFormula::Kind::kEventually:
    case FtlFormula::Kind::kEventuallyWithin:
    case FtlFormula::Kind::kEventuallyAfter: {
      Tick from = t;
      Tick to = window.end;
      if (f->kind() == FtlFormula::Kind::kEventuallyWithin) {
        to = std::min(to, TickSaturatingAdd(t, f->bound()));
      } else if (f->kind() == FtlFormula::Kind::kEventuallyAfter) {
        from = TickSaturatingAdd(t, f->bound());
      }
      for (Tick tp = from; tp <= to; ++tp) {
        MOST_ASSIGN_OR_RETURN(bool v, Holds(f->children()[0], inst, tp, window));
        if (v) return true;
      }
      return false;
    }

    case FtlFormula::Kind::kAlways:
    case FtlFormula::Kind::kAlwaysFor: {
      Tick to = window.end;
      if (f->kind() == FtlFormula::Kind::kAlwaysFor) {
        Tick bounded = TickSaturatingAdd(t, f->bound());
        if (bounded > window.end) return false;  // Beyond evaluated history.
        to = bounded;
      }
      for (Tick tp = t; tp <= to; ++tp) {
        MOST_ASSIGN_OR_RETURN(bool v, Holds(f->children()[0], inst, tp, window));
        if (!v) return false;
      }
      return true;
    }

    case FtlFormula::Kind::kAssign: {
      MOST_ASSIGN_OR_RETURN(Value v, EvalTermAt(f->assign_term(), inst, t));
      FormulaPtr substituted = SubstituteValueVar(f->children()[0], f->var(), v);
      return Holds(substituted, inst, t, window);
    }
  }
  return Status::Internal("bad formula kind");
}

Result<TemporalRelation> NaiveFtlEvaluator::EvaluateQuery(
    const FtlQuery& query, Interval window) const {
  if (query.where == nullptr) {
    return Status::InvalidArgument("query has no WHERE formula");
  }
  // Bind variables and enumerate the full cross product.
  std::vector<std::string> vars;
  std::vector<const ObjectClass*> classes;
  for (const FromBinding& fb : query.from) {
    MOST_ASSIGN_OR_RETURN(const ObjectClass* oc, db_.GetClass(fb.class_name));
    vars.push_back(fb.var);
    classes.push_back(oc);
  }

  TemporalRelation full;
  full.vars = vars;
  std::sort(full.vars.begin(), full.vars.end());
  std::vector<size_t> positions;
  for (const std::string& v : full.vars) {
    positions.push_back(std::find(vars.begin(), vars.end(), v) - vars.begin());
  }

  std::vector<std::map<ObjectId, MostObject>::const_iterator> odometer;
  for (const ObjectClass* oc : classes) {
    if (oc->objects().empty()) return full.Project(query.retrieve);
    odometer.push_back(oc->objects().begin());
  }
  while (true) {
    Instantiation inst;
    for (size_t i = 0; i < vars.size(); ++i) {
      inst[vars[i]] = &odometer[i]->second;
    }
    std::vector<Interval> ticks;
    for (Tick t = window.begin; t <= window.end; ++t) {
      MOST_ASSIGN_OR_RETURN(bool holds, Holds(query.where, inst, t, window));
      if (holds) {
        if (!ticks.empty() && ticks.back().end == t - 1) {
          ticks.back().end = t;
        } else {
          ticks.push_back(Interval(t, t));
        }
      }
    }
    if (!ticks.empty()) {
      std::vector<ObjectId> binding(vars.size());
      for (size_t i = 0; i < full.vars.size(); ++i) {
        binding[i] = odometer[positions[i]]->first;
      }
      full.rows.emplace(std::move(binding),
                        IntervalSet::FromIntervals(std::move(ticks)));
    }
    // Advance.
    size_t d = vars.size();
    if (d == 0) break;
    while (true) {
      --d;
      if (++odometer[d] != classes[d]->objects().end()) break;
      odometer[d] = classes[d]->objects().begin();
      if (d == 0) return full.Project(query.retrieve);
    }
  }
  return full.Project(query.retrieve);
}

}  // namespace most
