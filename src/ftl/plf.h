#ifndef MOST_FTL_PLF_H_
#define MOST_FTL_PLF_H_

#include <vector>

#include "common/interval.h"
#include "common/result.h"

namespace most {

/// A piecewise-linear real-valued function of time covering one tick
/// window. FTL terms over dynamic attributes (positions, `time`,
/// arithmetic thereon) evaluate to these, and comparisons between them are
/// solved analytically into tick sets — the heart of "evaluate the query
/// once instead of at every clock tick".
class Plf {
 public:
  struct Piece {
    Interval ticks;
    double value_at_begin = 0.0;
    double slope = 0.0;

    double At(Tick t) const {
      return value_at_begin +
             slope * static_cast<double>(t - ticks.begin);
    }
  };

  /// Constant function over the window.
  static Plf Constant(Interval window, double value);

  /// The identity function (value = t), for the `time` term.
  static Plf TimeLine(Interval window);

  /// Builds from explicit pieces; pieces must tile `window` contiguously.
  static Plf FromPieces(Interval window, std::vector<Piece> pieces);

  const Interval& window() const { return window_; }
  const std::vector<Piece>& pieces() const { return pieces_; }

  bool IsConstant() const;
  /// Value at a tick inside the window.
  double At(Tick t) const;

  Plf Negate() const;
  Plf Scale(double k) const;
  Plf AddConstant(double k) const;

  /// Pointwise sum / difference (windows must match).
  Plf Add(const Plf& other) const;
  Plf Sub(const Plf& other) const;

  /// Pointwise product / quotient; only defined when one side is constant
  /// (the result must stay piecewise linear).
  Result<Plf> Mul(const Plf& other) const;
  Result<Plf> Div(const Plf& other) const;

  /// Ticks where this(t) <= other(t) (closed comparison; a small epsilon
  /// absorbs float noise at the boundary).
  IntervalSet TicksLe(const Plf& other) const;
  IntervalSet TicksGe(const Plf& other) const;
  IntervalSet TicksEq(const Plf& other) const;

 private:
  Interval window_{0, 0};
  std::vector<Piece> pieces_;
};

}  // namespace most

#endif  // MOST_FTL_PLF_H_
