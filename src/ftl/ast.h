#ifndef MOST_FTL_AST_H_
#define MOST_FTL_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/value.h"

namespace most {

class FtlTerm;
using TermPtr = std::shared_ptr<const FtlTerm>;

/// A term of the FTL logic: something with a value at each database state.
/// Terms appear inside comparisons and assignment quantifiers.
class FtlTerm {
 public:
  enum class Kind {
    kLiteral,   ///< A constant.
    kVarRef,    ///< A value variable bound by an assignment quantifier.
    kAttrRef,   ///< object_var.ATTRIBUTE (with optional sub-attribute).
    kTime,      ///< The special database object `time`.
    kArith,     ///< Binary arithmetic over two terms.
    kDist,      ///< DIST(o1, o2): distance between two spatial objects.
  };

  /// Which view of an attribute a kAttrRef denotes. A dynamic attribute A
  /// can be queried as its (time-varying) current value, or by its
  /// sub-attributes A.value / A.updatetime, or by its instantaneous rate of
  /// change SPEED(A) (the paper's "speed in the X direction").
  enum class AttrSub { kCurrent, kValue, kUpdatetime, kSpeed };

  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  static TermPtr Literal(Value v);
  static TermPtr VarRef(std::string name);
  static TermPtr AttrRef(std::string object_var, std::string attr,
                         AttrSub sub = AttrSub::kCurrent);
  static TermPtr Time();
  static TermPtr Arith(ArithOp op, TermPtr lhs, TermPtr rhs);
  static TermPtr Dist(std::string var1, std::string var2);

  Kind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& var() const { return var_; }
  const std::string& var2() const { return var2_; }
  const std::string& attr() const { return attr_; }
  AttrSub sub() const { return sub_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::vector<TermPtr>& children() const { return children_; }

  /// Adds the object variables referenced by this term to `out`.
  void CollectObjectVars(std::set<std::string>* out) const;
  /// Adds assignment-bound value variables referenced by this term.
  void CollectValueVars(std::set<std::string>* out) const;

  std::string ToString() const;

 private:
  FtlTerm() = default;

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  std::string var_;
  std::string var2_;
  std::string attr_;
  AttrSub sub_ = AttrSub::kCurrent;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<TermPtr> children_;
};

class FtlFormula;
using FormulaPtr = std::shared_ptr<const FtlFormula>;

/// A well-formed formula of FTL (paper, Section 3.2): atomic predicates
/// (comparisons and spatial relations), boolean connectives, the basic
/// temporal operators Until and Nexttime, the derived operators Eventually
/// and Always, the bounded real-time operators of Section 3.4, and the
/// assignment quantifier [x <- term].
class FtlFormula {
 public:
  enum class Kind {
    kBoolLit,
    kCompare,
    kInside,            ///< INSIDE(o, Region)
    kOutside,           ///< OUTSIDE(o, Region)
    kWithinSphere,      ///< WITHIN_SPHERE(r, o1, ..., ok)
    kAnd,
    kOr,
    kNot,
    kUntil,             ///< f Until g
    kUntilWithin,       ///< f until_within_c g
    kNexttime,
    kEventually,
    kEventuallyWithin,  ///< Eventually within c
    kEventuallyAfter,   ///< Eventually after c
    kAlways,
    kAlwaysFor,         ///< Always for c
    kAssign,            ///< [x <- term] f
  };

  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  static FormulaPtr BoolLit(bool value);
  static FormulaPtr Compare(CmpOp op, TermPtr lhs, TermPtr rhs);
  /// INSIDE(var, Region): var's position is inside the (stationary)
  /// region. The anchored form INSIDE(var, Region, anchor) interprets the
  /// region's coordinates relative to `anchor`'s position — a region that
  /// "moves as a rigid body having the motion vector" of the anchor
  /// object (the paper's moving circle C around the car).
  static FormulaPtr Inside(std::string var, std::string region,
                           std::string anchor = "");
  static FormulaPtr Outside(std::string var, std::string region,
                            std::string anchor = "");
  static FormulaPtr WithinSphere(double radius, std::vector<std::string> vars);
  static FormulaPtr And(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Or(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr Until(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr UntilWithin(Tick bound, FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Nexttime(FormulaPtr f);
  static FormulaPtr Eventually(FormulaPtr f);
  static FormulaPtr EventuallyWithin(Tick bound, FormulaPtr f);
  static FormulaPtr EventuallyAfter(Tick bound, FormulaPtr f);
  static FormulaPtr Always(FormulaPtr f);
  static FormulaPtr AlwaysFor(Tick bound, FormulaPtr f);
  static FormulaPtr Assign(std::string var, TermPtr term, FormulaPtr body);

  Kind kind() const { return kind_; }
  bool bool_value() const { return bool_value_; }
  CmpOp cmp_op() const { return cmp_op_; }
  const TermPtr& lhs_term() const { return lhs_term_; }
  const TermPtr& rhs_term() const { return rhs_term_; }
  const std::string& var() const { return var_; }
  const std::string& region() const { return region_; }
  /// Anchor object variable of a moving region ("" = stationary region).
  const std::string& anchor() const { return anchor_; }
  double radius() const { return radius_; }
  const std::vector<std::string>& sphere_vars() const { return sphere_vars_; }
  Tick bound() const { return bound_; }
  const TermPtr& assign_term() const { return assign_term_; }
  const std::vector<FormulaPtr>& children() const { return children_; }

  /// Free object variables (those bound by the query's FROM clause).
  void CollectObjectVars(std::set<std::string>* out) const;
  /// Free value variables (not bound by an enclosing assignment).
  void CollectFreeValueVars(std::set<std::string>* out) const;

  /// True if the formula contains no negation (other than inside the
  /// OUTSIDE predicate, which is its own atomic relation) — the
  /// "conjunctive formula" subset the paper's algorithm targets.
  bool IsConjunctive() const;

  /// True if the formula contains no temporal operator (a "maximal
  /// non-temporal subformula" candidate, Section 5.1).
  bool IsNonTemporal() const;

  std::string ToString() const;

 private:
  FtlFormula() = default;

  Kind kind_ = Kind::kBoolLit;
  bool bool_value_ = true;
  CmpOp cmp_op_ = CmpOp::kEq;
  TermPtr lhs_term_;
  TermPtr rhs_term_;
  std::string var_;
  std::string region_;
  std::string anchor_;
  double radius_ = 0.0;
  std::vector<std::string> sphere_vars_;
  Tick bound_ = 0;
  TermPtr assign_term_;
  std::vector<FormulaPtr> children_;
};

/// Substitutes a literal for a value variable throughout a term / formula
/// (used to evaluate the assignment quantifier).
TermPtr SubstituteValueVar(const TermPtr& term, const std::string& var,
                           const Value& v);
FormulaPtr SubstituteValueVar(const FormulaPtr& f, const std::string& var,
                              const Value& v);

/// Binding of an object variable to an object class in a query's FROM
/// clause.
struct FromBinding {
  std::string class_name;
  std::string var;
};

/// RETRIEVE <vars> FROM <class bindings> WHERE <formula>.
struct FtlQuery {
  std::vector<std::string> retrieve;
  std::vector<FromBinding> from;
  FormulaPtr where;

  std::string ToString() const;
};

std::string_view CmpOpToString(FtlFormula::CmpOp op);

}  // namespace most

#endif  // MOST_FTL_AST_H_
