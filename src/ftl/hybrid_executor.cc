#include "ftl/hybrid_executor.h"

namespace most {

namespace {

void SplitFtlConjuncts(const FormulaPtr& f, std::vector<FormulaPtr>* out) {
  if (f == nullptr) return;
  if (f->kind() == FtlFormula::Kind::kAnd) {
    SplitFtlConjuncts(f->children()[0], out);
    SplitFtlConjuncts(f->children()[1], out);
    return;
  }
  out->push_back(f);
}

Expr::CmpOp TranslateCmp(FtlFormula::CmpOp op) {
  switch (op) {
    case FtlFormula::CmpOp::kEq:
      return Expr::CmpOp::kEq;
    case FtlFormula::CmpOp::kNe:
      return Expr::CmpOp::kNe;
    case FtlFormula::CmpOp::kLt:
      return Expr::CmpOp::kLt;
    case FtlFormula::CmpOp::kLe:
      return Expr::CmpOp::kLe;
    case FtlFormula::CmpOp::kGt:
      return Expr::CmpOp::kGt;
    case FtlFormula::CmpOp::kGe:
      return Expr::CmpOp::kGe;
  }
  return Expr::CmpOp::kEq;
}

/// Translates an FTL term over static attributes (or time-invariant
/// sub-attributes) of `var` into a host expression; nullptr if not
/// translatable. Only time-invariant terms may be pushed down — their
/// truth now equals their truth at every state of the history.
ExprPtr TranslateTerm(const TermPtr& term, const std::string& var,
                      const std::set<std::string>& static_columns) {
  switch (term->kind()) {
    case FtlTerm::Kind::kLiteral:
      return Expr::Literal(term->literal());
    case FtlTerm::Kind::kAttrRef: {
      if (term->var() != var) return nullptr;
      switch (term->sub()) {
        case FtlTerm::AttrSub::kCurrent:
          // A plain attribute reference is time-invariant only when the
          // attribute is a static column of the table.
          if (static_columns.count(term->attr()) == 0) return nullptr;
          return Expr::Column(term->attr());
        case FtlTerm::AttrSub::kValue:
          return Expr::Column(term->attr() + ".value");
        case FtlTerm::AttrSub::kUpdatetime:
          return Expr::Column(term->attr() + ".updatetime");
        case FtlTerm::AttrSub::kSpeed:
          return nullptr;  // Speed can change with piecewise functions.
      }
      return nullptr;
    }
    case FtlTerm::Kind::kArith: {
      ExprPtr lhs = TranslateTerm(term->children()[0], var, static_columns);
      ExprPtr rhs = TranslateTerm(term->children()[1], var, static_columns);
      if (lhs == nullptr || rhs == nullptr) return nullptr;
      Expr::ArithOp op = Expr::ArithOp::kAdd;
      switch (term->arith_op()) {
        case FtlTerm::ArithOp::kAdd:
          op = Expr::ArithOp::kAdd;
          break;
        case FtlTerm::ArithOp::kSub:
          op = Expr::ArithOp::kSub;
          break;
        case FtlTerm::ArithOp::kMul:
          op = Expr::ArithOp::kMul;
          break;
        case FtlTerm::ArithOp::kDiv:
          op = Expr::ArithOp::kDiv;
          break;
      }
      return Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
    default:
      return nullptr;  // time, DIST, value variables: not pushable.
  }
}

}  // namespace

ExprPtr HybridFtlExecutor::TranslateStaticConjunct(
    const FormulaPtr& f, const std::string& var,
    const std::set<std::string>& static_columns) {
  if (f->kind() != FtlFormula::Kind::kCompare) return nullptr;
  ExprPtr lhs = TranslateTerm(f->lhs_term(), var, static_columns);
  ExprPtr rhs = TranslateTerm(f->rhs_term(), var, static_columns);
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  return Expr::Compare(TranslateCmp(f->cmp_op()), std::move(lhs),
                       std::move(rhs));
}

Result<TemporalRelation> HybridFtlExecutor::Evaluate(const FtlQuery& query,
                                                     Interval window,
                                                     ExecStats* stats) {
  if (query.from.size() != 1) {
    return Status::InvalidArgument(
        "the hybrid executor handles single-variable queries");
  }
  const std::string& table = query.from[0].class_name;
  const std::string& var = query.from[0].var;
  if (query.where == nullptr) {
    return Status::InvalidArgument("query has no WHERE formula");
  }
  MOST_ASSIGN_OR_RETURN(std::vector<MostColumnSpec> columns,
                        most_->GetLogicalColumns(table));
  MOST_ASSIGN_OR_RETURN(const Table* host_table,
                        most_->host()->GetTable(table));
  const Schema& host_schema = host_table->schema();

  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  st->table_rows = host_table->size();

  // 1. Partition the top-level conjuncts.
  std::vector<FormulaPtr> conjuncts;
  SplitFtlConjuncts(query.where, &conjuncts);
  ExprPtr host_where;
  FormulaPtr residual;
  std::set<std::string> static_columns;
  for (const MostColumnSpec& spec : columns) {
    if (!spec.dynamic) static_columns.insert(spec.name);
  }
  for (const FormulaPtr& conjunct : conjuncts) {
    ExprPtr translated =
        TranslateStaticConjunct(conjunct, var, static_columns);
    bool pushable = translated != nullptr;
    if (pushable) {
      // Every referenced column must exist in the host schema (a plain
      // reference to a dynamic attribute does not, and must stay in the
      // residual — though IsTimeInvariant already excludes it).
      std::set<std::string> cols;
      translated->CollectColumns(&cols);
      for (const std::string& c : cols) {
        if (!host_schema.HasColumn(c)) pushable = false;
      }
    }
    if (pushable) {
      ++st->pushed_conjuncts;
      host_where = host_where == nullptr
                       ? translated
                       : Expr::And(std::move(host_where), translated);
    } else {
      residual = residual == nullptr
                     ? conjunct
                     : FtlFormula::And(std::move(residual), conjunct);
    }
  }
  if (residual == nullptr) residual = FtlFormula::BoolLit(true);

  // 2. The DBMS computes the qualifying rows (indexes and the Section 5.1
  // machinery apply here).
  SelectQuery host_query{table, host_where, {}};
  MOST_ASSIGN_OR_RETURN(
      ResultSet qualifying,
      most_->host()->ExecuteSelect(host_query, &st->host_stats));
  st->host_rows_qualifying = qualifying.rows.size();

  // 3. Materialize the qualifying rows as MOST objects.
  MostDatabase view(clock_->Now());
  for (const auto& [name, polygon] : regions_) {
    MOST_RETURN_IF_ERROR(view.DefineRegion(name, polygon));
  }
  bool spatial = false;
  std::vector<AttributeDecl> decls;
  for (const MostColumnSpec& spec : columns) {
    if (spec.name == kAttrX || spec.name == kAttrY) {
      if (spec.dynamic) spatial = true;
      continue;
    }
    decls.push_back({spec.name, spec.dynamic, spec.static_type});
  }
  MOST_RETURN_IF_ERROR(view.CreateClass(table, decls, spatial).status());
  for (size_t r = 0; r < qualifying.rows.size(); ++r) {
    const Row& row = qualifying.rows[r];
    MOST_ASSIGN_OR_RETURN(MostObject * obj,
                          view.RestoreObject(table, qualifying.row_ids[r]));
    for (const MostColumnSpec& spec : columns) {
      if (spec.dynamic) {
        MOST_ASSIGN_OR_RETURN(size_t vi,
                              host_schema.IndexOf(spec.name + ".value"));
        MOST_ASSIGN_OR_RETURN(size_t ui,
                              host_schema.IndexOf(spec.name + ".updatetime"));
        MOST_ASSIGN_OR_RETURN(size_t fi,
                              host_schema.IndexOf(spec.name + ".function"));
        MOST_ASSIGN_OR_RETURN(TimeFunction f,
                              DecodeTimeFunction(row[fi].string_value()));
        MOST_ASSIGN_OR_RETURN(double base, row[vi].AsDouble());
        obj->SetDynamic(spec.name,
                        DynamicAttribute(base, row[ui].int_value(),
                                         std::move(f)));
      } else {
        MOST_ASSIGN_OR_RETURN(size_t idx, host_schema.IndexOf(spec.name));
        obj->SetStatic(spec.name, row[idx]);
      }
    }
  }

  // 4. The interval algorithm evaluates the residual (temporal) formula
  // over the reduced object set.
  FtlQuery residual_query;
  residual_query.retrieve = query.retrieve;
  residual_query.from = query.from;
  residual_query.where = residual;
  FtlEvaluator eval(view);
  return eval.EvaluateQuery(residual_query, window);
}

}  // namespace most
