#include "ftl/spatial_eval.h"

#include <algorithm>

#include "geometry/kinematics.h"
#include "geometry/mec.h"
#include "obs/trace.h"

namespace most {

namespace {

RealInterval ToReal(Interval ticks) {
  return {static_cast<double>(ticks.begin), static_cast<double>(ticks.end)};
}

/// TicksWhere + Clamp fused for the SoA kernels: appends the tick form of
/// each solution interval, clamped to `clamp_iv`, to *out. Identical
/// rounding to TicksWhere (same eps, same kTickMin/kTickMax saturation);
/// the integer clamp commutes with normalization, so normalizing the
/// accumulated list reproduces TicksWhere(reals).Clamp(clamp_iv) exactly.
void AppendClampedTicks(const std::vector<RealInterval>& reals,
                        Interval clamp_iv, std::vector<Interval>* out) {
  constexpr double kEps = 1e-9;
  for (const RealInterval& iv : reals) {
    if (!iv.valid()) continue;
    double lo = std::ceil(iv.begin - kEps);
    double hi = std::floor(iv.end + kEps);
    if (lo > hi) continue;
    if (lo < static_cast<double>(kTickMin)) lo = static_cast<double>(kTickMin);
    if (hi > static_cast<double>(kTickMax)) hi = static_cast<double>(kTickMax);
    Tick tlo = std::max(static_cast<Tick>(lo), clamp_iv.begin);
    Tick thi = std::min(static_cast<Tick>(hi), clamp_iv.end);
    if (tlo <= thi) out->push_back(Interval(tlo, thi));
  }
}

}  // namespace

void ForEachAlignedSegment(
    const std::vector<const MostObject*>& objects, Interval window,
    const std::function<void(Interval, const std::vector<MovingPoint2>&)>&
        fn) {
  std::vector<std::vector<MotionSegment>> segs;
  segs.reserve(objects.size());
  std::vector<Tick> cuts = {window.begin,
                            TickSaturatingAdd(window.end, 1)};
  for (const MostObject* obj : objects) {
    segs.push_back(obj->MotionSegments(window));
    for (const MotionSegment& s : segs.back()) {
      cuts.push_back(s.ticks.begin);
      cuts.push_back(TickSaturatingAdd(s.ticks.end, 1));
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<MovingPoint2> movers(objects.size());
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    Interval piece(cuts[c], cuts[c + 1] - 1);
    if (!piece.valid() || piece.end < window.begin ||
        piece.begin > window.end) {
      continue;
    }
    bool covered = true;
    for (size_t i = 0; i < objects.size() && covered; ++i) {
      covered = false;
      for (const MotionSegment& s : segs[i]) {
        if (s.ticks.begin <= piece.begin && piece.end <= s.ticks.end) {
          movers[i] = s.motion;
          covered = true;
          break;
        }
      }
    }
    if (covered) fn(piece, movers);
  }
}

IntervalSet InsideTicks(const MostObject& obj, const Polygon& polygon,
                        Interval window) {
  IntervalSet out;
  for (const MotionSegment& seg : obj.MotionSegments(window)) {
    IntervalSet piece =
        TicksWhere(InsidePolygon(seg.motion, polygon, ToReal(seg.ticks)))
            .Clamp(seg.ticks);
    out = out.Union(piece);
  }
  return out.Clamp(window);
}

IntervalSet InsideTicksRelative(const MostObject& obj,
                                const MostObject& anchor,
                                const Polygon& polygon, Interval window) {
  if (&obj == &anchor || obj.id() == anchor.id()) {
    // An object relative to itself sits at the origin.
    return polygon.Contains({0, 0}) ? IntervalSet(window) : IntervalSet();
  }
  IntervalSet out;
  ForEachAlignedSegment(
      {&obj, &anchor}, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        MovingPoint2 relative(movers[0].origin - movers[1].origin,
                              movers[0].velocity - movers[1].velocity);
        out = out.Union(
            TicksWhere(InsidePolygon(relative, polygon, ToReal(piece)))
                .Clamp(piece));
      });
  return out.Clamp(window);
}

std::vector<IntervalSet> InsideTicksBatch(
    const std::vector<const MostObject*>& objs,
    const std::vector<const MostObject*>& anchors, const Polygon& polygon,
    Interval window, ThreadPool* pool) {
  obs::TraceSpan span("ftl/inside_ticks_batch");
  std::vector<IntervalSet> out(objs.size());
  ParallelFor(pool, objs.size(), [&](size_t i) {
    out[i] = anchors.empty()
                 ? InsideTicks(*objs[i], polygon, window)
                 : InsideTicksRelative(*objs[i], *anchors[i], polygon,
                                       window);
  });
  return out;
}

IntervalSet DistCmpTicks(const MostObject& a, const MostObject& b,
                         FtlFormula::CmpOp op, double bound,
                         Interval window) {
  IntervalSet within;    // DIST <= bound.
  IntervalSet at_least;  // DIST >= bound.
  ForEachAlignedSegment(
      {&a, &b}, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        RealInterval rw = ToReal(piece);
        within = within.Union(
            TicksWhere(DistanceWithin(movers[0], movers[1], bound, rw))
                .Clamp(piece));
        at_least = at_least.Union(
            TicksWhere(DistanceAtLeast(movers[0], movers[1], bound, rw))
                .Clamp(piece));
      });
  switch (op) {
    case FtlFormula::CmpOp::kLe:
      return within;
    case FtlFormula::CmpOp::kGe:
      return at_least;
    case FtlFormula::CmpOp::kLt:
      return at_least.Complement(window);
    case FtlFormula::CmpOp::kGt:
      return within.Complement(window);
    case FtlFormula::CmpOp::kEq:
      return within.Intersect(at_least);
    case FtlFormula::CmpOp::kNe:
      return within.Intersect(at_least).Complement(window);
  }
  return IntervalSet();
}

IntervalSet SnapshotInsideTicks(const ClassSnapshot& snap, size_t oi,
                                const Polygon& polygon, Interval window,
                                SpatialScratch* scratch) {
  scratch->ticks.clear();
  const uint32_t begin = snap.seg_begin(oi);
  const uint32_t end = begin + snap.seg_count(oi);
  // Conservative per-segment reject: positions along a jointly-linear
  // segment stay within the hull of its endpoint positions (up to a few
  // ulps of rounding in ox + vx*t — far below kPruneMargin). A segment
  // whose widened hull misses the polygon's bounding box can never make
  // Contains() true, so the solver would emit nothing for it; skipping it
  // leaves the accumulated tick list — and the normalized result —
  // byte-identical.
  const BoundingBox& bb = polygon.bounding_box();
  constexpr double kPruneMargin = 1e-6;
  for (uint32_t s = begin; s < end; ++s) {
    const double t0 = static_cast<double>(snap.seg_t0()[s]);
    const double t1 = static_cast<double>(snap.seg_t1()[s]);
    const double x0 = snap.ox()[s] + snap.vx()[s] * t0;
    const double x1 = snap.ox()[s] + snap.vx()[s] * t1;
    const double y0 = snap.oy()[s] + snap.vy()[s] * t0;
    const double y1 = snap.oy()[s] + snap.vy()[s] * t1;
    if (std::max(x0, x1) < bb.min.x - kPruneMargin ||
        std::min(x0, x1) > bb.max.x + kPruneMargin ||
        std::max(y0, y1) < bb.min.y - kPruneMargin ||
        std::min(y0, y1) > bb.max.y + kPruneMargin) {
      continue;
    }
    MovingPoint2 motion({snap.ox()[s], snap.oy()[s]},
                        {snap.vx()[s], snap.vy()[s]});
    Interval seg_ticks(snap.seg_t0()[s], snap.seg_t1()[s]);
    InsidePolygonInto(motion, polygon, ToReal(seg_ticks), &scratch->events,
                      &scratch->reals);
    AppendClampedTicks(scratch->reals, seg_ticks, &scratch->ticks);
  }
  // Segments arrive in tick order, so the accumulated list is sorted:
  // normalizing it once equals the legacy per-segment Union chain (the
  // normalized form is canonical).
  return IntervalSet::FromSortedIntervals(scratch->ticks.data(),
                                          scratch->ticks.size());
}

namespace {

/// One side (within / at-least) of the snapshot DIST comparison: walks the
/// two objects' window-tiling segment runs with a two-pointer merge — the
/// same elementary pieces ForEachAlignedSegment derives from its cut list.
IntervalSet SnapshotDistSide(const ClassSnapshot& a_snap, size_t ai,
                             const ClassSnapshot& b_snap, size_t bi,
                             bool within, double bound,
                             SpatialScratch* scratch) {
  scratch->ticks.clear();
  uint32_t i = a_snap.seg_begin(ai);
  const uint32_t ie = i + a_snap.seg_count(ai);
  uint32_t j = b_snap.seg_begin(bi);
  const uint32_t je = j + b_snap.seg_count(bi);
  while (i < ie && j < je) {
    Tick lo = std::max(a_snap.seg_t0()[i], b_snap.seg_t0()[j]);
    Tick hi = std::min(a_snap.seg_t1()[i], b_snap.seg_t1()[j]);
    if (lo <= hi) {
      MovingPoint2 ma({a_snap.ox()[i], a_snap.oy()[i]},
                      {a_snap.vx()[i], a_snap.vy()[i]});
      MovingPoint2 mb({b_snap.ox()[j], b_snap.oy()[j]},
                      {b_snap.vx()[j], b_snap.vy()[j]});
      Interval piece(lo, hi);
      RealInterval rw = ToReal(piece);
      std::vector<RealInterval> reals =
          within ? DistanceWithin(ma, mb, bound, rw)
                 : DistanceAtLeast(ma, mb, bound, rw);
      AppendClampedTicks(reals, piece, &scratch->ticks);
    }
    if (a_snap.seg_t1()[i] < b_snap.seg_t1()[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet::FromSortedIntervals(scratch->ticks.data(),
                                          scratch->ticks.size());
}

}  // namespace

IntervalSet SnapshotDistCmpTicks(const ClassSnapshot& a_snap, size_t ai,
                                 const ClassSnapshot& b_snap, size_t bi,
                                 FtlFormula::CmpOp op, double bound,
                                 Interval window, SpatialScratch* scratch) {
  // Unlike DistCmpTicks, only the needed side(s) are solved.
  switch (op) {
    case FtlFormula::CmpOp::kLe:
      return SnapshotDistSide(a_snap, ai, b_snap, bi, true, bound, scratch);
    case FtlFormula::CmpOp::kGe:
      return SnapshotDistSide(a_snap, ai, b_snap, bi, false, bound, scratch);
    case FtlFormula::CmpOp::kLt:
      return SnapshotDistSide(a_snap, ai, b_snap, bi, false, bound, scratch)
          .Complement(window);
    case FtlFormula::CmpOp::kGt:
      return SnapshotDistSide(a_snap, ai, b_snap, bi, true, bound, scratch)
          .Complement(window);
    case FtlFormula::CmpOp::kEq:
      return SnapshotDistSide(a_snap, ai, b_snap, bi, true, bound, scratch)
          .Intersect(
              SnapshotDistSide(a_snap, ai, b_snap, bi, false, bound, scratch));
    case FtlFormula::CmpOp::kNe:
      return SnapshotDistSide(a_snap, ai, b_snap, bi, true, bound, scratch)
          .Intersect(
              SnapshotDistSide(a_snap, ai, b_snap, bi, false, bound, scratch))
          .Complement(window);
  }
  return IntervalSet();
}

IntervalSet SphereTicks(const std::vector<const MostObject*>& objects,
                        double radius, Interval window) {
  IntervalSet out;
  ForEachAlignedSegment(
      objects, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        out = out.Union(WithinSphereTicks(movers, radius, piece));
      });
  return out;
}

}  // namespace most
