#include "ftl/spatial_eval.h"

#include <algorithm>

#include "geometry/kinematics.h"
#include "geometry/mec.h"
#include "obs/trace.h"

namespace most {

namespace {

RealInterval ToReal(Interval ticks) {
  return {static_cast<double>(ticks.begin), static_cast<double>(ticks.end)};
}

}  // namespace

void ForEachAlignedSegment(
    const std::vector<const MostObject*>& objects, Interval window,
    const std::function<void(Interval, const std::vector<MovingPoint2>&)>&
        fn) {
  std::vector<std::vector<MotionSegment>> segs;
  segs.reserve(objects.size());
  std::vector<Tick> cuts = {window.begin,
                            TickSaturatingAdd(window.end, 1)};
  for (const MostObject* obj : objects) {
    segs.push_back(obj->MotionSegments(window));
    for (const MotionSegment& s : segs.back()) {
      cuts.push_back(s.ticks.begin);
      cuts.push_back(TickSaturatingAdd(s.ticks.end, 1));
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<MovingPoint2> movers(objects.size());
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    Interval piece(cuts[c], cuts[c + 1] - 1);
    if (!piece.valid() || piece.end < window.begin ||
        piece.begin > window.end) {
      continue;
    }
    bool covered = true;
    for (size_t i = 0; i < objects.size() && covered; ++i) {
      covered = false;
      for (const MotionSegment& s : segs[i]) {
        if (s.ticks.begin <= piece.begin && piece.end <= s.ticks.end) {
          movers[i] = s.motion;
          covered = true;
          break;
        }
      }
    }
    if (covered) fn(piece, movers);
  }
}

IntervalSet InsideTicks(const MostObject& obj, const Polygon& polygon,
                        Interval window) {
  IntervalSet out;
  for (const MotionSegment& seg : obj.MotionSegments(window)) {
    IntervalSet piece =
        TicksWhere(InsidePolygon(seg.motion, polygon, ToReal(seg.ticks)))
            .Clamp(seg.ticks);
    out = out.Union(piece);
  }
  return out.Clamp(window);
}

IntervalSet InsideTicksRelative(const MostObject& obj,
                                const MostObject& anchor,
                                const Polygon& polygon, Interval window) {
  if (&obj == &anchor || obj.id() == anchor.id()) {
    // An object relative to itself sits at the origin.
    return polygon.Contains({0, 0}) ? IntervalSet(window) : IntervalSet();
  }
  IntervalSet out;
  ForEachAlignedSegment(
      {&obj, &anchor}, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        MovingPoint2 relative(movers[0].origin - movers[1].origin,
                              movers[0].velocity - movers[1].velocity);
        out = out.Union(
            TicksWhere(InsidePolygon(relative, polygon, ToReal(piece)))
                .Clamp(piece));
      });
  return out.Clamp(window);
}

std::vector<IntervalSet> InsideTicksBatch(
    const std::vector<const MostObject*>& objs,
    const std::vector<const MostObject*>& anchors, const Polygon& polygon,
    Interval window, ThreadPool* pool) {
  obs::TraceSpan span("ftl/inside_ticks_batch");
  std::vector<IntervalSet> out(objs.size());
  ParallelFor(pool, objs.size(), [&](size_t i) {
    out[i] = anchors.empty()
                 ? InsideTicks(*objs[i], polygon, window)
                 : InsideTicksRelative(*objs[i], *anchors[i], polygon,
                                       window);
  });
  return out;
}

IntervalSet DistCmpTicks(const MostObject& a, const MostObject& b,
                         FtlFormula::CmpOp op, double bound,
                         Interval window) {
  IntervalSet within;    // DIST <= bound.
  IntervalSet at_least;  // DIST >= bound.
  ForEachAlignedSegment(
      {&a, &b}, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        RealInterval rw = ToReal(piece);
        within = within.Union(
            TicksWhere(DistanceWithin(movers[0], movers[1], bound, rw))
                .Clamp(piece));
        at_least = at_least.Union(
            TicksWhere(DistanceAtLeast(movers[0], movers[1], bound, rw))
                .Clamp(piece));
      });
  switch (op) {
    case FtlFormula::CmpOp::kLe:
      return within;
    case FtlFormula::CmpOp::kGe:
      return at_least;
    case FtlFormula::CmpOp::kLt:
      return at_least.Complement(window);
    case FtlFormula::CmpOp::kGt:
      return within.Complement(window);
    case FtlFormula::CmpOp::kEq:
      return within.Intersect(at_least);
    case FtlFormula::CmpOp::kNe:
      return within.Intersect(at_least).Complement(window);
  }
  return IntervalSet();
}

IntervalSet SphereTicks(const std::vector<const MostObject*>& objects,
                        double radius, Interval window) {
  IntervalSet out;
  ForEachAlignedSegment(
      objects, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        out = out.Union(WithinSphereTicks(movers, radius, piece));
      });
  return out;
}

}  // namespace most
