#include "ftl/nearest.h"

#include <algorithm>
#include <cmath>

#include "ftl/spatial_eval.h"

namespace most {

namespace {

constexpr double kEps = 1e-9;

/// Appends the ticks of [piece] where A t^2 + B t + C <= 0.
void QuadLeTicks(double A, double B, double C, Interval piece,
                 std::vector<Interval>* out) {
  const double t0 = static_cast<double>(piece.begin);
  const double t1 = static_cast<double>(piece.end);
  auto emit = [&](double lo, double hi) {
    lo = std::max(lo, t0);
    hi = std::min(hi, t1);
    if (lo > hi) return;
    Tick first = static_cast<Tick>(std::ceil(lo - kEps));
    Tick last = static_cast<Tick>(std::floor(hi + kEps));
    first = std::max(first, piece.begin);
    last = std::min(last, piece.end);
    if (first <= last) out->push_back(Interval(first, last));
  };
  if (A == 0.0) {
    if (B == 0.0) {
      if (C <= kEps) emit(t0, t1);
      return;
    }
    double root = -C / B;
    if (B > 0) {
      emit(t0, root);
    } else {
      emit(root, t1);
    }
    return;
  }
  double disc = B * B - 4.0 * A * C;
  if (A > 0.0) {
    if (disc < 0.0) return;  // Positive everywhere.
    double sq = std::sqrt(disc);
    emit((-B - sq) / (2.0 * A), (-B + sq) / (2.0 * A));
    return;
  }
  // A < 0: negative outside the roots (or everywhere if no real roots).
  if (disc < 0.0) {
    emit(t0, t1);
    return;
  }
  double sq = std::sqrt(disc);
  double r1 = (-B + sq) / (2.0 * A);  // Smaller root (A < 0).
  double r2 = (-B - sq) / (2.0 * A);
  emit(t0, r1);
  emit(r2, t1);
}

/// Quadratic coefficients of |p(t) - q(t)|^2 for absolute-time-linear
/// motions.
struct Quad {
  double a, b, c;
};

Quad DistanceSquaredQuad(const MovingPoint2& p, const MovingPoint2& q) {
  Vec2 d0 = p.origin - q.origin;
  Vec2 dv = p.velocity - q.velocity;
  return {dv.NormSquared(), 2.0 * d0.Dot(dv), d0.NormSquared()};
}

/// Ticks where dist(from, a)^2 <= dist(from, b)^2 (+eps), exactly.
IntervalSet SqDistLeTicks(const MostObject& from, const MostObject& a,
                          const MostObject& b, Interval window) {
  std::vector<Interval> ticks;
  ForEachAlignedSegment(
      {&from, &a, &b}, window,
      [&](Interval piece, const std::vector<MovingPoint2>& movers) {
        Quad qa = DistanceSquaredQuad(movers[1], movers[0]);
        Quad qb = DistanceSquaredQuad(movers[2], movers[0]);
        QuadLeTicks(qa.a - qb.a, qa.b - qb.b, qa.c - qb.c - kEps, piece,
                    &ticks);
      });
  return IntervalSet::FromIntervals(std::move(ticks)).Clamp(window);
}

}  // namespace

Result<NearestResult> NearestNeighbor(const MostDatabase& db,
                                      const std::string& class_name,
                                      const MostObject& from, Tick t) {
  MOST_ASSIGN_OR_RETURN(const ObjectClass* cls, db.GetClass(class_name));
  if (!from.IsSpatial()) {
    return Status::TypeError("nearest-neighbor from a non-spatial object");
  }
  Point2 origin = from.PositionAt(t);
  NearestResult best;
  bool found = false;
  for (const auto& [id, obj] : cls->objects()) {
    if (id == from.id()) continue;
    if (!obj.IsSpatial()) {
      return Status::TypeError("non-spatial object in class " + class_name);
    }
    double d = obj.PositionAt(t).DistanceTo(origin);
    if (!found || d < best.distance ||
        (d == best.distance && id < best.id)) {
      best = {id, d};
      found = true;
    }
  }
  if (!found) return Status::NotFound("class " + class_name + " is empty");
  return best;
}

Result<std::vector<std::pair<ObjectId, IntervalSet>>> NearestOverWindow(
    const MostDatabase& db, const std::string& class_name,
    const MostObject& from, Interval window) {
  MOST_ASSIGN_OR_RETURN(const ObjectClass* cls, db.GetClass(class_name));
  if (!from.IsSpatial()) {
    return Status::TypeError("nearest-neighbor from a non-spatial object");
  }
  std::vector<const MostObject*> candidates;
  for (const auto& [id, obj] : cls->objects()) {
    if (id == from.id()) continue;
    if (!obj.IsSpatial()) {
      return Status::TypeError("non-spatial object in class " + class_name);
    }
    candidates.push_back(&obj);
  }
  std::vector<std::pair<ObjectId, IntervalSet>> out;
  for (const MostObject* i : candidates) {
    // i wins at t iff it beats every j: closer, or equally close with the
    // smaller id (which makes the winners partition the window).
    IntervalSet wins(window);
    for (const MostObject* j : candidates) {
      if (j == i) continue;
      IntervalSet beats =
          (i->id() < j->id())
              ? SqDistLeTicks(from, *i, *j, window)
              : SqDistLeTicks(from, *j, *i, window).Complement(window);
      wins = wins.Intersect(beats);
      if (wins.empty()) break;
    }
    if (!wins.empty()) out.emplace_back(i->id(), std::move(wins));
  }
  return out;
}

}  // namespace most
