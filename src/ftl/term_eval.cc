#include "ftl/term_eval.h"

#include <cmath>

namespace most {

bool IsTimeInvariant(const TermPtr& term) {
  switch (term->kind()) {
    case FtlTerm::Kind::kLiteral:
      return true;
    case FtlTerm::Kind::kVarRef:
      return true;  // Bound to one value per evaluation.
    case FtlTerm::Kind::kTime:
    case FtlTerm::Kind::kDist:
      return false;
    case FtlTerm::Kind::kAttrRef:
      return term->sub() == FtlTerm::AttrSub::kValue ||
             term->sub() == FtlTerm::AttrSub::kUpdatetime;
    case FtlTerm::Kind::kArith:
      return IsTimeInvariant(term->children()[0]) &&
             IsTimeInvariant(term->children()[1]);
  }
  return false;
}

bool ContainsDist(const TermPtr& term) {
  if (term->kind() == FtlTerm::Kind::kDist) return true;
  for (const TermPtr& c : term->children()) {
    if (ContainsDist(c)) return true;
  }
  return false;
}

namespace {

Result<const MostObject*> LookupObject(const Instantiation& inst,
                                       const std::string& var) {
  auto it = inst.find(var);
  if (it == inst.end()) {
    return Status::Internal("object variable '" + var +
                            "' is not instantiated");
  }
  return it->second;
}

// Resolves var.ATTR against an object: a dynamic attribute if one exists,
// otherwise a static one (reported via `is_dynamic`).
Result<const DynamicAttribute*> ResolveDynamic(const MostObject& obj,
                                               const std::string& attr) {
  if (!obj.HasDynamic(attr)) {
    return Status::NotFound("dynamic attribute '" + attr + "'");
  }
  return obj.GetDynamic(attr);
}

}  // namespace

Result<Value> EvalTermAt(const TermPtr& term, const Instantiation& inst,
                         Tick t) {
  switch (term->kind()) {
    case FtlTerm::Kind::kLiteral:
      return term->literal();
    case FtlTerm::Kind::kVarRef:
      return Status::InvalidArgument("unbound value variable '" +
                                     term->var() + "'");
    case FtlTerm::Kind::kTime:
      return Value(static_cast<int64_t>(t));
    case FtlTerm::Kind::kAttrRef: {
      MOST_ASSIGN_OR_RETURN(const MostObject* obj,
                            LookupObject(inst, term->var()));
      if (obj->HasDynamic(term->attr())) {
        MOST_ASSIGN_OR_RETURN(const DynamicAttribute* attr,
                              ResolveDynamic(*obj, term->attr()));
        switch (term->sub()) {
          case FtlTerm::AttrSub::kCurrent:
            return Value(attr->ValueAt(t));
          case FtlTerm::AttrSub::kValue:
            return Value(attr->value());
          case FtlTerm::AttrSub::kUpdatetime:
            return Value(static_cast<int64_t>(attr->updatetime()));
          case FtlTerm::AttrSub::kSpeed:
            return Value(attr->SlopeAt(t));
        }
        return Status::Internal("bad attribute sub-selector");
      }
      if (term->sub() != FtlTerm::AttrSub::kCurrent) {
        return Status::TypeError("sub-attribute access on static attribute '" +
                                 term->attr() + "'");
      }
      return obj->GetStatic(term->attr());
    }
    case FtlTerm::Kind::kArith: {
      MOST_ASSIGN_OR_RETURN(Value lhs,
                            EvalTermAt(term->children()[0], inst, t));
      MOST_ASSIGN_OR_RETURN(Value rhs,
                            EvalTermAt(term->children()[1], inst, t));
      MOST_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      MOST_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      switch (term->arith_op()) {
        case FtlTerm::ArithOp::kAdd:
          return Value(a + b);
        case FtlTerm::ArithOp::kSub:
          return Value(a - b);
        case FtlTerm::ArithOp::kMul:
          return Value(a * b);
        case FtlTerm::ArithOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value(a / b);
      }
      return Status::Internal("bad arith op");
    }
    case FtlTerm::Kind::kDist: {
      MOST_ASSIGN_OR_RETURN(const MostObject* a,
                            LookupObject(inst, term->var()));
      MOST_ASSIGN_OR_RETURN(const MostObject* b,
                            LookupObject(inst, term->var2()));
      if (!a->IsSpatial() || !b->IsSpatial()) {
        return Status::TypeError("DIST over non-spatial objects");
      }
      return Value(a->PositionAt(t).DistanceTo(b->PositionAt(t)));
    }
  }
  return Status::Internal("bad term kind");
}

namespace {

Plf PlfFromDynamic(const DynamicAttribute& attr, Interval window) {
  std::vector<Plf::Piece> pieces;
  for (const auto& lp : attr.LinearPieces(window)) {
    pieces.push_back({lp.ticks, lp.value_at_begin, lp.slope});
  }
  return Plf::FromPieces(window, std::move(pieces));
}

Plf PlfFromSpeed(const DynamicAttribute& attr, Interval window) {
  std::vector<Plf::Piece> pieces;
  for (const auto& lp : attr.LinearPieces(window)) {
    pieces.push_back({lp.ticks, lp.slope, 0.0});
  }
  return Plf::FromPieces(window, std::move(pieces));
}

}  // namespace

Result<Plf> BuildTermPlf(const TermPtr& term, const Instantiation& inst,
                         Interval window) {
  switch (term->kind()) {
    case FtlTerm::Kind::kLiteral: {
      MOST_ASSIGN_OR_RETURN(double v, term->literal().AsDouble());
      return Plf::Constant(window, v);
    }
    case FtlTerm::Kind::kVarRef:
      return Status::InvalidArgument("unbound value variable '" +
                                     term->var() + "'");
    case FtlTerm::Kind::kTime:
      return Plf::TimeLine(window);
    case FtlTerm::Kind::kAttrRef: {
      MOST_ASSIGN_OR_RETURN(const MostObject* obj,
                            LookupObject(inst, term->var()));
      if (obj->HasDynamic(term->attr())) {
        MOST_ASSIGN_OR_RETURN(const DynamicAttribute* attr,
                              ResolveDynamic(*obj, term->attr()));
        switch (term->sub()) {
          case FtlTerm::AttrSub::kCurrent:
            return PlfFromDynamic(*attr, window);
          case FtlTerm::AttrSub::kValue:
            return Plf::Constant(window, attr->value());
          case FtlTerm::AttrSub::kUpdatetime:
            return Plf::Constant(window,
                                 static_cast<double>(attr->updatetime()));
          case FtlTerm::AttrSub::kSpeed:
            return PlfFromSpeed(*attr, window);
        }
        return Status::Internal("bad attribute sub-selector");
      }
      if (term->sub() != FtlTerm::AttrSub::kCurrent) {
        return Status::TypeError("sub-attribute access on static attribute '" +
                                 term->attr() + "'");
      }
      MOST_ASSIGN_OR_RETURN(Value v, obj->GetStatic(term->attr()));
      MOST_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Plf::Constant(window, d);
    }
    case FtlTerm::Kind::kArith: {
      MOST_ASSIGN_OR_RETURN(Plf lhs,
                            BuildTermPlf(term->children()[0], inst, window));
      MOST_ASSIGN_OR_RETURN(Plf rhs,
                            BuildTermPlf(term->children()[1], inst, window));
      switch (term->arith_op()) {
        case FtlTerm::ArithOp::kAdd:
          return lhs.Add(rhs);
        case FtlTerm::ArithOp::kSub:
          return lhs.Sub(rhs);
        case FtlTerm::ArithOp::kMul:
          return lhs.Mul(rhs);
        case FtlTerm::ArithOp::kDiv:
          return lhs.Div(rhs);
      }
      return Status::Internal("bad arith op");
    }
    case FtlTerm::Kind::kDist:
      return Status::Unimplemented(
          "DIST is not piecewise linear; use the spatial solver");
  }
  return Status::Internal("bad term kind");
}

}  // namespace most
