#ifndef MOST_TEMPORAL_CLOCK_H_
#define MOST_TEMPORAL_CLOCK_H_

#include "common/types.h"

namespace most {

/// The special database object `time` (paper, Section 2): a global logical
/// clock whose value increases by one per tick. Databases and simulators
/// share one Clock so query timestamps and object motion stay consistent.
class Clock {
 public:
  Clock() = default;
  explicit Clock(Tick start) : now_(start) {}

  Tick Now() const { return now_; }

  /// Advances by `ticks` (default one clock tick).
  void Advance(Tick ticks = 1) { now_ = TickSaturatingAdd(now_, ticks); }

  /// Jumps to an absolute time; only forward jumps are allowed (time does
  /// not flow backwards in a MOST database).
  void AdvanceTo(Tick t) {
    if (t > now_) now_ = t;
  }

 private:
  Tick now_ = 0;
};

}  // namespace most

#endif  // MOST_TEMPORAL_CLOCK_H_
