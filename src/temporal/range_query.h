#ifndef MOST_TEMPORAL_RANGE_QUERY_H_
#define MOST_TEMPORAL_RANGE_QUERY_H_

#include "common/interval.h"
#include "temporal/dynamic_attribute.h"

namespace most {

/// The set of ticks in `window` at which `lo <= A(t) <= hi`. Solved
/// exactly, piece by piece, from the attribute's (value, updatetime,
/// function) representation — the primitive behind both the Section 4
/// index's exact verification step and FTL comparisons over dynamic
/// attributes. Either bound may be infinite.
IntervalSet TicksWhereInRange(const DynamicAttribute& attr, double lo,
                              double hi, Interval window);

/// Ticks where A(t) compares against a constant: op in {<, <=, >, >=, =}.
/// Equality uses a tolerance of 0 (exact); prefer ranges for floats.
enum class RangeCmp { kLt, kLe, kGt, kGe, kEq };
IntervalSet TicksWhereCompared(const DynamicAttribute& attr, RangeCmp op,
                               double bound, Interval window);

}  // namespace most

#endif  // MOST_TEMPORAL_RANGE_QUERY_H_
