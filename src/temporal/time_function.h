#ifndef MOST_TEMPORAL_TIME_FUNCTION_H_
#define MOST_TEMPORAL_TIME_FUNCTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace most {

/// The `A.function` sub-attribute of a dynamic attribute: a function of a
/// single variable t with f(0) = 0 (paper, Section 2.1).
///
/// Functions are piecewise linear: a list of pieces, each starting at a
/// tick offset (relative to the attribute's update time) with a constant
/// slope. The single-piece case is the paper's plain linear motion vector;
/// multiple pieces let one update install a whole planned route (the
/// paper's extension hook "the ideas can be extended to nonlinear
/// functions").
///
/// For t < 0 the first piece's slope extrapolates backwards — callers that
/// query the past of an attribute see its motion continued backwards, which
/// matches the paper's assumption that the stored state describes the
/// object's current motion.
class TimeFunction {
 public:
  struct Piece {
    Tick start = 0;     ///< Offset at which this piece's slope takes over.
    double slope = 0.0;
    /// When set, the function jumps to this value at the piece start
    /// instead of continuing from the previous piece's end value.
    /// Continuous routes never use this; it exists so recorded update
    /// histories (which may teleport a value at an update) can be stitched
    /// back into one function for persistent-query evaluation.
    bool has_reset = false;
    double reset_value = 0.0;
  };

  /// The zero function (static value).
  TimeFunction() : pieces_{{0, 0.0}} {}

  /// f(t) = slope * t.
  static TimeFunction Linear(double slope) {
    TimeFunction f;
    f.pieces_ = {{0, slope}};
    return f;
  }

  /// Builds a piecewise function. Requirements: first piece starts at 0,
  /// piece starts strictly increase.
  static Result<TimeFunction> Piecewise(std::vector<Piece> pieces);

  const std::vector<Piece>& pieces() const { return pieces_; }
  bool IsLinear() const { return pieces_.size() == 1; }

  /// f(t). f(0) == 0 by construction.
  double Eval(double t) const;

  /// Instantaneous slope at offset t (the right-continuous piece slope).
  double SlopeAt(double t) const;

  /// Value of f at the start of piece i (prefix integral).
  double ValueAtPieceStart(size_t i) const;

  bool operator==(const TimeFunction& o) const;

  std::string ToString() const;

 private:
  std::vector<Piece> pieces_;
};

}  // namespace most

#endif  // MOST_TEMPORAL_TIME_FUNCTION_H_
