#include "temporal/dynamic_attribute.h"

#include <algorithm>
#include <sstream>

namespace most {

std::vector<DynamicAttribute::LinearPiece> DynamicAttribute::LinearPieces(
    Interval window) const {
  std::vector<LinearPiece> out;
  if (!window.valid()) return out;
  const auto& pieces = function_.pieces();
  for (size_t i = 0; i < pieces.size(); ++i) {
    // Absolute tick range of function piece i.
    Tick abs_start = (i == 0)
                         ? kTickMin  // First piece extrapolates backwards.
                         : TickSaturatingAdd(updatetime_, pieces[i].start);
    Tick abs_end = (i + 1 < pieces.size())
                       ? TickSaturatingAdd(updatetime_, pieces[i + 1].start) - 1
                       : kTickMax;
    Tick lo = std::max(abs_start, window.begin);
    Tick hi = std::min(abs_end, window.end);
    if (lo > hi) continue;
    LinearPiece piece;
    piece.ticks = Interval(lo, hi);
    piece.value_at_begin = ValueAt(lo);
    piece.slope = pieces[i].slope;
    out.push_back(piece);
  }
  return out;
}

std::string DynamicAttribute::ToString() const {
  std::ostringstream os;
  os << "{value=" << value_ << ", updatetime=" << updatetime_
     << ", function=" << function_.ToString() << "}";
  return os.str();
}

}  // namespace most
