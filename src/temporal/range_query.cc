#include "temporal/range_query.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace most {

namespace {

// Real t-range within [piece_lo, piece_hi] where value_at_begin +
// slope * (t - piece_lo) lies in [lo, hi]; appends resulting tick interval.
void SolvePiece(const DynamicAttribute::LinearPiece& piece, double lo,
                double hi, std::vector<Interval>* out) {
  const double t0 = static_cast<double>(piece.ticks.begin);
  const double t1 = static_cast<double>(piece.ticks.end);
  double lo_t, hi_t;
  if (piece.slope == 0.0) {
    if (piece.value_at_begin < lo || piece.value_at_begin > hi) return;
    lo_t = t0;
    hi_t = t1;
  } else {
    // value(t) = v0 + s * (t - t0); solve lo <= value(t) <= hi.
    double ta = t0 + (lo - piece.value_at_begin) / piece.slope;
    double tb = t0 + (hi - piece.value_at_begin) / piece.slope;
    if (piece.slope < 0.0) std::swap(ta, tb);
    lo_t = std::max(t0, ta);
    hi_t = std::min(t1, tb);
    if (lo_t > hi_t) return;
  }
  const double eps = 1e-9;
  double first = std::ceil(lo_t - eps);
  double last = std::floor(hi_t + eps);
  if (first > last) return;
  out->push_back(
      Interval(static_cast<Tick>(first), static_cast<Tick>(last)));
}

}  // namespace

IntervalSet TicksWhereInRange(const DynamicAttribute& attr, double lo,
                              double hi, Interval window) {
  std::vector<Interval> ticks;
  for (const auto& piece : attr.LinearPieces(window)) {
    SolvePiece(piece, lo, hi, &ticks);
  }
  return IntervalSet::FromIntervals(std::move(ticks)).Clamp(window);
}

IntervalSet TicksWhereCompared(const DynamicAttribute& attr, RangeCmp op,
                               double bound, Interval window) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  switch (op) {
    case RangeCmp::kLt: {
      // Strict: complement of >= within the window.
      IntervalSet ge = TicksWhereInRange(attr, bound, kInf, window);
      return ge.Complement(window);
    }
    case RangeCmp::kLe:
      return TicksWhereInRange(attr, -kInf, bound, window);
    case RangeCmp::kGt: {
      IntervalSet le = TicksWhereInRange(attr, -kInf, bound, window);
      return le.Complement(window);
    }
    case RangeCmp::kGe:
      return TicksWhereInRange(attr, bound, kInf, window);
    case RangeCmp::kEq:
      return TicksWhereInRange(attr, bound, bound, window);
  }
  return IntervalSet();
}

}  // namespace most
