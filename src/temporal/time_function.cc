#include "temporal/time_function.h"

#include <sstream>

namespace most {

Result<TimeFunction> TimeFunction::Piecewise(std::vector<Piece> pieces) {
  if (pieces.empty()) {
    return Status::InvalidArgument("time function needs at least one piece");
  }
  if (pieces.front().start != 0) {
    return Status::InvalidArgument("first piece must start at offset 0");
  }
  for (size_t i = 1; i < pieces.size(); ++i) {
    if (pieces[i].start <= pieces[i - 1].start) {
      return Status::InvalidArgument("piece starts must strictly increase");
    }
  }
  TimeFunction f;
  f.pieces_ = std::move(pieces);
  return f;
}

double TimeFunction::ValueAtPieceStart(size_t i) const {
  double acc = 0.0;
  for (size_t k = 0; k <= i && k < pieces_.size(); ++k) {
    if (pieces_[k].has_reset) acc = pieces_[k].reset_value;
    if (k == i) break;
    if (k + 1 < pieces_.size()) {
      acc += pieces_[k].slope *
             static_cast<double>(pieces_[k + 1].start - pieces_[k].start);
    }
  }
  return acc;
}

double TimeFunction::Eval(double t) const {
  if (t <= 0.0) {
    double base = pieces_.front().has_reset ? pieces_.front().reset_value : 0.0;
    return base + pieces_.front().slope * t;  // Backward extrapolation.
  }
  double acc = 0.0;
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (pieces_[i].has_reset) acc = pieces_[i].reset_value;
    double piece_start = static_cast<double>(pieces_[i].start);
    bool last = (i + 1 == pieces_.size());
    double piece_end =
        last ? t : static_cast<double>(pieces_[i + 1].start);
    if (t <= piece_end || last) {
      acc += pieces_[i].slope * (t - piece_start);
      return acc;
    }
    acc += pieces_[i].slope * (piece_end - piece_start);
  }
  return acc;
}

double TimeFunction::SlopeAt(double t) const {
  if (t < 0.0) return pieces_.front().slope;
  double slope = pieces_.front().slope;
  for (const Piece& p : pieces_) {
    if (static_cast<double>(p.start) <= t) {
      slope = p.slope;
    } else {
      break;
    }
  }
  return slope;
}

bool TimeFunction::operator==(const TimeFunction& o) const {
  if (pieces_.size() != o.pieces_.size()) return false;
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (pieces_[i].start != o.pieces_[i].start ||
        pieces_[i].slope != o.pieces_[i].slope ||
        pieces_[i].has_reset != o.pieces_[i].has_reset ||
        (pieces_[i].has_reset &&
         pieces_[i].reset_value != o.pieces_[i].reset_value)) {
      return false;
    }
  }
  return true;
}

std::string TimeFunction::ToString() const {
  std::ostringstream os;
  if (IsLinear()) {
    os << pieces_[0].slope << "*t";
    return os.str();
  }
  os << "piecewise[";
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (i) os << "; ";
    os << "t>=" << pieces_[i].start << ": slope " << pieces_[i].slope;
    if (pieces_[i].has_reset) os << " reset " << pieces_[i].reset_value;
  }
  os << "]";
  return os.str();
}

}  // namespace most
