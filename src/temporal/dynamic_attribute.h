#ifndef MOST_TEMPORAL_DYNAMIC_ATTRIBUTE_H_
#define MOST_TEMPORAL_DYNAMIC_ATTRIBUTE_H_

#include <string>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "temporal/time_function.h"

namespace most {

/// A dynamic attribute (paper, Section 2.1): the triple
/// (A.value, A.updatetime, A.function). Its value at absolute time
/// `updatetime + t0` is `value + function(t0)` — it changes as time passes
/// even without explicit updates. All three sub-attributes are
/// independently queryable.
class DynamicAttribute {
 public:
  DynamicAttribute() = default;
  DynamicAttribute(double value, Tick updatetime, TimeFunction function)
      : value_(value), updatetime_(updatetime), function_(std::move(function)) {}

  double value() const { return value_; }
  Tick updatetime() const { return updatetime_; }
  const TimeFunction& function() const { return function_; }

  /// The attribute's (implicit) value at absolute time `now`.
  double ValueAt(Tick now) const { return ValueAt(static_cast<double>(now)); }
  double ValueAt(double now) const {
    return value_ + function_.Eval(now - static_cast<double>(updatetime_));
  }

  /// Instantaneous rate of change at absolute time `now` (the paper's
  /// "speed in the X direction" when the attribute is X.POSITION).
  double SlopeAt(Tick now) const {
    return function_.SlopeAt(static_cast<double>(now - updatetime_));
  }

  /// Explicit update: replaces value and function, stamps `now`. This is
  /// the only way the attribute's sub-attributes change (the value itself
  /// keeps changing between updates via the function).
  void Update(Tick now, double new_value, TimeFunction new_function) {
    value_ = new_value;
    updatetime_ = now;
    function_ = std::move(new_function);
  }

  /// One maximal linear stretch of the attribute's trajectory.
  struct LinearPiece {
    Interval ticks;        ///< Absolute tick range the piece covers.
    double value_at_begin = 0.0;  ///< Attribute value at ticks.begin.
    double slope = 0.0;
  };

  /// Decomposes the trajectory over the absolute window into maximal linear
  /// pieces (one per TimeFunction piece overlapping the window). The FTL
  /// kinematic solvers and the trajectory index both consume this form.
  std::vector<LinearPiece> LinearPieces(Interval window) const;

  bool operator==(const DynamicAttribute& o) const {
    return value_ == o.value_ && updatetime_ == o.updatetime_ &&
           function_ == o.function_;
  }

  std::string ToString() const;

 private:
  double value_ = 0.0;
  Tick updatetime_ = 0;
  TimeFunction function_;
};

}  // namespace most

#endif  // MOST_TEMPORAL_DYNAMIC_ATTRIBUTE_H_
