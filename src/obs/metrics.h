#ifndef MOST_OBS_METRICS_H_
#define MOST_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace most::obs {

/// Monotone counter. Increments are relaxed atomics, safe from any thread;
/// Reset() exists for tests and per-instance Stats::ResetStats semantics
/// (the registry folds detached values into a retired accumulator, so
/// engine-wide exports stay monotone across instance lifetimes, not across
/// explicit resets).
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Settable instantaneous value (sizes, depths, live-entity counts).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are sorted upper bounds; one implicit
/// +Inf bucket on top. Observe() is two relaxed atomic adds plus a branchy
/// bucket search (bounds lists are short). Snapshots carry p50/p95/p99
/// estimated by linear interpolation inside the hit bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries (+Inf last).
    uint64_t count = 0;
    double sum = 0.0;
    /// Quantile estimate; q in [0, 1]. Values landing in the +Inf bucket
    /// report the largest finite bound (the histogram tracks no max).
    double Quantile(double q) const;
  };
  Snapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket helper: {start, start*factor, ...} (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

using Labels = std::map<std::string, std::string>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported series: a label set plus its aggregated value.
struct SeriesSnapshot {
  Labels labels;
  double value = 0.0;                        ///< Counter / gauge.
  std::optional<Histogram::Snapshot> hist;   ///< Histogram.
};

/// One metric family: every series sharing a name/type/help.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SeriesSnapshot> series;  ///< Sorted by labels.
};

/// Thread-safe metric registry: the single source of truth the exporters
/// (Prometheus text, JSON snapshot) walk.
///
/// Two ownership modes:
/// * Owned: GetCounter/GetGauge/GetHistogram get-or-create a registry-owned
///   metric keyed by (name, labels); the same key always returns the same
///   object, so call sites across the engine share one series. Pointers
///   stay valid for the registry's lifetime.
/// * Attached: long-lived per-instance objects (SimNetwork,
///   ReliableEndpoint, IntervalCache, QueryManager) own their counters —
///   their ad-hoc Stats structs are thin views over these — and attach
///   them so exports see them. Same-key series are summed at collection
///   time; DetachMetric folds the final counter/histogram value into a
///   retired accumulator so engine totals stay monotone after an instance
///   dies (gauges simply disappear).
///
/// Collectors are callbacks run at Collect() time for computed series
/// (e.g. the failpoint registry's fired-per-site counts).
///
/// set_enabled(false) is the benchmark kill switch: boundary flush sites
/// check enabled() and skip their registry work, so the `MOST_METRICS=off`
/// vs default delta is exactly the instrumentation overhead CI bounds.
class MetricsRegistry {
 public:
  /// Process-wide registry. Honors MOST_METRICS=off at first use.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, Labels labels = {});

  /// Attach an externally-owned metric. The metric must outlive the
  /// attachment (detach in the owner's destructor). Returns an id.
  uint64_t AttachCounter(const std::string& name, const std::string& help,
                         Labels labels, const Counter* metric);
  uint64_t AttachGauge(const std::string& name, const std::string& help,
                       Labels labels, const Gauge* metric);
  uint64_t AttachHistogram(const std::string& name, const std::string& help,
                           Labels labels, const Histogram* metric);
  void DetachMetric(uint64_t id);

  /// Extra series computed at collection time. The callback appends
  /// families (merged with registered ones by name).
  using Collector = std::function<void(std::vector<FamilySnapshot>*)>;
  uint64_t AddCollector(Collector fn);
  void RemoveCollector(uint64_t id);

  /// Aggregated snapshot: same-(name, labels) series from owned, attached
  /// and retired sources are summed; families sorted by name, series by
  /// labels. The whole walk happens under the registry lock, so one
  /// Collect is internally consistent with respect to attach/detach.
  std::vector<FamilySnapshot> Collect() const;

  /// Zeroes every owned metric and drops retired accumulators (attached
  /// metrics belong to their instances and are left alone). Tests and the
  /// benchmark overhead harness use this between phases.
  void ResetValues();

 private:
  struct MetricKey {
    std::string name;
    Labels labels;
    bool operator<(const MetricKey& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  struct Owned {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Attached {
    MetricKey key;
    MetricType type;
    const void* metric;
  };
  struct Retired {
    double value = 0.0;
    std::optional<Histogram::Snapshot> hist;
  };

  /// Records (or checks) the family-level type/help for `name`.
  void NoteFamily(const std::string& name, MetricType type,
                  const std::string& help);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::pair<MetricType, std::string>> families_;
  std::map<MetricKey, Owned> owned_;
  std::map<uint64_t, Attached> attached_;
  std::map<MetricKey, Retired> retired_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_id_ = 1;
};

}  // namespace most::obs

#endif  // MOST_OBS_METRICS_H_
