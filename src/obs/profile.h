#ifndef MOST_OBS_PROFILE_H_
#define MOST_OBS_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace most::obs {

/// One profiled operator in an FTL evaluation: a subformula node (atomic
/// predicate, boolean connective, temporal operator, assignment) annotated
/// with what evaluating it produced and cost. The paper's bottom-up
/// evaluation builds an interval relation R_g per subformula g, so the
/// profile tree mirrors the formula tree exactly.
struct ProfileNode {
  std::string label;          ///< Operator + rendered subformula fragment.
  uint64_t duration_ns = 0;   ///< Inclusive wall time of this node.
  uint64_t tuples = 0;        ///< Bindings in the resulting interval relation.
  uint64_t intervals = 0;     ///< Total time intervals across those bindings.
  /// Operator-specific annotations rendered `name=value`, in insertion
  /// order (cache=hit, pruned=12, pairs=400, ...).
  std::vector<std::pair<std::string, uint64_t>> notes;
  std::vector<std::unique_ptr<ProfileNode>> children;

  ProfileNode* AddChild(std::string child_label);
  void Note(std::string name, uint64_t value) {
    notes.emplace_back(std::move(name), value);
  }
};

/// A full per-query evaluation profile: header facts about the refresh that
/// produced it plus the operator tree. Retrieved via QueryManager::Explain
/// and rendered as indented text — EXPLAIN ANALYZE for FTL.
struct QueryProfile {
  std::string query;        ///< Source text (or rendered formula).
  std::string window;       ///< Evaluation window [begin, end).
  std::string path;         ///< "delta" | "full" | "initial".
  std::string reason;       ///< Why that path was chosen / fallback cause.
  uint64_t refresh_seq = 0; ///< Which refresh of the query this profile is.
  uint64_t dirty_objects = 0;
  uint64_t total_ns = 0;
  /// Bump-arena bytes the refresh's evaluation drew for per-evaluation
  /// scratch (SoA snapshots, join runs), and how many requests were too
  /// large for a block and fell back to dedicated heap blocks. Rendered
  /// only with timings (the numbers are layout/platform-sensitive, like
  /// wall times — golden renderings stay stable).
  uint64_t arena_bytes = 0;
  uint64_t arena_heap_fallbacks = 0;
  ProfileNode root;

  /// Indented text rendering. `include_timings=false` masks every
  /// duration as "..ns" so golden tests stay deterministic while keeping
  /// structure, cardinalities and notes exact.
  std::string Render(bool include_timings = true) const;
};

}  // namespace most::obs

#endif  // MOST_OBS_PROFILE_H_
