#ifndef MOST_OBS_TELEMETRY_H_
#define MOST_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/governor.h"
#include "obs/metrics.h"

namespace most::obs {

/// Per-tick telemetry timeline: samples selected registry series once per
/// engine tick into bounded per-series rings, so "what did refresh latency
/// do over the last 64 ticks" is answerable after the fact — the registry
/// alone can only be scraped "now" (docs/observability.md).
///
/// * Track() registers a (metric, label-filter) pair; at each OnTick() the
///   recorder walks one registry Collect() and appends the summed value of
///   every matching series. Histograms produce two sub-series: the key
///   itself carries the cumulative observation count and `<key>.sum` the
///   cumulative sum, so windowed means are delta(sum)/delta(count).
/// * OnTick() is idempotent per tick (the sharded engine and a query
///   manager may both report the same tick) and honors a sampling stride.
/// * The watchdog closes the loop to the ResourceGovernor: when the
///   windowed mean of the configured latency series crosses
///   `arm_mean_seconds`, it saves the governor's limits and installs
///   `armed_queue_limit` / `armed_delta_fraction`; when the mean falls
///   below the relax threshold (after a minimum hold), it restores the
///   saved limits. Unconfigured (arm_mean_seconds == 0) the watchdog
///   never touches the governor — the differential guarantee.
///
/// Disabled by default: OnTick() is a relaxed atomic load. Enable via
/// set_enabled(true) or MOST_TELEMETRY=1 (Global recorder only, which then
/// also tracks a default series set).
class TelemetryRecorder {
 public:
  struct Options {
    size_t retention = 512;  ///< Samples kept per series (ring bound).
    size_t stride = 1;       ///< Sample every Nth tick (tick % stride == 0).
  };

  struct Sample {
    Tick tick = 0;
    double value = 0.0;
  };

  struct WatchdogOptions {
    /// Histogram family whose windowed mean drives the arm/relax cycle.
    std::string latency_metric = "most_qm_refresh_latency_seconds";
    /// Window, in sampled ticks, the mean is computed over.
    size_t window = 8;
    /// Arm when mean latency exceeds this; 0 disables the watchdog.
    double arm_mean_seconds = 0.0;
    /// Relax when mean latency falls below this; 0 = arm threshold / 2.
    double relax_mean_seconds = 0.0;
    /// Governor limits installed while armed.
    size_t armed_queue_limit = 0;
    double armed_delta_fraction = 0.0;
    /// Minimum ticks armed before a relax is considered (hysteresis).
    Tick min_hold_ticks = 4;
  };

  static TelemetryRecorder& Global();

  TelemetryRecorder();
  explicit TelemetryRecorder(Options opts);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Registers a series to sample: the summed value of every series of
  /// `metric` whose labels contain all of `labels` (empty = whole family).
  /// Returns the series key used by the query methods —
  /// `metric` or `metric{k="v",...}` when a filter is given.
  std::string Track(const std::string& metric, const Labels& labels = {});
  std::vector<std::string> TrackedKeys() const;

  /// Samples every tracked series at tick `now` (once per tick, honoring
  /// the stride) and runs the watchdog. No-op when disabled.
  void OnTick(Tick now) { OnTick(now, MetricsRegistry::Global()); }
  void OnTick(Tick now, const MetricsRegistry& registry);

  /// Last `n` samples of a key, oldest first (fewer if the ring is short).
  std::vector<Sample> Series(const std::string& key, size_t n = SIZE_MAX) const;
  /// value(newest) - value(oldest) over the last `n` samples; nullopt when
  /// fewer than two samples exist.
  std::optional<double> WindowDelta(const std::string& key, size_t n) const;
  /// WindowDelta divided by the tick distance (per-tick rate).
  std::optional<double> WindowRate(const std::string& key, size_t n) const;
  /// q-quantile (q in [0,1]) of the sampled values in the window.
  std::optional<double> WindowQuantile(const std::string& key, size_t n,
                                       double q) const;

  void ConfigureWatchdog(const WatchdogOptions& opts);
  void DisarmWatchdog();  ///< Relax if armed, then disable the watchdog.
  bool watchdog_armed() const;
  uint64_t watchdog_arms() const;
  uint64_t watchdog_relaxes() const;

  uint64_t samples_total() const;
  uint64_t ticks_sampled() const;
  const Options& options() const { return opts_; }

  /// Drops buffered samples (tracked series and counters persist).
  void Clear();

 private:
  struct Tracked {
    std::string metric;
    Labels filter;
    std::string key;
  };

  void SampleLocked(Tick now, const std::vector<FamilySnapshot>& families);
  void WatchdogLocked(Tick now);
  void Append(const std::string& key, Tick now, double value);

  Options opts_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<Tracked> tracked_;
  std::map<std::string, std::deque<Sample>> series_;
  Tick last_tick_ = 0;
  bool sampled_any_ = false;
  uint64_t samples_total_ = 0;
  uint64_t ticks_sampled_ = 0;

  WatchdogOptions watchdog_;
  bool watchdog_configured_ = false;
  bool watchdog_armed_ = false;
  Tick armed_at_ = 0;
  uint64_t arms_ = 0;
  uint64_t relaxes_ = 0;
  /// Governor limits saved at arm time, restored verbatim at relax.
  most::ResourceGovernor::Limits saved_limits_;
};

}  // namespace most::obs

#endif  // MOST_OBS_TELEMETRY_H_
