#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace most::obs {

namespace {

/// Stable key for a (metric, filter) pair: `name` or `name{k="v",...}`.
std::string MakeKey(const std::string& metric, const Labels& filter) {
  if (filter.empty()) return metric;
  std::string key = metric + "{";
  bool first = true;
  for (const auto& [k, v] : filter) {
    if (!first) key += ",";
    first = false;
    key += k + "=\"" + v + "\"";
  }
  key += "}";
  return key;
}

/// True when every pair of `filter` appears in `labels`.
bool LabelsMatch(const Labels& labels, const Labels& filter) {
  for (const auto& [k, v] : filter) {
    auto it = labels.find(k);
    if (it == labels.end() || it->second != v) return false;
  }
  return true;
}

}  // namespace

TelemetryRecorder& TelemetryRecorder::Global() {
  static TelemetryRecorder* global = [] {
    auto* rec = new TelemetryRecorder();
    const char* env = std::getenv("MOST_TELEMETRY");
    if (env != nullptr && std::string(env) == "1") {
      rec->set_enabled(true);
      // A useful default set: refresh throughput + latency, shard
      // throughput, and the governor's degrade count.
      rec->Track("most_qm_refreshes_total");
      rec->Track("most_qm_refresh_latency_seconds");
      rec->Track("most_shard_updates_applied_total");
      rec->Track("most_governor_degrades");
    }
    // Recorder health is collected lazily, mirroring the trace sink.
    MetricsRegistry::Global().AddCollector(
        [rec](std::vector<FamilySnapshot>* out) {
          FamilySnapshot samples;
          samples.name = "most_telemetry_samples_total";
          samples.help =
              "Per-tick series samples appended to the telemetry timeline";
          samples.type = MetricType::kCounter;
          samples.series.emplace_back();
          samples.series.back().value =
              static_cast<double>(rec->samples_total());
          out->push_back(std::move(samples));

          FamilySnapshot ticks;
          ticks.name = "most_telemetry_ticks_sampled_total";
          ticks.help = "Engine ticks the telemetry recorder sampled";
          ticks.type = MetricType::kCounter;
          ticks.series.emplace_back();
          ticks.series.back().value = static_cast<double>(rec->ticks_sampled());
          out->push_back(std::move(ticks));

          FamilySnapshot adjustments;
          adjustments.name = "most_telemetry_watchdog_adjustments_total";
          adjustments.help =
              "Governor limit adjustments made by the telemetry watchdog";
          adjustments.type = MetricType::kCounter;
          adjustments.series.emplace_back();
          adjustments.series.back().labels = {{"action", "arm"}};
          adjustments.series.back().value =
              static_cast<double>(rec->watchdog_arms());
          adjustments.series.emplace_back();
          adjustments.series.back().labels = {{"action", "relax"}};
          adjustments.series.back().value =
              static_cast<double>(rec->watchdog_relaxes());
          out->push_back(std::move(adjustments));
        });
    return rec;
  }();
  return *global;
}

TelemetryRecorder::TelemetryRecorder() : TelemetryRecorder(Options()) {}

TelemetryRecorder::TelemetryRecorder(Options opts) : opts_(opts) {
  if (opts_.retention == 0) opts_.retention = 1;
  if (opts_.stride == 0) opts_.stride = 1;
}

std::string TelemetryRecorder::Track(const std::string& metric,
                                     const Labels& labels) {
  std::string key = MakeKey(metric, labels);
  std::lock_guard<std::mutex> lock(mu_);
  for (const Tracked& t : tracked_) {
    if (t.key == key) return key;
  }
  tracked_.push_back({metric, labels, key});
  return key;
}

std::vector<std::string> TelemetryRecorder::TrackedKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(tracked_.size());
  for (const Tracked& t : tracked_) keys.push_back(t.key);
  return keys;
}

void TelemetryRecorder::Append(const std::string& key, Tick now, double value) {
  std::deque<Sample>& ring = series_[key];
  ring.push_back({now, value});
  while (ring.size() > opts_.retention) ring.pop_front();
  ++samples_total_;
}

void TelemetryRecorder::OnTick(Tick now, const MetricsRegistry& registry) {
  if (!enabled()) return;
  bool sample = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Idempotent per tick: the sharded engine calls this once per
    // DrainAndRefresh and every embedded query manager once per TickAll —
    // the first caller samples, the rest are no-ops.
    if (sampled_any_ && now == last_tick_) return;
    last_tick_ = now;
    sampled_any_ = true;
    if (now % static_cast<Tick>(opts_.stride) != 0) return;
    sample = !tracked_.empty();
  }
  // Collect() outside the lock: the registry's collectors include this
  // recorder's own health counters (Global), which take mu_.
  std::vector<FamilySnapshot> families;
  if (sample) families = registry.Collect();
  std::lock_guard<std::mutex> lock(mu_);
  if (sample) {
    SampleLocked(now, families);
    ++ticks_sampled_;
  }
  WatchdogLocked(now);
}

void TelemetryRecorder::SampleLocked(
    Tick now, const std::vector<FamilySnapshot>& families) {
  for (const Tracked& t : tracked_) {
    const FamilySnapshot* fam = nullptr;
    for (const FamilySnapshot& f : families) {
      if (f.name == t.metric) {
        fam = &f;
        break;
      }
    }
    if (fam == nullptr) continue;  // Not emitted yet: no sample this tick.
    if (fam->type == MetricType::kHistogram) {
      double count = 0.0, sum = 0.0;
      for (const SeriesSnapshot& s : fam->series) {
        if (!LabelsMatch(s.labels, t.filter) || !s.hist.has_value()) continue;
        count += static_cast<double>(s.hist->count);
        sum += s.hist->sum;
      }
      Append(t.key, now, count);
      Append(t.key + ".sum", now, sum);
    } else {
      double value = 0.0;
      for (const SeriesSnapshot& s : fam->series) {
        if (LabelsMatch(s.labels, t.filter)) value += s.value;
      }
      Append(t.key, now, value);
    }
  }
}

void TelemetryRecorder::WatchdogLocked(Tick now) {
  if (!watchdog_configured_ || watchdog_.arm_mean_seconds <= 0.0) return;
  const std::string& key = watchdog_.latency_metric;
  auto cit = series_.find(key);
  auto sit = series_.find(key + ".sum");
  if (cit == series_.end() || sit == series_.end()) return;
  const std::deque<Sample>& counts = cit->second;
  const std::deque<Sample>& sums = sit->second;
  if (counts.size() < 2 || sums.size() < 2) return;
  size_t w = std::min(watchdog_.window, counts.size());
  double dc = counts.back().value - counts[counts.size() - w].value;
  double ds = sums.back().value - sums[sums.size() - w].value;
  bool has_data = dc > 0.0;
  double mean = has_data ? ds / dc : 0.0;
  if (!watchdog_armed_) {
    if (has_data && mean > watchdog_.arm_mean_seconds) {
      auto& governor = most::ResourceGovernor::Global();
      saved_limits_ = governor.limits();
      most::ResourceGovernor::Limits armed = saved_limits_;
      armed.refresh_queue_limit = watchdog_.armed_queue_limit;
      armed.delta_max_dirty_fraction = watchdog_.armed_delta_fraction;
      governor.set_limits(armed);
      watchdog_armed_ = true;
      armed_at_ = now;
      ++arms_;
    }
    return;
  }
  if (now < armed_at_ + watchdog_.min_hold_ticks) return;
  double relax_below = watchdog_.relax_mean_seconds > 0.0
                           ? watchdog_.relax_mean_seconds
                           : watchdog_.arm_mean_seconds / 2.0;
  if (!has_data || mean < relax_below) {
    most::ResourceGovernor::Global().set_limits(saved_limits_);
    watchdog_armed_ = false;
    ++relaxes_;
  }
}

std::vector<TelemetryRecorder::Sample> TelemetryRecorder::Series(
    const std::string& key, size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) return {};
  const std::deque<Sample>& ring = it->second;
  size_t take = std::min(n, ring.size());
  return std::vector<Sample>(ring.end() - static_cast<ptrdiff_t>(take),
                             ring.end());
}

std::optional<double> TelemetryRecorder::WindowDelta(const std::string& key,
                                                     size_t n) const {
  std::vector<Sample> window = Series(key, n);
  if (window.size() < 2) return std::nullopt;
  return window.back().value - window.front().value;
}

std::optional<double> TelemetryRecorder::WindowRate(const std::string& key,
                                                    size_t n) const {
  std::vector<Sample> window = Series(key, n);
  if (window.size() < 2) return std::nullopt;
  Tick span = window.back().tick - window.front().tick;
  if (span == 0) return std::nullopt;
  return (window.back().value - window.front().value) /
         static_cast<double>(span);
}

std::optional<double> TelemetryRecorder::WindowQuantile(const std::string& key,
                                                        size_t n,
                                                        double q) const {
  std::vector<Sample> window = Series(key, n);
  if (window.empty()) return std::nullopt;
  std::vector<double> values;
  values.reserve(window.size());
  for (const Sample& s : window) values.push_back(s.value);
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  size_t idx = static_cast<size_t>(
      std::min(static_cast<double>(values.size() - 1),
               std::floor(q * static_cast<double>(values.size()))));
  return values[idx];
}

void TelemetryRecorder::ConfigureWatchdog(const WatchdogOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  watchdog_ = opts;
  watchdog_configured_ = true;
  // Ensure the driving series is tracked (no-op when already present).
  for (const Tracked& t : tracked_) {
    if (t.key == opts.latency_metric) return;
  }
  tracked_.push_back({opts.latency_metric, {}, opts.latency_metric});
}

void TelemetryRecorder::DisarmWatchdog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (watchdog_armed_) {
    most::ResourceGovernor::Global().set_limits(saved_limits_);
    watchdog_armed_ = false;
    ++relaxes_;
  }
  watchdog_configured_ = false;
}

bool TelemetryRecorder::watchdog_armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watchdog_armed_;
}

uint64_t TelemetryRecorder::watchdog_arms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return arms_;
}

uint64_t TelemetryRecorder::watchdog_relaxes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relaxes_;
}

uint64_t TelemetryRecorder::samples_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_total_;
}

uint64_t TelemetryRecorder::ticks_sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_sampled_;
}

void TelemetryRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  sampled_any_ = false;
  last_tick_ = 0;
}

}  // namespace most::obs
