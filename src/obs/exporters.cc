#include "obs/exporters.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/trace.h"

namespace most::obs {

namespace {

/// Deterministic number rendering: integral values print without a
/// fractional part (counters, bucket counts), everything else as %g.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// {a="x",b="y"} — empty string for no labels. `extra` appends one more
/// pair (the histogram `le`).
std::string LabelBlock(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const FamilySnapshot& fam : registry.Collect()) {
    if (!fam.help.empty()) {
      os << "# HELP " << fam.name << " " << fam.help << "\n";
    }
    os << "# TYPE " << fam.name << " " << TypeName(fam.type) << "\n";
    for (const SeriesSnapshot& s : fam.series) {
      if (fam.type == MetricType::kHistogram && s.hist.has_value()) {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.hist->bounds.size(); ++i) {
          cumulative += s.hist->counts[i];
          os << fam.name << "_bucket"
             << LabelBlock(s.labels, "le", FormatNumber(s.hist->bounds[i]))
             << " " << cumulative << "\n";
        }
        cumulative += s.hist->counts.back();
        os << fam.name << "_bucket" << LabelBlock(s.labels, "le", "+Inf")
           << " " << cumulative << "\n";
        os << fam.name << "_sum" << LabelBlock(s.labels) << " "
           << FormatNumber(s.hist->sum) << "\n";
        os << fam.name << "_count" << LabelBlock(s.labels) << " "
           << s.hist->count << "\n";
      } else {
        os << fam.name << LabelBlock(s.labels) << " " << FormatNumber(s.value)
           << "\n";
      }
    }
  }
  return os.str();
}

std::string JsonSnapshot(const MetricsRegistry& registry,
                         const std::string& indent) {
  std::ostringstream os;
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";
  const std::string i3 = indent + "      ";
  os << "{\n" << i1 << "\"metrics\": [\n";
  std::vector<FamilySnapshot> families = registry.Collect();
  for (size_t f = 0; f < families.size(); ++f) {
    const FamilySnapshot& fam = families[f];
    os << i2 << "{\"name\": \"" << EscapeJson(fam.name) << "\", \"type\": \""
       << TypeName(fam.type) << "\", \"series\": [\n";
    for (size_t j = 0; j < fam.series.size(); ++j) {
      const SeriesSnapshot& s = fam.series[j];
      os << i3 << "{\"labels\": {";
      bool first = true;
      for (const auto& [k, v] : s.labels) {
        if (!first) os << ", ";
        first = false;
        os << "\"" << EscapeJson(k) << "\": \"" << EscapeJson(v) << "\"";
      }
      os << "}";
      if (fam.type == MetricType::kHistogram && s.hist.has_value()) {
        os << ", \"count\": " << s.hist->count
           << ", \"sum\": " << FormatNumber(s.hist->sum)
           << ", \"p50\": " << FormatNumber(s.hist->Quantile(0.50))
           << ", \"p95\": " << FormatNumber(s.hist->Quantile(0.95))
           << ", \"p99\": " << FormatNumber(s.hist->Quantile(0.99));
      } else {
        os << ", \"value\": " << FormatNumber(s.value);
      }
      os << "}" << (j + 1 < fam.series.size() ? "," : "") << "\n";
    }
    os << i2 << "]}" << (f + 1 < families.size() ? "," : "") << "\n";
  }
  os << i1 << "]\n" << indent << "}";
  return os.str();
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const ChromeTraceOptions& opts) {
  // Masked mode replaces every nonzero id with its first-appearance
  // ordinal (scanning events oldest-first, trace/span/parent in that
  // order), so goldens survive the global id counter moving between runs.
  std::map<uint64_t, uint64_t> ordinals;
  auto mask_id = [&](uint64_t id) -> uint64_t {
    if (!opts.mask || id == 0) return id;
    auto [it, inserted] = ordinals.emplace(id, ordinals.size() + 1);
    return it->second;
  };
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const uint64_t trace_id = mask_id(e.trace_id);
    const uint64_t span_id = mask_id(e.span_id);
    const uint64_t parent_id = mask_id(e.parent_span_id);
    const double ts =
        opts.mask ? static_cast<double>(i) : static_cast<double>(e.start_ns) / 1e3;
    const double dur =
        opts.mask ? 1.0 : static_cast<double>(e.duration_ns) / 1e3;
    const uint32_t tid = opts.mask ? 0 : e.thread;
    const char* cat =
        (e.component != nullptr && e.component[0] != '\0') ? e.component
                                                           : "most";
    os << "  {\"name\": \"" << EscapeJson(e.name) << "\", \"cat\": \""
       << EscapeJson(cat) << "\", \"ph\": \"X\", \"ts\": " << FormatNumber(ts)
       << ", \"dur\": " << FormatNumber(dur) << ", \"pid\": 1, \"tid\": " << tid
       << ", \"args\": {\"trace_id\": \"" << trace_id << "\", \"span_id\": \""
       << span_id << "\", \"parent_span_id\": \"" << parent_id << "\"";
    for (const TraceAnnotation& a : e.annotations) {
      os << ", \"" << EscapeJson(a.key) << "\": \"" << EscapeJson(a.value)
         << "\"";
    }
    os << "}}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "]}";
  return os.str();
}

std::string ChromeTraceJson(const TraceSink& sink,
                            const ChromeTraceOptions& opts) {
  return ChromeTraceJson(sink.Events(), opts);
}

void DumpMetrics(std::ostream& os) {
  os << "=== MOST engine metrics snapshot ===\n"
     << JsonSnapshot(MetricsRegistry::Global()) << "\n";
  TraceSink& sink = TraceSink::Global();
  os << "=== trace sink: " << sink.total_recorded() << " span(s) recorded";
  if (sink.enabled()) {
    std::vector<TraceEvent> events = sink.Events();
    size_t shown = events.size() > 32 ? 32 : events.size();
    os << ", last " << shown << " ===\n";
    for (size_t i = events.size() - shown; i < events.size(); ++i) {
      os << "  " << events[i].name << " thread=" << events[i].thread
         << " start_ns=" << events[i].start_ns
         << " dur_ns=" << events[i].duration_ns << "\n";
    }
  } else {
    os << " (tracing disabled; set MOST_TRACE=1) ===\n";
  }
}

}  // namespace most::obs
