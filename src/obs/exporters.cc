#include "obs/exporters.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/trace.h"

namespace most::obs {

namespace {

/// Deterministic number rendering: integral values print without a
/// fractional part (counters, bucket counts), everything else as %g.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// {a="x",b="y"} — empty string for no labels. `extra` appends one more
/// pair (the histogram `le`).
std::string LabelBlock(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const FamilySnapshot& fam : registry.Collect()) {
    if (!fam.help.empty()) {
      os << "# HELP " << fam.name << " " << fam.help << "\n";
    }
    os << "# TYPE " << fam.name << " " << TypeName(fam.type) << "\n";
    for (const SeriesSnapshot& s : fam.series) {
      if (fam.type == MetricType::kHistogram && s.hist.has_value()) {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.hist->bounds.size(); ++i) {
          cumulative += s.hist->counts[i];
          os << fam.name << "_bucket"
             << LabelBlock(s.labels, "le", FormatNumber(s.hist->bounds[i]))
             << " " << cumulative << "\n";
        }
        cumulative += s.hist->counts.back();
        os << fam.name << "_bucket" << LabelBlock(s.labels, "le", "+Inf")
           << " " << cumulative << "\n";
        os << fam.name << "_sum" << LabelBlock(s.labels) << " "
           << FormatNumber(s.hist->sum) << "\n";
        os << fam.name << "_count" << LabelBlock(s.labels) << " "
           << s.hist->count << "\n";
      } else {
        os << fam.name << LabelBlock(s.labels) << " " << FormatNumber(s.value)
           << "\n";
      }
    }
  }
  return os.str();
}

std::string JsonSnapshot(const MetricsRegistry& registry,
                         const std::string& indent) {
  std::ostringstream os;
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";
  const std::string i3 = indent + "      ";
  os << "{\n" << i1 << "\"metrics\": [\n";
  std::vector<FamilySnapshot> families = registry.Collect();
  for (size_t f = 0; f < families.size(); ++f) {
    const FamilySnapshot& fam = families[f];
    os << i2 << "{\"name\": \"" << EscapeJson(fam.name) << "\", \"type\": \""
       << TypeName(fam.type) << "\", \"series\": [\n";
    for (size_t j = 0; j < fam.series.size(); ++j) {
      const SeriesSnapshot& s = fam.series[j];
      os << i3 << "{\"labels\": {";
      bool first = true;
      for (const auto& [k, v] : s.labels) {
        if (!first) os << ", ";
        first = false;
        os << "\"" << EscapeJson(k) << "\": \"" << EscapeJson(v) << "\"";
      }
      os << "}";
      if (fam.type == MetricType::kHistogram && s.hist.has_value()) {
        os << ", \"count\": " << s.hist->count
           << ", \"sum\": " << FormatNumber(s.hist->sum)
           << ", \"p50\": " << FormatNumber(s.hist->Quantile(0.50))
           << ", \"p95\": " << FormatNumber(s.hist->Quantile(0.95))
           << ", \"p99\": " << FormatNumber(s.hist->Quantile(0.99));
      } else {
        os << ", \"value\": " << FormatNumber(s.value);
      }
      os << "}" << (j + 1 < fam.series.size() ? "," : "") << "\n";
    }
    os << i2 << "]}" << (f + 1 < families.size() ? "," : "") << "\n";
  }
  os << i1 << "]\n" << indent << "}";
  return os.str();
}

void DumpMetrics(std::ostream& os) {
  os << "=== MOST engine metrics snapshot ===\n"
     << JsonSnapshot(MetricsRegistry::Global()) << "\n";
  TraceSink& sink = TraceSink::Global();
  os << "=== trace sink: " << sink.total_recorded() << " span(s) recorded";
  if (sink.enabled()) {
    std::vector<TraceEvent> events = sink.Events();
    size_t shown = events.size() > 32 ? 32 : events.size();
    os << ", last " << shown << " ===\n";
    for (size_t i = events.size() - shown; i < events.size(); ++i) {
      os << "  " << events[i].name << " thread=" << events[i].thread
         << " start_ns=" << events[i].start_ns
         << " dur_ns=" << events[i].duration_ns << "\n";
    }
  } else {
    os << " (tracing disabled; set MOST_TRACE=1) ===\n";
  }
}

}  // namespace most::obs
