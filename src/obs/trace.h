#ifndef MOST_OBS_TRACE_H_
#define MOST_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace most::obs {

/// One completed span. `name` points at a string literal (span sites are
/// static); wall times are steady-clock nanoseconds since process start.
struct TraceEvent {
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread = 0;  ///< Small dense id, assigned per recording thread.
};

/// Fixed-capacity in-memory ring buffer of completed spans. Disabled by
/// default: an unrecorded span costs one relaxed atomic load. Enable via
/// set_enabled(true) or MOST_TRACE=1 (Global sink only).
class TraceSink {
 public:
  static TraceSink& Global();

  explicit TraceSink(size_t capacity = 4096);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(const TraceEvent& event);

  /// Buffered events, oldest first (at most `capacity`).
  std::vector<TraceEvent> Events() const;
  /// Total spans recorded, including those the ring has overwritten.
  uint64_t total_recorded() const;
  void Clear();
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;          ///< Ring write position.
  uint64_t recorded_ = 0;
};

/// Scoped span: records [construction, destruction) into the sink when the
/// sink is enabled. Cheap when disabled (no clock reads).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, &TraceSink::Global()) {}
  TraceSpan(const char* name, TraceSink* sink);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
  uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Steady-clock nanoseconds since an arbitrary process-local epoch: the
/// time base spans, profiles and latency observations share.
uint64_t MonotonicNowNs();

}  // namespace most::obs

#endif  // MOST_OBS_TRACE_H_
