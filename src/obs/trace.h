#ifndef MOST_OBS_TRACE_H_
#define MOST_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace most::obs {

/// Causal identity of a span: the trace it belongs to plus its own span
/// id. A zero trace id means "no trace" — the invalid/absent context.
/// Contexts travel across boundaries (network payload headers, thread
/// pool fan-out) so a child started elsewhere can still link its parent.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext& o) const {
    return trace_id == o.trace_id && span_id == o.span_id;
  }
};

/// One key/value span annotation. `key` points at a string literal
/// (annotation sites are static); the value is captured as a string.
struct TraceAnnotation {
  const char* key = "";
  std::string value;
};

/// One completed span. `name`/`component` point at string literals (span
/// sites are static); wall times are steady-clock nanoseconds since
/// process start. `parent_span_id == 0` marks a root span.
struct TraceEvent {
  const char* name = "";
  const char* component = "";
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread = 0;  ///< Small dense id, assigned per recording thread.
  std::vector<TraceAnnotation> annotations;
};

/// Fixed-capacity in-memory ring buffer of completed spans. Disabled by
/// default: an unrecorded span costs one relaxed atomic load. Enable via
/// set_enabled(true) or MOST_TRACE=1 (Global sink only).
class TraceSink {
 public:
  static TraceSink& Global();

  explicit TraceSink(size_t capacity = 4096);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(TraceEvent event);

  /// Buffered events, oldest first (at most `capacity`).
  std::vector<TraceEvent> Events() const;
  /// Total spans recorded, including those the ring has overwritten.
  uint64_t total_recorded() const;
  /// Spans the ring overwrote before they were ever read: recorded minus
  /// buffered. Clear() empties the buffer but both counters persist.
  uint64_t dropped() const;
  void Clear();
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;          ///< Ring write position.
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

/// The ambient trace context on this thread: the innermost live TraceSpan,
/// or whatever a TraceContextGuard installed (a remote parent delivered in
/// a message header). Invalid when nothing is active.
TraceContext CurrentTraceContext();

/// Scoped span: records [construction, destruction) into the sink when the
/// sink is enabled. Cheap when disabled (no clock reads, no thread-local
/// writes). An armed span becomes the thread's ambient context for its
/// lifetime, so nested spans and AnnotateActiveSpan find it; its parent is
/// the ambient context at construction unless an explicit parent is given.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, &TraceSink::Global()) {}
  TraceSpan(const char* name, const char* component)
      : TraceSpan(name, component, CurrentTraceContext(),
                  &TraceSink::Global()) {}
  TraceSpan(const char* name, TraceSink* sink)
      : TraceSpan(name, "", CurrentTraceContext(), sink) {}
  /// Explicit-parent form for cross-thread fan-out: the lambda running on
  /// a pool thread passes the context captured on the spawning thread.
  TraceSpan(const char* name, const char* component,
            const TraceContext& parent, TraceSink* sink = &TraceSink::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's context (invalid when the sink was disabled at
  /// construction); pass it across boundaries to parent remote children.
  TraceContext context() const { return {trace_id_, span_id_}; }

  void Annotate(const char* key, std::string value);
  void AnnotateU64(const char* key, uint64_t value);

 private:
  TraceSink* sink_;
  const char* name_;
  const char* component_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t start_ns_ = 0;
  bool armed_ = false;
  TraceContext saved_context_;
  TraceSpan* saved_span_ = nullptr;
  std::vector<TraceAnnotation> annotations_;
};

/// Installs `ctx` as the thread's ambient trace context for the current
/// scope — the receive-side half of context propagation. Spans opened
/// underneath parent onto `ctx`; the previous ambient context is restored
/// on destruction. Always cheap; safe to use with an invalid context.
class TraceContextGuard {
 public:
  explicit TraceContextGuard(const TraceContext& ctx);
  ~TraceContextGuard();

  TraceContextGuard(const TraceContextGuard&) = delete;
  TraceContextGuard& operator=(const TraceContextGuard&) = delete;

 private:
  TraceContext saved_context_;
  TraceSpan* saved_span_ = nullptr;
};

/// Annotates the innermost live span on this thread, if any — lets deep
/// helpers (e.g. the governor counting a shed) tag the operation that
/// caused them without threading a span through every signature.
void AnnotateActiveSpan(const char* key, std::string value);

/// Steady-clock nanoseconds since an arbitrary process-local epoch: the
/// time base spans, profiles and latency observations share.
uint64_t MonotonicNowNs();

}  // namespace most::obs

#endif  // MOST_OBS_TRACE_H_
