#ifndef MOST_OBS_SLOW_QUERY_LOG_H_
#define MOST_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace most::obs {

/// Records query refreshes that exceeded a latency threshold. Each hit is
/// logged at Warning level through common/logging and retained in a small
/// in-memory ring so tests and the shell can inspect recent offenders.
///
/// Threshold 0 disables the log (the default). The Global() instance reads
/// MOST_SLOW_QUERY_MS once at first use.
class SlowQueryLog {
 public:
  struct Entry {
    uint64_t query_id = 0;
    std::string query;       ///< Source text (possibly truncated).
    std::string path;        ///< "delta" | "full" | "queue" | "initial".
    uint64_t duration_ns = 0;
    uint64_t refresh_seq = 0;
    /// DegradeReason of a shed refresh ("deadline", "memory", ...); empty
    /// for an ordinary slow refresh. Degrade entries are recorded even
    /// below the latency threshold (and with the log nominally disabled):
    /// a degraded answer is an operator-visible event regardless of how
    /// quickly the engine decided to degrade. `most_shell health` renders
    /// the last few of these.
    std::string degrade;
    /// Shard that served the refresh (-1 when the query manager is not
    /// embedded in a sharded engine).
    int64_t shard_id = -1;
    /// Trace id of the span tree the refresh ran under (0 when tracing
    /// was disabled), so a slow line links directly to its trace.
    uint64_t trace_id = 0;
  };

  static SlowQueryLog& Global();

  explicit SlowQueryLog(size_t capacity = 64) : capacity_(capacity) {}

  uint64_t threshold_ns() const;
  void set_threshold_ns(uint64_t ns);
  bool enabled() const { return threshold_ns() > 0; }

  /// Records the refresh if duration_ns >= threshold (and the log is
  /// enabled), or unconditionally when entry.degrade is non-empty.
  /// Returns true when the entry was recorded.
  bool MaybeRecord(Entry entry);

  /// The most recent degrade-tagged entries, newest last (at most max_n).
  std::vector<Entry> RecentDegraded(size_t max_n = 10) const;

  /// Recorded entries, oldest first (at most `capacity`).
  std::vector<Entry> Entries() const;
  uint64_t total_recorded() const;
  void Clear();

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  uint64_t threshold_ns_ = 0;
  std::vector<Entry> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

}  // namespace most::obs

#endif  // MOST_OBS_SLOW_QUERY_LOG_H_
