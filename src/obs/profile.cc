#include "obs/profile.h"

#include <sstream>

namespace most::obs {

ProfileNode* ProfileNode::AddChild(std::string child_label) {
  children.push_back(std::make_unique<ProfileNode>());
  children.back()->label = std::move(child_label);
  return children.back().get();
}

namespace {

void RenderNode(const ProfileNode& node, int depth, bool include_timings,
                std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << "-> " << node.label << "  (tuples=" << node.tuples
      << " intervals=" << node.intervals << " time=";
  if (include_timings) {
    *os << node.duration_ns << "ns";
  } else {
    *os << "..ns";
  }
  for (const auto& [name, value] : node.notes) {
    *os << " " << name << "=" << value;
  }
  *os << ")\n";
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, include_timings, os);
  }
}

}  // namespace

std::string QueryProfile::Render(bool include_timings) const {
  std::ostringstream os;
  os << "Query: " << query << "\n";
  os << "Window: " << window << "\n";
  os << "Path: " << path;
  if (!reason.empty()) os << " (" << reason << ")";
  os << "\n";
  os << "Refresh: #" << refresh_seq << " dirty_objects=" << dirty_objects
     << " total=";
  if (include_timings) {
    os << total_ns << "ns arena_bytes=" << arena_bytes
       << " arena_heap_fallbacks=" << arena_heap_fallbacks;
  } else {
    os << "..ns";
  }
  os << "\n";
  RenderNode(root, 0, include_timings, &os);
  return os.str();
}

}  // namespace most::obs
