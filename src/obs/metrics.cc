#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "common/failpoint.h"
#include "common/logging.h"

namespace most::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MOST_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be sorted";
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double v) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target >= count) target = count - 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (cumulative + counts[i] <= target) {
      cumulative += counts[i];
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: no upper bound to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    double lower = i == 0 ? 0.0 : bounds[i - 1];
    double upper = bounds[i];
    double frac = counts[i] == 0
                      ? 0.0
                      : static_cast<double>(target - cumulative + 1) /
                            static_cast<double>(counts[i]);
    return lower + (upper - lower) * frac;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = [] {
    auto* r = new MetricsRegistry();
    const char* env = std::getenv("MOST_METRICS");
    if (env != nullptr && std::string(env) == "off") r->set_enabled(false);
    // Failpoint firings are collected lazily: the failpoint registry lives
    // below obs in the dependency order, so obs pulls the per-site counts
    // at snapshot time instead of failpoint.cc pushing them.
    r->AddCollector([](std::vector<FamilySnapshot>* out) {
      FamilySnapshot fam;
      fam.name = "most_failpoint_fired_total";
      fam.help = "Failpoint sites fired (acted on a hit) since start";
      fam.type = MetricType::kCounter;
      for (const auto& [site, n] :
           FailpointRegistry::Instance().TriggeredCounts()) {
        SeriesSnapshot s;
        s.labels = {{"site", site}};
        s.value = static_cast<double>(n);
        fam.series.push_back(std::move(s));
      }
      if (!fam.series.empty()) out->push_back(std::move(fam));
    });
    return r;
  }();
  return *global;
}

void MetricsRegistry::NoteFamily(const std::string& name, MetricType type,
                                 const std::string& help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    families_.emplace(name, std::make_pair(type, help));
    return;
  }
  MOST_CHECK(it->second.first == type)
      << "metric '" << name << "' registered with conflicting types";
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteFamily(name, MetricType::kCounter, help);
  MetricKey key{name, std::move(labels)};
  auto it = owned_.find(key);
  if (it == owned_.end()) {
    Owned o;
    o.type = MetricType::kCounter;
    o.counter = std::make_unique<Counter>();
    it = owned_.emplace(std::move(key), std::move(o)).first;
  }
  MOST_CHECK(it->second.type == MetricType::kCounter) << name;
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteFamily(name, MetricType::kGauge, help);
  MetricKey key{name, std::move(labels)};
  auto it = owned_.find(key);
  if (it == owned_.end()) {
    Owned o;
    o.type = MetricType::kGauge;
    o.gauge = std::make_unique<Gauge>();
    it = owned_.emplace(std::move(key), std::move(o)).first;
  }
  MOST_CHECK(it->second.type == MetricType::kGauge) << name;
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteFamily(name, MetricType::kHistogram, help);
  MetricKey key{name, std::move(labels)};
  auto it = owned_.find(key);
  if (it == owned_.end()) {
    Owned o;
    o.type = MetricType::kHistogram;
    o.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = owned_.emplace(std::move(key), std::move(o)).first;
  }
  MOST_CHECK(it->second.type == MetricType::kHistogram) << name;
  return it->second.histogram.get();
}

uint64_t MetricsRegistry::AttachCounter(const std::string& name,
                                        const std::string& help,
                                        Labels labels, const Counter* metric) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteFamily(name, MetricType::kCounter, help);
  uint64_t id = next_id_++;
  attached_[id] = {MetricKey{name, std::move(labels)}, MetricType::kCounter,
                   metric};
  return id;
}

uint64_t MetricsRegistry::AttachGauge(const std::string& name,
                                      const std::string& help, Labels labels,
                                      const Gauge* metric) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteFamily(name, MetricType::kGauge, help);
  uint64_t id = next_id_++;
  attached_[id] = {MetricKey{name, std::move(labels)}, MetricType::kGauge,
                   metric};
  return id;
}

uint64_t MetricsRegistry::AttachHistogram(const std::string& name,
                                          const std::string& help,
                                          Labels labels,
                                          const Histogram* metric) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteFamily(name, MetricType::kHistogram, help);
  uint64_t id = next_id_++;
  attached_[id] = {MetricKey{name, std::move(labels)}, MetricType::kHistogram,
                   metric};
  return id;
}

void MetricsRegistry::DetachMetric(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attached_.find(id);
  if (it == attached_.end()) return;
  const Attached& a = it->second;
  if (a.type == MetricType::kGauge) {
    // A dead instance's gauge contributes nothing: no retired entry, the
    // series just disappears (or shrinks to the surviving instances).
    attached_.erase(it);
    return;
  }
  Retired& r = retired_[a.key];
  switch (a.type) {
    case MetricType::kCounter:
      r.value += static_cast<double>(
          static_cast<const Counter*>(a.metric)->value());
      break;
    case MetricType::kGauge:
      break;
    case MetricType::kHistogram: {
      Histogram::Snapshot s =
          static_cast<const Histogram*>(a.metric)->snapshot();
      if (!r.hist.has_value()) {
        r.hist = s;
      } else {
        MOST_CHECK(r.hist->bounds == s.bounds) << a.key.name;
        for (size_t i = 0; i < s.counts.size(); ++i) {
          r.hist->counts[i] += s.counts[i];
        }
        r.hist->count += s.count;
        r.hist->sum += s.sum;
      }
      break;
    }
  }
  attached_.erase(it);
}

uint64_t MetricsRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  collectors_[id] = std::move(fn);
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

std::vector<FamilySnapshot> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);

  struct SeriesAgg {
    double value = 0.0;
    std::optional<Histogram::Snapshot> hist;
  };
  std::map<MetricKey, SeriesAgg> agg;

  auto fold_hist = [](SeriesAgg* a, const Histogram::Snapshot& s) {
    if (!a->hist.has_value()) {
      a->hist = s;
      return;
    }
    MOST_CHECK(a->hist->bounds == s.bounds);
    for (size_t i = 0; i < s.counts.size(); ++i) {
      a->hist->counts[i] += s.counts[i];
    }
    a->hist->count += s.count;
    a->hist->sum += s.sum;
  };

  for (const auto& [key, owned] : owned_) {
    SeriesAgg& a = agg[key];
    switch (owned.type) {
      case MetricType::kCounter:
        a.value += static_cast<double>(owned.counter->value());
        break;
      case MetricType::kGauge:
        a.value += static_cast<double>(owned.gauge->value());
        break;
      case MetricType::kHistogram:
        fold_hist(&a, owned.histogram->snapshot());
        break;
    }
  }
  for (const auto& [id, att] : attached_) {
    SeriesAgg& a = agg[att.key];
    switch (att.type) {
      case MetricType::kCounter:
        a.value += static_cast<double>(
            static_cast<const Counter*>(att.metric)->value());
        break;
      case MetricType::kGauge:
        a.value += static_cast<double>(
            static_cast<const Gauge*>(att.metric)->value());
        break;
      case MetricType::kHistogram:
        fold_hist(&a, static_cast<const Histogram*>(att.metric)->snapshot());
        break;
    }
  }
  for (const auto& [key, retired] : retired_) {
    SeriesAgg& a = agg[key];
    a.value += retired.value;
    if (retired.hist.has_value()) fold_hist(&a, *retired.hist);
  }

  std::vector<FamilySnapshot> out;
  for (auto& [key, a] : agg) {
    if (out.empty() || out.back().name != key.name) {
      auto fam = families_.find(key.name);
      FamilySnapshot f;
      f.name = key.name;
      if (fam != families_.end()) {
        f.type = fam->second.first;
        f.help = fam->second.second;
      }
      out.push_back(std::move(f));
    }
    SeriesSnapshot s;
    s.labels = key.labels;
    s.value = a.value;
    s.hist = std::move(a.hist);
    out.back().series.push_back(std::move(s));
  }
  for (const auto& [id, collector] : collectors_) {
    collector(&out);
  }
  std::sort(out.begin(), out.end(),
            [](const FamilySnapshot& a, const FamilySnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, owned] : owned_) {
    switch (owned.type) {
      case MetricType::kCounter:
        owned.counter->Reset();
        break;
      case MetricType::kGauge:
        owned.gauge->Reset();
        break;
      case MetricType::kHistogram:
        owned.histogram->Reset();
        break;
    }
  }
  retired_.clear();
}

}  // namespace most::obs
