#ifndef MOST_OBS_GOVERNOR_H_
#define MOST_OBS_GOVERNOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace most {

/// Process-wide owner of the resource-governance knobs and degraded-mode
/// health state (docs/robustness.md).
///
/// Components do not reach into each other under pressure; they meet here:
///
/// * the query manager consults limits().refresh_budget /
///   refresh_queue_limit / degrade_cooldown_ticks for any knob its own
///   Options left at zero, and reports every shed refresh via
///   NoteDegrade();
/// * the interval cache takes its byte budget from
///   limits().interval_cache_max_bytes the same way;
/// * reliable endpoints take their buffer caps from the channel_* limits,
///   and register a backpressure probe so `most_shell health` (or any
///   operator tooling) can enumerate per-peer pressure without holding a
///   pointer to every endpoint;
/// * the storage layer raises the sticky storage-degraded flag when a WAL
///   append or checkpoint hits ENOSPC/EIO, and clears it when a checkpoint
///   succeeds again.
///
/// Every knob defaults to 0 = unlimited, so a process that never touches
/// the governor behaves exactly as before (the differential guarantee).
/// State is exported through most_governor_* series on the global metrics
/// registry.
class ResourceGovernor {
 public:
  /// The knobs. Zero always means "unlimited / disabled".
  struct Limits {
    /// Fallback per-refresh evaluation budget for query managers whose
    /// Options::refresh_budget fields are unset.
    Budget refresh_budget;
    /// Fallback cap on refreshes admitted per TickAll batch.
    size_t refresh_queue_limit = 0;
    /// Fallback per-query cooldown (ticks) after an exhausted refresh.
    Tick degrade_cooldown_ticks = 0;
    /// Fallback byte budget for interval caches (LRU eviction).
    size_t interval_cache_max_bytes = 0;
    /// Fallback caps on a reliable endpoint's per-peer unacked buffer.
    size_t channel_max_unacked_messages = 0;
    size_t channel_max_unacked_bytes = 0;
    /// Fallback horizon after which a silent peer's send buffer is evicted.
    Tick channel_peer_dead_horizon = 0;
    /// Fallback dirty-fraction threshold above which a delta refresh falls
    /// back to a full re-evaluation, for query managers whose
    /// Options::delta_max_dirty_fraction is unset. The telemetry
    /// watchdog's arm/relax cycle drives this knob (docs/observability.md).
    double delta_max_dirty_fraction = 0.0;
  };

  static ResourceGovernor& Global();

  ResourceGovernor();
  ~ResourceGovernor();

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  Limits limits() const;
  void set_limits(const Limits& limits);

  // ---- Degrade events ----------------------------------------------------

  struct DegradeEvent {
    DegradeReason reason = DegradeReason::kNone;
    uint64_t query_id = 0;  ///< 0 when the event is not query-scoped.
    Tick at = 0;
    std::string detail;
  };

  /// Records a shed/degrade event: bumps most_governor_degrades_total
  /// (labelled by reason) and keeps the event in a small ring for
  /// operator tooling.
  void NoteDegrade(DegradeReason reason, uint64_t query_id, Tick at,
                   std::string detail = "");
  /// Most recent events, newest last (at most `max_n`).
  std::vector<DegradeEvent> RecentDegrades(size_t max_n = 10) const;
  uint64_t degrades_total() const;

  // ---- Storage health ----------------------------------------------------

  /// Sticky storage-degraded flag: raised by the WAL/checkpoint paths on
  /// write failure, cleared by the next successful checkpoint. While
  /// raised, the database stays readable and refuses only writes.
  void ReportStorageDegraded(const std::string& detail);
  void ClearStorageDegraded();
  bool storage_degraded() const;
  std::string storage_degraded_detail() const;

  // ---- Backpressure probes -----------------------------------------------

  struct PeerPressure {
    uint64_t endpoint_node = 0;
    uint64_t peer = 0;
    Backpressure state = Backpressure::kOpen;
    size_t pending_messages = 0;
    size_t pending_bytes = 0;
  };
  using BackpressureProbe = std::function<std::vector<PeerPressure>()>;

  /// Registers a callback enumerating one endpoint's per-peer pressure;
  /// returns an id for Unregister. Probes are invoked synchronously by
  /// BackpressureSnapshot() — they must not call back into the governor.
  uint64_t RegisterBackpressureProbe(BackpressureProbe probe);
  void UnregisterBackpressureProbe(uint64_t id);
  std::vector<PeerPressure> BackpressureSnapshot() const;

  /// Testing hook: drop events, storage state and counters (not limits).
  void ResetStateForTest();

 private:
  mutable std::mutex mu_;
  Limits limits_;
  std::deque<DegradeEvent> recent_;
  uint64_t degrades_total_ = 0;
  bool storage_degraded_ = false;
  std::string storage_detail_;
  std::map<uint64_t, BackpressureProbe> probes_;
  uint64_t next_probe_id_ = 1;

  /// Attached to the global registry for the governor's lifetime.
  obs::Gauge storage_degraded_gauge_;
  obs::Gauge degrades_gauge_;
  std::vector<uint64_t> attach_ids_;

  static constexpr size_t kRecentCapacity = 32;
};

}  // namespace most

#endif  // MOST_OBS_GOVERNOR_H_
