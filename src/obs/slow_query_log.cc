#include "obs/slow_query_log.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace most::obs {

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* global = [] {
    auto* log = new SlowQueryLog();
    if (const char* env = std::getenv("MOST_SLOW_QUERY_MS")) {
      char* end = nullptr;
      double ms = std::strtod(env, &end);
      if (end != env && ms > 0) {
        log->set_threshold_ns(static_cast<uint64_t>(ms * 1e6));
      }
    }
    return log;
  }();
  return *global;
}

uint64_t SlowQueryLog::threshold_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_ns_;
}

void SlowQueryLog::set_threshold_ns(uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ns_ = ns;
}

bool SlowQueryLog::MaybeRecord(Entry entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool degraded = !entry.degrade.empty();
    if (!degraded &&
        (threshold_ns_ == 0 || entry.duration_ns < threshold_ns_)) {
      return false;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(entry);
    } else {
      ring_[next_] = entry;
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }
  MOST_LOG(Warning) << "slow query #" << entry.query_id << " ("
                    << entry.path << " refresh " << entry.refresh_seq
                    << (entry.degrade.empty()
                            ? std::string()
                            : ", degraded: " + entry.degrade)
                    << (entry.shard_id >= 0
                            ? ", shard " + std::to_string(entry.shard_id)
                            : std::string())
                    << (entry.trace_id != 0
                            ? ", trace " + std::to_string(entry.trace_id)
                            : std::string())
                    << "): " << entry.duration_ns / 1000000.0 << "ms -- "
                    << entry.query;
  return true;
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::RecentDegraded(
    size_t max_n) const {
  std::vector<Entry> all = Entries();
  std::vector<Entry> out;
  for (auto it = all.rbegin(); it != all.rend() && out.size() < max_n; ++it) {
    if (!it->degrade.empty()) out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  std::vector<Entry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

}  // namespace most::obs
