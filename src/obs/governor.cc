#include "obs/governor.h"

#include "obs/trace.h"

namespace most {

namespace {

/// Labelled shed counter, one series per reason, owned by the registry so
/// totals survive any individual component.
void CountDegrade(DegradeReason reason) {
  auto& r = obs::MetricsRegistry::Global();
  if (!r.enabled()) return;
  r.GetCounter("most_governor_sheds_total",
               "Degrade/shed events recorded by the resource governor",
               {{"reason", std::string(DegradeReasonToString(reason))}})
      ->Inc();
}

}  // namespace

ResourceGovernor& ResourceGovernor::Global() {
  static ResourceGovernor* governor = new ResourceGovernor();
  return *governor;
}

ResourceGovernor::ResourceGovernor() {
  auto& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachGauge("most_governor_storage_degraded",
                    "1 while the sticky storage-degraded flag is raised", {},
                    &storage_degraded_gauge_),
      r.AttachGauge("most_governor_degrades",
                    "Degrade/shed events recorded (all reasons)", {},
                    &degrades_gauge_),
  };
}

ResourceGovernor::~ResourceGovernor() {
  auto& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

ResourceGovernor::Limits ResourceGovernor::limits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limits_;
}

void ResourceGovernor::set_limits(const Limits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  limits_ = limits;
}

void ResourceGovernor::NoteDegrade(DegradeReason reason, uint64_t query_id,
                                   Tick at, std::string detail) {
  CountDegrade(reason);
  // Every shed decision tags the span it happened under (a refresh, a
  // TickAll batch, a WAL append), so the trace tree shows *why* an
  // operation degraded, not just that a counter moved.
  obs::AnnotateActiveSpan("degrade_reason",
                          std::string(DegradeReasonToString(reason)));
  std::lock_guard<std::mutex> lock(mu_);
  ++degrades_total_;
  degrades_gauge_.Set(static_cast<int64_t>(degrades_total_));
  recent_.push_back({reason, query_id, at, std::move(detail)});
  while (recent_.size() > kRecentCapacity) recent_.pop_front();
}

std::vector<ResourceGovernor::DegradeEvent> ResourceGovernor::RecentDegrades(
    size_t max_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = std::min(max_n, recent_.size());
  return std::vector<DegradeEvent>(recent_.end() - n, recent_.end());
}

uint64_t ResourceGovernor::degrades_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degrades_total_;
}

void ResourceGovernor::ReportStorageDegraded(const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  storage_degraded_ = true;
  storage_detail_ = detail;
  storage_degraded_gauge_.Set(1);
}

void ResourceGovernor::ClearStorageDegraded() {
  std::lock_guard<std::mutex> lock(mu_);
  storage_degraded_ = false;
  storage_detail_.clear();
  storage_degraded_gauge_.Set(0);
}

bool ResourceGovernor::storage_degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return storage_degraded_;
}

std::string ResourceGovernor::storage_degraded_detail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return storage_detail_;
}

uint64_t ResourceGovernor::RegisterBackpressureProbe(BackpressureProbe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_probe_id_++;
  probes_.emplace(id, std::move(probe));
  return id;
}

void ResourceGovernor::UnregisterBackpressureProbe(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.erase(id);
}

std::vector<ResourceGovernor::PeerPressure>
ResourceGovernor::BackpressureSnapshot() const {
  // Copy the probes out so a probe enumerating its endpoint does not run
  // under the governor lock.
  std::vector<BackpressureProbe> probes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probes.reserve(probes_.size());
    for (const auto& [id, probe] : probes_) probes.push_back(probe);
  }
  std::vector<PeerPressure> out;
  for (const BackpressureProbe& probe : probes) {
    std::vector<PeerPressure> part = probe();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

void ResourceGovernor::ResetStateForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
  degrades_total_ = 0;
  degrades_gauge_.Set(0);
  storage_degraded_ = false;
  storage_detail_.clear();
  storage_degraded_gauge_.Set(0);
}

}  // namespace most
