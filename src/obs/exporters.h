#ifndef MOST_OBS_EXPORTERS_H_
#define MOST_OBS_EXPORTERS_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace most::obs {

/// Prometheus text exposition format (# HELP / # TYPE / samples;
/// histograms expand to _bucket{le=...}/_sum/_count). Deterministic:
/// families sorted by name, series by labels.
std::string PrometheusText(const MetricsRegistry& registry);
inline std::string PrometheusText() {
  return PrometheusText(MetricsRegistry::Global());
}

/// JSON snapshot of the same data, reusable by the BENCH_*.json emitters:
/// a single object {"metrics": [...]} whose histogram series carry
/// count/sum and p50/p95/p99. `indent` prefixes every line (so the object
/// can be embedded inside a larger hand-written JSON document).
std::string JsonSnapshot(const MetricsRegistry& registry,
                         const std::string& indent = "");
inline std::string JsonSnapshot() {
  return JsonSnapshot(MetricsRegistry::Global());
}

/// Chrome trace-event ("Perfetto legacy JSON") export of completed spans:
/// {"traceEvents": [{"name","cat","ph":"X","ts","dur","pid","tid","args"}]}
/// — loadable in chrome://tracing or ui.perfetto.dev. Timestamps are
/// microseconds; args carry trace/span/parent ids plus annotations.
/// `mask` rewrites ids to first-appearance ordinals, timestamps to the
/// event index and tids to 0, producing byte-stable golden output.
struct ChromeTraceOptions {
  bool mask = false;
};
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const ChromeTraceOptions& opts = {});
std::string ChromeTraceJson(const TraceSink& sink,
                            const ChromeTraceOptions& opts = {});

/// Engine-state dump hook: writes the global registry's JSON snapshot
/// (plus a short trace-sink summary) to `os`. Wired into examples and the
/// torture suites so a failure prints what the engine was doing.
void DumpMetrics(std::ostream& os);

}  // namespace most::obs

#endif  // MOST_OBS_EXPORTERS_H_
