#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace most::obs {

namespace {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Ids come from one process-wide counter starting at 1, so 0 stays the
/// reserved "invalid" value and ids never collide across threads.
uint64_t NewId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local TraceContext g_active_context;
thread_local TraceSpan* g_active_span = nullptr;

}  // namespace

uint64_t MonotonicNowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

TraceContext CurrentTraceContext() { return g_active_context; }

TraceSink& TraceSink::Global() {
  static TraceSink* global = [] {
    auto* sink = new TraceSink();
    const char* env = std::getenv("MOST_TRACE");
    if (env != nullptr && std::string(env) == "1") sink->set_enabled(true);
    // Ring health is collected lazily, like the failpoint counts: the
    // sink predates any scrape, so the exporter pulls the totals at
    // Collect() time instead of Record() pushing them.
    MetricsRegistry::Global().AddCollector(
        [sink](std::vector<FamilySnapshot>* out) {
          auto counter = [](std::string name, std::string help, double v) {
            FamilySnapshot fam;
            fam.name = std::move(name);
            fam.help = std::move(help);
            fam.type = MetricType::kCounter;
            SeriesSnapshot s;
            s.value = v;
            fam.series.push_back(std::move(s));
            return fam;
          };
          out->push_back(counter(
              "most_trace_spans_recorded_total",
              "Trace spans recorded into the global sink since start",
              static_cast<double>(sink->total_recorded())));
          out->push_back(counter(
              "most_trace_spans_dropped_total",
              "Trace spans overwritten by ring wrap before export",
              static_cast<double>(sink->dropped())));
        });
    return sink;
  }();
  return *global;
}

TraceSink::TraceSink(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    ++recorded_;
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t TraceSink::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

TraceSpan::TraceSpan(const char* name, const char* component,
                     const TraceContext& parent, TraceSink* sink)
    : sink_(sink), name_(name), component_(component) {
  if (sink_ == nullptr || !sink_->enabled()) return;
  armed_ = true;
  const TraceContext& p = parent.valid() ? parent : g_active_context;
  trace_id_ = p.valid() ? p.trace_id : NewId();
  parent_span_id_ = p.span_id;
  span_id_ = NewId();
  start_ns_ = MonotonicNowNs();
  saved_context_ = g_active_context;
  saved_span_ = g_active_span;
  g_active_context = {trace_id_, span_id_};
  g_active_span = this;
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  g_active_context = saved_context_;
  g_active_span = saved_span_;
  TraceEvent e;
  e.name = name_;
  e.component = component_;
  e.trace_id = trace_id_;
  e.span_id = span_id_;
  e.parent_span_id = parent_span_id_;
  e.start_ns = start_ns_;
  e.duration_ns = MonotonicNowNs() - start_ns_;
  e.thread = CurrentThreadId();
  e.annotations = std::move(annotations_);
  sink_->Record(std::move(e));
}

void TraceSpan::Annotate(const char* key, std::string value) {
  if (!armed_) return;
  annotations_.push_back({key, std::move(value)});
}

void TraceSpan::AnnotateU64(const char* key, uint64_t value) {
  if (!armed_) return;
  annotations_.push_back({key, std::to_string(value)});
}

TraceContextGuard::TraceContextGuard(const TraceContext& ctx) {
  saved_context_ = g_active_context;
  saved_span_ = g_active_span;
  g_active_context = ctx;
  g_active_span = nullptr;
}

TraceContextGuard::~TraceContextGuard() {
  g_active_context = saved_context_;
  g_active_span = saved_span_;
}

void AnnotateActiveSpan(const char* key, std::string value) {
  if (g_active_span != nullptr) g_active_span->Annotate(key, std::move(value));
}

}  // namespace most::obs
