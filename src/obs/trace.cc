#include "obs/trace.h"

#include <atomic>
#include <cstdlib>

namespace most::obs {

namespace {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

uint64_t MonotonicNowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

TraceSink& TraceSink::Global() {
  static TraceSink* global = [] {
    auto* sink = new TraceSink();
    const char* env = std::getenv("MOST_TRACE");
    if (env != nullptr && std::string(env) == "1") sink->set_enabled(true);
    return sink;
  }();
  return *global;
}

TraceSink::TraceSink(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceSink::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t TraceSink::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

TraceSpan::TraceSpan(const char* name, TraceSink* sink)
    : sink_(sink), name_(name) {
  if (sink_ != nullptr && sink_->enabled()) {
    armed_ = true;
    start_ns_ = MonotonicNowNs();
  }
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  TraceEvent e;
  e.name = name_;
  e.start_ns = start_ns_;
  e.duration_ns = MonotonicNowNs() - start_ns_;
  e.thread = CurrentThreadId();
  sink_->Record(e);
}

}  // namespace most::obs
