#ifndef MOST_GEOMETRY_MEC_H_
#define MOST_GEOMETRY_MEC_H_

#include <vector>

#include "common/interval.h"
#include "geometry/point.h"

namespace most {

struct Circle {
  Point2 center;
  double radius = 0.0;

  bool Contains(const Point2& p, double eps = 1e-9) const {
    return center.DistanceTo(p) <= radius + eps;
  }
};

/// Minimal enclosing circle of a point set (Welzl's algorithm with a
/// deterministic shuffle; expected linear time). Empty input yields a
/// radius-0 circle at the origin.
Circle MinimalEnclosingCircle(std::vector<Point2> points);

/// Evaluates the paper's WITHIN-A-SPHERE(r, o1, ..., ok) relation for
/// moving points over the tick window: the set of ticks at which all k
/// points fit in a circle of radius r. Pairwise-diameter intervals
/// (|oi(t) - oj(t)| <= 2r, solved exactly) prune the window; surviving
/// ticks are confirmed with a minimal-enclosing-circle test.
IntervalSet WithinSphereTicks(const std::vector<MovingPoint2>& points,
                              double r, Interval window);

}  // namespace most

#endif  // MOST_GEOMETRY_MEC_H_
