#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace most {

double PointSegmentDistance(const Point2& p, const Point2& a,
                            const Point2& b) {
  Vec2 ab = b - a;
  double len2 = ab.NormSquared();
  if (len2 == 0.0) return p.DistanceTo(a);
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return p.DistanceTo(a + ab * t);
}

Polygon::Polygon(std::vector<Point2> vertices)
    : vertices_(std::move(vertices)) {
  bbox_.min = bbox_.max = vertices_.front();
  for (const Point2& v : vertices_) {
    bbox_.min.x = std::min(bbox_.min.x, v.x);
    bbox_.min.y = std::min(bbox_.min.y, v.y);
    bbox_.max.x = std::max(bbox_.max.x, v.x);
    bbox_.max.y = std::max(bbox_.max.y, v.y);
  }
}

Result<Polygon> Polygon::Create(std::vector<Point2> vertices) {
  if (vertices.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Point2& a = vertices[i];
    const Point2& b = vertices[(i + 1) % vertices.size()];
    if (a == b) {
      return Status::InvalidArgument("polygon has repeated adjacent vertex");
    }
  }
  Polygon poly(std::move(vertices));
  if (std::abs(poly.SignedArea()) == 0.0) {
    return Status::InvalidArgument("polygon is degenerate (zero area)");
  }
  return poly;
}

Polygon Polygon::Rectangle(Point2 lo, Point2 hi) {
  return Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

Polygon Polygon::RegularApprox(Point2 center, double radius, int sides) {
  std::vector<Point2> vs;
  vs.reserve(sides);
  for (int i = 0; i < sides; ++i) {
    double a = 2.0 * M_PI * static_cast<double>(i) / sides;
    vs.push_back({center.x + radius * std::cos(a),
                  center.y + radius * std::sin(a)});
  }
  return Polygon(std::move(vs));
}

double Polygon::SignedArea() const {
  double acc = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& a = vertices_[i];
    const Point2& b = vertices_[(i + 1) % vertices_.size()];
    acc += a.Cross(b);
  }
  return acc / 2.0;
}

bool Polygon::Contains(const Point2& p) const {
  if (!bbox_.Contains(p)) return false;
  // Winding-free crossing test with explicit boundary handling: a point on
  // an edge or vertex is inside.
  bool inside = false;
  size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2& a = vertices_[j];
    const Point2& b = vertices_[i];
    // Boundary: p collinear with [a,b] and within its extent.
    double cross = (b - a).Cross(p - a);
    if (cross == 0.0 && std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
        std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y)) {
      return true;
    }
    // Ray-crossing (half-open rule avoids double-counting vertices).
    if ((b.y > p.y) != (a.y > p.y)) {
      double x_at = b.x + (a.x - b.x) * (p.y - b.y) / (a.y - b.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::BoundaryDistance(const Point2& p) const {
  double best = std::numeric_limits<double>::infinity();
  size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best, PointSegmentDistance(p, vertices_[j], vertices_[i]));
  }
  return best;
}

std::string Polygon::ToString() const {
  std::ostringstream os;
  os << "Polygon[";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i) os << ", ";
    os << vertices_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace most
