#include "geometry/kinematics.h"

#include <algorithm>
#include <cmath>

namespace most {

namespace {

std::vector<RealInterval> ClipToWindow(std::vector<RealInterval> ivs,
                                       RealInterval window) {
  std::vector<RealInterval> out;
  for (RealInterval& iv : ivs) {
    iv.begin = std::max(iv.begin, window.begin);
    iv.end = std::min(iv.end, window.end);
    if (iv.valid()) out.push_back(iv);
  }
  return out;
}

}  // namespace

double DistanceSquaredAt(const MovingPoint2& a, const MovingPoint2& b,
                         double t) {
  return a.At(t).DistanceSquaredTo(b.At(t));
}

std::vector<RealInterval> DistanceWithin(const MovingPoint2& a,
                                         const MovingPoint2& b, double r,
                                         RealInterval window) {
  if (r < 0.0 || !window.valid()) return {};
  // |dp + dv*t|^2 <= r^2  <=>  A t^2 + B t + C <= 0.
  Vec2 dp = a.origin - b.origin;
  Vec2 dv = a.velocity - b.velocity;
  double A = dv.NormSquared();
  double B = 2.0 * dp.Dot(dv);
  double C = dp.NormSquared() - r * r;
  if (A == 0.0) {
    if (B == 0.0) {
      // Constant distance.
      if (C <= 0.0) return {window};
      return {};
    }
    double root = -C / B;
    RealInterval iv = (B > 0.0)
                          ? RealInterval{window.begin, root}
                          : RealInterval{root, window.end};
    return ClipToWindow({iv}, window);
  }
  double disc = B * B - 4.0 * A * C;
  if (disc < 0.0) return {};  // Never within r (A > 0: parabola opens up).
  double sq = std::sqrt(disc);
  double t1 = (-B - sq) / (2.0 * A);
  double t2 = (-B + sq) / (2.0 * A);
  return ClipToWindow({{t1, t2}}, window);
}

std::vector<RealInterval> DistanceAtLeast(const MovingPoint2& a,
                                          const MovingPoint2& b, double r,
                                          RealInterval window) {
  if (!window.valid()) return {};
  if (r <= 0.0) return {window};
  Vec2 dp = a.origin - b.origin;
  Vec2 dv = a.velocity - b.velocity;
  double A = dv.NormSquared();
  double B = 2.0 * dp.Dot(dv);
  double C = dp.NormSquared() - r * r;
  if (A == 0.0) {
    if (B == 0.0) {
      if (C >= 0.0) return {window};
      return {};
    }
    double root = -C / B;
    RealInterval iv = (B > 0.0)
                          ? RealInterval{root, window.end}
                          : RealInterval{window.begin, root};
    return ClipToWindow({iv}, window);
  }
  double disc = B * B - 4.0 * A * C;
  if (disc <= 0.0) return {window};  // q(t) >= 0 everywhere.
  double sq = std::sqrt(disc);
  double t1 = (-B - sq) / (2.0 * A);
  double t2 = (-B + sq) / (2.0 * A);
  return ClipToWindow({{window.begin, t1}, {t2, window.end}}, window);
}

void InsidePolygonInto(const MovingPoint2& p, const Polygon& poly,
                       RealInterval window, std::vector<double>* events_buf,
                       std::vector<RealInterval>* out) {
  out->clear();
  if (!window.valid()) return;
  if (p.IsStationary()) {
    if (poly.Contains(p.origin)) out->push_back(window);
    return;
  }
  // Candidate event times: the moving point crosses an edge's supporting
  // line. cross(b - a, p(t) - a) is linear in t.
  std::vector<double>& events = *events_buf;
  events.clear();
  events.push_back(window.begin);
  events.push_back(window.end);
  const auto& vs = poly.vertices();
  size_t n = vs.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2& a = vs[j];
    const Point2& b = vs[i];
    Vec2 e = b - a;
    // cross(e, origin - a) + t * cross(e, velocity) = 0.
    double c0 = e.Cross(p.origin - a);
    double c1 = e.Cross(p.velocity);
    if (c1 == 0.0) continue;  // Motion parallel to the edge.
    double t = -c0 / c1;
    if (t > window.begin && t < window.end) events.push_back(t);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  // Boundary-touch memo for the event shared by piece i (as hi) and piece
  // i+1 (as lo): p.At(t) is the same double both times, so Contains is too.
  int prev_hi_contains = -1;  // -1 unknown, else 0/1 for events[i].
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    double lo = events[i];
    double hi = events[i + 1];
    bool inside = poly.Contains(p.At((lo + hi) / 2.0));
    if (inside) {
      if (!out->empty() && out->back().end == lo) {
        out->back().end = hi;
      } else {
        out->push_back({lo, hi});
      }
      prev_hi_contains = -1;
    } else {
      // An isolated boundary touch at an event instant still satisfies the
      // closed INSIDE predicate. When the last emitted interval already
      // covers `lo` the touch action is a no-op either way, so the test is
      // skipped — output is identical.
      if (out->empty() || out->back().end < lo) {
        bool c = prev_hi_contains >= 0 ? prev_hi_contains != 0
                                       : poly.Contains(p.At(lo));
        if (c) {
          if (!out->empty() && out->back().end >= lo) {
            out->back().end = std::max(out->back().end, lo);
          } else {
            out->push_back({lo, lo});
          }
        }
      }
      bool c_hi = poly.Contains(p.At(hi));
      prev_hi_contains = c_hi ? 1 : 0;
      if (c_hi) {
        if (!out->empty() && out->back().end >= hi) {
          out->back().end = std::max(out->back().end, hi);
        } else {
          out->push_back({hi, hi});
        }
      }
    }
  }
}

std::vector<RealInterval> InsidePolygon(const MovingPoint2& p,
                                        const Polygon& poly,
                                        RealInterval window) {
  std::vector<double> events;
  std::vector<RealInterval> out;
  InsidePolygonInto(p, poly, window, &events, &out);
  return out;
}

IntervalSet TicksWhere(const std::vector<RealInterval>& real_intervals,
                       double eps) {
  std::vector<Interval> ticks;
  for (const RealInterval& iv : real_intervals) {
    if (!iv.valid()) continue;
    double lo = std::ceil(iv.begin - eps);
    double hi = std::floor(iv.end + eps);
    if (lo > hi) continue;
    if (lo < static_cast<double>(kTickMin)) lo = static_cast<double>(kTickMin);
    if (hi > static_cast<double>(kTickMax)) hi = static_cast<double>(kTickMax);
    ticks.push_back(Interval(static_cast<Tick>(lo), static_cast<Tick>(hi)));
  }
  return IntervalSet::FromIntervals(std::move(ticks));
}

std::vector<RealInterval> IntersectReal(const std::vector<RealInterval>& a,
                                        const std::vector<RealInterval>& b) {
  std::vector<RealInterval> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    double lo = std::max(a[i].begin, b[j].begin);
    double hi = std::min(a[i].end, b[j].end);
    if (lo <= hi) out.push_back({lo, hi});
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

}  // namespace most
