#ifndef MOST_GEOMETRY_POINT_H_
#define MOST_GEOMETRY_POINT_H_

#include <cmath>
#include <ostream>

namespace most {

/// A point (or displacement vector) in the plane. The MOST paper models
/// object positions with X.POSITION / Y.POSITION dynamic attributes; the
/// geometry layer works on their instantaneous values.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2() = default;
  Point2(double px, double py) : x(px), y(py) {}

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }

  double Dot(const Point2& o) const { return x * o.x + y * o.y; }
  /// Z component of the 3-D cross product; > 0 iff o is counterclockwise
  /// from this.
  double Cross(const Point2& o) const { return x * o.y - y * o.x; }
  double NormSquared() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(NormSquared()); }

  double DistanceTo(const Point2& o) const { return (*this - o).Norm(); }
  double DistanceSquaredTo(const Point2& o) const {
    return (*this - o).NormSquared();
  }

  bool operator==(const Point2& o) const = default;
};

using Vec2 = Point2;

inline Point2 operator*(double s, const Point2& p) { return p * s; }

inline std::ostream& operator<<(std::ostream& os, const Point2& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// A point moving with constant velocity: position(t) = origin + velocity*t.
/// Time is measured in ticks relative to the moving point's reference time
/// (the motion vector's update time). This is the paper's "motion vector"
/// abstraction: the database stores (origin, velocity), not positions.
struct MovingPoint2 {
  Point2 origin;
  Vec2 velocity;

  MovingPoint2() = default;
  MovingPoint2(Point2 o, Vec2 v) : origin(o), velocity(v) {}

  Point2 At(double t) const { return origin + velocity * t; }

  bool IsStationary() const {
    return velocity.x == 0.0 && velocity.y == 0.0;
  }
};

}  // namespace most

#endif  // MOST_GEOMETRY_POINT_H_
