#ifndef MOST_GEOMETRY_POLYGON_H_
#define MOST_GEOMETRY_POLYGON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"

namespace most {

/// Axis-aligned bounding box.
struct BoundingBox {
  Point2 min{0, 0};
  Point2 max{0, 0};

  bool Contains(const Point2& p) const {
    return min.x <= p.x && p.x <= max.x && min.y <= p.y && p.y <= max.y;
  }
  bool Intersects(const BoundingBox& o) const {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y &&
           o.min.y <= max.y;
  }
};

/// A simple polygon given by its vertex ring (no closing duplicate vertex).
/// Spatial relations INSIDE/OUTSIDE of the paper's spatial object classes
/// are evaluated against polygons.
class Polygon {
 public:
  Polygon() = default;

  /// Validates and builds a polygon: at least 3 vertices, no two
  /// consecutive vertices equal, non-zero area.
  static Result<Polygon> Create(std::vector<Point2> vertices);

  /// Axis-aligned rectangle helper.
  static Polygon Rectangle(Point2 lo, Point2 hi);

  /// Regular n-gon approximation of a circle, useful for "within radius"
  /// regions drawn around a position (the paper's motel-query circle C).
  static Polygon RegularApprox(Point2 center, double radius, int sides = 16);

  const std::vector<Point2>& vertices() const { return vertices_; }
  size_t num_vertices() const { return vertices_.size(); }
  const BoundingBox& bounding_box() const { return bbox_; }

  /// Signed area (positive for counterclockwise vertex order).
  double SignedArea() const;

  /// True if p is strictly inside or on the boundary. Points on edges or
  /// vertices count as inside — the paper's INSIDE(o, P) is a closed
  /// predicate (an object on the boundary has not yet left P).
  bool Contains(const Point2& p) const;

  /// Euclidean distance from p to the polygon boundary (0 if on it).
  double BoundaryDistance(const Point2& p) const;

  std::string ToString() const;

 private:
  explicit Polygon(std::vector<Point2> vertices);

  std::vector<Point2> vertices_;
  BoundingBox bbox_;
};

/// Distance from point p to segment [a, b].
double PointSegmentDistance(const Point2& p, const Point2& a, const Point2& b);

}  // namespace most

#endif  // MOST_GEOMETRY_POLYGON_H_
