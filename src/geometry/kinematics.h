#ifndef MOST_GEOMETRY_KINEMATICS_H_
#define MOST_GEOMETRY_KINEMATICS_H_

#include <vector>

#include "common/interval.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace most {

/// A closed interval of real-valued time. The kinematic solvers work in
/// continuous time; results are converted to tick sets with TicksWhere.
struct RealInterval {
  double begin = 0.0;
  double end = 0.0;

  bool valid() const { return begin <= end; }
};

/// Solves |a(t) - b(t)| <= r over the window (a quadratic inequality in t).
/// Returns at most one interval for constant relative speed (distance is a
/// convex function of t).
std::vector<RealInterval> DistanceWithin(const MovingPoint2& a,
                                         const MovingPoint2& b, double r,
                                         RealInterval window);

/// Solves |a(t) - b(t)| >= r over the window (complement of DistanceWithin
/// inside the window; up to two intervals).
std::vector<RealInterval> DistanceAtLeast(const MovingPoint2& a,
                                          const MovingPoint2& b, double r,
                                          RealInterval window);

/// Squared distance between a(t) and b(t) at real time t.
double DistanceSquaredAt(const MovingPoint2& a, const MovingPoint2& b,
                         double t);

/// Solves INSIDE(p(t), poly) over the window. Event-based: boundary
/// crossing times are the roots of linear equations (one per edge); each
/// elementary inter-event interval is classified by a point-in-polygon test
/// at its midpoint. Isolated boundary touches are included (INSIDE is a
/// closed predicate).
std::vector<RealInterval> InsidePolygon(const MovingPoint2& p,
                                        const Polygon& poly,
                                        RealInterval window);

/// Allocation-free form of InsidePolygon for hot loops: appends the
/// solution intervals to *out (cleared first) and reuses *events as
/// scratch. Identical arithmetic to InsidePolygon — the two produce
/// bit-equal interval endpoints for the same inputs, which the SoA
/// evaluation layout relies on (docs/eval_internals.md).
void InsidePolygonInto(const MovingPoint2& p, const Polygon& poly,
                       RealInterval window, std::vector<double>* events,
                       std::vector<RealInterval>* out);

/// Converts continuous-time solution intervals to the set of integer ticks
/// they cover: tick t is in the result iff t in [begin - eps, end + eps]
/// for some input interval. The epsilon absorbs floating-point noise so a
/// predicate that holds exactly at an integer tick is not dropped.
IntervalSet TicksWhere(const std::vector<RealInterval>& real_intervals,
                       double eps = 1e-9);

/// Intersects two lists of disjoint sorted real intervals.
std::vector<RealInterval> IntersectReal(const std::vector<RealInterval>& a,
                                        const std::vector<RealInterval>& b);

}  // namespace most

#endif  // MOST_GEOMETRY_KINEMATICS_H_
