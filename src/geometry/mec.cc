#include "geometry/mec.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geometry/kinematics.h"

namespace most {

namespace {

Circle CircleFrom2(const Point2& a, const Point2& b) {
  Point2 center = (a + b) * 0.5;
  return {center, center.DistanceTo(a)};
}

Circle CircleFrom3(const Point2& a, const Point2& b, const Point2& c) {
  // Circumcircle via perpendicular bisector intersection.
  double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  if (d == 0.0) {
    // Collinear: fall back to the widest pair.
    Circle ab = CircleFrom2(a, b);
    Circle ac = CircleFrom2(a, c);
    Circle bc = CircleFrom2(b, c);
    Circle best = ab;
    if (ac.radius > best.radius) best = ac;
    if (bc.radius > best.radius) best = bc;
    return best;
  }
  double a2 = a.NormSquared(), b2 = b.NormSquared(), c2 = c.NormSquared();
  Point2 center{(a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
                (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
  return {center, center.DistanceTo(a)};
}

Circle TrivialCircle(const std::vector<Point2>& boundary) {
  switch (boundary.size()) {
    case 0:
      return {{0, 0}, 0.0};
    case 1:
      return {boundary[0], 0.0};
    case 2:
      return CircleFrom2(boundary[0], boundary[1]);
    default:
      return CircleFrom3(boundary[0], boundary[1], boundary[2]);
  }
}

// Iterative Welzl (move-to-front style): grow the circle whenever a point
// falls outside the current one.
Circle WelzlRecursive(std::vector<Point2>& pts, size_t n,
                      std::vector<Point2>& boundary) {
  if (n == 0 || boundary.size() == 3) return TrivialCircle(boundary);
  Circle c = WelzlRecursive(pts, n - 1, boundary);
  if (c.Contains(pts[n - 1])) return c;
  boundary.push_back(pts[n - 1]);
  c = WelzlRecursive(pts, n - 1, boundary);
  boundary.pop_back();
  return c;
}

}  // namespace

Circle MinimalEnclosingCircle(std::vector<Point2> points) {
  if (points.empty()) return {{0, 0}, 0.0};
  // Deterministic shuffle keeps the expected-linear behaviour reproducible.
  Rng rng(0x5eed1234abcdefULL + points.size());
  for (size_t i = points.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(points[i - 1], points[j]);
  }
  std::vector<Point2> boundary;
  return WelzlRecursive(points, points.size(), boundary);
}

IntervalSet WithinSphereTicks(const std::vector<MovingPoint2>& points,
                              double r, Interval window) {
  if (!window.valid() || r < 0.0) return IntervalSet();
  if (points.size() <= 1) return IntervalSet(window);
  RealInterval real_window{static_cast<double>(window.begin),
                           static_cast<double>(window.end)};
  // Necessary condition: every pair fits in a diameter-2r circle.
  std::vector<RealInterval> candidate = {real_window};
  for (size_t i = 0; i < points.size() && !candidate.empty(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      candidate = IntersectReal(
          candidate, DistanceWithin(points[i], points[j], 2.0 * r, real_window));
      if (candidate.empty()) break;
    }
  }
  if (points.size() == 2) {
    // For two points the pairwise condition is exact.
    return TicksWhere(candidate).Clamp(window);
  }
  // Confirm each surviving tick with the exact minimal enclosing circle.
  IntervalSet coarse = TicksWhere(candidate).Clamp(window);
  std::vector<Interval> confirmed;
  std::vector<Point2> sample(points.size());
  for (const Interval& iv : coarse.intervals()) {
    for (Tick t = iv.begin; t <= iv.end; ++t) {
      for (size_t i = 0; i < points.size(); ++i) {
        sample[i] = points[i].At(static_cast<double>(t));
      }
      if (MinimalEnclosingCircle(sample).radius <= r + 1e-9) {
        if (!confirmed.empty() && confirmed.back().end == t - 1) {
          confirmed.back().end = t;
        } else {
          confirmed.push_back(Interval(t, t));
        }
      }
    }
  }
  return IntervalSet::FromIntervals(std::move(confirmed));
}

}  // namespace most
