#include "common/arena.h"

namespace most {

void* BumpArena::AllocateSlow(size_t bytes, size_t align) {
  if (bytes > block_bytes_) {
    // Oversize: dedicated exactly-sized block, dropped at the next Reset.
    ++stats_.heap_fallbacks;
    ++stats_.lifetime_heap_fallbacks;
    oversize_.push_back(
        Block{std::make_unique<char[]>(bytes + align), bytes + align});
    stats_.bytes_reserved += bytes + align;
    char* base = oversize_.back().data.get();
    return reinterpret_cast<char*>(
        Align(reinterpret_cast<uintptr_t>(base), align));
  }
  // Advance to the next reusable block (allocating it if needed).
  if (current_ < blocks_.size()) ++current_;
  if (current_ >= blocks_.size()) {
    blocks_.push_back(
        Block{std::make_unique<char[]>(block_bytes_), block_bytes_});
    stats_.bytes_reserved += block_bytes_;
  }
  cursor_ = Align(size_t{0}, align) + bytes;
  return blocks_[current_].data.get() + Align(size_t{0}, align);
}

void BumpArena::Reset() {
  current_ = 0;
  cursor_ = 0;
  if (blocks_.empty()) {
    blocks_.push_back(
        Block{std::make_unique<char[]>(block_bytes_), block_bytes_});
    stats_.bytes_reserved += block_bytes_;
  }
  for (const Block& b : oversize_) stats_.bytes_reserved -= b.capacity;
  oversize_.clear();
  stats_.bytes_allocated = 0;
  stats_.heap_fallbacks = 0;
  stats_.block_count = blocks_.size();
}

}  // namespace most
