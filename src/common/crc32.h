#ifndef MOST_COMMON_CRC32_H_
#define MOST_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace most {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used by the WAL
/// for per-record framing. `seed` allows incremental computation:
/// Crc32(b, nb, Crc32(a, na)) == Crc32 of the concatenation.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace most

#endif  // MOST_COMMON_CRC32_H_
