#ifndef MOST_COMMON_INTERVAL_H_
#define MOST_COMMON_INTERVAL_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace most {

/// A closed interval of ticks [begin, end], begin <= end.
///
/// The FTL evaluation algorithm (paper appendix) represents, for every
/// subformula g and variable instantiation, the set of ticks at which g is
/// satisfied as a list of such intervals.
struct Interval {
  Tick begin = 0;
  Tick end = 0;

  Interval() = default;
  Interval(Tick b, Tick e) : begin(b), end(e) {}

  bool valid() const { return begin <= end; }
  Tick length() const { return end - begin + 1; }
  bool Contains(Tick t) const { return begin <= t && t <= end; }
  bool Overlaps(const Interval& o) const {
    return begin <= o.end && o.begin <= end;
  }
  /// Overlapping or touching with no gap: [1,3] and [4,6] are consecutive.
  /// The appendix calls two such intervals "consecutive" and requires
  /// normalized relations to contain none.
  bool OverlapsOrAdjacent(const Interval& o) const {
    return TickSaturatingAdd(begin, -1) <= o.end &&
           o.begin <= TickSaturatingAdd(end, 1);
  }

  /// The appendix's compatibility test: [l,u] is compatible with [m,n] iff
  /// m <= u+1 and n >= u — the two intervals overlap or [m,n] starts right
  /// after [l,u] ends, and [m,n] extends at least to u.
  bool CompatibleWith(const Interval& o) const {
    return o.begin <= TickSaturatingAdd(end, 1) && o.end >= end;
  }

  bool operator==(const Interval& o) const = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// A set of ticks stored as sorted, pairwise non-overlapping,
/// non-consecutive closed intervals (every gap between stored intervals is
/// at least one tick). This is exactly the normal form the paper's appendix
/// requires of the relations R_g before the Until chain merge.
///
/// All operations produce normalized results. Endpoint arithmetic saturates
/// at kTickMin/kTickMax, so "unbounded future" intervals ([t, kTickMax])
/// behave correctly under shifting and dilation.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Singleton set.
  explicit IntervalSet(Interval iv) {
    if (iv.valid()) intervals_.push_back(iv);
  }

  /// Normalizes an arbitrary collection of intervals (invalid ones are
  /// dropped; overlapping/consecutive ones are coalesced).
  static IntervalSet FromIntervals(std::vector<Interval> ivs);

  /// Same normalization for input already sorted by (begin, end) — skips
  /// the sort, so hot extraction loops can accumulate into a reusable
  /// scratch buffer and normalize once. Precondition checked only by the
  /// property tests: the result equals FromIntervals on the same input.
  static IntervalSet FromSortedIntervals(const Interval* ivs, size_t n);

  /// The set of all ticks, [kTickMin, kTickMax].
  static IntervalSet All() {
    return IntervalSet(Interval(kTickMin, kTickMax));
  }

  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool Contains(Tick t) const;

  /// First tick in the set at or after t, or kTickMax+... nothing: returns
  /// false if no member >= t exists.
  bool FirstAtOrAfter(Tick t, Tick* out) const;

  /// Smallest begin across intervals; precondition: !empty().
  Tick Min() const { return intervals_.front().begin; }
  /// Largest end across intervals; precondition: !empty().
  Tick Max() const { return intervals_.back().end; }

  /// Total number of ticks covered (saturating).
  Tick Cardinality() const;

  IntervalSet Union(const IntervalSet& o) const;
  IntervalSet Intersect(const IntervalSet& o) const;
  /// Ticks in this set but not in o.
  IntervalSet Difference(const IntervalSet& o) const;
  /// Ticks of `universe` not in this set.
  IntervalSet Complement(Interval universe) const;
  /// Intersection with a single interval.
  IntervalSet Clamp(Interval universe) const;

  /// Shifts every tick by d (saturating): t in result iff t-d in this.
  IntervalSet Shift(Tick d) const;

  /// Dilation to the left: each [m,n] becomes [m-c, n]. Result contains t
  /// iff some tick of this set lies within [t, t+c]. This implements the
  /// bounded operator `Eventually within c`.
  IntervalSet DilateLeft(Tick c) const;

  /// Erosion from the right: each [m,n] becomes [m, n-c] (dropped if
  /// empty). Result contains t iff this set contains all of [t, t+c].
  /// Implements `Always for c`.
  IntervalSet ErodeRight(Tick c) const;

  /// In-place fused transforms for the hot unary temporal operators: each
  /// is equivalent to the corresponding const chain (Shift(d).Clamp(u),
  /// DilateLeft(c).Clamp(u), ErodeRight(c).Clamp(u)) — the canonical
  /// normalized form is unique, so fusing transform + renormalize + clamp
  /// into one allocation-free pass yields a byte-identical set.
  void ShiftClampInPlace(Tick d, Interval universe);
  void DilateLeftClampInPlace(Tick c, Interval universe);
  void ErodeRightClampInPlace(Tick c, Interval universe);

  /// The Until merge from the paper's appendix. `this` is Sat(g2) — the
  /// ticks where the right operand holds; `g1` is Sat(g1). Returns the set
  /// of ticks t such that g2 holds at some t' >= t and g1 holds at every
  /// tick in [t, t'-1] — i.e. Sat(g1 Until g2). Equivalent to the paper's
  /// maximal-chain construction over compatible intervals; linear in the
  /// number of intervals of both sets.
  ///
  /// `bound` limits how far in the future the g2 witness may be: with
  /// bound = c this computes Sat(g1 until_within_c g2), the paper's
  /// bounded operator (the witness t' must satisfy t' - t <= c).
  IntervalSet UntilWith(const IntervalSet& g1, Tick bound = kTickMax) const;

  bool operator==(const IntervalSet& o) const = default;

  std::string ToString() const;

 private:
  // Invariant: sorted by begin; for consecutive entries a, b:
  // a.end + 1 < b.begin.
  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace most

#endif  // MOST_COMMON_INTERVAL_H_
