#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace most {

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutting_down_) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  // Shut down: degrade to inline execution rather than dropping the task.
  task();
}

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) {
      // Already shut down (or shutting down concurrently): nothing to join
      // from this call; the first caller joins.
      return;
    }
    shutting_down_ = true;
    cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t threads = pool != nullptr ? pool->thread_count() : 1;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked dynamic scheduling: helpers and the caller race on an atomic
  // next-chunk cursor. The chunk size targets several chunks per thread so
  // uneven per-index cost (some objects have many motion segments, some
  // few) rebalances dynamically, and is capped so a very large n cannot
  // degenerate into one oversized chunk per thread — with only
  // n / (threads * 4) a 100k-object extraction handed each worker one
  // ~6k-index chunk and the slowest straggler gated the whole batch
  // (docs/parallel_eval.md "Grain sizing").
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* fn = nullptr;
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  constexpr size_t kMaxChunk = 1024;
  shared->chunk =
      std::clamp<size_t>(n / (threads * 8), 1, kMaxChunk);
  shared->fn = &fn;

  auto drain = [](const std::shared_ptr<Shared>& s) {
    while (true) {
      size_t begin = s->next.fetch_add(s->chunk);
      if (begin >= s->n) return;
      size_t end = std::min(s->n, begin + s->chunk);
      for (size_t i = begin; i < end; ++i) (*s->fn)(i);
      size_t finished = s->done.fetch_add(end - begin) + (end - begin);
      if (finished == s->n) {
        std::unique_lock<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(threads - 1, (n + shared->chunk - 1) /
                                             shared->chunk);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([shared, drain] { drain(shared); });
  }
  drain(shared);
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done.load() == shared->n; });
}

}  // namespace most
