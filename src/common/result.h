#ifndef MOST_COMMON_RESULT_H_
#define MOST_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace most {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. The MOST analogue of absl::StatusOr / arrow::Result.
///
///   Result<Table*> r = catalog.GetTable("MOTELS");
///   if (!r.ok()) return r.status();
///   Table* t = r.value();
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_table;`
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::NotFound(...)`.
  /// Constructing a Result from an OK status is a programming error and
  /// aborts.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(rep_).ok()) {
      std::abort();  // A Result must hold a value or a real error.
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(rep_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(rep_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(rep_);
    return fallback;
  }

 private:
  std::variant<Status, T> rep_;
};

/// Evaluates `expr` (a Result<T>), propagating the error or binding the
/// value to `lhs`.
#define MOST_ASSIGN_OR_RETURN(lhs, expr)          \
  MOST_ASSIGN_OR_RETURN_IMPL_(                    \
      MOST_CONCAT_(_most_result_, __LINE__), lhs, expr)

#define MOST_CONCAT_INNER_(a, b) a##b
#define MOST_CONCAT_(a, b) MOST_CONCAT_INNER_(a, b)
#define MOST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

}  // namespace most

#endif  // MOST_COMMON_RESULT_H_
