#include "common/status.h"

namespace most {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDisconnected:
      return "Disconnected";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace most
