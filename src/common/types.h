#ifndef MOST_COMMON_TYPES_H_
#define MOST_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace most {

/// Discrete time. The MOST model assumes a global clock whose value
/// "increases by one in each clock tick" (paper, Section 2); all temporal
/// semantics are defined over ticks.
using Tick = int64_t;

/// Sentinels. kTickMax plays the role of "infinity" for unbounded future
/// intervals; arithmetic on interval endpoints saturates at these bounds.
inline constexpr Tick kTickMin = std::numeric_limits<Tick>::min() / 4;
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max() / 4;

/// Saturating addition on ticks, so that e.g. kTickMax + 5 stays kTickMax.
inline Tick TickSaturatingAdd(Tick a, Tick b) {
  if (a >= 0 && b > kTickMax - a) return kTickMax;
  if (a < 0 && b < kTickMin - a) return kTickMin;
  Tick s = a + b;
  if (s > kTickMax) return kTickMax;
  if (s < kTickMin) return kTickMin;
  return s;
}

/// Unique id of a database object (a row of an object class).
using ObjectId = uint64_t;
inline constexpr ObjectId kInvalidObjectId = ~ObjectId{0};

}  // namespace most

#endif  // MOST_COMMON_TYPES_H_
