#ifndef MOST_COMMON_ARENA_H_
#define MOST_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace most {

/// A bump allocator for per-evaluation scratch memory.
///
/// The FTL hot path builds and discards many short-lived buffers per
/// refresh (aligned-segment cuts, real-interval solver output, tick
/// interval runs, join key arrays). Allocating each from the global heap is
/// node-per-tuple churn; the arena hands out memory by bumping a cursor
/// through reusable blocks and releases everything at once with Reset().
///
/// Lifetime rule (docs/eval_internals.md): nothing allocated from an
/// evaluation's arena may escape that evaluation — results that outlive a
/// refresh (TemporalRelation, IntervalSet) are normal heap values copied
/// out of arena scratch before the arena is reset.
///
/// Not thread-safe: one arena belongs to the single thread driving an
/// evaluation. Pool workers use their own chunk-local scratch instead.
class BumpArena {
 public:
  struct Stats {
    size_t bytes_allocated = 0;   ///< Live bytes requested since last Reset.
    size_t bytes_reserved = 0;    ///< Sum of block capacities held.
    size_t block_count = 0;       ///< Blocks (normal + oversize) held.
    uint64_t heap_fallbacks = 0;  ///< Oversize requests since last Reset.
    uint64_t lifetime_bytes = 0;  ///< Cumulative requested bytes, all time.
    uint64_t lifetime_heap_fallbacks = 0;  ///< Cumulative oversize requests.
  };

  /// `block_bytes` is the capacity of each normal block. Requests larger
  /// than a block get a dedicated exactly-sized block (counted as a heap
  /// fallback — the arena still owns and reuses nothing about it beyond
  /// this Reset cycle).
  explicit BumpArena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Returns `bytes` of memory aligned to `align` (a power of two). Never
  /// returns null for bytes > 0; bytes == 0 returns a unique non-null
  /// pointer (cursor position).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    stats_.bytes_allocated += bytes;
    stats_.lifetime_bytes += bytes;
    size_t cursor = Align(cursor_, align);
    if (current_ < blocks_.size() && cursor + bytes <= block_bytes_) {
      cursor_ = cursor + bytes;
      return blocks_[current_].data.get() + cursor;
    }
    return AllocateSlow(bytes, align);
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Releases every allocation at once. Normal blocks are retained for
  /// reuse (steady-state refreshes stop touching malloc entirely);
  /// oversize blocks are returned to the heap.
  void Reset();

  Stats stats() const {
    Stats s = stats_;
    s.block_count = blocks_.size() + oversize_.size();
    return s;
  }

  size_t block_bytes() const { return block_bytes_; }

  static constexpr size_t kDefaultBlockBytes = 256u << 10;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity;
  };

  /// Out-of-line rest of Allocate: oversize requests and block advancement.
  void* AllocateSlow(size_t bytes, size_t align);

  template <typename U>
  static U Align(U value, size_t align) {
    return (value + static_cast<U>(align - 1)) & ~static_cast<U>(align - 1);
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;    ///< Reusable fixed-size blocks.
  std::vector<Block> oversize_;  ///< One-shot oversize blocks (fallbacks).
  size_t current_ = 0;           ///< Index of the block being bumped.
  size_t cursor_ = 0;            ///< Bump offset within blocks_[current_].
  Stats stats_;
};

/// Minimal std::allocator adaptor over a BumpArena. Deallocation is a
/// no-op; the container's memory is reclaimed when the arena resets, so
/// containers using this allocator must not outlive the arena cycle
/// (the "nothing escapes a refresh" rule). A default-constructed /
/// null-arena allocator falls back to the global heap, so arena-backed
/// container types remain usable as ordinary values in tests.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(BumpArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return arena_->AllocateArray<T>(n);
  }
  void deallocate(T* p, size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  BumpArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  BumpArena* arena_ = nullptr;
};

/// Scratch vector type used throughout the SoA evaluation path.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace most

#endif  // MOST_COMMON_ARENA_H_
