#ifndef MOST_COMMON_STATUS_H_
#define MOST_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace most {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kCorruption,
  kTypeError,
  kParseError,
  kDisconnected,
  /// A resource budget (deadline, arena bytes, rows, queue slots) ran out
  /// mid-operation. Distinguished from kInternal so callers can degrade
  /// gracefully — serve a partial/stale answer — instead of failing the
  /// request (docs/robustness.md).
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. MOST does not use C++ exceptions;
/// every fallible operation returns a Status (or a Result<T>, see result.h).
///
/// Typical use:
///   Status s = table.Insert(tuple);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Disconnected(std::string msg) {
    return Status(StatusCode::kDisconnected, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define MOST_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::most::Status _most_status = (expr);         \
    if (!_most_status.ok()) return _most_status;  \
  } while (0)

}  // namespace most

#endif  // MOST_COMMON_STATUS_H_
