#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace most {

namespace {

// "name(arg)" -> name, arg. Returns false on mismatched parentheses.
bool SplitArg(const std::string& in, std::string* name, int64_t* arg) {
  size_t open = in.find('(');
  if (open == std::string::npos) {
    *name = in;
    *arg = -1;
    return true;
  }
  if (in.back() != ')') return false;
  *name = in.substr(0, open);
  std::string digits = in.substr(open + 1, in.size() - open - 2);
  if (digits.empty()) return false;
  char* end = nullptr;
  *arg = std::strtoll(digits.c_str(), &end, 10);
  return end == digits.c_str() + digits.size() && *arg >= 0;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("MOST_FAILPOINTS")) {
    Status s = ArmFromEnv(env);
    if (!s.ok()) {
      std::fprintf(stderr, "MOST_FAILPOINTS: %s\n", s.ToString().c_str());
    }
  }
}

Status FailpointRegistry::Arm(const std::string& site,
                              const std::string& spec) {
  // Split the trigger budget ("error*3") off the action.
  std::string action_spec = spec;
  int64_t remaining = -1;
  size_t star = spec.rfind('*');
  if (star != std::string::npos) {
    action_spec = spec.substr(0, star);
    std::string count = spec.substr(star + 1);
    char* end = nullptr;
    remaining = std::strtoll(count.c_str(), &end, 10);
    if (count.empty() || end != count.c_str() + count.size() ||
        remaining <= 0) {
      return Status::InvalidArgument("bad failpoint trigger count: " + spec);
    }
  }
  std::string name;
  int64_t arg = -1;
  if (!SplitArg(action_spec, &name, &arg)) {
    return Status::InvalidArgument("bad failpoint spec: " + spec);
  }

  Failpoint fp;
  fp.remaining = remaining;
  fp.arg = arg;
  if (name == "off") {
    Disarm(site);
    return Status::OK();
  } else if (name == "noop") {
    fp.action = Failpoint::Action::kNoop;
  } else if (name == "error") {
    fp.action = Failpoint::Action::kError;
  } else if (name == "abort") {
    fp.action = Failpoint::Action::kAbort;
  } else if (name == "sleep") {
    if (arg < 0) return Status::InvalidArgument("sleep needs (ms): " + spec);
    fp.action = Failpoint::Action::kSleep;
  } else if (name == "truncate") {
    fp.action = Failpoint::Action::kTruncate;
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + spec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  bool existed = points_.count(site) > 0;
  points_[site] = fp;
  if (!existed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

Status FailpointRegistry::ArmFromEnv(const char* value) {
  if (value == nullptr) value = std::getenv("MOST_FAILPOINTS");
  if (value == nullptr) return Status::OK();
  Status first_error = Status::OK();
  std::string list(value);
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t sep = list.find_first_of(";,", pos);
    if (sep == std::string::npos) sep = list.size();
    std::string entry = list.substr(pos, sep - pos);
    pos = sep + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    Status s = (eq == std::string::npos)
                   ? Status::InvalidArgument("missing '=' in: " + entry)
                   : Arm(entry.substr(0, eq), entry.substr(eq + 1));
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

bool FailpointRegistry::Take(const char* site, Failpoint* out) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(site);
  if (it == points_.end()) return false;
  *out = it->second;
  ++triggered_[site];
  ++total_triggered_;
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    points_.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

Status FailpointRegistry::Check(const char* site) {
  Failpoint fp;
  if (!Take(site, &fp)) return Status::OK();
  switch (fp.action) {
    case Failpoint::Action::kNoop:
      return Status::OK();
    case Failpoint::Action::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(fp.arg));
      return Status::OK();
    case Failpoint::Action::kAbort:
      std::abort();
    case Failpoint::Action::kError:
    case Failpoint::Action::kTruncate:  // Non-write site: plain error.
      return Status::Internal(std::string("failpoint ") + site);
  }
  return Status::OK();
}

FailpointRegistry::WriteFault FailpointRegistry::CheckWrite(const char* site,
                                                            size_t size) {
  Failpoint fp;
  if (!Take(site, &fp)) return {size, Status::OK()};
  switch (fp.action) {
    case Failpoint::Action::kNoop:
      return {size, Status::OK()};
    case Failpoint::Action::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(fp.arg));
      return {size, Status::OK()};
    case Failpoint::Action::kAbort:
      std::abort();
    case Failpoint::Action::kError:
      // The write never happened at all.
      return {0, Status::Internal(std::string("failpoint ") + site)};
    case Failpoint::Action::kTruncate: {
      size_t keep = fp.arg >= 0 ? static_cast<size_t>(fp.arg) : size / 2;
      if (keep > size) keep = size;
      return {keep, Status::Internal(std::string("failpoint ") + site +
                                     " (torn write)")};
    }
  }
  return {size, Status::OK()};
}

uint64_t FailpointRegistry::triggered(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = triggered_.find(site);
  return it == triggered_.end() ? 0 : it->second;
}

uint64_t FailpointRegistry::total_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_triggered_;
}

std::map<std::string, uint64_t> FailpointRegistry::TriggeredCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return triggered_;
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [site, fp] : points_) out.push_back(site);
  return out;
}

std::map<std::string, std::string> FailpointRegistry::ArmedSpecs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [site, fp] : points_) {
    std::string spec;
    switch (fp.action) {
      case Failpoint::Action::kNoop:
        spec = "noop";
        break;
      case Failpoint::Action::kError:
        spec = "error";
        break;
      case Failpoint::Action::kAbort:
        spec = "abort";
        break;
      case Failpoint::Action::kSleep:
        spec = "sleep(" + std::to_string(fp.arg) + ")";
        break;
      case Failpoint::Action::kTruncate:
        spec = "truncate";
        if (fp.arg >= 0) spec += "(" + std::to_string(fp.arg) + ")";
        break;
    }
    if (fp.remaining >= 0) spec += "*" + std::to_string(fp.remaining);
    out[site] = spec;
  }
  return out;
}

}  // namespace most
