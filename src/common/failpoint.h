#ifndef MOST_COMMON_FAILPOINT_H_
#define MOST_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace most {

/// Process-wide fault-injection registry. Code marks failure sites with
/// MOST_FAILPOINT("area/op"); tests (or the MOST_FAILPOINTS environment
/// variable) arm a site with a spec describing what the site should do
/// when reached:
///
///   off           disarm
///   noop          count the hit, do nothing (probes; CI loudness checks)
///   error         return Status::Internal("failpoint <site>")
///   sleep(MS)     inject MS milliseconds of latency, then succeed
///   abort         std::abort() the process (real crash testing)
///   truncate      write sites only: write a prefix of the buffer (half by
///   truncate(N)   default, N bytes if given), then report failure — a
///                 torn write, as left behind by a crash mid-append
///
/// Any spec may carry a trigger budget: "error*3" fires three times and
/// then disarms itself. Un-armed sites cost one relaxed atomic load.
///
/// The environment form is a comma- or semicolon-separated list:
///   MOST_FAILPOINTS="wal/append/write=truncate*1;wal/sync=error"
/// parsed once when the registry is first used.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Arms `site` with `spec` (see class comment). InvalidArgument on a
  /// malformed spec.
  Status Arm(const std::string& site, const std::string& spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Parses a MOST_FAILPOINTS-style list. Null means "read the real
  /// environment variable". Unknown specs are reported, valid entries in
  /// the same list are still armed.
  Status ArmFromEnv(const char* value = nullptr);

  /// Evaluates a failpoint site: returns the injected error if the site is
  /// armed to fail, OK otherwise. Sleeps for sleep specs; aborts for abort
  /// specs.
  Status Check(const char* site);

  /// Write-site variant: how many bytes of a `size`-byte buffer the caller
  /// should actually write, plus the status to report afterwards. An armed
  /// `truncate` produces a genuine torn write: a non-empty prefix reaches
  /// the file and the operation still reports failure.
  struct WriteFault {
    size_t write_bytes;
    Status status;
  };
  WriteFault CheckWrite(const char* site, size_t size);

  /// True when at least one site is armed. Lock-free; callers with
  /// per-message site-name construction costs (the network simulator)
  /// use it to skip the whole failpoint path when nothing is armed.
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Times the site fired (acted on a hit) since process start. Counts
  /// survive Disarm so harnesses can assert injections actually happened.
  uint64_t triggered(const std::string& site) const;
  uint64_t total_triggered() const;

  /// Per-site trigger counts, one consistent snapshot. The observability
  /// layer pulls this at metrics-collection time (failpoint_fired_total).
  std::map<std::string, uint64_t> TriggeredCounts() const;

  std::vector<std::string> ArmedSites() const;

  /// Armed sites with their current spec reconstructed in Arm() syntax
  /// (e.g. "error*3", "sleep(10)", "truncate(4)") — remaining budgets, not
  /// the originally armed ones. Powers most_shell's `failpoints` command.
  std::map<std::string, std::string> ArmedSpecs() const;

 private:
  struct Failpoint {
    enum class Action { kNoop, kError, kAbort, kSleep, kTruncate };
    Action action = Action::kNoop;
    int64_t remaining = -1;  ///< Trigger budget; -1 = unlimited.
    int64_t arg = -1;        ///< sleep ms / truncate byte count.
  };

  FailpointRegistry();

  /// Fetches and consumes one trigger of `site`, or false if not armed.
  bool Take(const char* site, Failpoint* out);

  mutable std::mutex mu_;
  std::map<std::string, Failpoint> points_;
  std::map<std::string, uint64_t> triggered_;
  uint64_t total_triggered_ = 0;
  std::atomic<size_t> armed_count_{0};
};

/// Returns the injected error from the enclosing function if `site` is
/// armed to fail. Usable in functions returning Status or Result<T>.
#define MOST_FAILPOINT(site)                                       \
  do {                                                             \
    ::most::Status _most_fp_status =                               \
        ::most::FailpointRegistry::Instance().Check(site);         \
    if (!_most_fp_status.ok()) return _most_fp_status;             \
  } while (0)

}  // namespace most

#endif  // MOST_COMMON_FAILPOINT_H_
