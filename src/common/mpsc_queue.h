#ifndef MOST_COMMON_MPSC_QUEUE_H_
#define MOST_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace most {

/// An unbounded lock-free multi-producer / single-consumer queue (the
/// Vyukov intrusive MPSC shape, non-intrusive here: each Push allocates
/// one node). This is the shard handoff queue of the sharded engine: any
/// thread may Push an update destined for a shard; exactly one drain
/// thread per shard consumes (docs/sharding.md).
///
/// Push is wait-free apart from the allocation: a relaxed node setup, one
/// acquire-release exchange on the head, one release store linking the
/// predecessor. PopAll is single-consumer only — two threads must never
/// drain the same queue concurrently (the engine guarantees one drain
/// thread per shard per tick).
///
/// Producer-order guarantee: items from one producer are consumed in the
/// order that producer pushed them; items from different producers are
/// interleaved in an arbitrary (but consistent) order. The sharded engine
/// never relies on cross-producer order — updates are commutative per
/// object because the last write per (object, attribute) wins within a
/// tick and objects are written by at most one producer in the tests that
/// assert determinism.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Enqueues one item. Safe from any number of threads concurrently.
  void Push(T value) {
    Node* node = new Node(std::move(value));
    // Publish the node as the new head, then link the old head to it. A
    // consumer racing into the (head swapped, link pending) window sees
    // next == nullptr on the old head and stops early — the item is not
    // lost, just not visible until the producer's release store lands.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    depth_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drains every item visible at the time of the call into `out`
  /// (appended in consumption order). Single consumer only. Returns the
  /// number of items drained.
  size_t PopAll(std::vector<T>* out) {
    size_t drained = 0;
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    while (next != nullptr) {
      out->push_back(std::move(next->value));
      delete tail;
      tail = next;
      next = tail->next.load(std::memory_order_acquire);
      ++drained;
    }
    tail_ = tail;
    depth_.fetch_sub(drained, std::memory_order_relaxed);
    return drained;
  }

  /// Approximate number of queued items (relaxed; for metrics/backpressure
  /// gauges, never for synchronization).
  size_t ApproxDepth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  /// Producers exchange head_; the consumer owns tail_ (a stub node whose
  /// `next` chain holds the queued items).
  std::atomic<Node*> head_;
  Node* tail_;
  std::atomic<size_t> depth_{0};
};

}  // namespace most

#endif  // MOST_COMMON_MPSC_QUEUE_H_
