#ifndef MOST_COMMON_LOGGING_H_
#define MOST_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace most {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define MOST_LOG(level)                                                   \
  if (::most::LogLevel::k##level < ::most::GetLogLevel())                 \
    ;                                                                     \
  else                                                                    \
    ::most::internal_logging::LogMessage(::most::LogLevel::k##level,      \
                                         __FILE__, __LINE__)              \
        .stream()

/// Internal-invariant check; aborts with a message on failure. Active in
/// all build modes (database code: silent corruption is worse than a
/// crash).
#define MOST_CHECK(cond)                                                  \
  while (!(cond))                                                         \
  ::most::internal_logging::LogMessage(::most::LogLevel::kFatal,          \
                                       __FILE__, __LINE__)                \
      .stream()                                                           \
      << "Check failed: " #cond " "

#define MOST_DCHECK(cond) MOST_CHECK(cond)

}  // namespace most

#endif  // MOST_COMMON_LOGGING_H_
