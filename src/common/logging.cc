#include "common/logging.h"

namespace most {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace most
