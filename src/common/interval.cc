#include "common/interval.h"

#include <algorithm>
#include <sstream>

namespace most {

std::string Interval::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  os << "[";
  if (iv.begin <= kTickMin) {
    os << "-inf";
  } else {
    os << iv.begin;
  }
  os << ", ";
  if (iv.end >= kTickMax) {
    os << "+inf";
  } else {
    os << iv.end;
  }
  os << "]";
  return os;
}

IntervalSet IntervalSet::FromIntervals(std::vector<Interval> ivs) {
  IntervalSet out;
  std::erase_if(ivs, [](const Interval& iv) { return !iv.valid(); });
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  for (const Interval& iv : ivs) {
    if (!out.intervals_.empty() &&
        out.intervals_.back().OverlapsOrAdjacent(iv)) {
      out.intervals_.back().end = std::max(out.intervals_.back().end, iv.end);
    } else {
      out.intervals_.push_back(iv);
    }
  }
  return out;
}

IntervalSet IntervalSet::FromSortedIntervals(const Interval* ivs, size_t n) {
  IntervalSet out;
  out.intervals_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Interval& iv = ivs[i];
    if (!iv.valid()) continue;
    if (!out.intervals_.empty() &&
        out.intervals_.back().OverlapsOrAdjacent(iv)) {
      out.intervals_.back().end = std::max(out.intervals_.back().end, iv.end);
    } else {
      out.intervals_.push_back(iv);
    }
  }
  return out;
}

bool IntervalSet::Contains(Tick t) const {
  // First interval with begin > t; the candidate is its predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Tick v, const Interval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

bool IntervalSet::FirstAtOrAfter(Tick t, Tick* out) const {
  for (const Interval& iv : intervals_) {
    if (iv.end < t) continue;
    *out = std::max(iv.begin, t);
    return true;
  }
  return false;
}

Tick IntervalSet::Cardinality() const {
  Tick total = 0;
  for (const Interval& iv : intervals_) {
    total = TickSaturatingAdd(total, iv.length());
  }
  return total;
}

IntervalSet IntervalSet::Union(const IntervalSet& o) const {
  // Both operands are normalized (sorted, gaps >= 1 tick), so instead of
  // concat + sort + renormalize (the old O((m+n) log(m+n)) path) a single
  // linear merge with inline coalescing yields the same canonical form.
  if (intervals_.empty()) return o;
  if (o.intervals_.empty()) return *this;
  IntervalSet out;
  out.intervals_.reserve(intervals_.size() + o.intervals_.size());
  size_t i = 0, j = 0;
  auto push = [&out](const Interval& iv) {
    if (!out.intervals_.empty() &&
        out.intervals_.back().OverlapsOrAdjacent(iv)) {
      out.intervals_.back().end = std::max(out.intervals_.back().end, iv.end);
    } else {
      out.intervals_.push_back(iv);
    }
  };
  while (i < intervals_.size() || j < o.intervals_.size()) {
    bool take_a =
        j >= o.intervals_.size() ||
        (i < intervals_.size() &&
         (intervals_[i].begin < o.intervals_[j].begin ||
          (intervals_[i].begin == o.intervals_[j].begin &&
           intervals_[i].end < o.intervals_[j].end)));
    push(take_a ? intervals_[i++] : o.intervals_[j++]);
  }
  return out;
}

namespace {

// First index k >= from with v[k].end >= target, found by exponential probe
// + binary search. In a normalized set ends strictly increase, so this is a
// valid search key; galloping makes skewed intersections (one dense run
// against a few long intervals) sublinear in the skipped run.
size_t GallopFirstEndAtLeast(const std::vector<Interval>& v, size_t from,
                             Tick target) {
  size_t n = v.size();
  if (from >= n || v[from].end >= target) return from;
  size_t step = 1;
  size_t prev = from;
  size_t cur = from + step;
  while (cur < n && v[cur].end < target) {
    prev = cur;
    step <<= 1;
    cur = from + step;
  }
  size_t hi = std::min(cur + 1, n);
  auto it = std::lower_bound(
      v.begin() + static_cast<ptrdiff_t>(prev + 1),
      v.begin() + static_cast<ptrdiff_t>(hi), target,
      [](const Interval& iv, Tick t) { return iv.end < t; });
  return static_cast<size_t>(it - v.begin());
}

}  // namespace

IntervalSet IntervalSet::Intersect(const IntervalSet& o) const {
  IntervalSet out;
  const std::vector<Interval>& a_ivs = intervals_;
  const std::vector<Interval>& b_ivs = o.intervals_;
  size_t i = 0, j = 0;
  while (i < a_ivs.size() && j < b_ivs.size()) {
    const Interval& a = a_ivs[i];
    const Interval& b = b_ivs[j];
    if (a.end < b.begin) {
      i = GallopFirstEndAtLeast(a_ivs, i + 1, b.begin);
      continue;
    }
    if (b.end < a.begin) {
      j = GallopFirstEndAtLeast(b_ivs, j + 1, a.begin);
      continue;
    }
    out.intervals_.push_back(
        Interval(std::max(a.begin, b.begin), std::min(a.end, b.end)));
    // Advance whichever interval ends first.
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::Difference(const IntervalSet& o) const {
  return Intersect(o.Complement(Interval(kTickMin, kTickMax)));
}

IntervalSet IntervalSet::Complement(Interval universe) const {
  IntervalSet out;
  if (!universe.valid()) return out;
  Tick cursor = universe.begin;
  for (const Interval& iv : intervals_) {
    if (iv.end < universe.begin) continue;
    if (iv.begin > universe.end) break;
    if (iv.begin > cursor) {
      out.intervals_.push_back(Interval(cursor, iv.begin - 1));
    }
    cursor = std::max(cursor, TickSaturatingAdd(iv.end, 1));
    if (cursor > universe.end) return out;
  }
  if (cursor <= universe.end) {
    out.intervals_.push_back(Interval(cursor, universe.end));
  }
  return out;
}

IntervalSet IntervalSet::Clamp(Interval universe) const {
  return Intersect(IntervalSet(universe));
}

IntervalSet IntervalSet::Shift(Tick d) const {
  IntervalSet out;
  for (const Interval& iv : intervals_) {
    Interval shifted(TickSaturatingAdd(iv.begin, d),
                     TickSaturatingAdd(iv.end, d));
    if (shifted.valid()) out.intervals_.push_back(shifted);
  }
  // Saturation can make intervals touch; renormalize.
  return FromIntervals(std::move(out.intervals_));
}

IntervalSet IntervalSet::DilateLeft(Tick c) const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    out.push_back(Interval(TickSaturatingAdd(iv.begin, -c), iv.end));
  }
  return FromIntervals(std::move(out));
}

IntervalSet IntervalSet::ErodeRight(Tick c) const {
  std::vector<Interval> out;
  for (const Interval& iv : intervals_) {
    Interval eroded(iv.begin, TickSaturatingAdd(iv.end, -c));
    if (eroded.valid()) out.push_back(eroded);
  }
  return FromIntervals(std::move(out));
}

namespace {

/// Shared tail of the in-place transforms: clamps [b, e] to `universe` and
/// appends it at write position `w` of `ivs`, coalescing with the previous
/// kept interval exactly like the normalizing constructors do. The
/// transforms below all preserve sortedness-by-begin, so a single merging
/// pass reproduces the canonical form FromIntervals would produce.
inline void ClampAppendInPlace(std::vector<Interval>* ivs, size_t* w, Tick b,
                               Tick e, Interval universe) {
  if (e < universe.begin || b > universe.end) return;
  b = std::max(b, universe.begin);
  e = std::min(e, universe.end);
  if (*w > 0) {
    Interval& prev = (*ivs)[*w - 1];
    if (prev.OverlapsOrAdjacent(Interval(b, e))) {
      prev.end = std::max(prev.end, e);
      return;
    }
  }
  (*ivs)[(*w)++] = Interval(b, e);
}

}  // namespace

void IntervalSet::ShiftClampInPlace(Tick d, Interval universe) {
  if (!universe.valid()) {
    intervals_.clear();
    return;
  }
  size_t w = 0;
  for (const Interval iv : intervals_) {
    Tick b = TickSaturatingAdd(iv.begin, d);
    Tick e = TickSaturatingAdd(iv.end, d);
    if (b > e) continue;
    ClampAppendInPlace(&intervals_, &w, b, e, universe);
  }
  intervals_.resize(w);
}

void IntervalSet::DilateLeftClampInPlace(Tick c, Interval universe) {
  if (!universe.valid()) {
    intervals_.clear();
    return;
  }
  size_t w = 0;
  for (const Interval iv : intervals_) {
    ClampAppendInPlace(&intervals_, &w, TickSaturatingAdd(iv.begin, -c),
                       iv.end, universe);
  }
  intervals_.resize(w);
}

void IntervalSet::ErodeRightClampInPlace(Tick c, Interval universe) {
  if (!universe.valid()) {
    intervals_.clear();
    return;
  }
  size_t w = 0;
  for (const Interval iv : intervals_) {
    Tick e = TickSaturatingAdd(iv.end, -c);
    if (e < iv.begin) continue;
    ClampAppendInPlace(&intervals_, &w, iv.begin, e, universe);
  }
  intervals_.resize(w);
}

IntervalSet IntervalSet::UntilWith(const IntervalSet& g1, Tick bound) const {
  // Sat(g1 Until g2), `this` = Sat(g2). For each interval [m, n] of g2:
  // satisfaction extends left from m through any g1 interval covering m-1.
  // Coalescing the extended intervals reproduces the appendix's maximal
  // chains: if [m_i, n_i] extended-left reaches into the extension of the
  // previous pair, FromIntervals merges them into one chain interval.
  //
  // With a finite `bound`, a tick t can only use a g2 witness at most
  // `bound` ticks away, so the leftward extension below interval [m, n] is
  // additionally floored at m - bound. (Ticks inside [m, n] witness
  // themselves, at distance 0.)
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  size_t j = 0;  // Cursor into g1's intervals (both sets are sorted).
  for (const Interval& g2iv : intervals_) {
    Tick start = g2iv.begin;
    Tick prev = TickSaturatingAdd(g2iv.begin, -1);
    while (j < g1.intervals_.size() && g1.intervals_[j].end < prev) ++j;
    if (j < g1.intervals_.size()) {
      const Interval& g1iv = g1.intervals_[j];
      if (g1iv.begin <= prev && prev <= g1iv.end) {
        start = std::min(start, g1iv.begin);
      }
    }
    start = std::max(start, TickSaturatingAdd(g2iv.begin, -bound));
    out.push_back(Interval(start, g2iv.end));
  }
  return FromIntervals(std::move(out));
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << "{";
  bool first = true;
  for (const Interval& iv : s.intervals()) {
    if (!first) os << ", ";
    first = false;
    os << iv;
  }
  os << "}";
  return os;
}

}  // namespace most
