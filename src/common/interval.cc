#include "common/interval.h"

#include <algorithm>
#include <sstream>

namespace most {

std::string Interval::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  os << "[";
  if (iv.begin <= kTickMin) {
    os << "-inf";
  } else {
    os << iv.begin;
  }
  os << ", ";
  if (iv.end >= kTickMax) {
    os << "+inf";
  } else {
    os << iv.end;
  }
  os << "]";
  return os;
}

IntervalSet IntervalSet::FromIntervals(std::vector<Interval> ivs) {
  IntervalSet out;
  std::erase_if(ivs, [](const Interval& iv) { return !iv.valid(); });
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  for (const Interval& iv : ivs) {
    if (!out.intervals_.empty() &&
        out.intervals_.back().OverlapsOrAdjacent(iv)) {
      out.intervals_.back().end = std::max(out.intervals_.back().end, iv.end);
    } else {
      out.intervals_.push_back(iv);
    }
  }
  return out;
}

bool IntervalSet::Contains(Tick t) const {
  // First interval with begin > t; the candidate is its predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Tick v, const Interval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

bool IntervalSet::FirstAtOrAfter(Tick t, Tick* out) const {
  for (const Interval& iv : intervals_) {
    if (iv.end < t) continue;
    *out = std::max(iv.begin, t);
    return true;
  }
  return false;
}

Tick IntervalSet::Cardinality() const {
  Tick total = 0;
  for (const Interval& iv : intervals_) {
    total = TickSaturatingAdd(total, iv.length());
  }
  return total;
}

IntervalSet IntervalSet::Union(const IntervalSet& o) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), o.intervals_.begin(), o.intervals_.end());
  return FromIntervals(std::move(all));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& o) const {
  IntervalSet out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < o.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = o.intervals_[j];
    Tick lo = std::max(a.begin, b.begin);
    Tick hi = std::min(a.end, b.end);
    if (lo <= hi) out.intervals_.push_back(Interval(lo, hi));
    // Advance whichever interval ends first.
    if (a.end < b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::Difference(const IntervalSet& o) const {
  return Intersect(o.Complement(Interval(kTickMin, kTickMax)));
}

IntervalSet IntervalSet::Complement(Interval universe) const {
  IntervalSet out;
  if (!universe.valid()) return out;
  Tick cursor = universe.begin;
  for (const Interval& iv : intervals_) {
    if (iv.end < universe.begin) continue;
    if (iv.begin > universe.end) break;
    if (iv.begin > cursor) {
      out.intervals_.push_back(Interval(cursor, iv.begin - 1));
    }
    cursor = std::max(cursor, TickSaturatingAdd(iv.end, 1));
    if (cursor > universe.end) return out;
  }
  if (cursor <= universe.end) {
    out.intervals_.push_back(Interval(cursor, universe.end));
  }
  return out;
}

IntervalSet IntervalSet::Clamp(Interval universe) const {
  return Intersect(IntervalSet(universe));
}

IntervalSet IntervalSet::Shift(Tick d) const {
  IntervalSet out;
  for (const Interval& iv : intervals_) {
    Interval shifted(TickSaturatingAdd(iv.begin, d),
                     TickSaturatingAdd(iv.end, d));
    if (shifted.valid()) out.intervals_.push_back(shifted);
  }
  // Saturation can make intervals touch; renormalize.
  return FromIntervals(std::move(out.intervals_));
}

IntervalSet IntervalSet::DilateLeft(Tick c) const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    out.push_back(Interval(TickSaturatingAdd(iv.begin, -c), iv.end));
  }
  return FromIntervals(std::move(out));
}

IntervalSet IntervalSet::ErodeRight(Tick c) const {
  std::vector<Interval> out;
  for (const Interval& iv : intervals_) {
    Interval eroded(iv.begin, TickSaturatingAdd(iv.end, -c));
    if (eroded.valid()) out.push_back(eroded);
  }
  return FromIntervals(std::move(out));
}

IntervalSet IntervalSet::UntilWith(const IntervalSet& g1, Tick bound) const {
  // Sat(g1 Until g2), `this` = Sat(g2). For each interval [m, n] of g2:
  // satisfaction extends left from m through any g1 interval covering m-1.
  // Coalescing the extended intervals reproduces the appendix's maximal
  // chains: if [m_i, n_i] extended-left reaches into the extension of the
  // previous pair, FromIntervals merges them into one chain interval.
  //
  // With a finite `bound`, a tick t can only use a g2 witness at most
  // `bound` ticks away, so the leftward extension below interval [m, n] is
  // additionally floored at m - bound. (Ticks inside [m, n] witness
  // themselves, at distance 0.)
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  size_t j = 0;  // Cursor into g1's intervals (both sets are sorted).
  for (const Interval& g2iv : intervals_) {
    Tick start = g2iv.begin;
    Tick prev = TickSaturatingAdd(g2iv.begin, -1);
    while (j < g1.intervals_.size() && g1.intervals_[j].end < prev) ++j;
    if (j < g1.intervals_.size()) {
      const Interval& g1iv = g1.intervals_[j];
      if (g1iv.begin <= prev && prev <= g1iv.end) {
        start = std::min(start, g1iv.begin);
      }
    }
    start = std::max(start, TickSaturatingAdd(g2iv.begin, -bound));
    out.push_back(Interval(start, g2iv.end));
  }
  return FromIntervals(std::move(out));
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << "{";
  bool first = true;
  for (const Interval& iv : s.intervals()) {
    if (!first) os << ", ";
    first = false;
    os << iv;
  }
  os << "}";
  return os;
}

}  // namespace most
