#ifndef MOST_COMMON_RNG_H_
#define MOST_COMMON_RNG_H_

#include <cstdint>

namespace most {

/// Deterministic pseudo-random generator (xoshiro256**). Every workload
/// generator and benchmark takes an explicit seed so experiments are
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return UniformDouble(0.0, 1.0) < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace most

#endif  // MOST_COMMON_RNG_H_
