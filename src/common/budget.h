#ifndef MOST_COMMON_BUDGET_H_
#define MOST_COMMON_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace most {

/// Why an answer was degraded instead of computed in full. Shed answers
/// carry one of these alongside the Confidence::kStale tag so callers can
/// tell "stale because an object went silent" from "stale because the
/// engine ran out of budget" (docs/robustness.md).
enum class DegradeReason {
  kNone = 0,
  kDeadline,      ///< The per-evaluation wall-clock deadline expired.
  kMemory,        ///< Arena bytes exceeded Budget::max_arena_bytes.
  kRows,          ///< A materialized relation exceeded Budget::max_rows.
  kQueue,         ///< Refresh shed by admission control (bounded queue).
  kBackpressure,  ///< A bounded channel shed the send (peer unreachable).
  kStorage,       ///< WAL/checkpoint path degraded (ENOSPC/EIO).
};

constexpr std::string_view DegradeReasonToString(DegradeReason r) {
  switch (r) {
    case DegradeReason::kNone:
      return "none";
    case DegradeReason::kDeadline:
      return "deadline";
    case DegradeReason::kMemory:
      return "memory";
    case DegradeReason::kRows:
      return "rows";
    case DegradeReason::kQueue:
      return "queue";
    case DegradeReason::kBackpressure:
      return "backpressure";
    case DegradeReason::kStorage:
      return "storage";
  }
  return "unknown";
}

/// Backpressure state a bounded queue reports to its producers. The
/// reliable channel grades each peer's send buffer with this; a network
/// server front-end would grade its ingestion queue the same way.
enum class Backpressure {
  kOpen,      ///< Under the throttle threshold: send freely.
  kThrottle,  ///< Above the threshold: producers should slow down.
  kShed,      ///< At capacity: the send was (or would be) dropped.
};

constexpr std::string_view BackpressureToString(Backpressure b) {
  switch (b) {
    case Backpressure::kOpen:
      return "open";
    case Backpressure::kThrottle:
      return "throttle";
    case Backpressure::kShed:
      return "shed";
  }
  return "unknown";
}

/// Per-evaluation resource budget. Zero in any field means "unlimited" —
/// the default-constructed Budget imposes nothing, and an evaluator armed
/// with it behaves byte-identically to one that never heard of budgets
/// (the differential guarantee the existing suites pin down).
struct Budget {
  /// Wall-clock allowance for one evaluation, in nanoseconds.
  uint64_t deadline_ns = 0;
  /// Cap on bump-arena bytes drawn by one evaluation.
  size_t max_arena_bytes = 0;
  /// Cap on rows materialized by any one relation of the evaluation.
  size_t max_rows = 0;

  bool Unlimited() const {
    return deadline_ns == 0 && max_arena_bytes == 0 && max_rows == 0;
  }
};

/// Cooperative budget checkpoints. Armed once per evaluation; Check() is
/// called at coarse-grained safe points (per class-snapshot build, per
/// join batch, per subformula) and reports the first limit tripped. An
/// unarmed gate's Check() is a single branch, which is what keeps the
/// unlimited configuration byte- and nearly cycle-identical to the
/// pre-budget code.
class BudgetGate {
 public:
  BudgetGate() = default;

  void Arm(const Budget& budget) {
    budget_ = budget;
    active_ = !budget.Unlimited();
    tripped_ = DegradeReason::kNone;
    if (budget_.deadline_ns > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(budget_.deadline_ns);
    }
  }

  bool active() const { return active_; }
  DegradeReason tripped() const { return tripped_; }

  /// Checkpoint: returns kNone while within budget, otherwise the reason.
  /// Once tripped the gate stays tripped for the rest of the evaluation.
  DegradeReason Check(size_t arena_bytes, size_t rows) {
    if (!active_) return DegradeReason::kNone;
    if (tripped_ != DegradeReason::kNone) return tripped_;
    if (budget_.max_arena_bytes > 0 && arena_bytes > budget_.max_arena_bytes) {
      return tripped_ = DegradeReason::kMemory;
    }
    if (budget_.max_rows > 0 && rows > budget_.max_rows) {
      return tripped_ = DegradeReason::kRows;
    }
    if (budget_.deadline_ns > 0 &&
        std::chrono::steady_clock::now() > deadline_) {
      return tripped_ = DegradeReason::kDeadline;
    }
    return DegradeReason::kNone;
  }

 private:
  Budget budget_;
  bool active_ = false;
  DegradeReason tripped_ = DegradeReason::kNone;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace most

#endif  // MOST_COMMON_BUDGET_H_
