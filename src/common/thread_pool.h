#ifndef MOST_COMMON_THREAD_POOL_H_
#define MOST_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace most {

/// A fixed pool of worker threads draining one FIFO task queue. No work
/// stealing, no priorities: the parallel FTL evaluator only needs flat
/// fan-out over independent objects, and a single locked deque keeps the
/// shutdown and exception semantics easy to reason about.
///
/// Tasks must not throw; MOST code reports failures through Status, and a
/// task that needs to surface an error should capture a slot to write it
/// to (ParallelFor does exactly that). A throwing task terminates the
/// process, same as an exception escaping std::thread.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers. 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. After Shutdown() the task runs inline on the calling
  /// thread instead (so late submitters still make progress).
  void Submit(std::function<void()> task);

  /// Drains the queue and joins all workers. Idempotent; also called by the
  /// destructor. Tasks already queued are executed before workers exit.
  void Shutdown();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

/// Runs fn(i) for every i in [0, n), partitioned into chunks executed by
/// `pool`'s workers *and* the calling thread. Blocks until every index has
/// been processed. With pool == nullptr (or n small) the loop runs serially
/// on the caller, which is the thread_count == 1 "exact legacy behavior"
/// path: the iteration order is then strictly 0..n-1.
///
/// Safe to call from inside a pool task (nested parallelism): the caller
/// thread always participates in chunk execution, so progress never depends
/// on a free worker. fn must not throw.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace most

#endif  // MOST_COMMON_THREAD_POOL_H_
