#ifndef MOST_INDEX_RTREE_H_
#define MOST_INDEX_RTREE_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace most {

/// Axis-aligned box in D dimensions (closed on all sides).
template <int D>
struct RTreeBox {
  std::array<double, D> min;
  std::array<double, D> max;

  static RTreeBox Empty() {
    RTreeBox b;
    b.min.fill(std::numeric_limits<double>::infinity());
    b.max.fill(-std::numeric_limits<double>::infinity());
    return b;
  }

  bool Intersects(const RTreeBox& o) const {
    for (int d = 0; d < D; ++d) {
      if (min[d] > o.max[d] || o.min[d] > max[d]) return false;
    }
    return true;
  }

  bool ContainsBox(const RTreeBox& o) const {
    for (int d = 0; d < D; ++d) {
      if (o.min[d] < min[d] || o.max[d] > max[d]) return false;
    }
    return true;
  }

  void ExpandToInclude(const RTreeBox& o) {
    for (int d = 0; d < D; ++d) {
      min[d] = std::min(min[d], o.min[d]);
      max[d] = std::max(max[d], o.max[d]);
    }
  }

  double Volume() const {
    double v = 1.0;
    for (int d = 0; d < D; ++d) v *= std::max(0.0, max[d] - min[d]);
    return v;
  }

  /// Volume increase if this box grew to include o.
  double Enlargement(const RTreeBox& o) const {
    RTreeBox grown = *this;
    grown.ExpandToInclude(o);
    return grown.Volume() - Volume();
  }

  bool operator==(const RTreeBox& o) const {
    return min == o.min && max == o.max;
  }
};

/// Guttman R-tree with quadratic split (the "spatial access method" the
/// paper cites from Samet's survey [9] as the substrate for indexing
/// dynamic-attribute trajectories). Stores (box, payload) entries; payloads
/// are opaque 64-bit ids. Supports deletion with tree condensation so
/// motion-vector updates can remove an object's old trajectory segments.
template <int D, typename Payload = uint64_t>
class RTree {
 public:
  using Box = RTreeBox<D>;

  explicit RTree(size_t max_entries = 16)
      : max_entries_(std::max<size_t>(4, max_entries)),
        min_entries_(std::max<size_t>(2, max_entries_ * 2 / 5)) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Insert(const Box& box, Payload payload) {
    InsertEntry(Entry{box, payload, nullptr}, /*target_level=*/0);
    ++size_;
  }

  /// Replaces the tree's contents with the given entries, packed with the
  /// Sort-Tile-Recursive algorithm. Much faster than repeated Insert and
  /// produces better-clustered nodes; used by the periodic horizon
  /// rebuilds of the trajectory/motion indexes.
  void BulkLoad(std::vector<std::pair<Box, Payload>> entries) {
    size_ = entries.size();
    if (entries.empty()) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
      return;
    }
    // Build the leaf level.
    std::vector<std::unique_ptr<Node>> level;
    {
      std::vector<Entry> leaf_entries;
      leaf_entries.reserve(entries.size());
      for (auto& [box, payload] : entries) {
        leaf_entries.push_back(Entry{box, std::move(payload), nullptr});
      }
      level = PackLevel(std::move(leaf_entries), /*leaf=*/true);
    }
    // Stack levels until one root remains.
    while (level.size() > 1) {
      std::vector<Entry> parent_entries;
      parent_entries.reserve(level.size());
      for (auto& node : level) {
        Box cover = node->Cover();
        parent_entries.push_back(Entry{cover, Payload{}, std::move(node)});
      }
      level = PackLevel(std::move(parent_entries), /*leaf=*/false);
    }
    root_ = std::move(level.front());
  }

  /// Removes one (box, payload) entry; returns false if not present.
  bool Remove(const Box& box, Payload payload) {
    std::vector<Entry> orphans;
    bool found = RemoveRec(root_.get(), box, payload, &orphans);
    if (!found) return false;
    --size_;
    // Root with a single internal child shrinks.
    while (!root_->leaf && root_->children.size() == 1) {
      auto child = std::move(root_->children.front().child);
      root_ = std::move(child);
    }
    if (!root_->leaf && root_->children.empty()) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
    }
    // Reinsert entries orphaned by condensation at leaf level. Index-based
    // loop: CollectLeafEntries may append while we iterate.
    for (size_t i = 0; i < orphans.size(); ++i) {
      if (orphans[i].child == nullptr) {
        InsertEntry(std::move(orphans[i]), 0);
      } else {
        auto subtree = std::move(orphans[i].child);
        CollectLeafEntries(subtree.get(), &orphans);
      }
    }
    return true;
  }

  /// Visits payloads of all entries whose boxes intersect `query`.
  void Search(const Box& query,
              const std::function<void(const Box&, const Payload&)>& fn) const {
    SearchRec(root_.get(), query, fn);
  }

  /// Number of nodes visited by the last Search (diagnostics for the
  /// logarithmic-access claim).
  mutable size_t last_search_nodes = 0;

  int height() const {
    int h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children.front().child.get();
      ++h;
    }
    return h;
  }

 private:
  struct Node;
  struct Entry {
    Box box;
    Payload payload{};              // Valid for leaf entries.
    std::unique_ptr<Node> child;    // Valid for internal entries.
  };
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Entry> children;

    Box Cover() const {
      Box b = Box::Empty();
      for (const Entry& e : children) b.ExpandToInclude(e.box);
      return b;
    }
  };

  void SearchRec(const Node* node, const Box& query,
                 const std::function<void(const Box&, const Payload&)>& fn)
      const {
    ++last_search_nodes;
    for (const Entry& e : node->children) {
      if (!e.box.Intersects(query)) continue;
      if (node->leaf) {
        fn(e.box, e.payload);
      } else {
        SearchRec(e.child.get(), query, fn);
      }
    }
  }

  void CollectLeafEntries(Node* node, std::vector<Entry>* out) {
    for (Entry& e : node->children) {
      if (node->leaf) {
        out->push_back(std::move(e));
      } else {
        CollectLeafEntries(e.child.get(), out);
      }
    }
    node->children.clear();
  }

  // Inserts an entry at the given level (0 = leaf). Splits propagate up.
  void InsertEntry(Entry entry, int target_level) {
    std::vector<Node*> path;
    Node* node = root_.get();
    int level_from_leaf = Height(node) - 1;
    while (level_from_leaf > target_level) {
      path.push_back(node);
      node = ChooseSubtree(node, entry.box);
      --level_from_leaf;
    }
    node->children.push_back(std::move(entry));
    Node* overflowed = node->children.size() > max_entries_ ? node : nullptr;
    // Split bottom-up along the descent path.
    while (overflowed != nullptr) {
      std::unique_ptr<Node> sibling = QuadraticSplit(overflowed);
      if (path.empty()) {
        // Split the root: grow a new root above.
        auto new_root = std::make_unique<Node>(/*leaf=*/false);
        auto old_root = std::move(root_);
        Box left_cover = old_root->Cover();
        Box right_cover = sibling->Cover();
        new_root->children.push_back(
            Entry{left_cover, Payload{}, std::move(old_root)});
        new_root->children.push_back(
            Entry{right_cover, Payload{}, std::move(sibling)});
        root_ = std::move(new_root);
        overflowed = nullptr;
      } else {
        Node* parent = path.back();
        path.pop_back();
        // Refresh the split node's cover and add the sibling.
        for (Entry& e : parent->children) {
          if (e.child.get() == overflowed) {
            e.box = overflowed->Cover();
            break;
          }
        }
        Box cover = sibling->Cover();
        parent->children.push_back(Entry{cover, Payload{}, std::move(sibling)});
        overflowed = parent->children.size() > max_entries_ ? parent : nullptr;
        if (overflowed == nullptr) {
          // Tighten covers up the remaining path.
          TightenPath(path, parent);
        }
      }
    }
    if (overflowed == nullptr) {
      TightenPath(path, node);
    }
  }

  void TightenPath(const std::vector<Node*>& path, Node* changed) {
    // Walk the recorded path from deepest to root updating covers.
    Node* child = changed;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      for (Entry& e : (*it)->children) {
        if (e.child.get() == child) {
          e.box = child->Cover();
          break;
        }
      }
      child = *it;
    }
  }

  // Sort-Tile-Recursive packing of one tree level: sort by x-center, cut
  // into vertical slabs, sort each slab by y-center, fill nodes of
  // max_entries_ each.
  std::vector<std::unique_ptr<Node>> PackLevel(std::vector<Entry> entries,
                                               bool leaf) {
    auto center = [](const Entry& e, int dim) {
      return (e.box.min[dim] + e.box.max[dim]) / 2.0;
    };
    const size_t per_node = max_entries_;
    const size_t node_count = (entries.size() + per_node - 1) / per_node;
    const size_t slab_count = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    const size_t per_slab =
        ((node_count + slab_count - 1) / slab_count) * per_node;

    std::sort(entries.begin(), entries.end(),
              [&](const Entry& a, const Entry& b) {
                return center(a, 0) < center(b, 0);
              });
    std::vector<std::unique_ptr<Node>> out;
    out.reserve(node_count);
    for (size_t slab_begin = 0; slab_begin < entries.size();
         slab_begin += per_slab) {
      size_t slab_end = std::min(entries.size(), slab_begin + per_slab);
      std::sort(entries.begin() + slab_begin, entries.begin() + slab_end,
                [&](const Entry& a, const Entry& b) {
                  return center(a, D > 1 ? 1 : 0) <
                         center(b, D > 1 ? 1 : 0);
                });
      for (size_t i = slab_begin; i < slab_end; i += per_node) {
        auto node = std::make_unique<Node>(leaf);
        size_t end = std::min(slab_end, i + per_node);
        for (size_t j = i; j < end; ++j) {
          node->children.push_back(std::move(entries[j]));
        }
        out.push_back(std::move(node));
      }
    }
    return out;
  }

  static int Height(const Node* node) {
    int h = 1;
    while (!node->leaf) {
      node = node->children.front().child.get();
      ++h;
    }
    return h;
  }

  Node* ChooseSubtree(Node* node, const Box& box) {
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    Entry* best_entry = nullptr;
    for (Entry& e : node->children) {
      double enlargement = e.box.Enlargement(box);
      double volume = e.box.Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best_enlargement = enlargement;
        best_volume = volume;
        best = e.child.get();
        best_entry = &e;
      }
    }
    MOST_CHECK(best != nullptr);
    best_entry->box.ExpandToInclude(box);
    return best;
  }

  // Guttman quadratic split: picks the pair wasting the most area as
  // seeds, then assigns remaining entries by enlargement preference.
  std::unique_ptr<Node> QuadraticSplit(Node* node) {
    std::vector<Entry> entries = std::move(node->children);
    node->children.clear();
    auto sibling = std::make_unique<Node>(node->leaf);

    // Seed selection.
    size_t seed_a = 0, seed_b = 1;
    double worst = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        Box combined = entries[i].box;
        combined.ExpandToInclude(entries[j].box);
        double waste = combined.Volume() - entries[i].box.Volume() -
                       entries[j].box.Volume();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    Box cover_a = entries[seed_a].box;
    Box cover_b = entries[seed_b].box;
    node->children.push_back(std::move(entries[seed_a]));
    sibling->children.push_back(std::move(entries[seed_b]));

    for (size_t i = 0; i < entries.size(); ++i) {
      if (i == seed_a || i == seed_b) continue;
      Entry& e = entries[i];
      size_t remaining = 0;
      for (size_t j = i; j < entries.size(); ++j) {
        if (j != seed_a && j != seed_b) ++remaining;
      }
      // Force assignment if one group must take all remaining entries to
      // reach the minimum fill.
      if (node->children.size() + remaining <= min_entries_) {
        cover_a.ExpandToInclude(e.box);
        node->children.push_back(std::move(e));
        continue;
      }
      if (sibling->children.size() + remaining <= min_entries_) {
        cover_b.ExpandToInclude(e.box);
        sibling->children.push_back(std::move(e));
        continue;
      }
      double grow_a = cover_a.Enlargement(e.box);
      double grow_b = cover_b.Enlargement(e.box);
      bool to_a = grow_a < grow_b ||
                  (grow_a == grow_b && cover_a.Volume() <= cover_b.Volume());
      if (to_a) {
        cover_a.ExpandToInclude(e.box);
        node->children.push_back(std::move(e));
      } else {
        cover_b.ExpandToInclude(e.box);
        sibling->children.push_back(std::move(e));
      }
    }
    return sibling;
  }

  // Depth-first removal; condenses underfull nodes into `orphans`.
  bool RemoveRec(Node* node, const Box& box, const Payload& payload,
                 std::vector<Entry>* orphans) {
    if (node->leaf) {
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (node->children[i].payload == payload &&
            node->children[i].box == box) {
          node->children.erase(node->children.begin() + i);
          return true;
        }
      }
      return false;
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      Entry& e = node->children[i];
      if (!e.box.Intersects(box)) continue;
      if (RemoveRec(e.child.get(), box, payload, orphans)) {
        if (e.child->children.size() < min_entries_) {
          // Condense: orphan the whole child for reinsertion.
          Node* child = e.child.get();
          if (child->leaf) {
            for (Entry& ce : child->children) {
              orphans->push_back(std::move(ce));
            }
          } else {
            CollectLeafEntries(child, orphans);
          }
          node->children.erase(node->children.begin() + i);
        } else {
          e.box = e.child->Cover();
        }
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
};

}  // namespace most

#endif  // MOST_INDEX_RTREE_H_
