#ifndef MOST_INDEX_MOTION_INDEX_H_
#define MOST_INDEX_MOTION_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "geometry/polygon.h"
#include "index/rtree.h"
#include "temporal/dynamic_attribute.h"

namespace most {

/// The 3-dimensional variant of Section 4's scheme for objects moving in
/// the plane: "the above scheme can be mimicked using an index of
/// 3-dimensional space, with the third dimension being, obviously, time."
/// Each object's (X.POSITION, Y.POSITION) trajectory over the epoch is cut
/// into linear pieces and stored as (t, x, y) boxes.
class MotionIndex {
 public:
  struct Options {
    Tick horizon = 1024;
    size_t rtree_fanout = 16;
    /// Time-slab width for segment chopping (see TrajectoryIndex).
    Tick time_slab = 64;
  };

  explicit MotionIndex(Tick epoch_start)
      : MotionIndex(epoch_start, Options()) {}
  MotionIndex(Tick epoch_start, Options options);

  Tick epoch_start() const { return epoch_start_; }
  Tick epoch_end() const { return epoch_end_; }
  size_t num_objects() const { return objects_.size(); }
  size_t num_segments() const { return rtree_.size(); }

  void Upsert(ObjectId id, const DynamicAttribute& x,
              const DynamicAttribute& y);
  void Remove(ObjectId id);
  bool NeedsRebuild(Tick now) const { return now >= epoch_end_; }
  void Rebuild(Tick new_epoch_start);

  /// Candidate objects possibly inside `region` at time t.
  std::vector<ObjectId> QueryRegionCandidates(const BoundingBox& region,
                                              Tick t) const;

  /// Candidate objects possibly inside `region` at any time in `window`.
  std::vector<ObjectId> QueryRegionCandidates(const BoundingBox& region,
                                              Interval window) const;

  /// Exact instantaneous answer: candidates whose true position at t lies
  /// in `region`.
  std::vector<ObjectId> QueryRegionExact(const BoundingBox& region,
                                         Tick t) const;

  /// Candidate objects that may come within `radius` of the probe
  /// trajectory (x, y) at some tick of `window`: the probe is cut into the
  /// index's time-slab segments, each segment box dilated by `radius` in
  /// x/y, and the union of the R-tree hits returned (sorted, deduplicated).
  /// Conservative — an object absent from the result is farther than
  /// `radius` from the probe throughout `window` — which is what lets the
  /// FTL evaluator's delta passes pair restricted objects with index-pruned
  /// join partners instead of scanning the class. `window` must lie within
  /// the epoch.
  std::vector<ObjectId> QueryNearTrajectory(const DynamicAttribute& x,
                                            const DynamicAttribute& y,
                                            double radius,
                                            Interval window) const;

  size_t last_search_nodes() const { return rtree_.last_search_nodes; }

 private:
  using Box = RTreeBox<3>;  // Dimensions: time, x, y.

  struct ObjectState {
    DynamicAttribute x;
    DynamicAttribute y;
    std::vector<Box> boxes;
  };

  std::vector<Box> ComputeBoxes(const ObjectState& state) const;
  void InsertSegments(ObjectId id, ObjectState* state);
  void RemoveSegments(ObjectId id, ObjectState* state);

  Options options_;
  Tick epoch_start_;
  Tick epoch_end_;
  RTree<3, ObjectId> rtree_;
  std::unordered_map<ObjectId, ObjectState> objects_;
};

}  // namespace most

#endif  // MOST_INDEX_MOTION_INDEX_H_
