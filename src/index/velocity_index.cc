#include "index/velocity_index.h"

#include <algorithm>
#include <cmath>

namespace most {

VelocityBucketIndex::VelocityBucketIndex(Tick reference_time, Options options)
    : options_(options), reference_time_(reference_time) {}

int64_t VelocityBucketIndex::BucketOf(double slope) const {
  return static_cast<int64_t>(std::floor(slope / options_.bucket_width));
}

void VelocityBucketIndex::Upsert(ObjectId id, const DynamicAttribute& attr) {
  Remove(id);
  objects_.emplace(id, attr);
  double slope =
      attr.function().SlopeAt(static_cast<double>(reference_time_) -
                              static_cast<double>(attr.updatetime()));
  Bucket& bucket = buckets_[BucketOf(slope)];
  if (bucket.tree == nullptr) bucket.tree = std::make_unique<BPlusTree>();
  bucket.tree->Insert(Value(attr.ValueAt(reference_time_)), id);
}

void VelocityBucketIndex::Remove(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  const DynamicAttribute& attr = it->second;
  double slope =
      attr.function().SlopeAt(static_cast<double>(reference_time_) -
                              static_cast<double>(attr.updatetime()));
  auto bucket_it = buckets_.find(BucketOf(slope));
  if (bucket_it != buckets_.end() && bucket_it->second.tree != nullptr) {
    bucket_it->second.tree->Erase(Value(attr.ValueAt(reference_time_)), id);
  }
  objects_.erase(it);
}

void VelocityBucketIndex::Rebuild(Tick new_reference_time) {
  reference_time_ = new_reference_time;
  buckets_.clear();
  std::unordered_map<ObjectId, DynamicAttribute> snapshot;
  snapshot.swap(objects_);
  for (auto& [id, attr] : snapshot) {
    Upsert(id, attr);
  }
}

std::vector<ObjectId> VelocityBucketIndex::QueryCandidates(double lo,
                                                           double hi,
                                                           Tick t) const {
  last_entries_probed_ = 0;
  double dt = static_cast<double>(t - reference_time_);
  std::vector<ObjectId> out;
  for (const auto& [bucket_id, bucket] : buckets_) {
    if (bucket.tree == nullptr || bucket.tree->empty()) continue;
    double s_min = static_cast<double>(bucket_id) * options_.bucket_width;
    double s_max = s_min + options_.bucket_width;
    // value(t) = value(t_ref) + slope * dt in [lo, hi]
    //   =>  value(t_ref) in [lo, hi] expanded by the slope envelope.
    double probe_lo, probe_hi;
    if (dt >= 0) {
      probe_lo = lo - s_max * dt;
      probe_hi = hi - s_min * dt;
    } else {
      probe_lo = lo - s_min * dt;
      probe_hi = hi - s_max * dt;
    }
    bucket.tree->ScanRange(Value(probe_lo), true, Value(probe_hi), true,
                           [&](const Value&, RowId rid) {
                             ++last_entries_probed_;
                             out.push_back(rid);
                           });
  }
  return out;
}

std::vector<ObjectId> VelocityBucketIndex::QueryExact(double lo, double hi,
                                                      Tick t) const {
  std::vector<ObjectId> out;
  for (ObjectId id : QueryCandidates(lo, hi, t)) {
    double v = objects_.at(id).ValueAt(t);
    if (lo <= v && v <= hi) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace most
