#include "index/trajectory_index.h"

#include <algorithm>

#include "temporal/range_query.h"

namespace most {

TrajectoryIndex::TrajectoryIndex(Tick epoch_start, Options options)
    : options_(options),
      epoch_start_(epoch_start),
      epoch_end_(TickSaturatingAdd(epoch_start, options.horizon)),
      rtree_(options.rtree_fanout) {}

std::vector<TrajectoryIndex::Box> TrajectoryIndex::ComputeBoxes(
    const DynamicAttribute& attr) const {
  std::vector<Box> boxes;
  Interval epoch(epoch_start_, epoch_end_ - 1);
  const Tick slab = std::max<Tick>(1, options_.time_slab);
  for (const auto& piece : attr.LinearPieces(epoch)) {
    // Chop the linear piece into time slabs so each rectangle is tight
    // around the function line.
    for (Tick lo = piece.ticks.begin; lo <= piece.ticks.end; lo += slab) {
      Tick hi = std::min(piece.ticks.end, lo + slab - 1);
      double t0 = static_cast<double>(lo);
      double t1 = static_cast<double>(hi);
      double v0 = piece.value_at_begin +
                  piece.slope * static_cast<double>(lo - piece.ticks.begin);
      double v1 = v0 + piece.slope * (t1 - t0);
      Box box;
      box.min = {t0, std::min(v0, v1)};
      box.max = {t1, std::max(v0, v1)};
      boxes.push_back(box);
    }
  }
  return boxes;
}

void TrajectoryIndex::InsertSegments(ObjectId id, ObjectState* state) {
  state->boxes = ComputeBoxes(state->attr);
  for (const Box& box : state->boxes) {
    rtree_.Insert(box, id);
  }
}

void TrajectoryIndex::RemoveSegments(ObjectId id, ObjectState* state) {
  for (const Box& box : state->boxes) {
    rtree_.Remove(box, id);
  }
  state->boxes.clear();
}

void TrajectoryIndex::Upsert(ObjectId id, const DynamicAttribute& attr) {
  ObjectState& state = objects_[id];
  RemoveSegments(id, &state);
  state.attr = attr;
  InsertSegments(id, &state);
}

void TrajectoryIndex::Remove(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  RemoveSegments(id, &it->second);
  objects_.erase(it);
}

void TrajectoryIndex::Rebuild(Tick new_epoch_start) {
  epoch_start_ = new_epoch_start;
  epoch_end_ = TickSaturatingAdd(new_epoch_start, options_.horizon);
  // Bulk-load the new epoch (STR packing): far faster than re-inserting
  // and better clustered.
  std::vector<std::pair<Box, ObjectId>> all;
  for (auto& [id, state] : objects_) {
    state.boxes = ComputeBoxes(state.attr);
    for (const Box& box : state.boxes) {
      all.emplace_back(box, id);
    }
  }
  rtree_ = RTree<2, ObjectId>(options_.rtree_fanout);
  rtree_.BulkLoad(std::move(all));
}

std::vector<ObjectId> TrajectoryIndex::QueryCandidates(double lo, double hi,
                                                       Tick t) const {
  rtree_.last_search_nodes = 0;
  Box query;
  double td = static_cast<double>(t);
  query.min = {td, lo};
  query.max = {td, hi};
  std::vector<ObjectId> out;
  rtree_.Search(query, [&](const Box&, const ObjectId& id) {
    out.push_back(id);
  });
  // A trajectory can contribute several segments intersecting the query.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ObjectId> TrajectoryIndex::QueryExact(double lo, double hi,
                                                  Tick t) const {
  std::vector<ObjectId> out;
  for (ObjectId id : QueryCandidates(lo, hi, t)) {
    const ObjectState& state = objects_.at(id);
    double v = state.attr.ValueAt(t);
    if (lo <= v && v <= hi) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<ObjectId, IntervalSet>> TrajectoryIndex::QueryIntervals(
    double lo, double hi, Interval window) const {
  rtree_.last_search_nodes = 0;
  Box query;
  query.min = {static_cast<double>(window.begin), lo};
  query.max = {static_cast<double>(window.end), hi};
  std::vector<ObjectId> candidates;
  rtree_.Search(query, [&](const Box&, const ObjectId& id) {
    candidates.push_back(id);
  });
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<std::pair<ObjectId, IntervalSet>> out;
  for (ObjectId id : candidates) {
    const ObjectState& state = objects_.at(id);
    IntervalSet when = TicksWhereInRange(state.attr, lo, hi, window);
    if (!when.empty()) out.emplace_back(id, std::move(when));
  }
  return out;
}

}  // namespace most
