#ifndef MOST_INDEX_TRAJECTORY_INDEX_H_
#define MOST_INDEX_TRAJECTORY_INDEX_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "index/rtree.h"
#include "temporal/dynamic_attribute.h"

namespace most {

/// Section 4's index for one dynamic attribute A.
///
/// Every object's A-trajectory (value as a function of time) is plotted in
/// the (t, A) plane and its linear segments are inserted, as bounding
/// rectangles, into a spatial index (an R-tree). The time dimension is
/// bounded by a horizon [epoch_start, epoch_start + T): "in order to use
/// this scheme we have to consider the time dimension starting at 0 and
/// ending at some time-point T. Consequently, the index needs to be
/// reconstructed every T time units."
///
/// Queries like "retrieve objects with 4 < A < 5 currently" search the
/// rectangle [lo, hi] x [t - eps, t + eps] and verify each candidate
/// against its exact attribute; the index is never updated by the mere
/// passage of time — only by explicit motion-vector updates.
class TrajectoryIndex {
 public:
  struct Options {
    Tick horizon = 1024;        ///< T: epoch length in ticks.
    size_t rtree_fanout = 16;
    /// Trajectory lines are chopped into time slabs of this many ticks
    /// before indexing, so each stored rectangle hugs the line (the paper
    /// stores ids in "the rectangles crossed by the A.function of o").
    /// Without slabbing, one rectangle per linear piece spans the whole
    /// epoch and its dead space makes the index no better than a scan —
    /// see bench_index's slab ablation.
    Tick time_slab = 64;
  };

  explicit TrajectoryIndex(Tick epoch_start)
      : TrajectoryIndex(epoch_start, Options()) {}
  TrajectoryIndex(Tick epoch_start, Options options);

  Tick epoch_start() const { return epoch_start_; }
  Tick epoch_end() const { return epoch_end_; }
  size_t num_objects() const { return objects_.size(); }
  size_t num_segments() const { return rtree_.size(); }

  /// Registers or replaces an object's attribute. On replacement the old
  /// trajectory's segments are removed and the new ones inserted (the
  /// paper's update procedure for a motion-vector change).
  void Upsert(ObjectId id, const DynamicAttribute& attr);

  void Remove(ObjectId id);

  /// True once `now` has passed the epoch end: queries beyond the horizon
  /// would miss trajectories, so the caller must Rebuild first.
  bool NeedsRebuild(Tick now) const { return now >= epoch_end_; }

  /// Re-plots every registered attribute into a fresh epoch starting at
  /// `new_epoch_start`.
  void Rebuild(Tick new_epoch_start);

  /// Candidate ids whose indexed segments intersect value range [lo, hi]
  /// at time t (superset of the true answer).
  std::vector<ObjectId> QueryCandidates(double lo, double hi, Tick t) const;

  /// Exact instantaneous answer: candidates verified against the stored
  /// attribute ("for each object id in these records we check whether
  /// currently 4 < A < 5"). Bounds are inclusive.
  std::vector<ObjectId> QueryExact(double lo, double hi, Tick t) const;

  /// Continuous-query support: for each object whose trajectory meets
  /// [lo, hi] during `window`, the exact tick intervals where it does.
  /// This materializes the paper's Answer(CQ) for a range predicate.
  std::vector<std::pair<ObjectId, IntervalSet>> QueryIntervals(
      double lo, double hi, Interval window) const;

  /// R-tree nodes visited by the last Query* call (logarithmic-access
  /// diagnostics for experiment E2).
  size_t last_search_nodes() const { return rtree_.last_search_nodes; }

 private:
  using Box = RTreeBox<2>;  // Dimension 0: time; dimension 1: value.

  struct ObjectState {
    DynamicAttribute attr;
    std::vector<Box> boxes;  // Segments currently in the R-tree.
  };

  std::vector<Box> ComputeBoxes(const DynamicAttribute& attr) const;
  void InsertSegments(ObjectId id, ObjectState* state);
  void RemoveSegments(ObjectId id, ObjectState* state);

  Options options_;
  Tick epoch_start_;
  Tick epoch_end_;
  RTree<2, ObjectId> rtree_;
  std::unordered_map<ObjectId, ObjectState> objects_;
};

}  // namespace most

#endif  // MOST_INDEX_TRAJECTORY_INDEX_H_
