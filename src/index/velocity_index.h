#ifndef MOST_INDEX_VELOCITY_INDEX_H_
#define MOST_INDEX_VELOCITY_INDEX_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/btree.h"
#include "temporal/dynamic_attribute.h"

namespace most {

/// An alternative mechanism for indexing dynamic attributes — the
/// comparison the paper lists as future work ("we intend to experimentally
/// compare various mechanisms for indexing dynamic attributes").
///
/// Instead of plotting trajectories in the (t, value) plane (Section 4 /
/// TrajectoryIndex), objects are partitioned into buckets by slope and
/// each bucket keeps a B+-tree over the value at a common reference time.
/// A range query [lo, hi] at time t probes each bucket with the range
/// expanded by the bucket's slope envelope over (t - t_ref):
///
///     [lo - s_max * dt,  hi - s_min * dt]        (dt >= 0)
///
/// and verifies candidates exactly. Fewer, cheaper structures than the
/// R-tree, but the expansion grows with dt and with bucket width — the
/// tradeoff the comparison benchmark (bench_index) quantifies.
///
/// Exactness: complete for attributes whose function is linear at and
/// after the reference time. Piecewise functions are indexed by their
/// state at t_ref; a later built-in slope change can cause false negatives
/// until the next Rebuild — use TrajectoryIndex when routes are piecewise.
class VelocityBucketIndex {
 public:
  struct Options {
    /// Slope bucket width. Smaller buckets = tighter expansion envelopes
    /// but more trees to probe.
    double bucket_width = 0.5;
    /// Like Section 4's horizon: queries are expected within
    /// [t_ref, t_ref + horizon); Rebuild re-anchors the reference time.
    Tick horizon = 1024;
  };

  explicit VelocityBucketIndex(Tick reference_time)
      : VelocityBucketIndex(reference_time, Options()) {}
  VelocityBucketIndex(Tick reference_time, Options options);

  Tick reference_time() const { return reference_time_; }
  size_t num_objects() const { return objects_.size(); }
  size_t num_buckets() const { return buckets_.size(); }

  void Upsert(ObjectId id, const DynamicAttribute& attr);
  void Remove(ObjectId id);

  bool NeedsRebuild(Tick now) const {
    return now >= reference_time_ + options_.horizon;
  }
  void Rebuild(Tick new_reference_time);

  /// Objects whose expanded envelope meets [lo, hi] at time t (superset).
  std::vector<ObjectId> QueryCandidates(double lo, double hi, Tick t) const;

  /// Exact: candidates verified against the stored attribute (closed
  /// bounds).
  std::vector<ObjectId> QueryExact(double lo, double hi, Tick t) const;

  /// B+-tree entries touched by the last query (scan-cost diagnostics).
  size_t last_entries_probed() const { return last_entries_probed_; }

 private:
  struct Bucket {
    std::unique_ptr<BPlusTree> tree;  // value-at-reference-time -> object.
  };

  int64_t BucketOf(double slope) const;

  Options options_;
  Tick reference_time_;
  std::map<int64_t, Bucket> buckets_;
  std::unordered_map<ObjectId, DynamicAttribute> objects_;
  mutable size_t last_entries_probed_ = 0;
};

}  // namespace most

#endif  // MOST_INDEX_VELOCITY_INDEX_H_
