#include "index/motion_index.h"

#include <algorithm>

namespace most {

MotionIndex::MotionIndex(Tick epoch_start, Options options)
    : options_(options),
      epoch_start_(epoch_start),
      epoch_end_(TickSaturatingAdd(epoch_start, options.horizon)),
      rtree_(options.rtree_fanout) {}

std::vector<MotionIndex::Box> MotionIndex::ComputeBoxes(
    const ObjectState& state) const {
  std::vector<Box> boxes;
  Interval epoch(epoch_start_, epoch_end_ - 1);
  // Align x and y pieces on their common tick-range refinement so every
  // emitted box covers one jointly-linear stretch.
  auto xs = state.x.LinearPieces(epoch);
  auto ys = state.y.LinearPieces(epoch);
  const Tick slab = std::max<Tick>(1, options_.time_slab);
  size_t i = 0, j = 0;
  while (i < xs.size() && j < ys.size()) {
    Tick piece_lo = std::max(xs[i].ticks.begin, ys[j].ticks.begin);
    Tick piece_hi = std::min(xs[i].ticks.end, ys[j].ticks.end);
    // Chop the jointly-linear stretch into time slabs for tight boxes.
    for (Tick lo = piece_lo; lo <= piece_hi; lo += slab) {
      Tick hi = std::min(piece_hi, lo + slab - 1);
      double t0 = static_cast<double>(lo);
      double t1 = static_cast<double>(hi);
      double x0 = state.x.ValueAt(lo);
      double x1 = state.x.ValueAt(hi);
      double y0 = state.y.ValueAt(lo);
      double y1 = state.y.ValueAt(hi);
      Box box;
      box.min = {t0, std::min(x0, x1), std::min(y0, y1)};
      box.max = {t1, std::max(x0, x1), std::max(y0, y1)};
      boxes.push_back(box);
    }
    if (xs[i].ticks.end < ys[j].ticks.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return boxes;
}

void MotionIndex::InsertSegments(ObjectId id, ObjectState* state) {
  state->boxes = ComputeBoxes(*state);
  for (const Box& box : state->boxes) {
    rtree_.Insert(box, id);
  }
}

void MotionIndex::RemoveSegments(ObjectId id, ObjectState* state) {
  for (const Box& box : state->boxes) {
    rtree_.Remove(box, id);
  }
  state->boxes.clear();
}

void MotionIndex::Upsert(ObjectId id, const DynamicAttribute& x,
                         const DynamicAttribute& y) {
  ObjectState& state = objects_[id];
  RemoveSegments(id, &state);
  state.x = x;
  state.y = y;
  InsertSegments(id, &state);
}

void MotionIndex::Remove(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  RemoveSegments(id, &it->second);
  objects_.erase(it);
}

void MotionIndex::Rebuild(Tick new_epoch_start) {
  epoch_start_ = new_epoch_start;
  epoch_end_ = TickSaturatingAdd(new_epoch_start, options_.horizon);
  // Bulk-load (STR packing) instead of re-inserting one segment at a time.
  std::vector<std::pair<Box, ObjectId>> all;
  for (auto& [id, state] : objects_) {
    state.boxes = ComputeBoxes(state);
    for (const Box& box : state.boxes) {
      all.emplace_back(box, id);
    }
  }
  rtree_ = RTree<3, ObjectId>(options_.rtree_fanout);
  rtree_.BulkLoad(std::move(all));
}

namespace {
std::vector<ObjectId> Dedup(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}
}  // namespace

std::vector<ObjectId> MotionIndex::QueryRegionCandidates(
    const BoundingBox& region, Tick t) const {
  return QueryRegionCandidates(region, Interval(t, t));
}

std::vector<ObjectId> MotionIndex::QueryRegionCandidates(
    const BoundingBox& region, Interval window) const {
  rtree_.last_search_nodes = 0;
  Box query;
  query.min = {static_cast<double>(window.begin), region.min.x, region.min.y};
  query.max = {static_cast<double>(window.end), region.max.x, region.max.y};
  std::vector<ObjectId> out;
  rtree_.Search(query, [&](const Box&, const ObjectId& id) {
    out.push_back(id);
  });
  return Dedup(std::move(out));
}

std::vector<ObjectId> MotionIndex::QueryNearTrajectory(
    const DynamicAttribute& x, const DynamicAttribute& y, double radius,
    Interval window) const {
  ObjectState probe;
  probe.x = x;
  probe.y = y;
  std::vector<ObjectId> out;
  for (const Box& box : ComputeBoxes(probe)) {
    // Segment boxes cover the epoch; only the ones overlapping the window
    // can witness proximity inside it.
    if (box.max[0] < static_cast<double>(window.begin) ||
        box.min[0] > static_cast<double>(window.end)) {
      continue;
    }
    Box query = box;
    query.min[0] = std::max(query.min[0], static_cast<double>(window.begin));
    query.max[0] = std::min(query.max[0], static_cast<double>(window.end));
    query.min[1] -= radius;
    query.min[2] -= radius;
    query.max[1] += radius;
    query.max[2] += radius;
    rtree_.Search(query, [&](const Box&, const ObjectId& id) {
      out.push_back(id);
    });
  }
  return Dedup(std::move(out));
}

std::vector<ObjectId> MotionIndex::QueryRegionExact(const BoundingBox& region,
                                                    Tick t) const {
  std::vector<ObjectId> out;
  for (ObjectId id : QueryRegionCandidates(region, t)) {
    const ObjectState& state = objects_.at(id);
    Point2 pos{state.x.ValueAt(t), state.y.ValueAt(t)};
    if (region.Contains(pos)) out.push_back(id);
  }
  return out;
}

}  // namespace most
