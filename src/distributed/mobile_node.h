#ifndef MOST_DISTRIBUTED_MOBILE_NODE_H_
#define MOST_DISTRIBUTED_MOBILE_NODE_H_

#include <map>
#include <memory>
#include <string>

#include "core/object_model.h"
#include "distributed/network.h"
#include "distributed/node_store.h"
#include "distributed/reliable_channel.h"

namespace most {

/// Builds a MostDatabase holding the given object states as spatial
/// objects of `class_name` (scalar attrs become dynamic constants), with
/// the shared region catalog. Both node-local filtering and the
/// coordinator's central evaluation funnel through this, so distributed
/// answers are bit-identical to centralized ones.
Result<std::unique_ptr<MostDatabase>> BuildDatabaseFromStates(
    const std::string& class_name, const std::vector<ObjectState>& states,
    const std::map<std::string, Polygon>& regions, Tick now);

/// A mobile computer carrying one moving object (Section 5.3's
/// architecture: "each object resides in the computer on the moving
/// vehicle it represents, but nowhere else").
///
/// The node answers the two distributed strategies:
/// * kCollect: replies with its object state so the issuer can evaluate.
/// * kBroadcastFilter: evaluates the (single-variable) predicate against
///   its own object and replies only when satisfied.
/// For continuous queries it keeps the subscription and, on each local
/// motion change, re-evaluates and transmits only if its answer changed.
///
/// Reliability: query traffic (requests in, reports / completion markers
/// out) rides the ReliableEndpoint, so it survives loss, duplication,
/// reordering and partitions. Position beacons — periodic ObjectState
/// messages to the node's home coordinator, doubling as liveness
/// heartbeats — stay best-effort: they are the paper's dead-reckoning
/// updates, where the latest one wins and a lost one is superseded.
/// After answering a query request the node always sends QueryDone, which
/// (being ordered after its reports on the same stream) tells the issuer
/// this node's contribution is complete.
///
/// Crash/restart (docs/distributed.md "Crash, rejoin, and catch-up"): with
/// Options::wal_path set, the node's identity, object state, continuous
/// subscriptions, and Answer(CQ) mirrors are backed by a NodeDurableState
/// WAL. Destroying the node models a process kill (the SimNetwork entry
/// survives with a nulled handler); constructing a new node on the same
/// wal_path recovers the pre-crash state, reclaims the network id, bumps
/// the incarnation (which becomes the send-stream epoch fencing the dead
/// stream), announces itself with a JoinRequest, and re-answers every
/// recovered subscription. Delivery across the crash boundary is
/// at-least-once — re-subscription and re-report are idempotent — while
/// within one incarnation the channel's exactly-once ordering holds.
class MobileNode {
 public:
  struct Options {
    /// Beacon/heartbeat period in ticks; 0 disables beacons. Beacons are
    /// aligned to absolute ticks (now % interval == 0) and start once the
    /// node knows its home coordinator.
    Tick beacon_interval = 8;
    /// The coordinator beacons are sent to. If unset, learned from the
    /// sender of the first QueryRequest.
    NodeId home = kInvalidNodeId;
    /// Durable backing: path of this node's write-ahead log. Empty keeps
    /// the legacy in-memory node (state dies with the process).
    std::string wal_path;
    ReliableEndpoint::Options channel;
  };

  MobileNode(SimNetwork* network, Clock* clock, ObjectState initial,
             std::map<std::string, Polygon> regions)
      : MobileNode(network, clock, std::move(initial), std::move(regions),
                   Options()) {}
  MobileNode(SimNetwork* network, Clock* clock, ObjectState initial,
             std::map<std::string, Polygon> regions, Options options);
  ~MobileNode();

  NodeId node_id() const { return channel_->node_id(); }
  ObjectId object_id() const { return state_.id; }
  const ObjectState& state() const { return state_; }
  const ReliableEndpoint& channel() const { return *channel_; }

  /// Local sensor update: the vehicle changed speed or direction. Updates
  /// the onboard object and services continuous subscriptions.
  void UpdateMotion(Point2 position, Vec2 velocity);

  /// Updates a scalar attribute (e.g. fuel level).
  void UpdateAttr(const std::string& name, double value);

  /// Evaluates a single-variable query against the onboard object only —
  /// a *self-referencing* query ("Will I reach the point (a,b) in 3
  /// minutes?") needs no communication at all.
  Result<IntervalSet> EvaluateSelf(const FtlQuery& query, Tick horizon) const;

  uint64_t predicate_evaluations() const { return predicate_evaluations_; }
  size_t active_subscriptions() const { return subscriptions_.size(); }

  /// True when this incarnation was recovered from a prior one's WAL.
  bool recovered_from_wal() const { return recovered_; }
  /// Incarnation counter: 0 on first boot, prior + 1 after each recovery.
  /// Doubles as the send-stream epoch, so a reborn node's frames outrank
  /// its dead pre-crash stream.
  uint64_t incarnation() const { return incarnation_; }
  /// AnswerDelta messages applied to local mirrors (catch-up activity).
  uint64_t deltas_applied() const { return deltas_applied_; }

  /// This node's local mirror of Answer(CQ) for `qid` (nullptr when the
  /// node holds no mirror), and the anchor tick it reflects.
  const std::map<ObjectId, IntervalSet>* AnswerMirror(uint64_t qid) const;
  Tick MirrorAnchor(uint64_t qid) const;

 private:
  void HandleMessage(const Message& message);
  void ServiceSubscriptions();
  void OnTick();
  /// Evaluation window anchored at `anchor` (one-shot queries use the
  /// request's issue tick so late, retransmitted deliveries still compute
  /// the answer the issuer asked for).
  Result<IntervalSet> EvaluateAnchored(const FtlQuery& query, Tick horizon,
                                       Tick anchor) const;
  /// Answers one query request (both strategies, one-shot or continuous)
  /// and records the subscription; shared by fresh deliveries and the
  /// rejoin re-answer pass.
  void AnswerRequest(const QueryRequest& request, NodeId issuer);
  void ApplyAnswerDelta(const AnswerDelta& delta);
  /// Announces a recovered incarnation to the home coordinator and
  /// re-answers every recovered subscription.
  void Rejoin();
  void PersistIdentity();
  void PersistState();

  struct Subscription {
    QueryRequest request;
    NodeId issuer = kInvalidNodeId;
    bool has_last = false;
    IntervalSet last_sent;
  };
  struct Mirror {
    Tick anchor = 0;
    std::map<ObjectId, IntervalSet> rows;
  };

  SimNetwork* network_;
  Clock* clock_;
  ObjectState state_;
  std::map<std::string, Polygon> regions_;
  Options options_;
  std::unique_ptr<NodeDurableState> store_;
  std::unique_ptr<ReliableEndpoint> channel_;
  uint64_t tick_hook_id_ = 0;
  NodeId home_ = kInvalidNodeId;
  Tick last_beacon_tick_ = -1;
  bool recovered_ = false;
  uint64_t incarnation_ = 0;
  uint64_t deltas_applied_ = 0;
  std::map<uint64_t, Subscription> subscriptions_;
  std::map<uint64_t, Mirror> mirrors_;
  mutable uint64_t predicate_evaluations_ = 0;
  obs::Counter recoveries_;
  obs::Counter deltas_applied_counter_;
  std::vector<uint64_t> attach_ids_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_MOBILE_NODE_H_
