#ifndef MOST_DISTRIBUTED_MOBILE_NODE_H_
#define MOST_DISTRIBUTED_MOBILE_NODE_H_

#include <map>
#include <memory>
#include <string>

#include "core/object_model.h"
#include "distributed/network.h"

namespace most {

/// Builds a MostDatabase holding the given object states as spatial
/// objects of `class_name` (scalar attrs become dynamic constants), with
/// the shared region catalog. Both node-local filtering and the
/// coordinator's central evaluation funnel through this, so distributed
/// answers are bit-identical to centralized ones.
Result<std::unique_ptr<MostDatabase>> BuildDatabaseFromStates(
    const std::string& class_name, const std::vector<ObjectState>& states,
    const std::map<std::string, Polygon>& regions, Tick now);

/// A mobile computer carrying one moving object (Section 5.3's
/// architecture: "each object resides in the computer on the moving
/// vehicle it represents, but nowhere else").
///
/// The node answers the two distributed strategies:
/// * kCollect: replies with its object state so the issuer can evaluate.
/// * kBroadcastFilter: evaluates the (single-variable) predicate against
///   its own object and replies only when satisfied.
/// For continuous queries it keeps the subscription and, on each local
/// motion change, re-evaluates and transmits only if its answer changed.
class MobileNode {
 public:
  MobileNode(SimNetwork* network, Clock* clock, ObjectState initial,
             std::map<std::string, Polygon> regions);

  NodeId node_id() const { return node_id_; }
  ObjectId object_id() const { return state_.id; }
  const ObjectState& state() const { return state_; }

  /// Local sensor update: the vehicle changed speed or direction. Updates
  /// the onboard object and services continuous subscriptions.
  void UpdateMotion(Point2 position, Vec2 velocity);

  /// Updates a scalar attribute (e.g. fuel level).
  void UpdateAttr(const std::string& name, double value);

  /// Evaluates a single-variable query against the onboard object only —
  /// a *self-referencing* query ("Will I reach the point (a,b) in 3
  /// minutes?") needs no communication at all.
  Result<IntervalSet> EvaluateSelf(const FtlQuery& query, Tick horizon) const;

  uint64_t predicate_evaluations() const { return predicate_evaluations_; }

 private:
  void HandleMessage(const Message& message);
  void ServiceSubscriptions();

  struct Subscription {
    QueryRequest request;
    NodeId issuer = kInvalidNodeId;
    bool has_last = false;
    IntervalSet last_sent;
  };

  SimNetwork* network_;
  Clock* clock_;
  ObjectState state_;
  std::map<std::string, Polygon> regions_;
  NodeId node_id_ = kInvalidNodeId;
  std::map<uint64_t, Subscription> subscriptions_;
  mutable uint64_t predicate_evaluations_ = 0;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_MOBILE_NODE_H_
