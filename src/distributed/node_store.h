#ifndef MOST_DISTRIBUTED_NODE_STORE_H_
#define MOST_DISTRIBUTED_NODE_STORE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "distributed/network.h"
#include "storage/durable_database.h"

namespace most {

/// What a restarting node salvaged from its own WAL: its identity (network
/// node id, home coordinator, incarnation counter), the last persisted
/// object state, every continuous subscription it held, and its Answer(CQ)
/// mirrors with the anchor tick each one reflects.
struct RecoveredNodeState {
  /// True when the log held a prior incarnation's identity — the restart
  /// is a rejoin, not a first boot.
  bool found = false;
  NodeId node_id = kInvalidNodeId;
  NodeId home = kInvalidNodeId;
  uint64_t incarnation = 0;  ///< Incarnation of the crashed run.
  ObjectState state;

  struct Subscription {
    QueryRequest request;
    NodeId issuer = kInvalidNodeId;
  };
  std::vector<Subscription> subscriptions;

  struct Mirror {
    Tick anchor = 0;
    std::map<ObjectId, IntervalSet> rows;
  };
  std::map<uint64_t, Mirror> mirrors;  ///< By query id.
};

/// A MobileNode's durable backing: one DurableDatabase (WAL v2, salvage
/// recovery — docs/durability.md) holding small relational tables for
/// identity, object state, subscriptions, and answer mirrors. Every
/// mutator commits through the WAL before returning, so whatever this
/// class acknowledged survives a process kill; recovery tolerates a torn
/// final record (crash mid-append) and the PR 7 ENOSPC/EIO injections by
/// construction — a failed append simply leaves the previous durable
/// state as the one a restart recovers.
///
/// Row identity: recovery rebuilds the RowId maps from
/// ResultSet::row_ids, so upserts keep updating the same rows across
/// restarts instead of growing the log with duplicates.
class NodeDurableState {
 public:
  explicit NodeDurableState(std::string path) : path_(std::move(path)) {}
  NodeDurableState(const NodeDurableState&) = delete;
  NodeDurableState& operator=(const NodeDurableState&) = delete;

  /// Replays the log (creating the tables on first boot) and decodes the
  /// recovered snapshot into `recovered`. Malformed rows (e.g. salvaged
  /// around a torn write) are skipped, not fatal.
  Status Open(RecoveredNodeState* recovered);

  Status SaveIdentity(NodeId node_id, NodeId home, uint64_t incarnation);
  Status SaveState(const ObjectState& state);
  Status SaveSubscription(const QueryRequest& request, NodeId issuer);
  Status RemoveSubscription(uint64_t qid);
  Status SaveMirrorAnchor(uint64_t qid, Tick anchor);
  Status UpsertMirrorRow(uint64_t qid, ObjectId obj, const IntervalSet& when);
  Status RemoveMirrorRow(uint64_t qid, ObjectId obj);
  /// Drops every mirror row of `qid` (a full-snapshot delta replaces the
  /// mirror wholesale).
  Status ClearMirror(uint64_t qid);

  /// Compacts the log (DurableDatabase::Checkpoint).
  Status Checkpoint() { return db_.Checkpoint(); }

  const std::string& path() const { return path_; }
  const DurableDatabase& database() const { return db_; }

 private:
  Status PutMeta(const std::string& key, const std::string& value);
  Status EnsureTables();
  void Decode(RecoveredNodeState* recovered);

  std::string path_;
  DurableDatabase db_{DurableDatabase::Options{
      DurableDatabase::Options::Durability::kFlush, /*salvage=*/true,
      kWalFormatVersion}};
  std::map<std::string, RowId> meta_rows_;
  bool has_state_row_ = false;
  RowId state_row_ = 0;
  std::map<std::string, RowId> attr_rows_;
  std::map<uint64_t, RowId> sub_rows_;
  std::map<uint64_t, RowId> anchor_rows_;
  std::map<std::pair<uint64_t, ObjectId>, RowId> mirror_rows_;
};

/// Interval-set wire/storage codec shared by the mirror table and tests:
/// "b:e;b:e;..." over the closed tick intervals.
std::string EncodeIntervalSet(const IntervalSet& set);
IntervalSet DecodeIntervalSet(const std::string& text);

}  // namespace most

#endif  // MOST_DISTRIBUTED_NODE_STORE_H_
