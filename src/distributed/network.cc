#include "distributed/network.h"

#include <algorithm>

namespace most {

namespace {

size_t QueryBytes(const FtlQuery& query) {
  // Proxy: the printed query's length.
  return query.ToString().size();
}

}  // namespace

size_t EstimateBytes(const MessagePayload& payload) {
  struct Visitor {
    size_t operator()(const ObjectState& s) const {
      // id + timestamp + position + velocity + attrs.
      return 8 + 8 + 16 + 16 + s.attrs.size() * 16;
    }
    size_t operator()(const QueryRequest& q) const {
      return 8 + 1 + 1 + 8 + QueryBytes(q.query);
    }
    size_t operator()(const ObjectReport& r) const {
      return 8 + 1 + (*this)(r.state) + r.when.size() * 16;
    }
    size_t operator()(const AnswerBlock& b) const {
      size_t total = 8;
      for (const AnswerTuple& t : b.tuples) {
        total += t.binding.size() * 8 + 16;
      }
      return total;
    }
    size_t operator()(const CancelQuery&) const { return 8; }
  };
  return std::visit(Visitor(), payload);
}

NodeId SimNetwork::AddNode(Handler handler) {
  NodeId id = next_id_++;
  nodes_[id] = Node{std::move(handler), true};
  return id;
}

void SimNetwork::SetHandler(NodeId node, Handler handler) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.handler = std::move(handler);
}

void SimNetwork::SetConnected(NodeId node, bool connected) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.connected = connected;
}

bool SimNetwork::IsConnected(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.connected;
}

void SimNetwork::Send(NodeId from, NodeId to, MessagePayload payload) {
  stats_.messages_sent += 1;
  stats_.bytes_sent += EstimateBytes(payload);
  if (!IsConnected(from) || !IsConnected(to) ||
      (options_.loss_probability > 0.0 &&
       rng_.Bernoulli(options_.loss_probability))) {
    stats_.messages_dropped += 1;
    return;
  }
  Message m;
  m.from = from;
  m.to = to;
  m.sent_at = clock_->Now();
  m.deliver_at = TickSaturatingAdd(clock_->Now(), options_.latency);
  m.payload = std::move(payload);
  in_flight_.push_back(std::move(m));
}

void SimNetwork::Broadcast(NodeId from, MessagePayload payload) {
  for (const auto& [id, node] : nodes_) {
    if (id == from) continue;
    Send(from, id, payload);
  }
}

void SimNetwork::DeliverDue() {
  Tick now = clock_->Now();
  // Deliveries can trigger new sends; iterate until stable for this tick.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::deque<Message> pending;
    std::vector<Message> due;
    while (!in_flight_.empty()) {
      Message m = std::move(in_flight_.front());
      in_flight_.pop_front();
      if (m.deliver_at <= now) {
        due.push_back(std::move(m));
      } else {
        pending.push_back(std::move(m));
      }
    }
    in_flight_ = std::move(pending);
    for (Message& m : due) {
      progressed = true;
      auto it = nodes_.find(m.to);
      if (it == nodes_.end() || !it->second.connected || !it->second.handler) {
        stats_.messages_dropped += 1;
        continue;
      }
      stats_.messages_delivered += 1;
      it->second.handler(m);
    }
  }
}

}  // namespace most
