#include "distributed/network.h"

#include <algorithm>
#include <string>

#include "common/failpoint.h"

namespace most {

namespace {

size_t QueryBytes(const FtlQuery& query) {
  // Proxy: the printed query's length.
  return query.ToString().size();
}

/// dist/net/<op>/<type> site names are assembled once per payload type and
/// cached; failpoint checks run on every Send/DeliverDue.
const char* SiteName(const char* op, const char* type) {
  static std::map<std::string, std::string> cache;
  std::string key = std::string(op) + "/" + type;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, "dist/net/" + key).first;
  }
  return it->second.c_str();
}

}  // namespace

SimNetwork::SimNetwork(Clock* clock, Options options)
    : clock_(clock), options_(options), rng_(options.seed) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  const char* drop_help = "Messages dropped in transit, by reason";
  attach_ids_ = {
      r.AttachCounter("most_net_messages_sent_total",
                      "Messages handed to the network", {}, &messages_sent_),
      r.AttachCounter("most_net_bytes_sent_total",
                      "Estimated wire bytes of sent messages", {},
                      &bytes_sent_),
      r.AttachCounter("most_net_messages_delivered_total",
                      "Messages delivered to a handler", {},
                      &messages_delivered_),
      r.AttachCounter("most_net_dropped_total", drop_help,
                      {{"reason", "loss"}}, &dropped_loss_),
      r.AttachCounter("most_net_dropped_total", drop_help,
                      {{"reason", "disconnected"}}, &dropped_disconnected_),
      r.AttachCounter("most_net_dropped_total", drop_help,
                      {{"reason", "partition"}}, &dropped_partition_),
      r.AttachCounter("most_net_dropped_total", drop_help,
                      {{"reason", "injected"}}, &dropped_injected_),
      r.AttachCounter("most_net_duplicated_total",
                      "Messages duplicated in transit", {}, &duplicated_),
      r.AttachCounter("most_net_reordered_total",
                      "Messages given extra reordering delay", {},
                      &reordered_),
  };
}

SimNetwork::~SimNetwork() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

SimNetwork::Stats SimNetwork::stats() const {
  Stats s;
  s.messages_sent = messages_sent_.value();
  s.bytes_sent = bytes_sent_.value();
  s.messages_delivered = messages_delivered_.value();
  s.dropped_loss = dropped_loss_.value();
  s.dropped_disconnected = dropped_disconnected_.value();
  s.dropped_partition = dropped_partition_.value();
  s.dropped_injected = dropped_injected_.value();
  s.duplicated = duplicated_.value();
  s.reordered = reordered_.value();
  return s;
}

void SimNetwork::ResetStats() {
  messages_sent_.Reset();
  bytes_sent_.Reset();
  messages_delivered_.Reset();
  dropped_loss_.Reset();
  dropped_disconnected_.Reset();
  dropped_partition_.Reset();
  dropped_injected_.Reset();
  duplicated_.Reset();
  reordered_.Reset();
}

const char* PayloadTypeName(const MessagePayload& payload) {
  struct Visitor {
    const char* operator()(const ObjectState&) const { return "object_state"; }
    const char* operator()(const QueryRequest&) const {
      return "query_request";
    }
    const char* operator()(const ObjectReport&) const {
      return "object_report";
    }
    const char* operator()(const AnswerBlock&) const { return "answer_block"; }
    const char* operator()(const CancelQuery&) const { return "cancel_query"; }
    const char* operator()(const QueryDone&) const { return "query_done"; }
    const char* operator()(const JoinRequest&) const { return "join_request"; }
    const char* operator()(const JoinAck&) const { return "join_ack"; }
    const char* operator()(const AnswerDelta&) const { return "answer_delta"; }
    const char* operator()(const ReliableFrame& f) const {
      return std::visit(*this, f.inner);
    }
    const char* operator()(const AckFrame&) const { return "ack"; }
  };
  return std::visit(Visitor(), payload);
}

size_t EstimateBytes(const MessagePayload& payload) {
  struct Visitor {
    size_t operator()(const ObjectState& s) const {
      // id + timestamp + position + velocity + attrs.
      return 8 + 8 + 16 + 16 + s.attrs.size() * 16;
    }
    size_t operator()(const QueryRequest& q) const {
      return 8 + 1 + 1 + 8 + 8 + QueryBytes(q.query);
    }
    size_t operator()(const ObjectReport& r) const {
      return 8 + 1 + (*this)(r.state) + r.when.size() * 16;
    }
    size_t operator()(const AnswerBlock& b) const {
      size_t total = 8;
      for (const AnswerTuple& t : b.tuples) {
        total += t.binding.size() * 8 + 16;
      }
      return total;
    }
    size_t operator()(const CancelQuery&) const { return 8; }
    size_t operator()(const QueryDone&) const { return 8; }
    size_t operator()(const JoinRequest& j) const {
      return 8 + (*this)(j.state) + j.subscribed_qids.size() * 8 +
             j.mirror_anchors.size() * 16;
    }
    size_t operator()(const JoinAck&) const { return 16; }
    size_t operator()(const AnswerDelta& d) const {
      // qid + flags + base + anchor, then per-object payloads.
      size_t total = 8 + 1 + 8 + 8 + d.removals.size() * 8;
      for (const auto& [id, when] : d.upserts) {
        total += 8 + when.size() * 16;
      }
      return total;
    }
    size_t operator()(const ReliableFrame& f) const {
      // Sequence number + epoch on top of the inner payload.
      return 16 + std::visit(*this, f.inner);
    }
    size_t operator()(const AckFrame&) const { return 16; }
  };
  return std::visit(Visitor(), payload);
}

NodeId SimNetwork::AddNode(Handler handler) {
  NodeId id = next_id_++;
  nodes_[id] = Node{std::move(handler), true};
  return id;
}

void SimNetwork::SetHandler(NodeId node, Handler handler) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.handler = std::move(handler);
}

std::vector<NodeId> SimNetwork::NodeIds() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

void SimNetwork::SetConnected(NodeId node, bool connected) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.connected = connected;
}

bool SimNetwork::IsConnected(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.connected;
}

void SimNetwork::Partition(const std::string& name, std::set<NodeId> a,
                           std::set<NodeId> b) {
  partitions_[name] = {std::move(a), std::move(b)};
}

void SimNetwork::Heal(const std::string& name) { partitions_.erase(name); }

void SimNetwork::HealAll() { partitions_.clear(); }

bool SimNetwork::Reachable(NodeId a, NodeId b) const {
  for (const auto& [name, groups] : partitions_) {
    const auto& [ga, gb] = groups;
    if ((ga.count(a) && gb.count(b)) || (ga.count(b) && gb.count(a))) {
      return false;
    }
  }
  return true;
}

void SimNetwork::Enqueue(NodeId from, NodeId to, const MessagePayload& payload,
                         Tick extra_delay) {
  Message m;
  m.from = from;
  m.to = to;
  m.sent_at = clock_->Now();
  m.deliver_at = TickSaturatingAdd(clock_->Now(),
                                   TickSaturatingAdd(options_.latency,
                                                     extra_delay));
  m.payload = payload;
  // Stamp the sender's ambient context so the delivery handler can run
  // under it; a duplicated message carries the same context (one cause).
  m.trace = obs::CurrentTraceContext();
  in_flight_.push_back(std::move(m));
}

void SimNetwork::Send(NodeId from, NodeId to, MessagePayload payload) {
  messages_sent_.Inc();
  bytes_sent_.Inc(EstimateBytes(payload));
  FailpointRegistry& failpoints = FailpointRegistry::Instance();
  if (failpoints.AnyArmed() &&
      !failpoints.Check(SiteName("send", PayloadTypeName(payload))).ok()) {
    dropped_injected_.Inc();
    return;
  }
  if (!IsConnected(from) || !IsConnected(to)) {
    dropped_disconnected_.Inc();
    return;
  }
  if (options_.loss_probability > 0.0 &&
      rng_.Bernoulli(options_.loss_probability)) {
    dropped_loss_.Inc();
    return;
  }
  Tick extra = 0;
  if (options_.reorder_probability > 0.0 &&
      rng_.Bernoulli(options_.reorder_probability)) {
    extra = static_cast<Tick>(
        rng_.UniformInt(1, std::max<Tick>(1, options_.reorder_jitter)));
    reordered_.Inc();
  }
  if (failpoints.AnyArmed() &&
      !failpoints.Check(SiteName("delay", PayloadTypeName(payload))).ok()) {
    extra = TickSaturatingAdd(extra, options_.reorder_jitter);
    reordered_.Inc();
  }
  Enqueue(from, to, payload, extra);
  if (options_.duplicate_probability > 0.0 &&
      rng_.Bernoulli(options_.duplicate_probability)) {
    duplicated_.Inc();
    Tick dup_extra = static_cast<Tick>(
        rng_.UniformInt(0, std::max<Tick>(1, options_.reorder_jitter)));
    Enqueue(from, to, payload, dup_extra);
  }
}

void SimNetwork::Broadcast(NodeId from, MessagePayload payload) {
  for (const auto& [id, node] : nodes_) {
    if (id == from) continue;
    Send(from, id, payload);
  }
}

uint64_t SimNetwork::AddTickHook(std::function<void()> hook) {
  uint64_t id = next_hook_id_++;
  tick_hooks_[id] = std::move(hook);
  return id;
}

void SimNetwork::RemoveTickHook(uint64_t id) { tick_hooks_.erase(id); }

void SimNetwork::DeliverDue() {
  // Retransmission timers first, so frames resent this tick enter the
  // in-flight queue before delivery starts.
  for (auto& [id, hook] : tick_hooks_) hook();
  Tick now = clock_->Now();
  // Deliveries can trigger new sends; iterate until stable for this tick.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::deque<Message> pending;
    std::vector<Message> due;
    while (!in_flight_.empty()) {
      Message m = std::move(in_flight_.front());
      in_flight_.pop_front();
      if (m.deliver_at <= now) {
        due.push_back(std::move(m));
      } else {
        pending.push_back(std::move(m));
      }
    }
    in_flight_ = std::move(pending);
    for (Message& m : due) {
      progressed = true;
      auto it = nodes_.find(m.to);
      if (it == nodes_.end() || !it->second.connected || !it->second.handler) {
        dropped_disconnected_.Inc();
        continue;
      }
      if (!Reachable(m.from, m.to)) {
        dropped_partition_.Inc();
        continue;
      }
      FailpointRegistry& failpoints = FailpointRegistry::Instance();
      if (failpoints.AnyArmed() &&
          !failpoints
               .Check(SiteName("deliver", PayloadTypeName(m.payload)))
               .ok()) {
        dropped_injected_.Inc();
        continue;
      }
      messages_delivered_.Inc();
      // Deliver under the sender's context: spans the handler opens (and
      // any sends it makes) link into the originating trace tree.
      obs::TraceContextGuard guard(m.trace);
      it->second.handler(m);
    }
  }
}

}  // namespace most
