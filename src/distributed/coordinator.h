#ifndef MOST_DISTRIBUTED_COORDINATOR_H_
#define MOST_DISTRIBUTED_COORDINATOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "distributed/mobile_node.h"
#include "distributed/network.h"
#include "distributed/reliable_channel.h"
#include "ftl/eval.h"
#include "obs/metrics.h"

namespace most {

/// The paper's taxonomy of MOST queries issued at a mobile computer
/// (Section 5.3).
enum class DistQueryClass {
  kSelfReferencing,  ///< Decidable from the issuer's own attributes.
  kObject,           ///< Per-object predicate, independent of other objects.
  kRelationship,     ///< Needs two or more objects at once.
};

/// The query-issuing mobile computer M. Implements the paper's processing
/// strategies:
/// * self-referencing: no communication;
/// * object queries: strategy 1 (collect every object, evaluate at M) or
///   strategy 2 (broadcast the query, nodes filter locally and only
///   matches reply);
/// * relationship queries: collect every object at M (the paper's "most
///   efficient way") and evaluate the multi-variable query centrally.
///
/// Epoch-leased membership (docs/distributed.md "Crash, rejoin, and
/// catch-up"): every node heard from holds a lease renewed by any traffic
/// (beacons double as heartbeats) and swept each tick. A lease expired
/// past liveness_timeout degrades every active continuous query's answer
/// to Confidence::kStale with the node in the missing set — even if the
/// node completed earlier — because a dead node's matches are dead
/// reckoning, not vouched-for state. A crashed node announces its rebirth
/// with a JoinRequest carrying a bumped incarnation; the coordinator
/// fences the dead incarnation's stream (RestartPeerStream re-enqueues
/// in-flight requests under a higher epoch), re-installs whatever the
/// node did not recover from its own WAL, cancels subscriptions it
/// recovered for queries that no longer exist, and catches its Answer(CQ)
/// mirrors up from their recovered anchors with per-object AnswerDeltas
/// instead of full re-sends.
///
/// The coordinator is asynchronous: issue a query, advance the clock and
/// call SimNetwork::DeliverDue(), then read results.
///
/// Reliability and completeness: query traffic rides a ReliableEndpoint,
/// so requests, reports and cancellations survive loss, duplication,
/// reordering and partitions. Each query tracks the nodes it expects
/// (`expected`), the nodes whose QueryDone completion marker arrived
/// (`responded`), and a deadline. Answers are tagged with the Confidence
/// machinery of docs/durability.md: Confidence::kCertain when every
/// expected node responded (the must-answer), Confidence::kStale plus the
/// `missing` node set otherwise (a partial, may-answer — some reachable
/// node has not been heard from). Liveness is heartbeat-based: any
/// traffic from a node refreshes its last-heard tick; a node silent past
/// `liveness_timeout` counts as unreachable, and when it is heard again
/// (a healed partition, a reconnection) every active continuous query is
/// re-sent to it so its subscription — and the coordinator's view of its
/// answer — re-synchronizes.
class Coordinator {
 public:
  struct Options {
    /// A node unheard for this many ticks counts as unreachable.
    Tick liveness_timeout = 24;
    /// Per-query deadline (ticks after issue). The coordinator never
    /// blocks on it — callers poll DeadlinePassed() and decide whether a
    /// kStale partial answer is good enough — but the first expired poll
    /// per query is counted into most_coord_deadline_expired_total so
    /// overload shows up in metrics. With unbounded channel buffers the
    /// endpoint keeps retransmitting, so late answers still converge.
    Tick query_deadline = 64;
    /// Rejoin catch-up mode: true sends a rejoining mirror subscriber
    /// only the objects dirtied since its recovered anchor; false
    /// re-sends the full answer mirror — the baseline the recovery
    /// scenario of bench_distributed measures delta catch-up against.
    bool delta_catchup = true;
    ReliableEndpoint::Options channel;
  };

  Coordinator(SimNetwork* network, Clock* clock,
              std::map<std::string, Polygon> regions)
      : Coordinator(network, clock, std::move(regions), Options()) {}
  Coordinator(SimNetwork* network, Clock* clock,
              std::map<std::string, Polygon> regions, Options options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  NodeId node_id() const { return channel_.node_id(); }
  const ReliableEndpoint& channel() const { return channel_; }

  /// Classifies a query. Atoms mentioning two or more object variables
  /// (DIST, WITHIN_SPHERE, cross-variable comparisons) make it a
  /// relationship query; otherwise a single FROM variable over
  /// `self_class` is self-referencing and anything else is an object
  /// query.
  static DistQueryClass Classify(const FtlQuery& query,
                                 const std::string& self_class = "SELF");

  /// Issues an object query (single-variable). Returns the query id.
  uint64_t IssueObjectQuery(const FtlQuery& query, DistStrategy strategy,
                            bool continuous, Tick horizon);

  /// Issues a relationship query: requests every object, evaluation
  /// happens at the coordinator once replies arrive.
  uint64_t IssueRelationshipQuery(const FtlQuery& query, Tick horizon);

  /// Reliably cancels a continuous query on every subscribed node.
  Status CancelQuerySubscription(uint64_t qid);

  /// Accumulated per-query state.
  struct QueryState {
    FtlQuery query;
    DistStrategy strategy = DistStrategy::kBroadcastFilter;
    bool continuous = false;
    Tick horizon = 256;
    Tick issued_at = 0;
    Tick deadline = 0;
    bool cancelled = false;
    size_t replies = 0;
    /// Set once, the first time every expected node's QueryDone arrived;
    /// feeds the most_coord_completion_lag_ticks histogram.
    bool completed = false;
    Tick completed_at = 0;
    /// Nodes the request was sent to (grows when new or revived nodes are
    /// re-synced into a continuous query).
    std::set<NodeId> expected;
    /// Nodes whose QueryDone marker arrived: their reports, if any, are
    /// already incorporated (the reliable stream is ordered).
    std::set<NodeId> responded;
    /// Latest object states received (collect strategy / relationship).
    std::map<ObjectId, ObjectState> states;
    /// Matches reported by nodes (broadcast strategy).
    std::map<ObjectId, IntervalSet> matches;
    /// Per-object tick of the last change to `matches` (set or erase):
    /// the wire form of the QueryManager's dirty sets. A mirror anchored
    /// at tick a is brought current by re-sending exactly the objects
    /// with dirty_at > a.
    std::map<ObjectId, Tick> dirty_at;
    /// Answer-mirror subscribers: node id → tick through which that
    /// node's mirror is known to reflect every change.
    std::map<NodeId, Tick> mirror_subs;

    /// expected − responded: the nodes a partial answer is missing.
    std::set<NodeId> MissingNodes() const;
  };

  Result<const QueryState*> GetState(uint64_t qid) const;
  /// True once the query's deadline tick has been reached. The first true
  /// poll per query bumps most_coord_deadline_expired_total; callers
  /// typically then accept EvaluateCollected/ReportedMatches' kStale
  /// partial answer instead of waiting for the missing nodes.
  bool DeadlinePassed(uint64_t qid) const;

  /// A centrally evaluated answer plus its completeness tag.
  struct CollectedAnswer {
    TemporalRelation relation;
    Confidence confidence = Confidence::kCertain;
    std::set<NodeId> missing;
  };
  /// A broadcast-filter answer plus its completeness tag.
  struct ReportedAnswer {
    std::map<ObjectId, IntervalSet> matches;
    Confidence confidence = Confidence::kCertain;
    std::set<NodeId> missing;
  };

  /// For collect-strategy object queries and relationship queries:
  /// evaluates the query centrally over the gathered object states.
  /// One-shot queries are evaluated on the window anchored at their issue
  /// tick; continuous ones on [now, now + horizon]. kCertain only when
  /// every expected node's QueryDone arrived.
  Result<CollectedAnswer> EvaluateCollected(uint64_t qid) const;

  /// For broadcast-strategy queries: the matches reported so far, tagged
  /// kStale with the missing node set while any expected node has not
  /// completed.
  Result<ReportedAnswer> ReportedMatches(uint64_t qid) const;

  /// Heartbeat-based liveness: nodes heard from within liveness_timeout.
  bool IsLive(NodeId node) const;
  std::set<NodeId> LiveNodes() const;

  /// Nodes that once held a lease (were heard from) but are currently
  /// silent past liveness_timeout. While any expected node's lease is
  /// expired, no active continuous query reads kCertain.
  std::set<NodeId> ExpiredLeases() const;

  /// Registers `subscriber` for Answer(CQ) mirror pushes of `qid` (a
  /// continuous broadcast-filter query): an immediate full snapshot, then
  /// a per-object AnswerDelta each tick the answer changed. A crashed
  /// subscriber that rejoins resumes from the anchor it recovered from
  /// its own WAL instead of a full re-send (Options::delta_catchup).
  Status SubscribeAnswerMirror(uint64_t qid, NodeId subscriber);

  /// Crash/rejoin bookkeeping, snapshotted from the most_coord_* series.
  struct RecoveryStats {
    uint64_t rejoins = 0;            ///< JoinRequests with a new incarnation.
    uint64_t lease_expirations = 0;  ///< Live→expired lease transitions.
    uint64_t catchup_deltas = 0;     ///< Rejoin catch-up AnswerDeltas sent.
    uint64_t catchup_bytes = 0;      ///< Their estimated wire bytes.
    uint64_t mirror_deltas = 0;      ///< Steady-state mirror pushes.
  };
  RecoveryStats recovery_stats() const;

 private:
  void HandleMessage(const Message& message);
  /// Raw-traffic observer: refreshes liveness and re-syncs continuous
  /// subscriptions to new or revived nodes.
  void ObserveTraffic(const Message& message);
  uint64_t Issue(const FtlQuery& query, DistStrategy strategy,
                 bool continuous, Tick horizon);
  void SendRequest(uint64_t qid, const QueryState& state, NodeId to);
  /// Recomputes most_coord_missing_nodes: expected-but-silent nodes summed
  /// over active (uncancelled, incomplete) queries.
  void UpdateMissingGauge();
  /// Per-tick maintenance: lease sweep (counting live→expired
  /// transitions) and steady-state mirror flushes to live subscribers.
  void OnTick();
  /// JoinRequest handler: fences the dead incarnation, re-syncs
  /// subscriptions, and catches mirrors up from recovered anchors.
  void OnJoin(const JoinRequest& join, NodeId from);
  /// MissingNodes() with epoch-lease degradation folded in: an active
  /// continuous query also misses every expected node whose lease has
  /// expired, responded or not.
  std::set<NodeId> EffectiveMissing(const QueryState& state) const;
  /// Sends `subscriber` one AnswerDelta: the objects dirtied since its
  /// synced-through tick (or the full mirror when `full`), advancing its
  /// synced-through mark. Skipped when nothing changed (delta mode).
  void FlushMirror(uint64_t qid, QueryState* state, NodeId subscriber,
                   bool full, bool rejoin_catchup);

  struct Lease {
    uint64_t incarnation = 0;
    bool expired_counted = false;  ///< Current expiry already counted.
  };

  SimNetwork* network_;
  Clock* clock_;
  std::map<std::string, Polygon> regions_;
  Options options_;
  ReliableEndpoint channel_;
  uint64_t next_qid_ = 1;
  uint64_t tick_hook_id_ = 0;
  Tick last_sweep_tick_ = -1;
  std::map<uint64_t, QueryState> queries_;
  std::map<NodeId, Tick> last_heard_;
  std::map<NodeId, Lease> leases_;
  /// Queries whose deadline expiry has already been counted (DeadlinePassed
  /// is const and idempotent; the metric must fire once per query).
  mutable std::set<uint64_t> deadline_counted_;
  /// Attached to the global registry for the coordinator's lifetime.
  obs::Counter queries_issued_;
  obs::Counter reports_received_;
  obs::Counter resyncs_;
  /// Request frames the bounded channel refused (Backpressure::kShed):
  /// the target stays in `expected`, so answers read kStale + missing
  /// until the partition-heal re-sync reaches it.
  obs::Counter requests_shed_;
  mutable obs::Counter deadline_expired_;
  obs::Counter lease_expirations_;
  obs::Counter rejoins_;
  obs::Counter catchup_deltas_;
  obs::Counter catchup_bytes_;
  obs::Counter mirror_deltas_;
  obs::Histogram completion_lag_;
  obs::Gauge missing_nodes_gauge_;
  obs::Gauge leases_active_gauge_;
  std::vector<uint64_t> attach_ids_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_COORDINATOR_H_
