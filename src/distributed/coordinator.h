#ifndef MOST_DISTRIBUTED_COORDINATOR_H_
#define MOST_DISTRIBUTED_COORDINATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "distributed/mobile_node.h"
#include "distributed/network.h"
#include "ftl/eval.h"

namespace most {

/// The paper's taxonomy of MOST queries issued at a mobile computer
/// (Section 5.3).
enum class DistQueryClass {
  kSelfReferencing,  ///< Decidable from the issuer's own attributes.
  kObject,           ///< Per-object predicate, independent of other objects.
  kRelationship,     ///< Needs two or more objects at once.
};

/// The query-issuing mobile computer M. Implements the paper's processing
/// strategies:
/// * self-referencing: no communication;
/// * object queries: strategy 1 (collect every object, evaluate at M) or
///   strategy 2 (broadcast the query, nodes filter locally and only
///   matches reply);
/// * relationship queries: collect every object at M (the paper's "most
///   efficient way") and evaluate the multi-variable query centrally.
///
/// The coordinator is asynchronous: issue a query, advance the clock and
/// call SimNetwork::DeliverDue(), then read results.
class Coordinator {
 public:
  Coordinator(SimNetwork* network, Clock* clock,
              std::map<std::string, Polygon> regions);

  NodeId node_id() const { return node_id_; }

  /// Classifies a query. Atoms mentioning two or more object variables
  /// (DIST, WITHIN_SPHERE, cross-variable comparisons) make it a
  /// relationship query; otherwise a single FROM variable over
  /// `self_class` is self-referencing and anything else is an object
  /// query.
  static DistQueryClass Classify(const FtlQuery& query,
                                 const std::string& self_class = "SELF");

  /// Issues an object query (single-variable). Returns the query id.
  uint64_t IssueObjectQuery(const FtlQuery& query, DistStrategy strategy,
                            bool continuous, Tick horizon);

  /// Issues a relationship query: requests every object, evaluation
  /// happens at the coordinator once replies arrive.
  uint64_t IssueRelationshipQuery(const FtlQuery& query, Tick horizon);

  Status CancelQuerySubscription(uint64_t qid);

  /// Accumulated per-query state.
  struct QueryState {
    FtlQuery query;
    DistStrategy strategy = DistStrategy::kBroadcastFilter;
    bool continuous = false;
    Tick horizon = 256;
    size_t replies = 0;
    /// Latest object states received (collect strategy / relationship).
    std::map<ObjectId, ObjectState> states;
    /// Matches reported by nodes (broadcast strategy).
    std::map<ObjectId, IntervalSet> matches;
  };

  Result<const QueryState*> GetState(uint64_t qid) const;

  /// For collect-strategy object queries and relationship queries:
  /// evaluates the query centrally over the gathered object states.
  Result<TemporalRelation> EvaluateCollected(uint64_t qid) const;

  /// For broadcast-strategy queries: the matches reported so far.
  Result<std::map<ObjectId, IntervalSet>> ReportedMatches(uint64_t qid) const;

 private:
  void HandleMessage(const Message& message);

  SimNetwork* network_;
  Clock* clock_;
  std::map<std::string, Polygon> regions_;
  NodeId node_id_ = kInvalidNodeId;
  uint64_t next_qid_ = 1;
  std::map<uint64_t, QueryState> queries_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_COORDINATOR_H_
