#ifndef MOST_DISTRIBUTED_TRANSMISSION_H_
#define MOST_DISTRIBUTED_TRANSMISSION_H_

#include <vector>

#include "distributed/network.h"
#include "distributed/reliable_channel.h"

namespace most {

/// How a server pushes Answer(CQ) to a mobile client (Section 5.2):
/// * kImmediate — the whole set right after computation; if the client can
///   only hold B tuples, the set is sorted by `begin` and shipped in
///   blocks of B, the next block going out once every tuple of the
///   previous block has expired.
/// * kDelayed — each tuple is transmitted so it arrives at its `begin`
///   time and the client displays it until `end`.
enum class TransmissionMode { kImmediate, kDelayed };

struct TransmissionOptions {
  TransmissionMode mode = TransmissionMode::kImmediate;
  /// Client memory limit in tuples (immediate mode). 0 = unlimited.
  size_t memory_limit = 0;
  Tick network_latency = 1;  ///< Used to lead delayed sends.
};

/// Server side: schedules AnswerBlock messages for one continuous query's
/// answer set. Call Step() once per tick after advancing the clock.
/// SetAnswer() replaces the schedule outright (an explicit database update
/// changed Answer(CQ)); tuples the client already received are not
/// retracted — they age out at their interval's end, the same
/// eventual-consistency the paper accepts when "the relevant changes are
/// transmitted to M" race against the display.
class AnswerTransmitter {
 public:
  AnswerTransmitter(SimNetwork* network, Clock* clock, NodeId server,
                    NodeId client, uint64_t qid, TransmissionOptions options);
  /// Reliable variant: blocks ride `server_channel`'s ordered stream and
  /// are retransmitted until acknowledged, so a push survives the lossy
  /// wireless link (pair with AnswerClient::Attach(ReliableEndpoint*)).
  AnswerTransmitter(ReliableEndpoint* server_channel, Clock* clock,
                    NodeId client, uint64_t qid, TransmissionOptions options);

  void SetAnswer(std::vector<AnswerTuple> answer);

  /// Emits whatever is due at the current tick.
  void Step();

  size_t tuples_pending() const { return pending_.size(); }

 private:
  void SendBlock(std::vector<AnswerTuple> tuples);

  SimNetwork* network_;
  Clock* clock_;
  ReliableEndpoint* channel_ = nullptr;  ///< Null: legacy best-effort path.
  NodeId server_;
  NodeId client_;
  uint64_t qid_;
  TransmissionOptions options_;
  /// Tuples not yet transmitted, sorted by interval.begin.
  std::vector<AnswerTuple> pending_;
  /// Immediate mode: the last block sent (next block waits for expiry).
  std::vector<AnswerTuple> outstanding_block_;
};

/// Client side: buffers received tuples and renders the display of the
/// current tick. Tracks the peak buffer occupancy so tests can check the
/// memory-limit contract.
class AnswerClient {
 public:
  explicit AnswerClient(Clock* clock) : clock_(clock) {}

  /// Installs this client's handler on an existing network node id.
  void Attach(SimNetwork* network, NodeId node);
  /// Reliable variant: receives AnswerBlocks through the endpoint
  /// (exactly once, in order) instead of a raw network handler.
  void Attach(ReliableEndpoint* endpoint);

  /// Bindings whose interval contains the current tick.
  std::vector<std::vector<ObjectId>> Display() const;

  /// Frees expired tuples; call once per tick.
  void Compact();

  size_t buffered() const { return buffer_.size(); }
  size_t peak_buffered() const { return peak_; }
  uint64_t blocks_received() const { return blocks_received_; }

 private:
  void OnMessage(const Message& m);

  Clock* clock_;
  std::vector<AnswerTuple> buffer_;
  size_t peak_ = 0;
  uint64_t blocks_received_ = 0;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_TRANSMISSION_H_
