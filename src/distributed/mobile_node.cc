#include "distributed/mobile_node.h"

#include "ftl/eval.h"

namespace most {

Result<std::unique_ptr<MostDatabase>> BuildDatabaseFromStates(
    const std::string& class_name, const std::vector<ObjectState>& states,
    const std::map<std::string, Polygon>& regions, Tick now) {
  auto db = std::make_unique<MostDatabase>(now);
  for (const auto& [name, polygon] : regions) {
    MOST_RETURN_IF_ERROR(db->DefineRegion(name, polygon));
  }
  // Declare scalar attributes from the union of attr names (dynamic
  // constants so updatetime semantics stay meaningful).
  std::set<std::string> attr_names;
  for (const ObjectState& s : states) {
    for (const auto& [name, value] : s.attrs) attr_names.insert(name);
  }
  std::vector<AttributeDecl> decls;
  for (const std::string& name : attr_names) {
    decls.push_back({name, /*dynamic=*/true, ValueType::kNull});
  }
  MOST_RETURN_IF_ERROR(
      db->CreateClass(class_name, decls, /*spatial=*/true).status());
  for (const ObjectState& s : states) {
    MOST_ASSIGN_OR_RETURN(MostObject * obj,
                          db->RestoreObject(class_name, s.id));
    // The motion vector is anchored at the state's timestamp.
    obj->SetDynamic(kAttrX, DynamicAttribute(s.position.x, s.at,
                                             TimeFunction::Linear(
                                                 s.velocity.x)));
    obj->SetDynamic(kAttrY, DynamicAttribute(s.position.y, s.at,
                                             TimeFunction::Linear(
                                                 s.velocity.y)));
    for (const auto& [name, value] : s.attrs) {
      obj->SetDynamic(name, DynamicAttribute(value, s.at, TimeFunction()));
    }
  }
  return db;
}

MobileNode::MobileNode(SimNetwork* network, Clock* clock, ObjectState initial,
                       std::map<std::string, Polygon> regions, Options options)
    : network_(network),
      clock_(clock),
      state_(std::move(initial)),
      regions_(std::move(regions)),
      options_(options),
      channel_(network, clock, options.channel),
      home_(options.home) {
  channel_.SetHandler([this](const Message& m) { HandleMessage(m); });
  tick_hook_id_ = network_->AddTickHook([this] { OnTick(); });
}

MobileNode::~MobileNode() { network_->RemoveTickHook(tick_hook_id_); }

void MobileNode::UpdateMotion(Point2 position, Vec2 velocity) {
  state_.position = position;
  state_.velocity = velocity;
  state_.at = clock_->Now();
  ServiceSubscriptions();
}

void MobileNode::UpdateAttr(const std::string& name, double value) {
  state_.attrs[name] = value;
  state_.at = clock_->Now();
  ServiceSubscriptions();
}

Result<IntervalSet> MobileNode::EvaluateSelf(const FtlQuery& query,
                                             Tick horizon) const {
  return EvaluateAnchored(query, horizon, clock_->Now());
}

Result<IntervalSet> MobileNode::EvaluateAnchored(const FtlQuery& query,
                                                 Tick horizon,
                                                 Tick anchor) const {
  if (query.from.size() != 1) {
    return Status::InvalidArgument(
        "node-local evaluation needs a single-variable query");
  }
  ++predicate_evaluations_;
  MOST_ASSIGN_OR_RETURN(
      std::unique_ptr<MostDatabase> db,
      BuildDatabaseFromStates(query.from[0].class_name, {state_}, regions_,
                              anchor));
  FtlEvaluator eval(*db);
  MOST_ASSIGN_OR_RETURN(
      TemporalRelation rel,
      eval.EvaluateQuery(query,
                         Interval(anchor, TickSaturatingAdd(anchor, horizon))));
  auto it = rel.rows.find({state_.id});
  if (it == rel.rows.end()) return IntervalSet();
  return it->second;
}

void MobileNode::HandleMessage(const Message& message) {
  if (const auto* request = std::get_if<QueryRequest>(&message.payload)) {
    if (home_ == kInvalidNodeId) home_ = message.from;
    if (request->strategy == DistStrategy::kCollect) {
      // Strategy 1: just ship the object to the issuer. A continuous
      // collect-query keeps shipping on every change (see
      // ServiceSubscriptions).
      ObjectReport report;
      report.qid = request->qid;
      report.state = state_;
      channel_.SendReliable(message.from, report);
      if (request->continuous) {
        subscriptions_[request->qid] = {*request, message.from, false, {}};
      }
      channel_.SendReliable(message.from, QueryDone{request->qid});
      return;
    }
    // Strategy 2: evaluate locally; reply only when satisfied. One-shot
    // requests are anchored at their issue tick so a delayed
    // (retransmitted) delivery computes the same answer.
    Tick anchor = request->continuous ? clock_->Now() : request->issued_at;
    Result<IntervalSet> when =
        EvaluateAnchored(request->query, request->horizon, anchor);
    if (!when.ok()) return;  // Malformed query: stay silent.
    if (request->continuous) {
      // A (re-)subscription always reports the current answer, even an
      // empty one: after a partition heals, the re-synced report corrects
      // whatever stale match the issuer may still hold for this node.
      ObjectReport report;
      report.qid = request->qid;
      report.state = state_;
      report.satisfies = !when->empty();
      report.when = *when;
      channel_.SendReliable(message.from, report);
      subscriptions_[request->qid] =
          Subscription{*request, message.from, true, *when};
    } else if (!when->empty()) {
      ObjectReport report;
      report.qid = request->qid;
      report.state = state_;
      report.satisfies = true;
      report.when = *when;
      channel_.SendReliable(message.from, report);
    }
    channel_.SendReliable(message.from, QueryDone{request->qid});
    return;
  }
  if (const auto* cancel = std::get_if<CancelQuery>(&message.payload)) {
    subscriptions_.erase(cancel->qid);
    return;
  }
}

void MobileNode::ServiceSubscriptions() {
  for (auto& [qid, sub] : subscriptions_) {
    if (sub.request.strategy == DistStrategy::kCollect) {
      // Strategy 1 continuous: transmit the object on every change.
      ObjectReport report;
      report.qid = qid;
      report.state = state_;
      channel_.SendReliable(sub.issuer, report);
      continue;
    }
    // Strategy 2 continuous: transmit only when the local answer changed.
    Result<IntervalSet> when =
        EvaluateSelf(sub.request.query, sub.request.horizon);
    if (!when.ok()) continue;
    if (sub.has_last && *when == sub.last_sent) continue;
    sub.has_last = true;
    sub.last_sent = *when;
    ObjectReport report;
    report.qid = qid;
    report.state = state_;
    report.satisfies = !when->empty();
    report.when = *when;
    channel_.SendReliable(sub.issuer, report);
  }
}

void MobileNode::OnTick() {
  if (options_.beacon_interval <= 0 || home_ == kInvalidNodeId) return;
  Tick now = clock_->Now();
  // Aligned to absolute ticks, and at most once per tick (DeliverDue may
  // run several times within one).
  if (now % options_.beacon_interval != 0 || now == last_beacon_tick_) return;
  last_beacon_tick_ = now;
  channel_.SendBestEffort(home_, state_);
}

}  // namespace most
