#include "distributed/mobile_node.h"

#include "ftl/eval.h"
#include "ftl/query_manager.h"

namespace most {

Result<std::unique_ptr<MostDatabase>> BuildDatabaseFromStates(
    const std::string& class_name, const std::vector<ObjectState>& states,
    const std::map<std::string, Polygon>& regions, Tick now) {
  auto db = std::make_unique<MostDatabase>(now);
  for (const auto& [name, polygon] : regions) {
    MOST_RETURN_IF_ERROR(db->DefineRegion(name, polygon));
  }
  // Declare scalar attributes from the union of attr names (dynamic
  // constants so updatetime semantics stay meaningful).
  std::set<std::string> attr_names;
  for (const ObjectState& s : states) {
    for (const auto& [name, value] : s.attrs) attr_names.insert(name);
  }
  std::vector<AttributeDecl> decls;
  for (const std::string& name : attr_names) {
    decls.push_back({name, /*dynamic=*/true, ValueType::kNull});
  }
  MOST_RETURN_IF_ERROR(
      db->CreateClass(class_name, decls, /*spatial=*/true).status());
  for (const ObjectState& s : states) {
    MOST_ASSIGN_OR_RETURN(MostObject * obj,
                          db->RestoreObject(class_name, s.id));
    // The motion vector is anchored at the state's timestamp.
    obj->SetDynamic(kAttrX, DynamicAttribute(s.position.x, s.at,
                                             TimeFunction::Linear(
                                                 s.velocity.x)));
    obj->SetDynamic(kAttrY, DynamicAttribute(s.position.y, s.at,
                                             TimeFunction::Linear(
                                                 s.velocity.y)));
    for (const auto& [name, value] : s.attrs) {
      obj->SetDynamic(name, DynamicAttribute(value, s.at, TimeFunction()));
    }
  }
  return db;
}

MobileNode::MobileNode(SimNetwork* network, Clock* clock, ObjectState initial,
                       std::map<std::string, Polygon> regions, Options options)
    : network_(network),
      clock_(clock),
      state_(std::move(initial)),
      regions_(std::move(regions)),
      options_(std::move(options)),
      home_(options_.home) {
  ReliableEndpoint::Options channel_options = options_.channel;
  RecoveredNodeState recovered;
  if (!options_.wal_path.empty()) {
    store_ = std::make_unique<NodeDurableState>(options_.wal_path);
    if (store_->Open(&recovered).ok()) {
      if (recovered.found) {
        // A prior incarnation left its state behind: this construction is
        // a restart, not a first boot. Resume its identity and bump the
        // incarnation — the new send-stream epoch fences whatever frames
        // the dead incarnation still has in flight.
        recovered_ = true;
        state_ = recovered.state;
        if (recovered.home != kInvalidNodeId) home_ = recovered.home;
        incarnation_ = recovered.incarnation + 1;
        channel_options.reclaim_node_id = recovered.node_id;
        channel_options.initial_epoch = incarnation_;
      }
    } else {
      store_.reset();  // Unusable log: degrade to the in-memory node.
    }
  }
  channel_ =
      std::make_unique<ReliableEndpoint>(network_, clock_, channel_options);
  channel_->SetHandler([this](const Message& m) { HandleMessage(m); });
  tick_hook_id_ = network_->AddTickHook([this] { OnTick(); });
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_node_recoveries_total",
                      "Node incarnations recovered from a WAL", {},
                      &recoveries_),
      r.AttachCounter("most_node_deltas_applied_total",
                      "AnswerDelta catch-up messages applied to mirrors", {},
                      &deltas_applied_counter_),
  };
  PersistIdentity();
  PersistState();
  if (recovered_) {
    recoveries_.Inc();
    for (const RecoveredNodeState::Subscription& sub :
         recovered.subscriptions) {
      subscriptions_[sub.request.qid] =
          Subscription{sub.request, sub.issuer, false, {}};
    }
    for (auto& [qid, mirror] : recovered.mirrors) {
      mirrors_[qid] = Mirror{mirror.anchor, std::move(mirror.rows)};
    }
    Rejoin();
  }
}

MobileNode::~MobileNode() {
  network_->RemoveTickHook(tick_hook_id_);
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

void MobileNode::PersistIdentity() {
  if (!store_) return;
  // Best-effort: an injected append failure (wal/append/enospc) leaves the
  // previous durable identity standing, which a restart then recovers.
  (void)store_->SaveIdentity(channel_->node_id(), home_, incarnation_);
}

void MobileNode::PersistState() {
  if (!store_) return;
  (void)store_->SaveState(state_);
}

void MobileNode::Rejoin() {
  if (home_ == kInvalidNodeId) return;
  JoinRequest join;
  join.incarnation = incarnation_;
  join.state = state_;
  for (const auto& [qid, sub] : subscriptions_) {
    join.subscribed_qids.push_back(qid);
  }
  for (const auto& [qid, mirror] : mirrors_) {
    join.mirror_anchors.emplace_back(qid, mirror.anchor);
  }
  channel_->SendReliable(home_, join);
  // Re-answer every recovered subscription. The issuer may also re-send
  // the request on seeing the JoinRequest; both paths are idempotent, and
  // together they make delivery across the crash boundary at-least-once.
  std::vector<std::pair<QueryRequest, NodeId>> recovered_subs;
  recovered_subs.reserve(subscriptions_.size());
  for (const auto& [qid, sub] : subscriptions_) {
    recovered_subs.emplace_back(sub.request, sub.issuer);
  }
  for (const auto& [request, issuer] : recovered_subs) {
    AnswerRequest(request, issuer);
  }
}

void MobileNode::UpdateMotion(Point2 position, Vec2 velocity) {
  state_.position = position;
  state_.velocity = velocity;
  state_.at = clock_->Now();
  PersistState();
  ServiceSubscriptions();
}

void MobileNode::UpdateAttr(const std::string& name, double value) {
  state_.attrs[name] = value;
  state_.at = clock_->Now();
  PersistState();
  ServiceSubscriptions();
}

Result<IntervalSet> MobileNode::EvaluateSelf(const FtlQuery& query,
                                             Tick horizon) const {
  return EvaluateAnchored(query, horizon, clock_->Now());
}

Result<IntervalSet> MobileNode::EvaluateAnchored(const FtlQuery& query,
                                                 Tick horizon,
                                                 Tick anchor) const {
  if (query.from.size() != 1) {
    return Status::InvalidArgument(
        "node-local evaluation needs a single-variable query");
  }
  ++predicate_evaluations_;
  MOST_ASSIGN_OR_RETURN(
      std::unique_ptr<MostDatabase> db,
      BuildDatabaseFromStates(query.from[0].class_name, {state_}, regions_,
                              anchor));
  FtlEvaluator eval(*db);
  MOST_ASSIGN_OR_RETURN(
      TemporalRelation rel,
      eval.EvaluateQuery(query,
                         Interval(anchor, TickSaturatingAdd(anchor, horizon))));
  auto it = rel.rows.find({state_.id});
  if (it == rel.rows.end()) return IntervalSet();
  return it->second;
}

const std::map<ObjectId, IntervalSet>* MobileNode::AnswerMirror(
    uint64_t qid) const {
  auto it = mirrors_.find(qid);
  return it == mirrors_.end() ? nullptr : &it->second.rows;
}

Tick MobileNode::MirrorAnchor(uint64_t qid) const {
  auto it = mirrors_.find(qid);
  return it == mirrors_.end() ? 0 : it->second.anchor;
}

void MobileNode::AnswerRequest(const QueryRequest& request, NodeId issuer) {
  // Parents under the coordinator's coord/issue span via the delivered
  // message's context; the reports sent below carry this span onward.
  obs::TraceSpan span("node/answer_request", "dist");
  span.AnnotateU64("qid", request.qid);
  span.AnnotateU64("node", node_id());
  if (request.strategy == DistStrategy::kCollect) {
    // Strategy 1: just ship the object to the issuer. A continuous
    // collect-query keeps shipping on every change (see
    // ServiceSubscriptions).
    ObjectReport report;
    report.qid = request.qid;
    report.state = state_;
    channel_->SendReliable(issuer, report);
    if (request.continuous) {
      subscriptions_[request.qid] = {request, issuer, false, {}};
      if (store_) (void)store_->SaveSubscription(request, issuer);
    }
    channel_->SendReliable(issuer, QueryDone{request.qid});
    return;
  }
  // Strategy 2: evaluate locally; reply only when satisfied. One-shot
  // requests are anchored at their issue tick so a delayed
  // (retransmitted) delivery computes the same answer.
  Tick anchor = request.continuous ? clock_->Now() : request.issued_at;
  Result<IntervalSet> when =
      EvaluateAnchored(request.query, request.horizon, anchor);
  if (!when.ok()) return;  // Malformed query: stay silent.
  if (request.continuous) {
    // A (re-)subscription always reports the current answer, even an
    // empty one: after a partition heals, the re-synced report corrects
    // whatever stale match the issuer may still hold for this node.
    ObjectReport report;
    report.qid = request.qid;
    report.state = state_;
    report.satisfies = !when->empty();
    report.when = *when;
    channel_->SendReliable(issuer, report);
    subscriptions_[request.qid] = Subscription{request, issuer, true, *when};
    if (store_) (void)store_->SaveSubscription(request, issuer);
  } else if (!when->empty()) {
    ObjectReport report;
    report.qid = request.qid;
    report.state = state_;
    report.satisfies = true;
    report.when = *when;
    channel_->SendReliable(issuer, report);
  }
  channel_->SendReliable(issuer, QueryDone{request.qid});
}

void MobileNode::ApplyAnswerDelta(const AnswerDelta& delta) {
  Mirror& mirror = mirrors_[delta.qid];
  // A delta anchored at or before what the mirror already reflects is a
  // duplicate (at-least-once across a crash boundary) or arrived out of
  // band: skip it rather than regress the anchor.
  if (mirror.anchor != 0 && delta.anchor <= mirror.anchor) return;
  if (delta.full) {
    mirror.rows.clear();
    if (store_) (void)store_->ClearMirror(delta.qid);
  }
  SpliceAnswerDelta(&mirror.rows, delta.upserts, delta.removals);
  if (store_) {
    for (const auto& [obj, when] : delta.upserts) {
      if (when.empty()) {
        (void)store_->RemoveMirrorRow(delta.qid, obj);
      } else {
        (void)store_->UpsertMirrorRow(delta.qid, obj, when);
      }
    }
    for (ObjectId obj : delta.removals) {
      (void)store_->RemoveMirrorRow(delta.qid, obj);
    }
  }
  mirror.anchor = delta.anchor;
  if (store_) (void)store_->SaveMirrorAnchor(delta.qid, delta.anchor);
  ++deltas_applied_;
  deltas_applied_counter_.Inc();
}

void MobileNode::HandleMessage(const Message& message) {
  if (const auto* request = std::get_if<QueryRequest>(&message.payload)) {
    if (home_ == kInvalidNodeId) {
      home_ = message.from;
      PersistIdentity();
    }
    AnswerRequest(*request, message.from);
    return;
  }
  if (const auto* cancel = std::get_if<CancelQuery>(&message.payload)) {
    subscriptions_.erase(cancel->qid);
    mirrors_.erase(cancel->qid);
    if (store_) {
      (void)store_->RemoveSubscription(cancel->qid);
      (void)store_->ClearMirror(cancel->qid);
    }
    return;
  }
  if (const auto* delta = std::get_if<AnswerDelta>(&message.payload)) {
    ApplyAnswerDelta(*delta);
    return;
  }
  if (std::get_if<JoinAck>(&message.payload) != nullptr) {
    // The coordinator acknowledged the rejoin; nothing further to do —
    // the lease is the coordinator's bookkeeping, renewed by beacons.
    return;
  }
}

void MobileNode::ServiceSubscriptions() {
  for (auto& [qid, sub] : subscriptions_) {
    if (sub.request.strategy == DistStrategy::kCollect) {
      // Strategy 1 continuous: transmit the object on every change.
      ObjectReport report;
      report.qid = qid;
      report.state = state_;
      channel_->SendReliable(sub.issuer, report);
      continue;
    }
    // Strategy 2 continuous: transmit only when the local answer changed.
    Result<IntervalSet> when =
        EvaluateSelf(sub.request.query, sub.request.horizon);
    if (!when.ok()) continue;
    if (sub.has_last && *when == sub.last_sent) continue;
    sub.has_last = true;
    sub.last_sent = *when;
    ObjectReport report;
    report.qid = qid;
    report.state = state_;
    report.satisfies = !when->empty();
    report.when = *when;
    channel_->SendReliable(sub.issuer, report);
  }
}

void MobileNode::OnTick() {
  if (options_.beacon_interval <= 0 || home_ == kInvalidNodeId) return;
  Tick now = clock_->Now();
  // Aligned to absolute ticks, and at most once per tick (DeliverDue may
  // run several times within one).
  if (now % options_.beacon_interval != 0 || now == last_beacon_tick_) return;
  last_beacon_tick_ = now;
  channel_->SendBestEffort(home_, state_);
}

}  // namespace most
