#ifndef MOST_DISTRIBUTED_NETWORK_H_
#define MOST_DISTRIBUTED_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "ftl/ast.h"
#include "ftl/query_manager.h"
#include "geometry/point.h"
#include "temporal/clock.h"

namespace most {

using NodeId = uint64_t;
inline constexpr NodeId kInvalidNodeId = ~NodeId{0};

/// Snapshot of one moving object as transmitted between mobile computers:
/// id, motion vector (position at `at` plus velocity) and scalar
/// attributes. This is "the object" the paper sends in its distributed
/// processing strategies (Section 5.3).
struct ObjectState {
  ObjectId id = kInvalidObjectId;
  Tick at = 0;
  Point2 position;
  Vec2 velocity;
  std::map<std::string, double> attrs;
};

/// Processing strategy for distributed object queries (Section 5.3): pull
/// every object to the issuer, or push the query to every node and let
/// each filter locally.
enum class DistStrategy { kCollect, kBroadcastFilter };

struct QueryRequest {
  uint64_t qid = 0;
  DistStrategy strategy = DistStrategy::kBroadcastFilter;
  bool continuous = false;
  FtlQuery query;        ///< Single-variable query evaluated per object.
  Tick horizon = 256;
};

/// A node's reply: its object state, and (for broadcast-filter queries)
/// whether/when its object satisfies the predicate.
struct ObjectReport {
  uint64_t qid = 0;
  ObjectState state;
  bool satisfies = false;
  IntervalSet when;
};

/// A block of Answer(CQ) tuples pushed to a mobile client (Section 5.2).
struct AnswerBlock {
  uint64_t qid = 0;
  std::vector<AnswerTuple> tuples;
};

struct CancelQuery {
  uint64_t qid = 0;
};

using MessagePayload =
    std::variant<ObjectState, QueryRequest, ObjectReport, AnswerBlock,
                 CancelQuery>;

/// Approximate wire size of a payload, for the bandwidth accounting the
/// paper's motivation rests on ("serious performance and
/// wireless-bandwidth overhead").
size_t EstimateBytes(const MessagePayload& payload);

struct Message {
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  Tick sent_at = 0;
  Tick deliver_at = 0;
  MessagePayload payload;
};

/// Discrete-event wireless network simulator. Nodes register handlers;
/// messages are delivered `latency` ticks after sending when both
/// endpoints are connected. Per-node and global message/byte counters feed
/// experiments E7/E8.
class SimNetwork {
 public:
  struct Options {
    Tick latency = 1;
    /// Probability a message is lost in transit (per message).
    double loss_probability = 0.0;
    uint64_t seed = 1997;
  };

  explicit SimNetwork(Clock* clock) : SimNetwork(clock, Options()) {}
  SimNetwork(Clock* clock, Options options)
      : clock_(clock), options_(options), rng_(options.seed) {}

  using Handler = std::function<void(const Message&)>;

  NodeId AddNode(Handler handler);
  void SetHandler(NodeId node, Handler handler);
  size_t num_nodes() const { return nodes_.size(); }

  /// Disconnected nodes neither send nor receive; messages involving them
  /// are dropped (the paper's disconnection scenario).
  void SetConnected(NodeId node, bool connected);
  bool IsConnected(NodeId node) const;

  void Send(NodeId from, NodeId to, MessagePayload payload);
  /// Sends to every other node (the broadcast step of strategy 2).
  void Broadcast(NodeId from, MessagePayload payload);

  /// Delivers every message whose delivery time has arrived. Call after
  /// each clock advance.
  void DeliverDue();

  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t messages_dropped = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  struct Node {
    Handler handler;
    bool connected = true;
  };

  Clock* clock_;
  Options options_;
  Rng rng_;
  std::map<NodeId, Node> nodes_;
  NodeId next_id_ = 0;
  std::deque<Message> in_flight_;
  Stats stats_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_NETWORK_H_
