#ifndef MOST_DISTRIBUTED_NETWORK_H_
#define MOST_DISTRIBUTED_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "ftl/ast.h"
#include "ftl/query_manager.h"
#include "geometry/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "temporal/clock.h"

namespace most {

using NodeId = uint64_t;
inline constexpr NodeId kInvalidNodeId = ~NodeId{0};

/// Snapshot of one moving object as transmitted between mobile computers:
/// id, motion vector (position at `at` plus velocity) and scalar
/// attributes. This is "the object" the paper sends in its distributed
/// processing strategies (Section 5.3). Standalone ObjectState messages
/// are the dead-reckoning position beacons: best-effort, latest-wins —
/// losing one is harmless because the next one supersedes it.
struct ObjectState {
  ObjectId id = kInvalidObjectId;
  Tick at = 0;
  Point2 position;
  Vec2 velocity;
  std::map<std::string, double> attrs;
};

/// Processing strategy for distributed object queries (Section 5.3): pull
/// every object to the issuer, or push the query to every node and let
/// each filter locally.
enum class DistStrategy { kCollect, kBroadcastFilter };

struct QueryRequest {
  uint64_t qid = 0;
  DistStrategy strategy = DistStrategy::kBroadcastFilter;
  bool continuous = false;
  FtlQuery query;        ///< Single-variable query evaluated per object.
  Tick horizon = 256;
  /// Tick at which the issuer posed the query. One-shot evaluations are
  /// anchored at this tick (the paper's "instantaneous query at time t"),
  /// so a request that reaches a node late — retransmitted across a lossy
  /// link or a healed partition — still computes the same answer as one
  /// that arrived immediately.
  Tick issued_at = 0;
};

/// A node's reply: its object state, and (for broadcast-filter queries)
/// whether/when its object satisfies the predicate.
struct ObjectReport {
  uint64_t qid = 0;
  ObjectState state;
  bool satisfies = false;
  IntervalSet when;
};

/// A block of Answer(CQ) tuples pushed to a mobile client (Section 5.2).
struct AnswerBlock {
  uint64_t qid = 0;
  std::vector<AnswerTuple> tuples;
};

struct CancelQuery {
  uint64_t qid = 0;
};

/// Completion marker: "every report I owe for `qid` is already in the
/// reliable stream ahead of this message". Because the reliable channel
/// delivers in order per (src, dst), receiving QueryDone proves the
/// coordinator holds everything the node had to say — the basis for the
/// expected/responded/missing completeness accounting.
struct QueryDone {
  uint64_t qid = 0;
};

/// Rejoin handshake from a durable node that restarted from its WAL
/// (docs/distributed.md, "Crash, rejoin, and catch-up"). `incarnation` is
/// the node's restart counter — strictly increasing across crashes, it
/// doubles as the initial stream epoch, so frames from the node's dead
/// pre-crash incarnation are fenced by the reliable channel's epoch
/// machinery. The request names what the node already recovered on its
/// own (its subscriptions and Answer(CQ) mirror anchors), so the
/// coordinator only has to ship what the node missed while dead.
struct JoinRequest {
  uint64_t incarnation = 0;
  ObjectState state;
  /// Continuous subscriptions recovered from the node's WAL; the node
  /// re-reports these itself, so the coordinator must not re-send them.
  std::vector<uint64_t> subscribed_qids;
  /// qid -> anchor tick of each recovered Answer(CQ) mirror: the mirror
  /// reflects every coordinator-side change stamped <= anchor, so the
  /// catch-up delta starts right after it.
  std::vector<std::pair<uint64_t, Tick>> mirror_anchors;
};

/// Coordinator's lease grant answering a JoinRequest: the node is a
/// member until `lease_until` unless renewed by heartbeat traffic.
struct JoinAck {
  uint64_t incarnation = 0;
  Tick lease_until = 0;
};

/// A slice of a continuous query's Answer(CQ), pushed coordinator->node
/// so mirrors splice per-object deltas instead of re-requesting the full
/// relation (ROADMAP item (b); the wire form of QueryManager::OnUpdate's
/// dirty sets). `full` replaces the whole mirror (the legacy resync
/// path, kept for the bench comparison); otherwise the delta covers
/// exactly the objects whose answer changed in (base, anchor].
struct AnswerDelta {
  uint64_t qid = 0;
  bool full = false;
  Tick base = 0;
  Tick anchor = 0;
  std::vector<std::pair<ObjectId, IntervalSet>> upserts;
  std::vector<ObjectId> removals;
};

/// Application-level payloads (what handlers see).
using AppPayload =
    std::variant<ObjectState, QueryRequest, ObjectReport, AnswerBlock,
                 CancelQuery, QueryDone, JoinRequest, JoinAck, AnswerDelta>;

/// A sequenced frame of the reliable channel (reliable_channel.h): the
/// app payload plus its per-(src,dst) sequence number and stream epoch.
/// The epoch increments when the sender evicts a dead peer's buffer and
/// restarts the stream from seq 0 (bounded-buffer semantics,
/// docs/robustness.md); a receiver adopts the highest epoch it has seen
/// and discards frames from older ones, so an evicted-then-healed pair
/// resynchronizes instead of deadlocking on a permanent sequence gap.
struct ReliableFrame {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  AppPayload inner;
};

/// Cumulative acknowledgement: "I have delivered every frame of `epoch`
/// with seq < ack_through to my application, in order." Acks carrying a
/// stale epoch are ignored by the sender.
struct AckFrame {
  uint64_t epoch = 0;
  uint64_t ack_through = 0;
};

using MessagePayload =
    std::variant<ObjectState, QueryRequest, ObjectReport, AnswerBlock,
                 CancelQuery, QueryDone, JoinRequest, JoinAck, AnswerDelta,
                 ReliableFrame, AckFrame>;

/// Short stable name of a payload's type ("query_request", "ack", ...).
/// Reliable frames resolve to their inner payload's name, so failpoint
/// sites target the logical message, not the framing.
const char* PayloadTypeName(const MessagePayload& payload);

/// Approximate wire size of a payload, for the bandwidth accounting the
/// paper's motivation rests on ("serious performance and
/// wireless-bandwidth overhead").
size_t EstimateBytes(const MessagePayload& payload);

struct Message {
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  Tick sent_at = 0;
  Tick deliver_at = 0;
  MessagePayload payload;
  /// Trace context of the send site, stamped by SimNetwork::Send and
  /// installed as the receiver's ambient context around the delivery
  /// handler — the wire half of causal tracing (docs/observability.md).
  /// Invalid (all-zero) when tracing is disabled.
  obs::TraceContext trace;
};

/// Discrete-event wireless network simulator. Nodes register handlers;
/// messages are delivered `latency` ticks after sending when both
/// endpoints are connected. Per-node and global message/byte counters feed
/// experiments E7/E8.
///
/// Fault model (the paper's unreliable wireless medium, Section 5.2–5.3):
/// * loss          — each message is dropped with `loss_probability`;
/// * duplication   — each delivered message is cloned with
///                   `duplicate_probability` (the clone gets its own
///                   jittered delay);
/// * reordering    — each message gains 1..reorder_jitter extra delay
///                   ticks with `reorder_probability`, so it overtakes /
///                   is overtaken by its neighbours;
/// * disconnection — SetConnected(node, false): the node neither sends
///                   nor receives;
/// * partitions    — Partition(name, a, b): messages between group a and
///                   group b are dropped until Heal(name). Partitions are
///                   enforced at delivery time, so messages in flight
///                   when the cut appears are lost too.
///
/// Failpoint sites (common/failpoint.h) let tests and MOST_FAILPOINTS
/// force faults per payload type:
///   dist/net/send/<type>     armed `error` drops the message at the
///   dist/net/deliver/<type>  sender / receiver (counted dropped_injected);
///   dist/net/delay/<type>    armed `error` adds reorder_jitter delay
///                            ticks (counted reordered).
/// <type> is PayloadTypeName() of the message ("query_request", ...).
class SimNetwork {
 public:
  struct Options {
    Tick latency = 1;
    /// Probability a message is lost in transit (per message).
    double loss_probability = 0.0;
    /// Probability a message is duplicated in transit (per message).
    double duplicate_probability = 0.0;
    /// Probability a message gets extra delay (and thus may be reordered).
    double reorder_probability = 0.0;
    /// Maximum extra delay, in ticks, a reordered message receives.
    Tick reorder_jitter = 3;
    uint64_t seed = 1997;
  };

  explicit SimNetwork(Clock* clock) : SimNetwork(clock, Options()) {}
  /// Attaches this instance's traffic counters to the global metrics
  /// registry (most_net_* series; same-name series across simulators sum).
  SimNetwork(Clock* clock, Options options);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  using Handler = std::function<void(const Message&)>;

  NodeId AddNode(Handler handler);
  void SetHandler(NodeId node, Handler handler);
  /// True when `node` was ever added (its entry — and thus its id —
  /// survives a crashed endpoint whose handler was nulled; restarting
  /// endpoints reclaim the id via ReliableEndpoint::Options).
  bool HasNode(NodeId node) const { return nodes_.count(node) > 0; }
  size_t num_nodes() const { return nodes_.size(); }
  std::vector<NodeId> NodeIds() const;

  /// Disconnected nodes neither send nor receive; messages involving them
  /// are dropped (the paper's disconnection scenario).
  void SetConnected(NodeId node, bool connected);
  bool IsConnected(NodeId node) const;

  /// Installs a named partition: messages with one endpoint in `a` and
  /// the other in `b` are dropped (in both directions) until Heal(name).
  /// Re-using a name replaces that partition.
  void Partition(const std::string& name, std::set<NodeId> a,
                 std::set<NodeId> b);
  void Heal(const std::string& name);
  void HealAll();
  /// True when no active partition separates `a` from `b`.
  bool Reachable(NodeId a, NodeId b) const;

  void Send(NodeId from, NodeId to, MessagePayload payload);
  /// Sends to every other node (the broadcast step of strategy 2).
  void Broadcast(NodeId from, MessagePayload payload);

  /// Registers a callback invoked at the start of every DeliverDue() —
  /// the hook reliable channels use to drive retransmission timers.
  /// Returns an id for RemoveTickHook.
  uint64_t AddTickHook(std::function<void()> hook);
  void RemoveTickHook(uint64_t id);

  /// Delivers every message whose delivery time has arrived. Call after
  /// each clock advance.
  void DeliverDue();

  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t messages_delivered = 0;
    /// Drop reasons, counted separately so experiments can tell random
    /// loss from disconnection from partitions from injected faults.
    uint64_t dropped_loss = 0;
    uint64_t dropped_disconnected = 0;
    uint64_t dropped_partition = 0;
    uint64_t dropped_injected = 0;
    uint64_t duplicated = 0;
    uint64_t reordered = 0;

    uint64_t dropped_total() const {
      return dropped_loss + dropped_disconnected + dropped_partition +
             dropped_injected;
    }
    uint64_t faults_total() const {
      return dropped_total() - dropped_disconnected + duplicated + reordered;
    }
  };
  /// By-value snapshot. Every field is read from its own atomic counter,
  /// so a reader thread racing a simulation thread never tears a word or
  /// trips TSan (individual fields are coherent; cross-field skew is
  /// bounded by one in-flight increment).
  Stats stats() const;
  void ResetStats();

 private:
  struct Node {
    Handler handler;
    bool connected = true;
  };

  void Enqueue(NodeId from, NodeId to, const MessagePayload& payload,
               Tick extra_delay);

  Clock* clock_;
  Options options_;
  Rng rng_;
  std::map<NodeId, Node> nodes_;
  NodeId next_id_ = 0;
  std::deque<Message> in_flight_;
  std::map<std::string, std::pair<std::set<NodeId>, std::set<NodeId>>>
      partitions_;
  std::map<uint64_t, std::function<void()>> tick_hooks_;
  uint64_t next_hook_id_ = 0;
  /// Stats is a thin snapshot view over these; they are attached to the
  /// global registry for the simulator's lifetime.
  obs::Counter messages_sent_;
  obs::Counter bytes_sent_;
  obs::Counter messages_delivered_;
  obs::Counter dropped_loss_;
  obs::Counter dropped_disconnected_;
  obs::Counter dropped_partition_;
  obs::Counter dropped_injected_;
  obs::Counter duplicated_;
  obs::Counter reordered_;
  std::vector<uint64_t> attach_ids_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_NETWORK_H_
