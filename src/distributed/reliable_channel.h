#ifndef MOST_DISTRIBUTED_RELIABLE_CHANNEL_H_
#define MOST_DISTRIBUTED_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>

#include "distributed/network.h"

namespace most {

/// One participant's end of the reliability layer between the distributed
/// query protocol and the lossy SimNetwork.
///
/// The wireless medium the paper assumes loses, duplicates, delays and
/// partitions messages; the protocol above (coordinator.h, mobile_node.h)
/// wants two delivery classes:
///
/// * reliable   — QueryRequest, ObjectReport, AnswerBlock, CancelQuery,
///   QueryDone. Each (src, dst) pair carries an ordered stream: frames
///   get consecutive sequence numbers, unacknowledged frames are
///   retransmitted with capped exponential backoff on every DeliverDue
///   tick, the receiver suppresses duplicates and buffers out-of-order
///   arrivals, and the application handler sees each payload exactly
///   once, in send order. Acknowledgements are cumulative
///   (AckFrame::ack_through = next sequence number the receiver expects),
///   so an ack also certifies that everything before it was *delivered to
///   the application*, not merely received.
/// * best-effort — ObjectState position beacons (the paper's
///   dead-reckoning updates): latest-wins, a lost beacon is superseded by
///   the next one, so they bypass sequencing entirely.
///
/// Retransmission never gives up: a frame destined for a partitioned or
/// disconnected node is retried (at the backoff cap) until the partition
/// heals, which is what lets post-heal answers converge to the lossless
/// run. The per-frame cost while a peer is unreachable is one message
/// every `rto_max` ticks.
///
/// The endpoint registers itself as a network node; the wrapped protocol
/// object installs its message handler with SetHandler and sends through
/// SendReliable / SendBestEffort. Handlers receive plain AppPayload
/// messages — framing and acks never reach them.
class ReliableEndpoint {
 public:
  struct Options {
    /// Ticks before the first retransmission of an unacked frame. Should
    /// comfortably exceed one round trip (2 * latency).
    Tick rto_initial = 4;
    /// Backoff cap: retransmission interval doubles per retry up to this.
    Tick rto_max = 32;
  };

  ReliableEndpoint(SimNetwork* network, Clock* clock);
  ReliableEndpoint(SimNetwork* network, Clock* clock, Options options);
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  NodeId node_id() const { return node_id_; }
  SimNetwork* network() const { return network_; }

  using Handler = std::function<void(const Message&)>;

  /// Application handler for delivered payloads (reliable ones exactly
  /// once and in order per peer; best-effort ones as they arrive).
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Observer invoked for every raw incoming network message — frames and
  /// acks included — before any channel processing. Liveness tracking
  /// hangs off this: any traffic from a peer proves it reachable.
  void SetRawObserver(Handler observer) { raw_observer_ = std::move(observer); }

  void SendReliable(NodeId to, AppPayload payload);
  void SendBestEffort(NodeId to, AppPayload payload);
  /// Reliable / best-effort send to every other node in the network.
  void BroadcastReliable(const AppPayload& payload);
  void BroadcastBestEffort(const AppPayload& payload);

  /// Frames sent but not yet cumulatively acknowledged, across all peers.
  /// Zero means the channel is quiescent.
  size_t unacked() const;

  struct Stats {
    uint64_t frames_sent = 0;  ///< First transmissions (not retries).
    uint64_t retransmissions = 0;
    uint64_t acks_sent = 0;
    uint64_t delivered = 0;  ///< Handed to the application handler.
    uint64_t duplicates_suppressed = 0;
    uint64_t out_of_order_buffered = 0;
  };
  /// By-value snapshot over this endpoint's attached atomic counters
  /// (most_rc_* series; summed across endpoints by the registry).
  Stats stats() const;

 private:
  struct PendingFrame {
    AppPayload payload;
    Tick next_retry = 0;
    Tick rto = 0;
  };
  struct SendState {
    uint64_t next_seq = 0;
    std::map<uint64_t, PendingFrame> pending;  ///< By sequence number.
  };
  struct RecvState {
    uint64_t next_expected = 0;
    std::map<uint64_t, AppPayload> buffer;  ///< Out-of-order arrivals.
  };

  void OnMessage(const Message& message);
  void OnTick();
  void DeliverToApp(const Message& envelope, const AppPayload& payload);

  SimNetwork* network_;
  Clock* clock_;
  Options options_;
  NodeId node_id_ = kInvalidNodeId;
  uint64_t tick_hook_id_ = 0;
  Handler handler_;
  Handler raw_observer_;
  std::map<NodeId, SendState> send_;
  std::map<NodeId, RecvState> recv_;
  /// Stats is a thin snapshot view over these (attached to the global
  /// registry for the endpoint's lifetime), plus an in-flight-depth gauge
  /// mirroring unacked().
  obs::Counter frames_sent_;
  obs::Counter retransmissions_;
  obs::Counter acks_sent_;
  obs::Counter delivered_;
  obs::Counter duplicates_suppressed_;
  obs::Counter out_of_order_buffered_;
  obs::Gauge unacked_gauge_;
  std::vector<uint64_t> attach_ids_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_RELIABLE_CHANNEL_H_
