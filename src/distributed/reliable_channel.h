#ifndef MOST_DISTRIBUTED_RELIABLE_CHANNEL_H_
#define MOST_DISTRIBUTED_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/budget.h"
#include "distributed/network.h"

namespace most {

/// One participant's end of the reliability layer between the distributed
/// query protocol and the lossy SimNetwork.
///
/// The wireless medium the paper assumes loses, duplicates, delays and
/// partitions messages; the protocol above (coordinator.h, mobile_node.h)
/// wants two delivery classes:
///
/// * reliable   — QueryRequest, ObjectReport, AnswerBlock, CancelQuery,
///   QueryDone. Each (src, dst) pair carries an ordered stream: frames
///   get consecutive sequence numbers, unacknowledged frames are
///   retransmitted with capped exponential backoff on every DeliverDue
///   tick, the receiver suppresses duplicates and buffers out-of-order
///   arrivals, and the application handler sees each payload exactly
///   once, in send order. Acknowledgements are cumulative
///   (AckFrame::ack_through = next sequence number the receiver expects),
///   so an ack also certifies that everything before it was *delivered to
///   the application*, not merely received.
/// * best-effort — ObjectState position beacons (the paper's
///   dead-reckoning updates): latest-wins, a lost beacon is superseded by
///   the next one, so they bypass sequencing entirely.
///
/// Retransmission persists while a peer is unreachable — one message every
/// `rto_max` ticks per pending frame — but it is *bounded*, not infinite
/// (docs/robustness.md): each peer's unacked buffer is capped in messages
/// and bytes (SendReliable returns Backpressure and sheds the frame at
/// capacity instead of queueing without bound), and a peer that has been
/// silent past `peer_dead_horizon` ticks while frames are pending has its
/// buffer evicted outright. Eviction restarts the stream under a new
/// epoch: the next frame the revived peer sees carries a higher
/// ReliableFrame::epoch, the receiver adopts it and resets its sequence
/// state, so the pair resynchronizes instead of waiting forever on frames
/// that no longer exist. Callers that need the evicted state to converge
/// anyway (the coordinator) rely on the protocol-level partition-heal
/// re-sync, which re-issues continuous queries to revived nodes. With
/// every cap at 0 (the default, and no governor limits), buffers are
/// unbounded and retransmission never gives up — the pre-governance
/// behaviour, on which post-heal convergence to the lossless run rests.
///
/// The endpoint registers itself as a network node; the wrapped protocol
/// object installs its message handler with SetHandler and sends through
/// SendReliable / SendBestEffort. Handlers receive plain AppPayload
/// messages — framing and acks never reach them.
class ReliableEndpoint {
 public:
  struct Options {
    /// Ticks before the first retransmission of an unacked frame. Should
    /// comfortably exceed one round trip (2 * latency).
    Tick rto_initial = 4;
    /// Backoff cap: retransmission interval doubles per retry up to this.
    Tick rto_max = 32;
    /// Caps on one peer's unacked buffer: SendReliable sheds (returns
    /// Backpressure::kShed without sending) once either is reached.
    /// 0 = fall back to ResourceGovernor limits, then unbounded.
    size_t max_unacked_messages = 0;
    size_t max_unacked_bytes = 0;
    /// Fraction of either cap at which SendReliable starts reporting
    /// kThrottle (the frame is still sent).
    double throttle_fraction = 0.75;
    /// Evict a peer's whole send buffer after this many ticks without
    /// hearing any traffic from it while frames are pending; the stream
    /// restarts under a new epoch. 0 = governor fallback, then never.
    Tick peer_dead_horizon = 0;
    /// Reclaim this existing network node id instead of registering a new
    /// one — how a durable node restarting from its WAL keeps its
    /// identity (the SimNetwork entry outlives the crashed endpoint,
    /// whose destructor only nulls the handler). Ignored when the id is
    /// unknown to the network.
    NodeId reclaim_node_id = kInvalidNodeId;
    /// Epoch newly created send streams start at. A restarted node sets
    /// this to its bumped incarnation, so every frame it sends outranks
    /// its dead pre-crash stream and receivers resynchronize instead of
    /// waiting on sequence numbers that died with the old process.
    uint64_t initial_epoch = 0;
  };

  ReliableEndpoint(SimNetwork* network, Clock* clock);
  ReliableEndpoint(SimNetwork* network, Clock* clock, Options options);
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  NodeId node_id() const { return node_id_; }
  SimNetwork* network() const { return network_; }

  using Handler = std::function<void(const Message&)>;

  /// Application handler for delivered payloads (reliable ones exactly
  /// once and in order per peer; best-effort ones as they arrive).
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Observer invoked for every raw incoming network message — frames and
  /// acks included — before any channel processing. Liveness tracking
  /// hangs off this: any traffic from a peer proves it reachable.
  void SetRawObserver(Handler observer) { raw_observer_ = std::move(observer); }

  /// Queues one reliable frame. Returns the peer's backpressure state
  /// *after* the send: kOpen/kThrottle mean the frame is on the wire (a
  /// throttled producer should slow down); kShed means the buffer was at
  /// capacity and the frame was dropped without being sent — the caller
  /// must treat the peer as unreachable for this message (the coordinator
  /// counts it into the missing set and degrades the answer to kStale).
  Backpressure SendReliable(NodeId to, AppPayload payload);
  void SendBestEffort(NodeId to, AppPayload payload);
  /// Reliable / best-effort send to every other node in the network.
  /// Per-peer shed results are observable via PeerBackpressure.
  void BroadcastReliable(const AppPayload& payload);
  void BroadcastBestEffort(const AppPayload& payload);

  /// Current backpressure grade of one peer's send buffer (kOpen for a
  /// peer never sent to).
  Backpressure PeerBackpressure(NodeId to) const;

  /// Restarts the send stream to `peer` under a new epoch and re-enqueues
  /// every pending payload, in sequence order, on the fresh stream. This
  /// is the rejoin counterpart of dead-horizon eviction: eviction *drops*
  /// the buffer (the peer is presumed gone for good), a restart *keeps*
  /// it — queries issued while a node was dead go back on the wire under
  /// the epoch its reborn receiver will adopt, instead of retransmitting
  /// forever as (old-epoch, high-seq) frames a fresh receiver buffers but
  /// can never complete. No-op for a peer never sent to.
  void RestartPeerStream(NodeId peer);

  /// Current epoch of the send stream to `peer` (initial_epoch for a peer
  /// never sent to). Exposed for the epoch edge-case tests.
  uint64_t SendEpoch(NodeId peer) const;

  /// Frames sent but not yet cumulatively acknowledged, across all peers.
  /// Zero means the channel is quiescent.
  size_t unacked() const;
  /// Estimated wire bytes of those frames, across all peers.
  size_t unacked_bytes() const;

  struct Stats {
    uint64_t frames_sent = 0;  ///< First transmissions (not retries).
    uint64_t retransmissions = 0;
    uint64_t acks_sent = 0;
    uint64_t delivered = 0;  ///< Handed to the application handler.
    uint64_t duplicates_suppressed = 0;
    uint64_t out_of_order_buffered = 0;
    /// Frames dropped by the bounded buffer: refused at send (kShed) or
    /// discarded when a dead peer's buffer was evicted.
    uint64_t frames_shed = 0;
    uint64_t peers_evicted = 0;
    /// Send streams restarted for a rejoining peer (RestartPeerStream):
    /// pending frames were re-enqueued, not dropped.
    uint64_t streams_restarted = 0;
  };
  /// By-value snapshot over this endpoint's attached atomic counters
  /// (most_rc_* series; summed across endpoints by the registry).
  Stats stats() const;

 private:
  struct PendingFrame {
    AppPayload payload;
    Tick next_retry = 0;
    Tick rto = 0;
    size_t bytes = 0;  ///< EstimateBytes of the full frame, for the caps.
    /// Context of the original SendReliable call: retransmissions (and
    /// stream-restart re-sends) go out under it, so a frame that needed
    /// five retries still belongs to the trace that caused it.
    obs::TraceContext trace;
  };
  struct SendState {
    uint64_t next_seq = 0;
    /// Stream epoch: bumped on eviction; frames/acks carry it so both
    /// sides agree which incarnation of the stream a sequence number
    /// belongs to.
    uint64_t epoch = 0;
    size_t pending_bytes = 0;
    /// Last tick any traffic arrived from this peer (initialized at first
    /// send, so the dead horizon counts from when we started waiting).
    Tick last_heard = 0;
    std::map<uint64_t, PendingFrame> pending;  ///< By sequence number.
  };
  struct BufferedFrame {
    AppPayload payload;
    /// Context the frame arrived under, replayed when the gap closes and
    /// the frame is finally handed to the application.
    obs::TraceContext trace;
  };
  struct RecvState {
    uint64_t epoch = 0;
    uint64_t next_expected = 0;
    std::map<uint64_t, BufferedFrame> buffer;  ///< Out-of-order arrivals.
  };

  /// Per-field knob resolution: Options when non-zero, else the global
  /// ResourceGovernor limit (0 stays 0 = unbounded).
  size_t EffectiveMaxUnackedMessages() const;
  size_t EffectiveMaxUnackedBytes() const;
  Tick EffectivePeerDeadHorizon() const;
  Backpressure GradePressure(const SendState& state) const;
  /// Lazy SendState creation honoring Options::initial_epoch.
  SendState& GetSendState(NodeId peer);

  void OnMessage(const Message& message);
  void OnTick();
  void DeliverToApp(const Message& envelope, const AppPayload& payload,
                    const obs::TraceContext& trace);

  SimNetwork* network_;
  Clock* clock_;
  Options options_;
  NodeId node_id_ = kInvalidNodeId;
  uint64_t tick_hook_id_ = 0;
  uint64_t governor_probe_id_ = 0;
  Handler handler_;
  Handler raw_observer_;
  std::map<NodeId, SendState> send_;
  std::map<NodeId, RecvState> recv_;
  /// Stats is a thin snapshot view over these (attached to the global
  /// registry for the endpoint's lifetime), plus in-flight depth/byte
  /// gauges mirroring unacked()/unacked_bytes().
  obs::Counter frames_sent_;
  obs::Counter retransmissions_;
  obs::Counter acks_sent_;
  obs::Counter delivered_;
  obs::Counter duplicates_suppressed_;
  obs::Counter out_of_order_buffered_;
  obs::Counter frames_shed_;
  obs::Counter peers_evicted_;
  obs::Counter streams_restarted_;
  obs::Gauge unacked_gauge_;
  obs::Gauge pending_bytes_gauge_;
  std::vector<uint64_t> attach_ids_;
};

}  // namespace most

#endif  // MOST_DISTRIBUTED_RELIABLE_CHANNEL_H_
