#include "distributed/transmission.h"

#include <algorithm>

namespace most {

AnswerTransmitter::AnswerTransmitter(SimNetwork* network, Clock* clock,
                                     NodeId server, NodeId client,
                                     uint64_t qid,
                                     TransmissionOptions options)
    : network_(network),
      clock_(clock),
      server_(server),
      client_(client),
      qid_(qid),
      options_(options) {}

AnswerTransmitter::AnswerTransmitter(ReliableEndpoint* server_channel,
                                     Clock* clock, NodeId client,
                                     uint64_t qid,
                                     TransmissionOptions options)
    : network_(server_channel->network()),
      clock_(clock),
      channel_(server_channel),
      server_(server_channel->node_id()),
      client_(client),
      qid_(qid),
      options_(options) {}

void AnswerTransmitter::SetAnswer(std::vector<AnswerTuple> answer) {
  std::sort(answer.begin(), answer.end(),
            [](const AnswerTuple& a, const AnswerTuple& b) {
              if (a.interval.begin != b.interval.begin) {
                return a.interval.begin < b.interval.begin;
              }
              return a.binding < b.binding;
            });
  pending_ = std::move(answer);
  outstanding_block_.clear();
  Step();
}

void AnswerTransmitter::SendBlock(std::vector<AnswerTuple> tuples) {
  if (tuples.empty()) return;
  AnswerBlock block;
  block.qid = qid_;
  block.tuples = tuples;
  if (channel_ != nullptr) {
    channel_->SendReliable(client_, std::move(block));
  } else {
    network_->Send(server_, client_, std::move(block));
  }
  outstanding_block_ = std::move(tuples);
}

void AnswerTransmitter::Step() {
  Tick now = clock_->Now();
  if (options_.mode == TransmissionMode::kDelayed) {
    // Transmit each tuple so that it arrives at its begin time.
    std::vector<AnswerTuple> due;
    auto it = pending_.begin();
    while (it != pending_.end()) {
      if (it->interval.begin - options_.network_latency <= now) {
        due.push_back(*it);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    for (AnswerTuple& tuple : due) {
      AnswerBlock block;
      block.qid = qid_;
      block.tuples = {std::move(tuple)};
      if (channel_ != nullptr) {
        channel_->SendReliable(client_, std::move(block));
      } else {
        network_->Send(server_, client_, std::move(block));
      }
    }
    return;
  }
  // Immediate mode.
  if (pending_.empty()) return;
  if (options_.memory_limit == 0) {
    SendBlock(std::move(pending_));
    pending_.clear();
    outstanding_block_.clear();  // Unlimited memory: no flow control.
    return;
  }
  // Blocked transfer: wait until every tuple of the previous block has
  // expired before shipping the next B tuples.
  bool block_live = false;
  for (const AnswerTuple& t : outstanding_block_) {
    if (t.interval.end >= now) block_live = true;
  }
  if (block_live) return;
  size_t count = std::min(options_.memory_limit, pending_.size());
  std::vector<AnswerTuple> block(pending_.begin(), pending_.begin() + count);
  pending_.erase(pending_.begin(), pending_.begin() + count);
  SendBlock(std::move(block));
}

void AnswerClient::Attach(SimNetwork* network, NodeId node) {
  network->SetHandler(node, [this](const Message& m) { OnMessage(m); });
}

void AnswerClient::Attach(ReliableEndpoint* endpoint) {
  endpoint->SetHandler([this](const Message& m) { OnMessage(m); });
}

void AnswerClient::OnMessage(const Message& m) {
  const auto* block = std::get_if<AnswerBlock>(&m.payload);
  if (block == nullptr) return;
  ++blocks_received_;
  for (const AnswerTuple& t : block->tuples) {
    buffer_.push_back(t);
  }
  peak_ = std::max(peak_, buffer_.size());
}

std::vector<std::vector<ObjectId>> AnswerClient::Display() const {
  Tick now = clock_->Now();
  std::vector<std::vector<ObjectId>> out;
  for (const AnswerTuple& t : buffer_) {
    if (t.interval.Contains(now)) out.push_back(t.binding);
  }
  return out;
}

void AnswerClient::Compact() {
  Tick now = clock_->Now();
  std::erase_if(buffer_,
                [now](const AnswerTuple& t) { return t.interval.end < now; });
}

}  // namespace most
