#include "distributed/node_store.h"

#include <cstdlib>

#include "ftl/parser.h"

namespace most {

namespace {

constexpr char kMetaTable[] = "meta";
constexpr char kStateTable[] = "state";
constexpr char kAttrsTable[] = "attrs";
constexpr char kSubsTable[] = "subs";
constexpr char kMirrorTable[] = "mirror";
constexpr char kAnchorTable[] = "manchor";

int64_t AsInt(const Value& v) {
  return v.type() == ValueType::kInt ? v.int_value() : 0;
}

double AsReal(const Value& v) {
  if (v.type() == ValueType::kDouble) return v.double_value();
  if (v.type() == ValueType::kInt) return static_cast<double>(v.int_value());
  return 0.0;
}

std::string AsText(const Value& v) {
  return v.type() == ValueType::kString ? v.string_value() : std::string();
}

Result<ResultSet> SelectAll(const DurableDatabase& db,
                            const std::string& table) {
  SelectQuery q;
  q.table = table;
  return db.ExecuteSelect(q);
}

}  // namespace

std::string EncodeIntervalSet(const IntervalSet& set) {
  std::string out;
  for (const Interval& iv : set.intervals()) {
    if (!out.empty()) out += ';';
    out += std::to_string(iv.begin) + ':' + std::to_string(iv.end);
  }
  return out;
}

IntervalSet DecodeIntervalSet(const std::string& text) {
  std::vector<Interval> ivs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t sep = text.find(';', pos);
    if (sep == std::string::npos) sep = text.size();
    std::string piece = text.substr(pos, sep - pos);
    pos = sep + 1;
    size_t colon = piece.find(':');
    if (colon == std::string::npos) continue;
    Tick begin = std::strtoll(piece.c_str(), nullptr, 10);
    Tick end = std::strtoll(piece.c_str() + colon + 1, nullptr, 10);
    ivs.emplace_back(begin, end);
  }
  return IntervalSet::FromIntervals(std::move(ivs));
}

Status NodeDurableState::EnsureTables() {
  const Database& db = db_.database();
  if (!db.HasTable(kMetaTable)) {
    MOST_RETURN_IF_ERROR(
        db_.CreateTable(kMetaTable, Schema({{"k", ValueType::kString},
                                            {"v", ValueType::kString}}))
            .status());
  }
  if (!db.HasTable(kStateTable)) {
    MOST_RETURN_IF_ERROR(
        db_.CreateTable(kStateTable, Schema({{"obj", ValueType::kInt},
                                             {"at", ValueType::kInt},
                                             {"x", ValueType::kDouble},
                                             {"y", ValueType::kDouble},
                                             {"vx", ValueType::kDouble},
                                             {"vy", ValueType::kDouble}}))
            .status());
  }
  if (!db.HasTable(kAttrsTable)) {
    MOST_RETURN_IF_ERROR(
        db_.CreateTable(kAttrsTable, Schema({{"name", ValueType::kString},
                                             {"value", ValueType::kDouble}}))
            .status());
  }
  if (!db.HasTable(kSubsTable)) {
    MOST_RETURN_IF_ERROR(
        db_.CreateTable(kSubsTable, Schema({{"qid", ValueType::kInt},
                                            {"issuer", ValueType::kInt},
                                            {"strategy", ValueType::kInt},
                                            {"continuous", ValueType::kInt},
                                            {"horizon", ValueType::kInt},
                                            {"issued_at", ValueType::kInt},
                                            {"query", ValueType::kString}}))
            .status());
  }
  if (!db.HasTable(kMirrorTable)) {
    MOST_RETURN_IF_ERROR(
        db_.CreateTable(kMirrorTable, Schema({{"qid", ValueType::kInt},
                                              {"obj", ValueType::kInt},
                                              {"whn", ValueType::kString}}))
            .status());
  }
  if (!db.HasTable(kAnchorTable)) {
    MOST_RETURN_IF_ERROR(
        db_.CreateTable(kAnchorTable, Schema({{"qid", ValueType::kInt},
                                              {"anchor", ValueType::kInt}}))
            .status());
  }
  return Status::OK();
}

void NodeDurableState::Decode(RecoveredNodeState* recovered) {
  // meta: identity. The node_id key doubling as the "prior incarnation
  // existed" witness.
  if (auto rs = SelectAll(db_, kMetaTable); rs.ok()) {
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      const Row& row = rs->rows[i];
      if (row.size() < 2) continue;
      std::string key = AsText(row[0]);
      meta_rows_[key] = rs->row_ids[i];
      std::string value = AsText(row[1]);
      if (key == "node_id") {
        recovered->found = true;
        recovered->node_id =
            static_cast<NodeId>(std::strtoull(value.c_str(), nullptr, 10));
      } else if (key == "home") {
        recovered->home =
            static_cast<NodeId>(std::strtoull(value.c_str(), nullptr, 10));
      } else if (key == "incarnation") {
        recovered->incarnation = std::strtoull(value.c_str(), nullptr, 10);
      }
    }
  }
  if (auto rs = SelectAll(db_, kStateTable); rs.ok() && !rs->rows.empty()) {
    const Row& row = rs->rows.back();
    if (row.size() >= 6) {
      has_state_row_ = true;
      state_row_ = rs->row_ids.back();
      recovered->state.id = static_cast<ObjectId>(AsInt(row[0]));
      recovered->state.at = AsInt(row[1]);
      recovered->state.position = {AsReal(row[2]), AsReal(row[3])};
      recovered->state.velocity = {AsReal(row[4]), AsReal(row[5])};
    }
  }
  if (auto rs = SelectAll(db_, kAttrsTable); rs.ok()) {
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      const Row& row = rs->rows[i];
      if (row.size() < 2) continue;
      std::string name = AsText(row[0]);
      attr_rows_[name] = rs->row_ids[i];
      recovered->state.attrs[name] = AsReal(row[1]);
    }
  }
  if (auto rs = SelectAll(db_, kSubsTable); rs.ok()) {
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      const Row& row = rs->rows[i];
      if (row.size() < 7) continue;
      auto parsed = ParseQuery(AsText(row[6]));
      if (!parsed.ok()) continue;  // Salvaged-around garbage: skip.
      RecoveredNodeState::Subscription sub;
      sub.request.qid = static_cast<uint64_t>(AsInt(row[0]));
      sub.issuer = static_cast<NodeId>(AsInt(row[1]));
      sub.request.strategy = AsInt(row[2]) == 0 ? DistStrategy::kCollect
                                                : DistStrategy::kBroadcastFilter;
      sub.request.continuous = AsInt(row[3]) != 0;
      sub.request.horizon = AsInt(row[4]);
      sub.request.issued_at = AsInt(row[5]);
      sub.request.query = *parsed;
      sub_rows_[sub.request.qid] = rs->row_ids[i];
      recovered->subscriptions.push_back(std::move(sub));
    }
  }
  if (auto rs = SelectAll(db_, kAnchorTable); rs.ok()) {
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      const Row& row = rs->rows[i];
      if (row.size() < 2) continue;
      uint64_t qid = static_cast<uint64_t>(AsInt(row[0]));
      anchor_rows_[qid] = rs->row_ids[i];
      recovered->mirrors[qid].anchor = AsInt(row[1]);
    }
  }
  if (auto rs = SelectAll(db_, kMirrorTable); rs.ok()) {
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      const Row& row = rs->rows[i];
      if (row.size() < 3) continue;
      uint64_t qid = static_cast<uint64_t>(AsInt(row[0]));
      ObjectId obj = static_cast<ObjectId>(AsInt(row[1]));
      mirror_rows_[{qid, obj}] = rs->row_ids[i];
      recovered->mirrors[qid].rows[obj] = DecodeIntervalSet(AsText(row[2]));
    }
  }
}

Status NodeDurableState::Open(RecoveredNodeState* recovered) {
  *recovered = RecoveredNodeState();
  MOST_RETURN_IF_ERROR(db_.Open(path_));
  MOST_RETURN_IF_ERROR(EnsureTables());
  Decode(recovered);
  return Status::OK();
}

Status NodeDurableState::PutMeta(const std::string& key,
                                 const std::string& value) {
  Row row = {Value(key), Value(value)};
  auto it = meta_rows_.find(key);
  if (it != meta_rows_.end()) {
    return db_.Update(kMetaTable, it->second, std::move(row));
  }
  MOST_ASSIGN_OR_RETURN(RowId rid, db_.Insert(kMetaTable, std::move(row)));
  meta_rows_[key] = rid;
  return Status::OK();
}

Status NodeDurableState::SaveIdentity(NodeId node_id, NodeId home,
                                      uint64_t incarnation) {
  MOST_RETURN_IF_ERROR(PutMeta("node_id", std::to_string(node_id)));
  MOST_RETURN_IF_ERROR(PutMeta("home", std::to_string(home)));
  return PutMeta("incarnation", std::to_string(incarnation));
}

Status NodeDurableState::SaveState(const ObjectState& state) {
  Row row = {Value(static_cast<int64_t>(state.id)),
             Value(static_cast<int64_t>(state.at)),
             Value(state.position.x),
             Value(state.position.y),
             Value(state.velocity.x),
             Value(state.velocity.y)};
  if (has_state_row_) {
    MOST_RETURN_IF_ERROR(db_.Update(kStateTable, state_row_, std::move(row)));
  } else {
    MOST_ASSIGN_OR_RETURN(state_row_, db_.Insert(kStateTable, std::move(row)));
    has_state_row_ = true;
  }
  for (const auto& [name, value] : state.attrs) {
    Row attr = {Value(name), Value(value)};
    auto it = attr_rows_.find(name);
    if (it != attr_rows_.end()) {
      MOST_RETURN_IF_ERROR(db_.Update(kAttrsTable, it->second,
                                      std::move(attr)));
    } else {
      MOST_ASSIGN_OR_RETURN(RowId rid,
                            db_.Insert(kAttrsTable, std::move(attr)));
      attr_rows_[name] = rid;
    }
  }
  return Status::OK();
}

Status NodeDurableState::SaveSubscription(const QueryRequest& request,
                                          NodeId issuer) {
  Row row = {Value(static_cast<int64_t>(request.qid)),
             Value(static_cast<int64_t>(issuer)),
             Value(static_cast<int64_t>(
                 request.strategy == DistStrategy::kCollect ? 0 : 1)),
             Value(static_cast<int64_t>(request.continuous ? 1 : 0)),
             Value(static_cast<int64_t>(request.horizon)),
             Value(static_cast<int64_t>(request.issued_at)),
             Value(request.query.ToString())};
  auto it = sub_rows_.find(request.qid);
  if (it != sub_rows_.end()) {
    return db_.Update(kSubsTable, it->second, std::move(row));
  }
  MOST_ASSIGN_OR_RETURN(RowId rid, db_.Insert(kSubsTable, std::move(row)));
  sub_rows_[request.qid] = rid;
  return Status::OK();
}

Status NodeDurableState::RemoveSubscription(uint64_t qid) {
  auto it = sub_rows_.find(qid);
  if (it == sub_rows_.end()) return Status::OK();
  MOST_RETURN_IF_ERROR(db_.Delete(kSubsTable, it->second));
  sub_rows_.erase(it);
  return Status::OK();
}

Status NodeDurableState::SaveMirrorAnchor(uint64_t qid, Tick anchor) {
  Row row = {Value(static_cast<int64_t>(qid)),
             Value(static_cast<int64_t>(anchor))};
  auto it = anchor_rows_.find(qid);
  if (it != anchor_rows_.end()) {
    return db_.Update(kAnchorTable, it->second, std::move(row));
  }
  MOST_ASSIGN_OR_RETURN(RowId rid, db_.Insert(kAnchorTable, std::move(row)));
  anchor_rows_[qid] = rid;
  return Status::OK();
}

Status NodeDurableState::UpsertMirrorRow(uint64_t qid, ObjectId obj,
                                         const IntervalSet& when) {
  Row row = {Value(static_cast<int64_t>(qid)),
             Value(static_cast<int64_t>(obj)), Value(EncodeIntervalSet(when))};
  auto it = mirror_rows_.find({qid, obj});
  if (it != mirror_rows_.end()) {
    return db_.Update(kMirrorTable, it->second, std::move(row));
  }
  MOST_ASSIGN_OR_RETURN(RowId rid, db_.Insert(kMirrorTable, std::move(row)));
  mirror_rows_[{qid, obj}] = rid;
  return Status::OK();
}

Status NodeDurableState::RemoveMirrorRow(uint64_t qid, ObjectId obj) {
  auto it = mirror_rows_.find({qid, obj});
  if (it == mirror_rows_.end()) return Status::OK();
  MOST_RETURN_IF_ERROR(db_.Delete(kMirrorTable, it->second));
  mirror_rows_.erase(it);
  return Status::OK();
}

Status NodeDurableState::ClearMirror(uint64_t qid) {
  auto it = mirror_rows_.lower_bound({qid, 0});
  while (it != mirror_rows_.end() && it->first.first == qid) {
    MOST_RETURN_IF_ERROR(db_.Delete(kMirrorTable, it->second));
    it = mirror_rows_.erase(it);
  }
  return Status::OK();
}

}  // namespace most
