#include "distributed/coordinator.h"

#include <algorithm>

namespace most {

namespace {

/// Counts the largest number of distinct object variables used by a
/// single atom of the formula.
size_t MaxVarsPerAtom(const FormulaPtr& f) {
  switch (f->kind()) {
    case FtlFormula::Kind::kCompare: {
      std::set<std::string> vars;
      f->lhs_term()->CollectObjectVars(&vars);
      f->rhs_term()->CollectObjectVars(&vars);
      return vars.size();
    }
    case FtlFormula::Kind::kInside:
    case FtlFormula::Kind::kOutside:
      return 1;
    case FtlFormula::Kind::kWithinSphere: {
      std::set<std::string> vars(f->sphere_vars().begin(),
                                 f->sphere_vars().end());
      return vars.size();
    }
    default: {
      size_t max_vars = 0;
      if (f->kind() == FtlFormula::Kind::kAssign) {
        std::set<std::string> vars;
        f->assign_term()->CollectObjectVars(&vars);
        max_vars = vars.size();
      }
      for (const FormulaPtr& c : f->children()) {
        max_vars = std::max(max_vars, MaxVarsPerAtom(c));
      }
      return max_vars;
    }
  }
}

}  // namespace

std::set<NodeId> Coordinator::QueryState::MissingNodes() const {
  std::set<NodeId> missing;
  for (NodeId id : expected) {
    if (responded.count(id) == 0) missing.insert(id);
  }
  return missing;
}

Coordinator::Coordinator(SimNetwork* network, Clock* clock,
                         std::map<std::string, Polygon> regions,
                         Options options)
    : network_(network),
      clock_(clock),
      regions_(std::move(regions)),
      options_(options),
      channel_(network, clock, options.channel),
      completion_lag_({1, 2, 4, 8, 16, 32, 64, 128, 256}) {
  channel_.SetHandler([this](const Message& m) { HandleMessage(m); });
  channel_.SetRawObserver([this](const Message& m) { ObserveTraffic(m); });
  tick_hook_id_ = network_->AddTickHook([this] { OnTick(); });
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_coord_queries_issued_total",
                      "Distributed queries issued", {}, &queries_issued_),
      r.AttachCounter("most_coord_reports_total",
                      "Object reports incorporated into query state", {},
                      &reports_received_),
      r.AttachCounter("most_coord_resyncs_total",
                      "Continuous-query subscriptions re-sent to new or "
                      "revived nodes",
                      {}, &resyncs_),
      r.AttachCounter("most_coord_requests_shed_total",
                      "Query requests refused by channel backpressure "
                      "(target left in the missing set)",
                      {}, &requests_shed_),
      r.AttachCounter("most_coord_deadline_expired_total",
                      "Queries that reached their deadline before every "
                      "expected node completed",
                      {}, &deadline_expired_),
      r.AttachCounter("most_coord_lease_expirations_total",
                      "Node leases that transitioned live to expired", {},
                      &lease_expirations_),
      r.AttachCounter("most_coord_rejoins_total",
                      "JoinRequests accepted with a bumped incarnation", {},
                      &rejoins_),
      r.AttachCounter("most_coord_catchup_deltas_total",
                      "Rejoin catch-up AnswerDeltas sent to recovered "
                      "mirror anchors",
                      {}, &catchup_deltas_),
      r.AttachCounter("most_coord_catchup_bytes_total",
                      "Estimated wire bytes of rejoin catch-up deltas", {},
                      &catchup_bytes_),
      r.AttachCounter("most_coord_mirror_deltas_total",
                      "Steady-state Answer(CQ) mirror pushes", {},
                      &mirror_deltas_),
      r.AttachHistogram("most_coord_completion_lag_ticks",
                        "Ticks from issue until every expected node's "
                        "QueryDone arrived",
                        {}, &completion_lag_),
      r.AttachGauge("most_coord_missing_nodes",
                    "Expected-but-silent nodes over active queries", {},
                    &missing_nodes_gauge_),
      r.AttachGauge("most_coord_leases_active",
                    "Nodes currently holding a valid lease", {},
                    &leases_active_gauge_),
  };
}

Coordinator::~Coordinator() {
  network_->RemoveTickHook(tick_hook_id_);
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

Coordinator::RecoveryStats Coordinator::recovery_stats() const {
  RecoveryStats s;
  s.rejoins = rejoins_.value();
  s.lease_expirations = lease_expirations_.value();
  s.catchup_deltas = catchup_deltas_.value();
  s.catchup_bytes = catchup_bytes_.value();
  s.mirror_deltas = mirror_deltas_.value();
  return s;
}

void Coordinator::UpdateMissingGauge() {
  int64_t missing = 0;
  for (const auto& [qid, state] : queries_) {
    if (state.cancelled || state.completed) continue;
    missing += static_cast<int64_t>(state.MissingNodes().size());
  }
  missing_nodes_gauge_.Set(missing);
}

DistQueryClass Coordinator::Classify(const FtlQuery& query,
                                     const std::string& self_class) {
  if (query.where != nullptr && MaxVarsPerAtom(query.where) >= 2) {
    return DistQueryClass::kRelationship;
  }
  std::set<std::string> distinct_vars;
  for (const FromBinding& fb : query.from) distinct_vars.insert(fb.var);
  if (distinct_vars.size() >= 2) return DistQueryClass::kRelationship;
  bool all_self = !query.from.empty();
  for (const FromBinding& fb : query.from) {
    if (fb.class_name != self_class) all_self = false;
  }
  return all_self ? DistQueryClass::kSelfReferencing
                  : DistQueryClass::kObject;
}

void Coordinator::SendRequest(uint64_t qid, const QueryState& state,
                              NodeId to) {
  QueryRequest request;
  request.qid = qid;
  request.strategy = state.strategy;
  request.continuous = state.continuous;
  request.query = state.query;
  request.horizon = state.horizon;
  request.issued_at = state.issued_at;
  if (channel_.SendReliable(to, request) == Backpressure::kShed) {
    // The bounded channel refused the frame: treat `to` like a missing
    // node. It stays in `expected` without a request in flight, so
    // answers read kStale with it in the missing set until the
    // partition-heal re-sync (ObserveTraffic) re-issues the query.
    requests_shed_.Inc();
  }
}

uint64_t Coordinator::Issue(const FtlQuery& query, DistStrategy strategy,
                            bool continuous, Tick horizon) {
  uint64_t qid = next_qid_++;
  // Root of the distributed query's trace tree: the per-node request
  // sends below stamp this context onto their frames, node-side answer
  // spans parent under it across the (simulated) wire, and the answer
  // handling back here joins the same tree.
  obs::TraceSpan span("coord/issue", "dist");
  span.AnnotateU64("qid", qid);
  span.AnnotateU64("node", node_id());
  QueryState state;
  state.query = query;
  state.strategy = strategy;
  state.continuous = continuous;
  state.horizon = horizon;
  state.issued_at = clock_->Now();
  state.deadline = TickSaturatingAdd(state.issued_at, options_.query_deadline);
  for (NodeId id : network_->NodeIds()) {
    if (id == node_id()) continue;
    state.expected.insert(id);
  }
  auto [it, inserted] = queries_.emplace(qid, std::move(state));
  for (NodeId id : it->second.expected) SendRequest(qid, it->second, id);
  queries_issued_.Inc();
  UpdateMissingGauge();
  return qid;
}

uint64_t Coordinator::IssueObjectQuery(const FtlQuery& query,
                                       DistStrategy strategy, bool continuous,
                                       Tick horizon) {
  return Issue(query, strategy, continuous, horizon);
}

uint64_t Coordinator::IssueRelationshipQuery(const FtlQuery& query,
                                             Tick horizon) {
  return Issue(query, DistStrategy::kCollect, /*continuous=*/false, horizon);
}

Status Coordinator::CancelQuerySubscription(uint64_t qid) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  it->second.cancelled = true;
  for (NodeId id : it->second.expected) {
    channel_.SendReliable(id, CancelQuery{qid});
  }
  UpdateMissingGauge();
  return Status::OK();
}

Result<const Coordinator::QueryState*> Coordinator::GetState(
    uint64_t qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  return &it->second;
}

bool Coordinator::DeadlinePassed(uint64_t qid) const {
  auto it = queries_.find(qid);
  bool passed = it != queries_.end() && clock_->Now() >= it->second.deadline;
  if (passed && !it->second.completed &&
      deadline_counted_.insert(qid).second) {
    deadline_expired_.Inc();
  }
  return passed;
}

Result<Coordinator::CollectedAnswer> Coordinator::EvaluateCollected(
    uint64_t qid) const {
  MOST_ASSIGN_OR_RETURN(const QueryState* state, GetState(qid));
  if (state->query.from.empty()) {
    return Status::InvalidArgument("query has no FROM bindings");
  }
  std::vector<ObjectState> states;
  states.reserve(state->states.size());
  for (const auto& [id, s] : state->states) states.push_back(s);
  // All FROM variables range over the same fleet class.
  const std::string& class_name = state->query.from[0].class_name;
  for (const FromBinding& fb : state->query.from) {
    if (fb.class_name != class_name) {
      return Status::InvalidArgument(
          "distributed evaluation supports a single object class");
    }
  }
  // One-shot queries are anchored at their issue tick (so a re-read after
  // stragglers arrive evaluates the same window); continuous ones follow
  // the clock.
  Tick anchor = state->continuous ? clock_->Now() : state->issued_at;
  MOST_ASSIGN_OR_RETURN(
      std::unique_ptr<MostDatabase> db,
      BuildDatabaseFromStates(class_name, states, regions_, anchor));
  FtlEvaluator eval(*db);
  CollectedAnswer answer;
  MOST_ASSIGN_OR_RETURN(
      answer.relation,
      eval.EvaluateQuery(
          state->query,
          Interval(anchor, TickSaturatingAdd(anchor, state->horizon))));
  answer.missing = EffectiveMissing(*state);
  answer.confidence =
      answer.missing.empty() ? Confidence::kCertain : Confidence::kStale;
  return answer;
}

Result<Coordinator::ReportedAnswer> Coordinator::ReportedMatches(
    uint64_t qid) const {
  MOST_ASSIGN_OR_RETURN(const QueryState* state, GetState(qid));
  ReportedAnswer answer;
  answer.matches = state->matches;
  answer.missing = EffectiveMissing(*state);
  answer.confidence =
      answer.missing.empty() ? Confidence::kCertain : Confidence::kStale;
  return answer;
}

std::set<NodeId> Coordinator::EffectiveMissing(const QueryState& state) const {
  std::set<NodeId> missing = state.MissingNodes();
  if (!state.continuous || state.cancelled) return missing;
  // A continuous answer is only vouched for while every contributing
  // node's lease is valid: a node that answered and then went silent past
  // the liveness horizon may have moved arbitrarily (or died), so its
  // matches are dead reckoning — the answer degrades to kStale with the
  // node listed missing until it is heard again.
  for (NodeId id : state.expected) {
    if (last_heard_.count(id) != 0 && !IsLive(id)) missing.insert(id);
  }
  return missing;
}

bool Coordinator::IsLive(NodeId node) const {
  auto it = last_heard_.find(node);
  return it != last_heard_.end() &&
         clock_->Now() <=
             TickSaturatingAdd(it->second, options_.liveness_timeout);
}

std::set<NodeId> Coordinator::LiveNodes() const {
  std::set<NodeId> live;
  for (const auto& [id, at] : last_heard_) {
    if (IsLive(id)) live.insert(id);
  }
  return live;
}

void Coordinator::ObserveTraffic(const Message& message) {
  Tick now = clock_->Now();
  auto it = last_heard_.find(message.from);
  bool is_new = it == last_heard_.end();
  bool revived =
      !is_new &&
      now > TickSaturatingAdd(it->second, options_.liveness_timeout);
  last_heard_[message.from] = now;
  // Any traffic renews the sender's lease; the next silence-past-horizon
  // counts as a fresh expiry.
  leases_[message.from].expired_counted = false;
  if (!is_new && !revived) return;
  // A node just (re)appeared: push every active continuous query to it so
  // its subscription — dropped by a partition, a reconnect, or simply
  // never installed because the node joined late — re-synchronizes. The
  // node replies with its full current answer, which also corrects any
  // stale match we may still hold for it.
  for (auto& [qid, state] : queries_) {
    if (!state.continuous || state.cancelled) continue;
    if (!revived && state.expected.count(message.from)) continue;
    SendRequest(qid, state, message.from);
    state.expected.insert(message.from);
    state.completed = false;  // The re-synced node owes a new QueryDone.
    resyncs_.Inc();
  }
  UpdateMissingGauge();
}

std::set<NodeId> Coordinator::ExpiredLeases() const {
  std::set<NodeId> expired;
  for (const auto& [id, at] : last_heard_) {
    if (!IsLive(id)) expired.insert(id);
  }
  return expired;
}

void Coordinator::OnTick() {
  Tick now = clock_->Now();
  // DeliverDue may run several times within one tick; sweep once.
  if (now == last_sweep_tick_) return;
  last_sweep_tick_ = now;
  int64_t active = 0;
  for (auto& [id, lease] : leases_) {
    if (IsLive(id)) {
      ++active;
    } else if (!lease.expired_counted) {
      lease.expired_counted = true;
      lease_expirations_.Inc();
    }
  }
  leases_active_gauge_.Set(active);
  // Steady-state mirror pushes: one per-object delta per tick to each
  // lease-valid subscriber whose mirror fell behind. Dead subscribers are
  // skipped — their catch-up happens at rejoin, from the anchor they
  // recover, which is the point of the exercise.
  for (auto& [qid, state] : queries_) {
    if (state.cancelled || state.mirror_subs.empty()) continue;
    std::vector<NodeId> subs;
    subs.reserve(state.mirror_subs.size());
    for (const auto& [sub, synced] : state.mirror_subs) subs.push_back(sub);
    for (NodeId sub : subs) {
      if (!IsLive(sub)) continue;
      FlushMirror(qid, &state, sub, /*full=*/false, /*rejoin_catchup=*/false);
    }
  }
}

void Coordinator::FlushMirror(uint64_t qid, QueryState* state,
                              NodeId subscriber, bool full,
                              bool rejoin_catchup) {
  Tick now = clock_->Now();
  Tick synced = state->mirror_subs[subscriber];
  AnswerDelta delta;
  delta.qid = qid;
  delta.base = synced;
  delta.anchor = now;
  if (full) {
    delta.full = true;
    for (const auto& [id, when] : state->matches) {
      delta.upserts.emplace_back(id, when);
    }
  } else {
    for (const auto& [id, at] : state->dirty_at) {
      if (at <= synced) continue;
      auto mit = state->matches.find(id);
      if (mit == state->matches.end()) {
        delta.removals.push_back(id);
      } else {
        delta.upserts.emplace_back(id, mit->second);
      }
    }
    if (delta.upserts.empty() && delta.removals.empty()) return;
  }
  // Claim synced only through now-1: reports delivered later this tick
  // stamp dirty_at == now, which the next flush must still pick up.
  // Re-sent objects are idempotent (full per-object interval sets).
  state->mirror_subs[subscriber] = now > 0 ? now - 1 : 0;
  size_t bytes = EstimateBytes(MessagePayload(delta));
  if (rejoin_catchup) {
    catchup_deltas_.Inc();
    catchup_bytes_.Inc(static_cast<int64_t>(bytes));
  } else {
    mirror_deltas_.Inc();
  }
  channel_.SendReliable(subscriber, std::move(delta));
}

Status Coordinator::SubscribeAnswerMirror(uint64_t qid, NodeId subscriber) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  QueryState& state = it->second;
  if (!state.continuous || state.strategy != DistStrategy::kBroadcastFilter) {
    return Status::InvalidArgument(
        "answer mirrors require a continuous broadcast-filter query");
  }
  state.mirror_subs[subscriber] = 0;
  FlushMirror(qid, &state, subscriber, /*full=*/true, /*rejoin_catchup=*/false);
  return Status::OK();
}

void Coordinator::OnJoin(const JoinRequest& join, NodeId from) {
  Lease& lease = leases_[from];
  bool new_incarnation = join.incarnation > lease.incarnation;
  if (new_incarnation) {
    lease.incarnation = join.incarnation;
    // Fence the dead incarnation: restart our send stream under a higher
    // epoch, re-enqueueing whatever was pending (queries issued while the
    // node was down), so the reborn receiver adopts it instead of
    // buffering old-epoch frames it can never complete.
    channel_.RestartPeerStream(from);
    rejoins_.Inc();
  }
  lease.expired_counted = false;
  last_heard_[from] = clock_->Now();
  std::set<uint64_t> claimed(join.subscribed_qids.begin(),
                             join.subscribed_qids.end());
  for (auto& [qid, state] : queries_) {
    if (state.cancelled) continue;
    if (state.continuous) {
      state.expected.insert(from);
      if (new_incarnation) {
        // The reborn node owes a fresh QueryDone — it re-answers the
        // subscriptions it recovered, and we re-send the ones it lost.
        state.responded.erase(from);
        state.completed = false;
      }
      if (claimed.count(qid) == 0) {
        SendRequest(qid, state, from);
        resyncs_.Inc();
      }
    } else if (!state.completed && state.expected.count(from) != 0 &&
               state.responded.count(from) == 0) {
      // An incomplete one-shot: the request may have been delivered but
      // unanswered when the node died (nothing durable marks it), so
      // re-send. Anchored at issued_at, the late answer computes the
      // same window the issuer asked for.
      SendRequest(qid, state, from);
      resyncs_.Inc();
    }
  }
  // Subscriptions the node recovered for queries that no longer exist (or
  // were cancelled while it was dead) get a reliable cancel.
  for (uint64_t qid : claimed) {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second.cancelled) {
      channel_.SendReliable(from, CancelQuery{qid});
    }
  }
  // Mirror catch-up from the anchors the node recovered: per-object
  // deltas since each anchor (or the full mirror when delta_catchup is
  // off — the bench baseline). anchor-1 because a flush at tick T claims
  // only T-1: changes stamped later within T must be re-sent.
  for (const auto& [qid, anchor] : join.mirror_anchors) {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second.cancelled) continue;
    QueryState& state = it->second;
    state.mirror_subs[from] = anchor > 0 ? anchor - 1 : 0;
    FlushMirror(qid, &state, from, /*full=*/!options_.delta_catchup,
                /*rejoin_catchup=*/true);
  }
  JoinAck ack;
  ack.incarnation = join.incarnation;
  ack.lease_until =
      TickSaturatingAdd(clock_->Now(), options_.liveness_timeout);
  channel_.SendReliable(from, ack);
  UpdateMissingGauge();
}

void Coordinator::HandleMessage(const Message& message) {
  if (const auto* join = std::get_if<JoinRequest>(&message.payload)) {
    OnJoin(*join, message.from);
    return;
  }
  if (const auto* done = std::get_if<QueryDone>(&message.payload)) {
    auto it = queries_.find(done->qid);
    if (it != queries_.end()) {
      QueryState& state = it->second;
      state.responded.insert(message.from);
      state.expected.insert(message.from);
      if (!state.completed && state.MissingNodes().empty()) {
        state.completed = true;
        state.completed_at = clock_->Now();
        completion_lag_.Observe(
            static_cast<double>(state.completed_at - state.issued_at));
      }
      UpdateMissingGauge();
    }
    return;
  }
  const auto* report = std::get_if<ObjectReport>(&message.payload);
  if (report == nullptr) return;  // Position beacons: liveness only.
  auto it = queries_.find(report->qid);
  if (it == queries_.end()) return;
  // Runs under the delivery guard's ambient context (the node's answer
  // span), so the report's ingestion closes the coordinator→node→
  // coordinator loop inside one trace tree.
  obs::TraceSpan span("coord/on_report", "dist");
  span.AnnotateU64("qid", report->qid);
  span.AnnotateU64("node", message.from);
  QueryState& state = it->second;
  state.replies += 1;
  reports_received_.Inc();
  state.states[report->state.id] = report->state;
  if (state.strategy == DistStrategy::kBroadcastFilter) {
    if (report->when.empty()) {
      if (state.matches.erase(report->state.id) != 0) {
        state.dirty_at[report->state.id] = clock_->Now();
      }
    } else {
      IntervalSet& slot = state.matches[report->state.id];
      if (!(slot == report->when)) {
        slot = report->when;
        state.dirty_at[report->state.id] = clock_->Now();
      }
    }
  }
}

}  // namespace most
