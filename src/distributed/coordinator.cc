#include "distributed/coordinator.h"

#include <algorithm>

namespace most {

namespace {

/// Counts the largest number of distinct object variables used by a
/// single atom of the formula.
size_t MaxVarsPerAtom(const FormulaPtr& f) {
  switch (f->kind()) {
    case FtlFormula::Kind::kCompare: {
      std::set<std::string> vars;
      f->lhs_term()->CollectObjectVars(&vars);
      f->rhs_term()->CollectObjectVars(&vars);
      return vars.size();
    }
    case FtlFormula::Kind::kInside:
    case FtlFormula::Kind::kOutside:
      return 1;
    case FtlFormula::Kind::kWithinSphere: {
      std::set<std::string> vars(f->sphere_vars().begin(),
                                 f->sphere_vars().end());
      return vars.size();
    }
    default: {
      size_t max_vars = 0;
      if (f->kind() == FtlFormula::Kind::kAssign) {
        std::set<std::string> vars;
        f->assign_term()->CollectObjectVars(&vars);
        max_vars = vars.size();
      }
      for (const FormulaPtr& c : f->children()) {
        max_vars = std::max(max_vars, MaxVarsPerAtom(c));
      }
      return max_vars;
    }
  }
}

}  // namespace

std::set<NodeId> Coordinator::QueryState::MissingNodes() const {
  std::set<NodeId> missing;
  for (NodeId id : expected) {
    if (responded.count(id) == 0) missing.insert(id);
  }
  return missing;
}

Coordinator::Coordinator(SimNetwork* network, Clock* clock,
                         std::map<std::string, Polygon> regions,
                         Options options)
    : network_(network),
      clock_(clock),
      regions_(std::move(regions)),
      options_(options),
      channel_(network, clock, options.channel),
      completion_lag_({1, 2, 4, 8, 16, 32, 64, 128, 256}) {
  channel_.SetHandler([this](const Message& m) { HandleMessage(m); });
  channel_.SetRawObserver([this](const Message& m) { ObserveTraffic(m); });
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_coord_queries_issued_total",
                      "Distributed queries issued", {}, &queries_issued_),
      r.AttachCounter("most_coord_reports_total",
                      "Object reports incorporated into query state", {},
                      &reports_received_),
      r.AttachCounter("most_coord_resyncs_total",
                      "Continuous-query subscriptions re-sent to new or "
                      "revived nodes",
                      {}, &resyncs_),
      r.AttachCounter("most_coord_requests_shed_total",
                      "Query requests refused by channel backpressure "
                      "(target left in the missing set)",
                      {}, &requests_shed_),
      r.AttachCounter("most_coord_deadline_expired_total",
                      "Queries that reached their deadline before every "
                      "expected node completed",
                      {}, &deadline_expired_),
      r.AttachHistogram("most_coord_completion_lag_ticks",
                        "Ticks from issue until every expected node's "
                        "QueryDone arrived",
                        {}, &completion_lag_),
      r.AttachGauge("most_coord_missing_nodes",
                    "Expected-but-silent nodes over active queries", {},
                    &missing_nodes_gauge_),
  };
}

Coordinator::~Coordinator() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
}

void Coordinator::UpdateMissingGauge() {
  int64_t missing = 0;
  for (const auto& [qid, state] : queries_) {
    if (state.cancelled || state.completed) continue;
    missing += static_cast<int64_t>(state.MissingNodes().size());
  }
  missing_nodes_gauge_.Set(missing);
}

DistQueryClass Coordinator::Classify(const FtlQuery& query,
                                     const std::string& self_class) {
  if (query.where != nullptr && MaxVarsPerAtom(query.where) >= 2) {
    return DistQueryClass::kRelationship;
  }
  std::set<std::string> distinct_vars;
  for (const FromBinding& fb : query.from) distinct_vars.insert(fb.var);
  if (distinct_vars.size() >= 2) return DistQueryClass::kRelationship;
  bool all_self = !query.from.empty();
  for (const FromBinding& fb : query.from) {
    if (fb.class_name != self_class) all_self = false;
  }
  return all_self ? DistQueryClass::kSelfReferencing
                  : DistQueryClass::kObject;
}

void Coordinator::SendRequest(uint64_t qid, const QueryState& state,
                              NodeId to) {
  QueryRequest request;
  request.qid = qid;
  request.strategy = state.strategy;
  request.continuous = state.continuous;
  request.query = state.query;
  request.horizon = state.horizon;
  request.issued_at = state.issued_at;
  if (channel_.SendReliable(to, request) == Backpressure::kShed) {
    // The bounded channel refused the frame: treat `to` like a missing
    // node. It stays in `expected` without a request in flight, so
    // answers read kStale with it in the missing set until the
    // partition-heal re-sync (ObserveTraffic) re-issues the query.
    requests_shed_.Inc();
  }
}

uint64_t Coordinator::Issue(const FtlQuery& query, DistStrategy strategy,
                            bool continuous, Tick horizon) {
  uint64_t qid = next_qid_++;
  QueryState state;
  state.query = query;
  state.strategy = strategy;
  state.continuous = continuous;
  state.horizon = horizon;
  state.issued_at = clock_->Now();
  state.deadline = TickSaturatingAdd(state.issued_at, options_.query_deadline);
  for (NodeId id : network_->NodeIds()) {
    if (id == node_id()) continue;
    state.expected.insert(id);
  }
  auto [it, inserted] = queries_.emplace(qid, std::move(state));
  for (NodeId id : it->second.expected) SendRequest(qid, it->second, id);
  queries_issued_.Inc();
  UpdateMissingGauge();
  return qid;
}

uint64_t Coordinator::IssueObjectQuery(const FtlQuery& query,
                                       DistStrategy strategy, bool continuous,
                                       Tick horizon) {
  return Issue(query, strategy, continuous, horizon);
}

uint64_t Coordinator::IssueRelationshipQuery(const FtlQuery& query,
                                             Tick horizon) {
  return Issue(query, DistStrategy::kCollect, /*continuous=*/false, horizon);
}

Status Coordinator::CancelQuerySubscription(uint64_t qid) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  it->second.cancelled = true;
  for (NodeId id : it->second.expected) {
    channel_.SendReliable(id, CancelQuery{qid});
  }
  UpdateMissingGauge();
  return Status::OK();
}

Result<const Coordinator::QueryState*> Coordinator::GetState(
    uint64_t qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  return &it->second;
}

bool Coordinator::DeadlinePassed(uint64_t qid) const {
  auto it = queries_.find(qid);
  bool passed = it != queries_.end() && clock_->Now() >= it->second.deadline;
  if (passed && !it->second.completed &&
      deadline_counted_.insert(qid).second) {
    deadline_expired_.Inc();
  }
  return passed;
}

Result<Coordinator::CollectedAnswer> Coordinator::EvaluateCollected(
    uint64_t qid) const {
  MOST_ASSIGN_OR_RETURN(const QueryState* state, GetState(qid));
  if (state->query.from.empty()) {
    return Status::InvalidArgument("query has no FROM bindings");
  }
  std::vector<ObjectState> states;
  states.reserve(state->states.size());
  for (const auto& [id, s] : state->states) states.push_back(s);
  // All FROM variables range over the same fleet class.
  const std::string& class_name = state->query.from[0].class_name;
  for (const FromBinding& fb : state->query.from) {
    if (fb.class_name != class_name) {
      return Status::InvalidArgument(
          "distributed evaluation supports a single object class");
    }
  }
  // One-shot queries are anchored at their issue tick (so a re-read after
  // stragglers arrive evaluates the same window); continuous ones follow
  // the clock.
  Tick anchor = state->continuous ? clock_->Now() : state->issued_at;
  MOST_ASSIGN_OR_RETURN(
      std::unique_ptr<MostDatabase> db,
      BuildDatabaseFromStates(class_name, states, regions_, anchor));
  FtlEvaluator eval(*db);
  CollectedAnswer answer;
  MOST_ASSIGN_OR_RETURN(
      answer.relation,
      eval.EvaluateQuery(
          state->query,
          Interval(anchor, TickSaturatingAdd(anchor, state->horizon))));
  answer.missing = state->MissingNodes();
  answer.confidence =
      answer.missing.empty() ? Confidence::kCertain : Confidence::kStale;
  return answer;
}

Result<Coordinator::ReportedAnswer> Coordinator::ReportedMatches(
    uint64_t qid) const {
  MOST_ASSIGN_OR_RETURN(const QueryState* state, GetState(qid));
  ReportedAnswer answer;
  answer.matches = state->matches;
  answer.missing = state->MissingNodes();
  answer.confidence =
      answer.missing.empty() ? Confidence::kCertain : Confidence::kStale;
  return answer;
}

bool Coordinator::IsLive(NodeId node) const {
  auto it = last_heard_.find(node);
  return it != last_heard_.end() &&
         clock_->Now() <=
             TickSaturatingAdd(it->second, options_.liveness_timeout);
}

std::set<NodeId> Coordinator::LiveNodes() const {
  std::set<NodeId> live;
  for (const auto& [id, at] : last_heard_) {
    if (IsLive(id)) live.insert(id);
  }
  return live;
}

void Coordinator::ObserveTraffic(const Message& message) {
  Tick now = clock_->Now();
  auto it = last_heard_.find(message.from);
  bool is_new = it == last_heard_.end();
  bool revived =
      !is_new &&
      now > TickSaturatingAdd(it->second, options_.liveness_timeout);
  last_heard_[message.from] = now;
  if (!is_new && !revived) return;
  // A node just (re)appeared: push every active continuous query to it so
  // its subscription — dropped by a partition, a reconnect, or simply
  // never installed because the node joined late — re-synchronizes. The
  // node replies with its full current answer, which also corrects any
  // stale match we may still hold for it.
  for (auto& [qid, state] : queries_) {
    if (!state.continuous || state.cancelled) continue;
    if (!revived && state.expected.count(message.from)) continue;
    SendRequest(qid, state, message.from);
    state.expected.insert(message.from);
    state.completed = false;  // The re-synced node owes a new QueryDone.
    resyncs_.Inc();
  }
  UpdateMissingGauge();
}

void Coordinator::HandleMessage(const Message& message) {
  if (const auto* done = std::get_if<QueryDone>(&message.payload)) {
    auto it = queries_.find(done->qid);
    if (it != queries_.end()) {
      QueryState& state = it->second;
      state.responded.insert(message.from);
      state.expected.insert(message.from);
      if (!state.completed && state.MissingNodes().empty()) {
        state.completed = true;
        state.completed_at = clock_->Now();
        completion_lag_.Observe(
            static_cast<double>(state.completed_at - state.issued_at));
      }
      UpdateMissingGauge();
    }
    return;
  }
  const auto* report = std::get_if<ObjectReport>(&message.payload);
  if (report == nullptr) return;  // Position beacons: liveness only.
  auto it = queries_.find(report->qid);
  if (it == queries_.end()) return;
  QueryState& state = it->second;
  state.replies += 1;
  reports_received_.Inc();
  state.states[report->state.id] = report->state;
  if (state.strategy == DistStrategy::kBroadcastFilter) {
    if (report->when.empty()) {
      state.matches.erase(report->state.id);
    } else {
      state.matches[report->state.id] = report->when;
    }
  }
}

}  // namespace most
