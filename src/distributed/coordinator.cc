#include "distributed/coordinator.h"

namespace most {

namespace {

/// Counts the largest number of distinct object variables used by a
/// single atom of the formula.
size_t MaxVarsPerAtom(const FormulaPtr& f) {
  switch (f->kind()) {
    case FtlFormula::Kind::kCompare: {
      std::set<std::string> vars;
      f->lhs_term()->CollectObjectVars(&vars);
      f->rhs_term()->CollectObjectVars(&vars);
      return vars.size();
    }
    case FtlFormula::Kind::kInside:
    case FtlFormula::Kind::kOutside:
      return 1;
    case FtlFormula::Kind::kWithinSphere: {
      std::set<std::string> vars(f->sphere_vars().begin(),
                                 f->sphere_vars().end());
      return vars.size();
    }
    default: {
      size_t max_vars = 0;
      if (f->kind() == FtlFormula::Kind::kAssign) {
        std::set<std::string> vars;
        f->assign_term()->CollectObjectVars(&vars);
        max_vars = vars.size();
      }
      for (const FormulaPtr& c : f->children()) {
        max_vars = std::max(max_vars, MaxVarsPerAtom(c));
      }
      return max_vars;
    }
  }
}

}  // namespace

Coordinator::Coordinator(SimNetwork* network, Clock* clock,
                         std::map<std::string, Polygon> regions)
    : network_(network), clock_(clock), regions_(std::move(regions)) {
  node_id_ = network_->AddNode(
      [this](const Message& m) { HandleMessage(m); });
}

DistQueryClass Coordinator::Classify(const FtlQuery& query,
                                     const std::string& self_class) {
  if (query.where != nullptr && MaxVarsPerAtom(query.where) >= 2) {
    return DistQueryClass::kRelationship;
  }
  std::set<std::string> distinct_vars;
  for (const FromBinding& fb : query.from) distinct_vars.insert(fb.var);
  if (distinct_vars.size() >= 2) return DistQueryClass::kRelationship;
  bool all_self = !query.from.empty();
  for (const FromBinding& fb : query.from) {
    if (fb.class_name != self_class) all_self = false;
  }
  return all_self ? DistQueryClass::kSelfReferencing
                  : DistQueryClass::kObject;
}

uint64_t Coordinator::IssueObjectQuery(const FtlQuery& query,
                                       DistStrategy strategy, bool continuous,
                                       Tick horizon) {
  uint64_t qid = next_qid_++;
  QueryState state;
  state.query = query;
  state.strategy = strategy;
  state.continuous = continuous;
  state.horizon = horizon;
  queries_.emplace(qid, std::move(state));

  QueryRequest request;
  request.qid = qid;
  request.strategy = strategy;
  request.continuous = continuous;
  request.query = query;
  request.horizon = horizon;
  network_->Broadcast(node_id_, request);
  return qid;
}

uint64_t Coordinator::IssueRelationshipQuery(const FtlQuery& query,
                                             Tick horizon) {
  uint64_t qid = next_qid_++;
  QueryState state;
  state.query = query;
  state.strategy = DistStrategy::kCollect;
  state.horizon = horizon;
  queries_.emplace(qid, std::move(state));

  QueryRequest request;
  request.qid = qid;
  request.strategy = DistStrategy::kCollect;
  request.query = query;
  request.horizon = horizon;
  network_->Broadcast(node_id_, request);
  return qid;
}

Status Coordinator::CancelQuerySubscription(uint64_t qid) {
  if (queries_.count(qid) == 0) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  network_->Broadcast(node_id_, CancelQuery{qid});
  return Status::OK();
}

Result<const Coordinator::QueryState*> Coordinator::GetState(
    uint64_t qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid));
  }
  return &it->second;
}

Result<TemporalRelation> Coordinator::EvaluateCollected(uint64_t qid) const {
  MOST_ASSIGN_OR_RETURN(const QueryState* state, GetState(qid));
  if (state->query.from.empty()) {
    return Status::InvalidArgument("query has no FROM bindings");
  }
  std::vector<ObjectState> states;
  states.reserve(state->states.size());
  for (const auto& [id, s] : state->states) states.push_back(s);
  // All FROM variables range over the same fleet class.
  const std::string& class_name = state->query.from[0].class_name;
  for (const FromBinding& fb : state->query.from) {
    if (fb.class_name != class_name) {
      return Status::InvalidArgument(
          "distributed evaluation supports a single object class");
    }
  }
  MOST_ASSIGN_OR_RETURN(
      std::unique_ptr<MostDatabase> db,
      BuildDatabaseFromStates(class_name, states, regions_, clock_->Now()));
  FtlEvaluator eval(*db);
  Tick now = clock_->Now();
  return eval.EvaluateQuery(
      state->query, Interval(now, TickSaturatingAdd(now, state->horizon)));
}

Result<std::map<ObjectId, IntervalSet>> Coordinator::ReportedMatches(
    uint64_t qid) const {
  MOST_ASSIGN_OR_RETURN(const QueryState* state, GetState(qid));
  return state->matches;
}

void Coordinator::HandleMessage(const Message& message) {
  const auto* report = std::get_if<ObjectReport>(&message.payload);
  if (report == nullptr) return;
  auto it = queries_.find(report->qid);
  if (it == queries_.end()) return;
  QueryState& state = it->second;
  state.replies += 1;
  state.states[report->state.id] = report->state;
  if (state.strategy == DistStrategy::kBroadcastFilter) {
    if (report->when.empty()) {
      state.matches.erase(report->state.id);
    } else {
      state.matches[report->state.id] = report->when;
    }
  }
}

}  // namespace most
