#include "distributed/reliable_channel.h"

#include <algorithm>
#include <utility>

namespace most {

ReliableEndpoint::ReliableEndpoint(SimNetwork* network, Clock* clock)
    : ReliableEndpoint(network, clock, Options()) {}

ReliableEndpoint::ReliableEndpoint(SimNetwork* network, Clock* clock,
                                   Options options)
    : network_(network), clock_(clock), options_(options) {
  node_id_ = network_->AddNode(
      [this](const Message& m) { OnMessage(m); });
  tick_hook_id_ = network_->AddTickHook([this] { OnTick(); });
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_rc_frames_sent_total",
                      "Reliable frames first-transmitted", {}, &frames_sent_),
      r.AttachCounter("most_rc_retransmissions_total",
                      "Reliable frame retransmissions", {},
                      &retransmissions_),
      r.AttachCounter("most_rc_acks_sent_total",
                      "Cumulative acknowledgements sent", {}, &acks_sent_),
      r.AttachCounter("most_rc_delivered_total",
                      "Payloads handed to the application handler", {},
                      &delivered_),
      r.AttachCounter("most_rc_duplicates_suppressed_total",
                      "Duplicate reliable frames suppressed", {},
                      &duplicates_suppressed_),
      r.AttachCounter("most_rc_out_of_order_buffered_total",
                      "Out-of-order frames buffered for resequencing", {},
                      &out_of_order_buffered_),
      r.AttachGauge("most_rc_unacked_frames",
                    "Frames sent but not yet cumulatively acknowledged", {},
                    &unacked_gauge_),
  };
}

ReliableEndpoint::~ReliableEndpoint() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
  network_->RemoveTickHook(tick_hook_id_);
  network_->SetHandler(node_id_, nullptr);
}

ReliableEndpoint::Stats ReliableEndpoint::stats() const {
  Stats s;
  s.frames_sent = frames_sent_.value();
  s.retransmissions = retransmissions_.value();
  s.acks_sent = acks_sent_.value();
  s.delivered = delivered_.value();
  s.duplicates_suppressed = duplicates_suppressed_.value();
  s.out_of_order_buffered = out_of_order_buffered_.value();
  return s;
}

void ReliableEndpoint::SendReliable(NodeId to, AppPayload payload) {
  SendState& state = send_[to];
  uint64_t seq = state.next_seq++;
  PendingFrame pending;
  pending.payload = std::move(payload);
  pending.rto = options_.rto_initial;
  pending.next_retry = TickSaturatingAdd(clock_->Now(), pending.rto);
  network_->Send(node_id_, to, ReliableFrame{seq, pending.payload});
  state.pending.emplace(seq, std::move(pending));
  frames_sent_.Inc();
  unacked_gauge_.Add(1);
}

void ReliableEndpoint::SendBestEffort(NodeId to, AppPayload payload) {
  std::visit([&](auto&& inner) { network_->Send(node_id_, to, inner); },
             std::move(payload));
}

void ReliableEndpoint::BroadcastReliable(const AppPayload& payload) {
  for (NodeId id : network_->NodeIds()) {
    if (id == node_id_) continue;
    SendReliable(id, payload);
  }
}

void ReliableEndpoint::BroadcastBestEffort(const AppPayload& payload) {
  for (NodeId id : network_->NodeIds()) {
    if (id == node_id_) continue;
    SendBestEffort(id, payload);
  }
}

size_t ReliableEndpoint::unacked() const {
  size_t total = 0;
  for (const auto& [peer, state] : send_) total += state.pending.size();
  return total;
}

void ReliableEndpoint::DeliverToApp(const Message& envelope,
                                    const AppPayload& payload) {
  delivered_.Inc();
  if (!handler_) return;
  Message m = envelope;
  std::visit([&](const auto& inner) { m.payload = inner; }, payload);
  handler_(m);
}

void ReliableEndpoint::OnMessage(const Message& message) {
  if (raw_observer_) raw_observer_(message);
  if (const auto* frame = std::get_if<ReliableFrame>(&message.payload)) {
    RecvState& state = recv_[message.from];
    if (frame->seq < state.next_expected) {
      // Already delivered: a retransmission or a network duplicate.
      duplicates_suppressed_.Inc();
    } else if (frame->seq == state.next_expected) {
      state.next_expected += 1;
      DeliverToApp(message, frame->inner);
      // Drain any buffered successors that are now in order.
      auto it = state.buffer.find(state.next_expected);
      while (it != state.buffer.end()) {
        state.next_expected += 1;
        DeliverToApp(message, it->second);
        state.buffer.erase(it);
        it = state.buffer.find(state.next_expected);
      }
    } else {
      // A gap: hold the frame until its predecessors arrive.
      if (state.buffer.emplace(frame->seq, frame->inner).second) {
        out_of_order_buffered_.Inc();
      } else {
        duplicates_suppressed_.Inc();
      }
    }
    // Cumulative ack, sent for every arrival (including duplicates, whose
    // original ack may have been lost).
    acks_sent_.Inc();
    network_->Send(node_id_, message.from, AckFrame{state.next_expected});
    return;
  }
  if (const auto* ack = std::get_if<AckFrame>(&message.payload)) {
    SendState& state = send_[message.from];
    auto it = state.pending.begin();
    while (it != state.pending.end() && it->first < ack->ack_through) {
      it = state.pending.erase(it);
      unacked_gauge_.Add(-1);
    }
    return;
  }
  // Best-effort payload: hand straight to the application.
  delivered_.Inc();
  if (handler_) handler_(message);
}

void ReliableEndpoint::OnTick() {
  Tick now = clock_->Now();
  for (auto& [peer, state] : send_) {
    for (auto& [seq, pending] : state.pending) {
      if (now < pending.next_retry) continue;
      network_->Send(node_id_, peer, ReliableFrame{seq, pending.payload});
      retransmissions_.Inc();
      pending.rto = std::min<Tick>(
          TickSaturatingAdd(pending.rto, pending.rto), options_.rto_max);
      pending.next_retry = TickSaturatingAdd(now, pending.rto);
    }
  }
}

}  // namespace most
