#include "distributed/reliable_channel.h"

#include <algorithm>
#include <utility>

#include "obs/governor.h"

namespace most {

ReliableEndpoint::ReliableEndpoint(SimNetwork* network, Clock* clock)
    : ReliableEndpoint(network, clock, Options()) {}

ReliableEndpoint::ReliableEndpoint(SimNetwork* network, Clock* clock,
                                   Options options)
    : network_(network), clock_(clock), options_(options) {
  if (options_.reclaim_node_id != kInvalidNodeId &&
      network_->HasNode(options_.reclaim_node_id)) {
    // A restarted endpoint takes its dead predecessor's seat: same id,
    // fresh sequence state (fenced by initial_epoch on the send side).
    node_id_ = options_.reclaim_node_id;
    network_->SetHandler(node_id_, [this](const Message& m) { OnMessage(m); });
  } else {
    node_id_ = network_->AddNode([this](const Message& m) { OnMessage(m); });
  }
  tick_hook_id_ = network_->AddTickHook([this] { OnTick(); });
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  attach_ids_ = {
      r.AttachCounter("most_rc_frames_sent_total",
                      "Reliable frames first-transmitted", {}, &frames_sent_),
      r.AttachCounter("most_rc_retransmissions_total",
                      "Reliable frame retransmissions", {},
                      &retransmissions_),
      r.AttachCounter("most_rc_acks_sent_total",
                      "Cumulative acknowledgements sent", {}, &acks_sent_),
      r.AttachCounter("most_rc_delivered_total",
                      "Payloads handed to the application handler", {},
                      &delivered_),
      r.AttachCounter("most_rc_duplicates_suppressed_total",
                      "Duplicate reliable frames suppressed", {},
                      &duplicates_suppressed_),
      r.AttachCounter("most_rc_out_of_order_buffered_total",
                      "Out-of-order frames buffered for resequencing", {},
                      &out_of_order_buffered_),
      r.AttachCounter("most_rc_frames_shed_total",
                      "Reliable frames dropped by the bounded send buffer "
                      "(refused at capacity or evicted with a dead peer)",
                      {}, &frames_shed_),
      r.AttachCounter("most_rc_peers_evicted_total",
                      "Peer send buffers evicted past the dead horizon", {},
                      &peers_evicted_),
      r.AttachCounter("most_rc_streams_restarted_total",
                      "Send streams restarted under a new epoch for a "
                      "rejoining peer (pending frames re-enqueued)",
                      {}, &streams_restarted_),
      r.AttachGauge("most_rc_unacked_frames",
                    "Frames sent but not yet cumulatively acknowledged", {},
                    &unacked_gauge_),
      r.AttachGauge("most_rc_pending_bytes",
                    "Estimated wire bytes of unacknowledged frames", {},
                    &pending_bytes_gauge_),
  };
  // Expose this endpoint's per-peer pressure to operator tooling
  // (`most_shell health`) without it having to hold endpoint pointers.
  // Probes run on the simulation thread (BackpressureSnapshot callers
  // must not race DeliverDue, same as every other SimNetwork access).
  governor_probe_id_ = ResourceGovernor::Global().RegisterBackpressureProbe(
      [this]() {
        std::vector<ResourceGovernor::PeerPressure> out;
        for (const auto& [peer, state] : send_) {
          out.push_back({node_id_, peer, GradePressure(state),
                         state.pending.size(), state.pending_bytes});
        }
        return out;
      });
}

ReliableEndpoint::~ReliableEndpoint() {
  ResourceGovernor::Global().UnregisterBackpressureProbe(governor_probe_id_);
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  for (uint64_t id : attach_ids_) r.DetachMetric(id);
  network_->RemoveTickHook(tick_hook_id_);
  network_->SetHandler(node_id_, nullptr);
}

ReliableEndpoint::Stats ReliableEndpoint::stats() const {
  Stats s;
  s.frames_sent = frames_sent_.value();
  s.retransmissions = retransmissions_.value();
  s.acks_sent = acks_sent_.value();
  s.delivered = delivered_.value();
  s.duplicates_suppressed = duplicates_suppressed_.value();
  s.out_of_order_buffered = out_of_order_buffered_.value();
  s.frames_shed = frames_shed_.value();
  s.peers_evicted = peers_evicted_.value();
  s.streams_restarted = streams_restarted_.value();
  return s;
}

size_t ReliableEndpoint::EffectiveMaxUnackedMessages() const {
  if (options_.max_unacked_messages != 0) return options_.max_unacked_messages;
  return ResourceGovernor::Global().limits().channel_max_unacked_messages;
}

size_t ReliableEndpoint::EffectiveMaxUnackedBytes() const {
  if (options_.max_unacked_bytes != 0) return options_.max_unacked_bytes;
  return ResourceGovernor::Global().limits().channel_max_unacked_bytes;
}

Tick ReliableEndpoint::EffectivePeerDeadHorizon() const {
  if (options_.peer_dead_horizon != 0) return options_.peer_dead_horizon;
  return ResourceGovernor::Global().limits().channel_peer_dead_horizon;
}

Backpressure ReliableEndpoint::GradePressure(const SendState& state) const {
  const size_t max_msgs = EffectiveMaxUnackedMessages();
  const size_t max_bytes = EffectiveMaxUnackedBytes();
  if (max_msgs == 0 && max_bytes == 0) return Backpressure::kOpen;
  if ((max_msgs > 0 && state.pending.size() >= max_msgs) ||
      (max_bytes > 0 && state.pending_bytes >= max_bytes)) {
    return Backpressure::kShed;
  }
  const double frac = options_.throttle_fraction;
  if ((max_msgs > 0 &&
       static_cast<double>(state.pending.size()) >=
           frac * static_cast<double>(max_msgs)) ||
      (max_bytes > 0 &&
       static_cast<double>(state.pending_bytes) >=
           frac * static_cast<double>(max_bytes))) {
    return Backpressure::kThrottle;
  }
  return Backpressure::kOpen;
}

Backpressure ReliableEndpoint::PeerBackpressure(NodeId to) const {
  auto it = send_.find(to);
  if (it == send_.end()) return Backpressure::kOpen;
  return GradePressure(it->second);
}

ReliableEndpoint::SendState& ReliableEndpoint::GetSendState(NodeId peer) {
  auto it = send_.find(peer);
  if (it == send_.end()) {
    it = send_.emplace(peer, SendState{}).first;
    it->second.epoch = options_.initial_epoch;
  }
  return it->second;
}

uint64_t ReliableEndpoint::SendEpoch(NodeId peer) const {
  auto it = send_.find(peer);
  return it == send_.end() ? options_.initial_epoch : it->second.epoch;
}

void ReliableEndpoint::RestartPeerStream(NodeId peer) {
  auto it = send_.find(peer);
  if (it == send_.end()) return;
  SendState& state = it->second;
  std::vector<std::pair<AppPayload, obs::TraceContext>> carried;
  carried.reserve(state.pending.size());
  for (auto& [seq, pending] : state.pending) {
    carried.emplace_back(std::move(pending.payload), pending.trace);
  }
  unacked_gauge_.Add(-static_cast<int64_t>(state.pending.size()));
  pending_bytes_gauge_.Add(-static_cast<int64_t>(state.pending_bytes));
  state.pending.clear();
  state.pending_bytes = 0;
  state.next_seq = 0;
  state.epoch += 1;
  state.last_heard = clock_->Now();
  streams_restarted_.Inc();
  for (auto& [payload, trace] : carried) {
    // Re-send under the original context: the restarted frame still
    // belongs to the trace that first queued it.
    obs::TraceContextGuard guard(trace);
    SendReliable(peer, std::move(payload));
  }
}

Backpressure ReliableEndpoint::SendReliable(NodeId to, AppPayload payload) {
  SendState& state = GetSendState(to);
  if (state.pending.empty() && state.last_heard == 0) {
    // First contact: the dead horizon counts from when we start waiting.
    state.last_heard = clock_->Now();
  }
  if (GradePressure(state) == Backpressure::kShed) {
    frames_shed_.Inc();
    return Backpressure::kShed;
  }
  uint64_t seq = state.next_seq++;
  PendingFrame pending;
  pending.payload = std::move(payload);
  pending.trace = obs::CurrentTraceContext();
  pending.rto = options_.rto_initial;
  pending.next_retry = TickSaturatingAdd(clock_->Now(), pending.rto);
  ReliableFrame frame{seq, state.epoch, pending.payload};
  pending.bytes = EstimateBytes(MessagePayload(frame));
  network_->Send(node_id_, to, std::move(frame));
  state.pending_bytes += pending.bytes;
  pending_bytes_gauge_.Add(static_cast<int64_t>(pending.bytes));
  state.pending.emplace(seq, std::move(pending));
  frames_sent_.Inc();
  unacked_gauge_.Add(1);
  // This frame went out, so never report kShed here — even if it just
  // filled the buffer. kShed is reserved for frames actually dropped;
  // "full after this send" is the strongest possible throttle signal.
  Backpressure after = GradePressure(state);
  return after == Backpressure::kShed ? Backpressure::kThrottle : after;
}

void ReliableEndpoint::SendBestEffort(NodeId to, AppPayload payload) {
  std::visit([&](auto&& inner) { network_->Send(node_id_, to, inner); },
             std::move(payload));
}

void ReliableEndpoint::BroadcastReliable(const AppPayload& payload) {
  for (NodeId id : network_->NodeIds()) {
    if (id == node_id_) continue;
    SendReliable(id, payload);
  }
}

void ReliableEndpoint::BroadcastBestEffort(const AppPayload& payload) {
  for (NodeId id : network_->NodeIds()) {
    if (id == node_id_) continue;
    SendBestEffort(id, payload);
  }
}

size_t ReliableEndpoint::unacked() const {
  size_t total = 0;
  for (const auto& [peer, state] : send_) total += state.pending.size();
  return total;
}

size_t ReliableEndpoint::unacked_bytes() const {
  size_t total = 0;
  for (const auto& [peer, state] : send_) total += state.pending_bytes;
  return total;
}

void ReliableEndpoint::DeliverToApp(const Message& envelope,
                                    const AppPayload& payload,
                                    const obs::TraceContext& trace) {
  delivered_.Inc();
  if (!handler_) return;
  Message m = envelope;
  std::visit([&](const auto& inner) { m.payload = inner; }, payload);
  m.trace = trace;
  // A buffered frame is delivered while a *later* frame's context is
  // ambient; replay the context it originally arrived under.
  obs::TraceContextGuard guard(trace);
  handler_(m);
}

void ReliableEndpoint::OnMessage(const Message& message) {
  if (raw_observer_) raw_observer_(message);
  // Any traffic from a peer proves it alive for the eviction horizon.
  if (auto sit = send_.find(message.from); sit != send_.end()) {
    sit->second.last_heard = clock_->Now();
  }
  if (const auto* frame = std::get_if<ReliableFrame>(&message.payload)) {
    RecvState& state = recv_[message.from];
    if (frame->epoch < state.epoch) {
      // A straggler from a stream incarnation the sender has abandoned;
      // acking it would only confuse the new stream.
      duplicates_suppressed_.Inc();
      return;
    }
    if (frame->epoch > state.epoch) {
      // The sender evicted this stream and restarted it: adopt the new
      // epoch and resequence from zero. Frames buffered from the old
      // incarnation can never complete.
      state.epoch = frame->epoch;
      state.next_expected = 0;
      state.buffer.clear();
    }
    if (frame->seq < state.next_expected) {
      // Already delivered: a retransmission or a network duplicate.
      duplicates_suppressed_.Inc();
    } else if (frame->seq == state.next_expected) {
      state.next_expected += 1;
      DeliverToApp(message, frame->inner, message.trace);
      // Drain any buffered successors that are now in order.
      auto it = state.buffer.find(state.next_expected);
      while (it != state.buffer.end()) {
        state.next_expected += 1;
        DeliverToApp(message, it->second.payload, it->second.trace);
        state.buffer.erase(it);
        it = state.buffer.find(state.next_expected);
      }
    } else {
      // A gap: hold the frame until its predecessors arrive.
      if (state.buffer
              .emplace(frame->seq, BufferedFrame{frame->inner, message.trace})
              .second) {
        out_of_order_buffered_.Inc();
      } else {
        duplicates_suppressed_.Inc();
      }
    }
    // Cumulative ack, sent for every arrival (including duplicates, whose
    // original ack may have been lost).
    acks_sent_.Inc();
    network_->Send(node_id_, message.from,
                   AckFrame{state.epoch, state.next_expected});
    return;
  }
  if (const auto* ack = std::get_if<AckFrame>(&message.payload)) {
    SendState& state = GetSendState(message.from);
    if (ack->epoch != state.epoch) return;  // Ack for an evicted stream.
    auto it = state.pending.begin();
    while (it != state.pending.end() && it->first < ack->ack_through) {
      state.pending_bytes -= it->second.bytes;
      pending_bytes_gauge_.Add(-static_cast<int64_t>(it->second.bytes));
      it = state.pending.erase(it);
      unacked_gauge_.Add(-1);
    }
    return;
  }
  // Best-effort payload: hand straight to the application.
  delivered_.Inc();
  if (handler_) handler_(message);
}

void ReliableEndpoint::OnTick() {
  Tick now = clock_->Now();
  const Tick horizon = EffectivePeerDeadHorizon();
  for (auto& [peer, state] : send_) {
    if (horizon > 0 && !state.pending.empty() &&
        now >= TickSaturatingAdd(state.last_heard, horizon)) {
      // The peer has been silent past the horizon with frames pending:
      // stop spending bandwidth and memory on it. The stream restarts
      // under a new epoch, so if the peer ever rejoins, the first new
      // frame resynchronizes it; the dropped payloads are the caller's
      // (coordinator re-sync / kStale accounting) problem by design.
      frames_shed_.Inc(state.pending.size());
      unacked_gauge_.Add(-static_cast<int64_t>(state.pending.size()));
      pending_bytes_gauge_.Add(-static_cast<int64_t>(state.pending_bytes));
      state.pending.clear();
      state.pending_bytes = 0;
      state.next_seq = 0;
      state.epoch += 1;
      state.last_heard = now;
      peers_evicted_.Inc();
      continue;
    }
    for (auto& [seq, pending] : state.pending) {
      if (now < pending.next_retry) continue;
      obs::TraceContextGuard guard(pending.trace);
      network_->Send(node_id_, peer,
                     ReliableFrame{seq, state.epoch, pending.payload});
      retransmissions_.Inc();
      pending.rto = std::min<Tick>(
          TickSaturatingAdd(pending.rto, pending.rto), options_.rto_max);
      pending.next_retry = TickSaturatingAdd(now, pending.rto);
    }
  }
}

}  // namespace most
