// Observability micro-costs: what a span, a telemetry sample and a trace
// export actually cost. Axes:
//
//   * spans: disabled (the always-paid fast path — one atomic load) vs
//     enabled vs enabled-with-annotations;
//   * telemetry: one OnTick() over a realistic tracked-series set,
//     disabled vs enabled;
//   * export: ChromeTraceJson over a full 4096-span ring, raw and masked.
//
// Emits BENCH_obs.json after the google-benchmark run; ci.sh appends it
// to bench/trajectories/obs.json. docs/observability.md quotes these
// numbers for the "tracing is cheap enough to leave compiled in" claim.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "bench_obs.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace most {
namespace {

void BM_SpanDisabled(benchmark::State& state) {
  obs::TraceSink sink;  // Disabled: the cost every call site always pays.
  for (auto _ : state) {
    obs::TraceSpan span("bench/span", "bench", obs::CurrentTraceContext(),
                        &sink);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpanEnabled(benchmark::State& state) {
  obs::TraceSink sink;
  sink.set_enabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench/span", "bench", obs::CurrentTraceContext(),
                        &sink);
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TelemetryOnTick(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.GetCounter("bench_events_total", "events")->Inc(7);
  registry
      .GetHistogram("bench_latency_seconds", "latency", {0.001, 0.01, 0.1})
      ->Observe(0.004);
  obs::TelemetryRecorder rec;
  rec.set_enabled(true);
  rec.Track("bench_events_total");
  rec.Track("bench_latency_seconds");
  Tick t = 0;
  for (auto _ : state) {
    rec.OnTick(++t, registry);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SpanDisabled);
BENCHMARK(BM_SpanEnabled);
BENCHMARK(BM_TelemetryOnTick);

// Best-of-N batch timing: these ops are nanosecond-scale, so each sample
// times `batch` back-to-back ops and the per-op cost is the batch best
// divided by the batch size.
double MeasureBatchNsPerOp(const std::function<void()>& op, int batch,
                           int rounds = 5) {
  op();  // Warm-up.
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < batch; ++i) op();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()) /
                  batch);
  }
  return best;
}

void EmitBenchJson(const std::string& path) {
  const int kBatch = 10000;

  obs::TraceSink disabled_sink;
  double span_disabled_ns = MeasureBatchNsPerOp(
      [&] {
        obs::TraceSpan span("bench/span", "bench", obs::CurrentTraceContext(),
                            &disabled_sink);
        benchmark::DoNotOptimize(&span);
      },
      kBatch);

  obs::TraceSink enabled_sink;
  enabled_sink.set_enabled(true);
  double span_enabled_ns = MeasureBatchNsPerOp(
      [&] {
        obs::TraceSpan span("bench/span", "bench", obs::CurrentTraceContext(),
                            &enabled_sink);
        benchmark::DoNotOptimize(&span);
      },
      kBatch);

  double span_annotated_ns = MeasureBatchNsPerOp(
      [&] {
        obs::TraceSpan span("bench/span", "bench", obs::CurrentTraceContext(),
                            &enabled_sink);
        span.AnnotateU64("tick", 42);
        span.Annotate("reason", "bench");
      },
      kBatch);

  obs::MetricsRegistry registry;
  registry.GetCounter("bench_events_total", "events")->Inc(7);
  registry
      .GetHistogram("bench_latency_seconds", "latency", {0.001, 0.01, 0.1})
      ->Observe(0.004);
  obs::TelemetryRecorder rec;
  rec.Track("bench_events_total");
  rec.Track("bench_latency_seconds");
  Tick t = 0;
  double ontick_disabled_ns =
      MeasureBatchNsPerOp([&] { rec.OnTick(++t, registry); }, kBatch);
  rec.set_enabled(true);
  double ontick_enabled_ns =
      MeasureBatchNsPerOp([&] { rec.OnTick(++t, registry); }, kBatch);

  // A full default-capacity ring for the export measurements.
  obs::TraceSink ring;
  ring.set_enabled(true);
  for (int i = 0; i < 4096; ++i) {
    obs::TraceSpan span("bench/fill", "bench", obs::CurrentTraceContext(),
                        &ring);
    span.AnnotateU64("i", static_cast<uint64_t>(i));
  }
  size_t export_bytes = 0;
  double export_raw_ns = MeasureBatchNsPerOp(
      [&] {
        std::string json = obs::ChromeTraceJson(ring);
        export_bytes = json.size();
        benchmark::DoNotOptimize(json);
      },
      /*batch=*/3);
  obs::ChromeTraceOptions masked;
  masked.mask = true;
  double export_masked_ns = MeasureBatchNsPerOp(
      [&] {
        std::string json = obs::ChromeTraceJson(ring, masked);
        benchmark::DoNotOptimize(json);
      },
      /*batch=*/3);

  std::ostringstream out;
  out << "{\n"
      << "  \"benchmark\": \"obs\",\n"
      << "  \"span_disabled_ns\": " << span_disabled_ns << ",\n"
      << "  \"span_enabled_ns\": " << span_enabled_ns << ",\n"
      << "  \"span_annotated_ns\": " << span_annotated_ns << ",\n"
      << "  \"telemetry_ontick_disabled_ns\": " << ontick_disabled_ns << ",\n"
      << "  \"telemetry_ontick_enabled_ns\": " << ontick_enabled_ns << ",\n"
      << "  \"chrome_export_spans\": 4096,\n"
      << "  \"chrome_export_bytes\": " << export_bytes << ",\n"
      << "  \"chrome_export_ns\": " << export_raw_ns << ",\n"
      << "  \"chrome_export_masked_ns\": " << export_masked_ns << "\n";
  benchio::FinishBenchJson(path, "obs", out.str());
}

}  // namespace
}  // namespace most

// Custom main: run the registered benchmarks, then emit the summary
// quoted by docs/observability.md.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_obs.json");
  return 0;
}
