// Experiment E6 — Section 5.1: running MOST on top of a conventional DBMS
// costs up to 2^k host queries for a WHERE clause with k dynamic atoms.
//
//  * BM_Decomposition — latency and host-query count as k grows 0..8.
//  * BM_IndexedVsDecomposed — with a Section 4 trajectory index the
//    dynamic atom is answered by index probing instead of branch
//    enumeration (the paper's "if indexing on the dynamic attributes is
//    available" variant).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/most_on_dbms.h"
#include "ftl/hybrid_executor.h"
#include "ftl/parser.h"

namespace most {
namespace {

constexpr size_t kRows = 2000;
constexpr int kMaxAtoms = 8;

struct Fixture {
  Database db;
  Clock clock;
  MostOnDbms most{&db, &clock};

  explicit Fixture(uint64_t seed) {
    std::vector<MostColumnSpec> columns = {{"ID", false, ValueType::kInt}};
    for (int i = 0; i < kMaxAtoms; ++i) {
      columns.push_back({"D" + std::to_string(i), true, ValueType::kNull});
    }
    (void)most.CreateTable("T", columns);
    Rng rng(seed);
    for (size_t r = 0; r < kRows; ++r) {
      std::map<std::string, DynamicAttribute> dynamics;
      for (int i = 0; i < kMaxAtoms; ++i) {
        dynamics.emplace("D" + std::to_string(i),
                         DynamicAttribute(rng.UniformDouble(-100, 100), 0,
                                          TimeFunction::Linear(
                                              rng.UniformDouble(-1, 1))));
      }
      (void)most.Insert("T", {{"ID", Value(static_cast<int64_t>(r))}},
                        dynamics);
    }
    clock.Advance(25);
  }

  // WHERE with k dynamic atoms: D0 <= c0 AND D1 <= c1 AND ...
  ExprPtr MakeWhere(int k) const {
    ExprPtr where = Expr::Compare(Expr::CmpOp::kGe, Expr::Column("ID"),
                                  Expr::Literal(Value(0)));
    for (int i = 0; i < k; ++i) {
      where = Expr::And(
          where, Expr::Compare(Expr::CmpOp::kLe,
                               Expr::Column("D" + std::to_string(i)),
                               Expr::Literal(Value(30.0))));
    }
    return where;
  }
};

void BM_Decomposition(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  bool prune = state.range(1) == 1;
  Fixture fixture(1997);
  SelectQuery query{.table = "T",
                    .where = fixture.MakeWhere(k),
                    .project = {"ID"}};
  size_t result_rows = 0;
  QueryStats stats;
  for (auto _ : state) {
    stats = QueryStats();
    auto rs = fixture.most.ExecuteSelect(
        query, &stats, {.prune_trivial_branches = prune});
    result_rows = rs->rows.size();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["k_dynamic_atoms"] = k;
  state.counters["host_queries"] =
      static_cast<double>(stats.queries_executed);
  state.counters["branches_pruned"] =
      static_cast<double>(stats.branches_pruned);
  state.counters["result_rows"] = static_cast<double>(result_rows);
}
// prune=0 reproduces the paper's 2^k worst case; prune=1 is the E6c
// ablation (conjunctive queries leave only one satisfiable branch).
BENCHMARK(BM_Decomposition)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kMaxAtoms, 1), {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_IndexedVsDecomposed(benchmark::State& state) {
  bool indexed = state.range(0) == 1;
  Fixture fixture(1997);
  if (indexed) {
    (void)fixture.most.CreateDynamicIndex("T", "D0", {1024, 16});
  }
  // Selective single dynamic atom plus a static residual.
  ExprPtr where = Expr::And(
      Expr::Compare(Expr::CmpOp::kLe, Expr::Column("D0"),
                    Expr::Literal(Value(-80.0))),
      Expr::Compare(Expr::CmpOp::kGe, Expr::Column("ID"),
                    Expr::Literal(Value(0))));
  SelectQuery query{.table = "T", .where = where, .project = {"ID"}};
  QueryStats stats;
  for (auto _ : state) {
    stats = QueryStats();
    auto rs = fixture.most.ExecuteSelect(query, &stats,
                                         {.use_dynamic_index = indexed});
    benchmark::DoNotOptimize(rs);
  }
  state.counters["rows_examined"] = static_cast<double>(stats.rows_examined);
  state.counters["used_index"] = stats.used_index ? 1 : 0;
}
BENCHMARK(BM_IndexedVsDecomposed)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Section 5.1, last paragraph: FTL queries over a MOST table, with the
// static conjunct either pushed down to the host DBMS (B+-tree indexed)
// or handled alongside the temporal evaluation. Sweep selectivity of the
// static filter.
void BM_HybridFtlPushdown(benchmark::State& state) {
  bool push = state.range(0) == 1;
  double price_cutoff = static_cast<double>(state.range(1));
  Database db;
  Clock clock;
  MostOnDbms most(&db, &clock);
  (void)most.CreateTable("CARS", {{"PRICE", false, ValueType::kDouble},
                                  {kAttrX, true, ValueType::kNull},
                                  {kAttrY, true, ValueType::kNull}});
  Rng rng(1997);
  for (int i = 0; i < 4000; ++i) {
    (void)most.Insert(
        "CARS", {{"PRICE", Value(rng.UniformDouble(0, 100))}},
        {{kAttrX, DynamicAttribute(rng.UniformDouble(-500, 500), 0,
                                   TimeFunction::Linear(
                                       rng.UniformDouble(-3, 3)))},
         {kAttrY, DynamicAttribute(rng.UniformDouble(-500, 500), 0,
                                   TimeFunction::Linear(
                                       rng.UniformDouble(-3, 3)))}});
  }
  (void)db.GetTable("CARS").value()->CreateIndex("PRICE");
  std::map<std::string, Polygon> regions = {
      {"P", Polygon::Rectangle({-100, -100}, {100, 100})}};
  HybridFtlExecutor hybrid(&most, &clock, regions);
  // With push disabled, the filter is phrased so the translator cannot
  // push it (time + price, artificially time-dependent form would change
  // semantics; instead we compare against pushing a tautology).
  std::string text =
      push ? "RETRIEVE o FROM CARS o WHERE o.PRICE <= " +
                 std::to_string(price_cutoff) +
                 " AND EVENTUALLY WITHIN 60 INSIDE(o, P)"
           : "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 60 "
             "(INSIDE(o, P) AND o.PRICE <= " +
                 std::to_string(price_cutoff) + ")";
  auto query = ParseQuery(text);
  HybridFtlExecutor::ExecStats stats;
  for (auto _ : state) {
    stats = HybridFtlExecutor::ExecStats();
    auto rel = hybrid.Evaluate(*query, Interval(0, 128), &stats);
    benchmark::DoNotOptimize(rel);
  }
  state.counters["qualifying_rows"] =
      static_cast<double>(stats.host_rows_qualifying);
  state.counters["pushed"] = static_cast<double>(stats.pushed_conjuncts);
  state.counters["cutoff"] = price_cutoff;
}
BENCHMARK(BM_HybridFtlPushdown)
    ->ArgsProduct({{0, 1}, {5, 50, 100}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
