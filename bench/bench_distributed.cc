// Experiments E7/E8 — Section 5.3's distributed processing strategies,
// now over the lossy wireless medium.
//
//  * BM_ObjectQueryStrategies — one-shot object query: strategy 1
//    (collect all objects at the issuer) vs strategy 2 (broadcast the
//    query, nodes filter). Expected: strategy 2 sends fewer bytes when
//    the predicate is selective.
//  * BM_ContinuousStrategies — the continuous case: strategy 1 re-ships
//    the object on EVERY motion change; strategy 2 transmits only when a
//    node's answer changes.
//  * BM_DistQuery — the reliability cost: messages, bytes, and the tick
//    at which the answer turns kCertain, for both strategies at message
//    loss 0 / 10% / 30%. Retransmission buys completeness with latency
//    and bandwidth; this measures how much.
//
// Emits BENCH_dist.json after the run (messages / bytes / completion
// tick per strategy × loss rate) for the E7/E8 notes in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_obs.h"
#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "ftl/parser.h"
#include "workload/fleet.h"

namespace most {
namespace {

struct Sim {
  Clock clock;
  SimNetwork net;
  std::map<std::string, Polygon> regions;
  std::unique_ptr<Coordinator> coordinator;
  std::vector<std::unique_ptr<MobileNode>> nodes;
  FleetGenerator fleet;

  Sim(size_t vehicles, double region_fraction, double loss = 0.0,
      uint64_t seed = 1997)
      : net(&clock, SimNetwork::Options{.latency = 1,
                                        .loss_probability = loss,
                                        .seed = seed}),
        fleet({.num_vehicles = vehicles, .area = 1000.0, .seed = 1997}) {
    double side = 1000.0 * std::sqrt(region_fraction);
    regions["P"] = Polygon::Rectangle({500 - side / 2, 500 - side / 2},
                                      {500 + side / 2, 500 + side / 2});
    coordinator = std::make_unique<Coordinator>(&net, &clock, regions);
    // Beacons off: the counters below should show query traffic only.
    MobileNode::Options opts;
    opts.beacon_interval = 0;
    for (const ObjectState& s : fleet.initial_states()) {
      nodes.push_back(
          std::make_unique<MobileNode>(&net, &clock, s, regions, opts));
    }
  }

  void Run(Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  }
};

void BM_ObjectQueryStrategies(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  bool broadcast = state.range(1) == 1;
  double fraction = static_cast<double>(state.range(2)) / 100.0;
  auto query = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)");
  SimNetwork::Stats stats;
  size_t matches = 0;
  for (auto _ : state) {
    Sim sim(vehicles, fraction);
    sim.net.ResetStats();
    uint64_t qid = sim.coordinator->IssueObjectQuery(
        *query,
        broadcast ? DistStrategy::kBroadcastFilter : DistStrategy::kCollect,
        /*continuous=*/false, 256);
    sim.Run(8);
    if (broadcast) {
      matches = sim.coordinator->ReportedMatches(qid)->matches.size();
    } else {
      matches = sim.coordinator->EvaluateCollected(qid)->relation.rows.size();
    }
    stats = sim.net.stats();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["messages"] = static_cast<double>(stats.messages_sent);
  state.counters["bytes"] = static_cast<double>(stats.bytes_sent);
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["strategy2_broadcast"] = broadcast ? 1 : 0;
  state.counters["region_pct"] = static_cast<double>(state.range(2));
}
BENCHMARK(BM_ObjectQueryStrategies)
    ->ArgsProduct({{100, 400}, {0, 1}, {1, 25, 100}})
    ->Unit(benchmark::kMillisecond);

void BM_ContinuousStrategies(benchmark::State& state) {
  size_t vehicles = 100;
  bool broadcast = state.range(0) == 1;
  auto query = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)");
  SimNetwork::Stats stats;
  uint64_t motion_updates = 0;
  for (auto _ : state) {
    Sim sim(vehicles, 0.05);
    (void)sim.coordinator->IssueObjectQuery(
        *query,
        broadcast ? DistStrategy::kBroadcastFilter : DistStrategy::kCollect,
        /*continuous=*/true, 512);
    sim.Run(8);
    sim.net.ResetStats();
    motion_updates = 0;
    auto updates = sim.fleet.GenerateUpdates(300);
    for (const MotionUpdate& u : updates) {
      if (u.at <= sim.clock.Now()) continue;
      sim.Run(u.at);
      sim.nodes[u.id]->UpdateMotion(u.position, u.velocity);
      ++motion_updates;
    }
    sim.Run(sim.clock.Now() + 8);
    stats = sim.net.stats();
  }
  state.counters["motion_updates"] = static_cast<double>(motion_updates);
  state.counters["push_messages"] = static_cast<double>(stats.messages_sent);
  state.counters["push_bytes"] = static_cast<double>(stats.bytes_sent);
  state.counters["strategy2_broadcast"] = broadcast ? 1 : 0;
}
BENCHMARK(BM_ContinuousStrategies)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Relationship queries centralize: everything is pulled to the issuer once.
void BM_RelationshipQuery(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto query = ParseQuery(
      "RETRIEVE o, n FROM FLEET o, FLEET n "
      "WHERE ALWAYS FOR 5 DIST(o, n) <= 30");
  SimNetwork::Stats stats;
  size_t pairs = 0;
  for (auto _ : state) {
    Sim sim(vehicles, 0.05);
    sim.net.ResetStats();
    uint64_t qid = sim.coordinator->IssueRelationshipQuery(*query, 128);
    sim.Run(8);
    auto rel = sim.coordinator->EvaluateCollected(qid);
    pairs = rel->relation.rows.size();
    stats = sim.net.stats();
    benchmark::DoNotOptimize(rel);
  }
  state.counters["messages"] = static_cast<double>(stats.messages_sent);
  state.counters["pairs_found"] = static_cast<double>(pairs);
}
BENCHMARK(BM_RelationshipQuery)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

struct DistRun {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  Tick completion_tick = -1;  ///< Tick the answer turned kCertain; -1 never.
};

/// One query over a lossy link, run until the answer is complete (or the
/// tick cap). Completion = the coordinator heard every node's QueryDone,
/// i.e. the answer's confidence is kCertain.
DistRun RunDistQuery(size_t vehicles, bool broadcast, double loss,
                     uint64_t seed) {
  Sim sim(vehicles, 0.05, loss, seed);
  auto query = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)");
  sim.net.ResetStats();
  uint64_t qid = sim.coordinator->IssueObjectQuery(
      *query,
      broadcast ? DistStrategy::kBroadcastFilter : DistStrategy::kCollect,
      /*continuous=*/false, 256);
  Tick issued = sim.clock.Now();
  DistRun run;
  for (Tick t = 0; t < 4096; ++t) {
    sim.clock.Advance();
    sim.net.DeliverDue();
    bool certain =
        broadcast
            ? sim.coordinator->ReportedMatches(qid)->confidence ==
                  Confidence::kCertain
            : sim.coordinator->GetState(qid).value()->MissingNodes().empty();
    if (certain) {
      run.completion_tick = sim.clock.Now() - issued;
      break;
    }
  }
  run.messages = sim.net.stats().messages_sent;
  run.bytes = sim.net.stats().bytes_sent;
  return run;
}

void BM_DistQuery(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  bool broadcast = state.range(1) == 1;
  double loss = static_cast<double>(state.range(2)) / 100.0;
  DistRun run;
  uint64_t seed = 1;
  for (auto _ : state) {
    run = RunDistQuery(vehicles, broadcast, loss, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.counters["messages"] = static_cast<double>(run.messages);
  state.counters["bytes"] = static_cast<double>(run.bytes);
  state.counters["completion_tick"] = static_cast<double>(run.completion_tick);
  state.counters["strategy2_broadcast"] = broadcast ? 1 : 0;
  state.counters["loss_pct"] = static_cast<double>(state.range(2));
}
BENCHMARK(BM_DistQuery)
    ->ArgsProduct({{100}, {0, 1}, {0, 10, 30}})
    ->Unit(benchmark::kMillisecond);

// ---- Recovery: crash a durable node mid-query, measure the rejoin ---------

struct RecoveryRun {
  Tick ticks_to_certain = -1;  ///< Restart -> first kCertain; -1 = never.
  uint64_t catchup_bytes = 0;  ///< Answer-mirror bytes sent for the rejoin.
  uint64_t catchup_deltas = 0;
  uint64_t rejoins = 0;
  uint64_t lease_expirations = 0;
  size_t answer_size = 0;  ///< Matches in the answer the mirror tracks.
};

/// Continuous broadcast query over `vehicles` nodes; node 0 is durable
/// (WAL-backed) and mirrors Answer(CQ). It gets killed mid-query, stays
/// down past the lease horizon while the fleet keeps moving, then
/// restarts from its WAL and rejoins. Measures how long until the
/// coordinator's answer is kCertain again and how many bytes the mirror
/// catch-up cost — with `delta_catchup` the coordinator sends only the
/// entries dirtied since the node's recovered anchor; without it, the
/// full answer (the resync baseline).
RecoveryRun RunRecovery(size_t vehicles, bool delta_catchup, uint64_t seed) {
  std::string wal = "/tmp/most_bench_recovery_" + std::to_string(seed) +
                    (delta_catchup ? "_delta" : "_full") + ".wal";
  std::remove(wal.c_str());
  Clock clock;
  SimNetwork net(&clock, SimNetwork::Options{.latency = 1, .seed = seed});
  std::map<std::string, Polygon> regions;
  double side = 1000.0 * std::sqrt(0.05);
  regions["P"] = Polygon::Rectangle({500 - side / 2, 500 - side / 2},
                                    {500 + side / 2, 500 + side / 2});
  Coordinator::Options copts;
  copts.liveness_timeout = 24;
  copts.delta_catchup = delta_catchup;
  Coordinator coordinator(&net, &clock, regions, copts);
  // A calm fleet (a motion change every ~200 ticks per vehicle): the
  // interesting regime for delta catch-up, where the answer entries
  // dirtied during one node's downtime are a small fraction of the
  // whole answer. At high churn a delta inevitably approaches the full
  // answer — there is nothing clean to skip.
  FleetGenerator fleet({.num_vehicles = vehicles,
                        .area = 1000.0,
                        .change_probability = 0.005,
                        .seed = 1997});
  MobileNode::Options opts;
  opts.beacon_interval = 8;
  opts.home = coordinator.node_id();
  std::vector<std::unique_ptr<MobileNode>> nodes;
  for (const ObjectState& s : fleet.initial_states()) {
    MobileNode::Options node_opts = opts;
    if (nodes.empty()) node_opts.wal_path = wal;
    nodes.push_back(
        std::make_unique<MobileNode>(&net, &clock, s, regions, node_opts));
  }
  auto run_to = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };
  run_to(8);
  auto query = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)");
  uint64_t qid = coordinator.IssueObjectQuery(
      *query, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  run_to(16);
  (void)coordinator.SubscribeAnswerMirror(qid, nodes[0]->node_id());
  run_to(24);

  // Fleet keeps moving through the whole incident; node 0 is killed at
  // tick 32 and restarted at 64 — past the 24-tick lease horizon.
  constexpr Tick kCrashAt = 32;
  constexpr Tick kRestartAt = 64;
  auto updates = fleet.GenerateUpdates(kRestartAt + 16);
  size_t next_update = 0;
  MobileNode::Options restart_opts = opts;
  restart_opts.wal_path = wal;
  for (Tick t = 25; t <= kRestartAt; ++t) {
    if (t == kCrashAt) nodes[0].reset();
    if (t == kRestartAt) {
      nodes[0] = std::make_unique<MobileNode>(
          &net, &clock, fleet.initial_states()[0], regions, restart_opts);
    }
    run_to(t);
    while (next_update < updates.size() && updates[next_update].at <= t) {
      const MotionUpdate& u = updates[next_update++];
      if (nodes[u.id] != nullptr) {
        nodes[u.id]->UpdateMotion(u.position, u.velocity);
      }
    }
  }
  RecoveryRun run;
  for (Tick t = kRestartAt + 1; t < kRestartAt + 2048; ++t) {
    run_to(t);
    if (coordinator.ReportedMatches(qid)->confidence == Confidence::kCertain) {
      run.ticks_to_certain = t - kRestartAt;
      break;
    }
  }
  Coordinator::RecoveryStats stats = coordinator.recovery_stats();
  run.catchup_bytes = stats.catchup_bytes;
  run.catchup_deltas = stats.catchup_deltas;
  run.rejoins = stats.rejoins;
  run.lease_expirations = stats.lease_expirations;
  run.answer_size = coordinator.ReportedMatches(qid)->matches.size();
  std::remove(wal.c_str());
  return run;
}

void BM_Recovery(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  bool delta = state.range(1) == 1;
  RecoveryRun run;
  uint64_t seed = 1;
  for (auto _ : state) {
    run = RunRecovery(vehicles, delta, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.counters["ticks_to_certain"] =
      static_cast<double>(run.ticks_to_certain);
  state.counters["catchup_bytes"] = static_cast<double>(run.catchup_bytes);
  state.counters["catchup_deltas"] = static_cast<double>(run.catchup_deltas);
  state.counters["delta_catchup"] = delta ? 1 : 0;
}
BENCHMARK(BM_Recovery)
    ->ArgsProduct({{200}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

void EmitBenchJson(const char* out_path) {
  std::ostringstream out;
  out << "{\n  \"benchmark\": \"dist_query\",\n  \"vehicles\": 100,\n";
  out << "  \"runs\": [\n";
  bool first = true;
  for (bool broadcast : {false, true}) {
    for (int loss_pct : {0, 10, 30}) {
      // Median of three seeds by completion tick, so one unlucky loss
      // pattern does not skew the headline number.
      DistRun runs[3];
      for (uint64_t s = 0; s < 3; ++s) {
        runs[s] = RunDistQuery(100, broadcast, loss_pct / 100.0, 100 + s);
      }
      std::sort(std::begin(runs), std::end(runs),
                [](const DistRun& a, const DistRun& b) {
                  return a.completion_tick < b.completion_tick;
                });
      const DistRun& r = runs[1];
      if (!first) out << ",\n";
      first = false;
      out << "    {\"strategy\": \""
          << (broadcast ? "broadcast_filter" : "collect")
          << "\", \"loss_pct\": " << loss_pct
          << ", \"messages\": " << r.messages << ", \"bytes\": " << r.bytes
          << ", \"completion_tick\": " << r.completion_tick << "}";
    }
  }
  out << "\n  ]\n";
  benchio::FinishBenchJson(out_path, "dist", out.str());
}

/// BENCH_recovery.json: the rejoin cost at fleet scale, delta catch-up
/// vs full re-send (median of three seeds by catch-up bytes). The delta
/// row's bytes must stay strictly below the full row's — the point of
/// shipping only the dirtied entries.
void EmitRecoveryJson(const char* out_path) {
  constexpr size_t kVehicles = 1000;
  std::ostringstream out;
  out << "{\n  \"benchmark\": \"recovery\",\n  \"vehicles\": " << kVehicles
      << ",\n  \"runs\": [\n";
  bool first = true;
  for (bool delta : {false, true}) {
    RecoveryRun runs[3];
    for (uint64_t s = 0; s < 3; ++s) {
      runs[s] = RunRecovery(kVehicles, delta, 200 + s);
    }
    std::sort(std::begin(runs), std::end(runs),
              [](const RecoveryRun& a, const RecoveryRun& b) {
                return a.catchup_bytes < b.catchup_bytes;
              });
    const RecoveryRun& r = runs[1];
    if (!first) out << ",\n";
    first = false;
    out << "    {\"catchup\": \"" << (delta ? "delta" : "full")
        << "\", \"catchup_bytes\": " << r.catchup_bytes
        << ", \"catchup_deltas\": " << r.catchup_deltas
        << ", \"ticks_to_certain\": " << r.ticks_to_certain
        << ", \"rejoins\": " << r.rejoins
        << ", \"lease_expirations\": " << r.lease_expirations
        << ", \"answer_size\": " << r.answer_size << "}";
  }
  out << "\n  ]\n";
  benchio::FinishBenchJson(out_path, "recovery", out.str());
}

}  // namespace most

// Custom main: run the registered benchmarks, then emit the summary the
// E7/E8 notes in EXPERIMENTS.md are built from.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_dist.json");
  most::EmitRecoveryJson("BENCH_recovery.json");
  return 0;
}
