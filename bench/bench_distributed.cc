// Experiment E7 — Section 5.3's distributed processing strategies.
//
//  * BM_ObjectQueryStrategies — one-shot object query: strategy 1
//    (collect all objects at the issuer) vs strategy 2 (broadcast the
//    query, nodes filter). Expected: strategy 2 sends fewer bytes when
//    the predicate is selective.
//  * BM_ContinuousStrategies — the continuous case: strategy 1 re-ships
//    the object on EVERY motion change; strategy 2 transmits only when a
//    node's answer changes.
//  * Selectivity sweep shows the crossover: with a predicate matching
//    everything, broadcast replies approach collect volume.

#include <benchmark/benchmark.h>

#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "ftl/parser.h"
#include "workload/fleet.h"

namespace most {
namespace {

struct Sim {
  Clock clock;
  SimNetwork net{&clock, SimNetwork::Options{.latency = 1}};
  std::map<std::string, Polygon> regions;
  std::unique_ptr<Coordinator> coordinator;
  std::vector<std::unique_ptr<MobileNode>> nodes;
  FleetGenerator fleet;

  Sim(size_t vehicles, double region_fraction)
      : fleet({.num_vehicles = vehicles, .area = 1000.0, .seed = 1997}) {
    double side = 1000.0 * std::sqrt(region_fraction);
    regions["P"] = Polygon::Rectangle({500 - side / 2, 500 - side / 2},
                                      {500 + side / 2, 500 + side / 2});
    coordinator = std::make_unique<Coordinator>(&net, &clock, regions);
    for (const ObjectState& s : fleet.initial_states()) {
      nodes.push_back(
          std::make_unique<MobileNode>(&net, &clock, s, regions));
    }
  }

  void Run(Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  }
};

void BM_ObjectQueryStrategies(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  bool broadcast = state.range(1) == 1;
  double fraction = static_cast<double>(state.range(2)) / 100.0;
  auto query = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)");
  SimNetwork::Stats stats;
  size_t matches = 0;
  for (auto _ : state) {
    Sim sim(vehicles, fraction);
    sim.net.ResetStats();
    uint64_t qid = sim.coordinator->IssueObjectQuery(
        *query,
        broadcast ? DistStrategy::kBroadcastFilter : DistStrategy::kCollect,
        /*continuous=*/false, 256);
    sim.Run(3);
    if (broadcast) {
      matches = sim.coordinator->ReportedMatches(qid)->size();
    } else {
      matches = sim.coordinator->EvaluateCollected(qid)->rows.size();
    }
    stats = sim.net.stats();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["messages"] = static_cast<double>(stats.messages_sent);
  state.counters["bytes"] = static_cast<double>(stats.bytes_sent);
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["strategy2_broadcast"] = broadcast ? 1 : 0;
  state.counters["region_pct"] = static_cast<double>(state.range(2));
}
BENCHMARK(BM_ObjectQueryStrategies)
    ->ArgsProduct({{100, 400}, {0, 1}, {1, 25, 100}})
    ->Unit(benchmark::kMillisecond);

void BM_ContinuousStrategies(benchmark::State& state) {
  size_t vehicles = 100;
  bool broadcast = state.range(0) == 1;
  auto query = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)");
  SimNetwork::Stats stats;
  uint64_t motion_updates = 0;
  for (auto _ : state) {
    Sim sim(vehicles, 0.05);
    (void)sim.coordinator->IssueObjectQuery(
        *query,
        broadcast ? DistStrategy::kBroadcastFilter : DistStrategy::kCollect,
        /*continuous=*/true, 512);
    sim.Run(3);
    sim.net.ResetStats();
    motion_updates = 0;
    auto updates = sim.fleet.GenerateUpdates(300);
    for (const MotionUpdate& u : updates) {
      if (u.at <= sim.clock.Now()) continue;
      sim.Run(u.at);
      sim.nodes[u.id]->UpdateMotion(u.position, u.velocity);
      ++motion_updates;
    }
    sim.Run(sim.clock.Now() + 2);
    stats = sim.net.stats();
  }
  state.counters["motion_updates"] = static_cast<double>(motion_updates);
  state.counters["push_messages"] = static_cast<double>(stats.messages_sent);
  state.counters["push_bytes"] = static_cast<double>(stats.bytes_sent);
  state.counters["strategy2_broadcast"] = broadcast ? 1 : 0;
}
BENCHMARK(BM_ContinuousStrategies)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Relationship queries centralize: everything is pulled to the issuer once.
void BM_RelationshipQuery(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto query = ParseQuery(
      "RETRIEVE o, n FROM FLEET o, FLEET n "
      "WHERE ALWAYS FOR 5 DIST(o, n) <= 30");
  SimNetwork::Stats stats;
  size_t pairs = 0;
  for (auto _ : state) {
    Sim sim(vehicles, 0.05);
    sim.net.ResetStats();
    uint64_t qid = sim.coordinator->IssueRelationshipQuery(*query, 128);
    sim.Run(3);
    auto rel = sim.coordinator->EvaluateCollected(qid);
    pairs = rel->rows.size();
    stats = sim.net.stats();
    benchmark::DoNotOptimize(rel);
  }
  state.counters["messages"] = static_cast<double>(stats.messages_sent);
  state.counters["pairs_found"] = static_cast<double>(pairs);
}
BENCHMARK(BM_RelationshipQuery)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
