// Experiment E5 — the appendix's Until computation. The paper notes the
// join "may run in time proportional to the product of the sizes of R1 and
// R2" in the worst case, with the per-pair chain merge running on sorted
// interval lists.
//
//  * BM_UntilChainMerge — the per-instantiation maximal-chain merge as the
//    number of intervals per set grows (expected: linear).
//  * BM_UntilRelationJoin — relation-level Until across K matching rows
//    per side (expected: proportional to pairs considered).
//  * BM_CoalescingAblation — DESIGN.md ablation: the appendix requires
//    non-consecutive interval lists; feeding fragmented (tick-sized)
//    intervals instead of coalesced ones inflates every downstream cost.

#include <benchmark/benchmark.h>

#include "common/interval.h"
#include "common/rng.h"
#include "ftl/eval.h"
#include "ftl/parser.h"

namespace most {
namespace {

IntervalSet MakeStripes(Tick start, Tick stride, Tick width, size_t count) {
  std::vector<Interval> ivs;
  for (size_t i = 0; i < count; ++i) {
    Tick b = start + static_cast<Tick>(i) * stride;
    ivs.push_back(Interval(b, b + width - 1));
  }
  return IntervalSet::FromIntervals(std::move(ivs));
}

void BM_UntilChainMerge(benchmark::State& state) {
  size_t intervals = static_cast<size_t>(state.range(0));
  // Alternating g1/g2 stripes that chain end-to-end (the worst case for
  // chain construction: every pair is compatible with the next).
  IntervalSet g1 = MakeStripes(0, 20, 10, intervals);
  IntervalSet g2 = MakeStripes(10, 20, 10, intervals);
  for (auto _ : state) {
    IntervalSet result = g2.UntilWith(g1);
    benchmark::DoNotOptimize(result);
  }
  state.counters["intervals_per_set"] = static_cast<double>(intervals);
  state.SetComplexityN(static_cast<int64_t>(intervals));
}
BENCHMARK(BM_UntilChainMerge)->RangeMultiplier(4)->Range(64, 65536)
    ->Complexity(benchmark::oN);

// Relation-level Until: one object class, rows generated so g1 and g2
// each hold K interval rows; measures the evaluator's join.
void BM_UntilRelationJoin(benchmark::State& state) {
  size_t objects = static_cast<size_t>(state.range(0));
  MostDatabase db;
  (void)db.CreateClass("M", {{"A", true, ValueType::kNull}}, true);
  Rng rng(1997);
  for (size_t i = 0; i < objects; ++i) {
    auto obj = db.CreateObject("M");
    (void)db.SetMotion("M", (*obj)->id(),
                       {rng.UniformDouble(-100, 100),
                        rng.UniformDouble(-100, 100)},
                       {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)});
    (void)db.UpdateDynamic("M", (*obj)->id(), "A",
                           rng.UniformDouble(0, 100),
                           TimeFunction::Linear(rng.UniformDouble(-1, 1)));
  }
  auto query = ParseQuery(
      "RETRIEVE o FROM M o WHERE o.A >= 20 UNTIL o.A <= 10");
  FtlEvaluator eval(db);
  for (auto _ : state) {
    eval.ResetStats();
    auto rel = eval.EvaluateQuery(*query, Interval(0, 512));
    benchmark::DoNotOptimize(rel);
    state.counters["join_pairs"] =
        static_cast<double>(eval.stats().join_pairs);
  }
  state.counters["objects"] = static_cast<double>(objects);
}
BENCHMARK(BM_UntilRelationJoin)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Ablation: identical tick sets, coalesced vs fragmented representation.
void BM_CoalescingAblation(benchmark::State& state) {
  bool coalesced = state.range(0) == 1;
  size_t span = 20000;
  IntervalSet g1, g2;
  if (coalesced) {
    g1 = MakeStripes(0, 40, 20, span / 40);
    g2 = MakeStripes(20, 40, 20, span / 40);
  } else {
    // Same membership, but handed over tick-by-tick; FromIntervals must
    // re-coalesce (this is the normalization step the appendix mandates).
    std::vector<Interval> f1, f2;
    for (Tick t = 0; t < static_cast<Tick>(span); ++t) {
      if (t % 40 < 20) {
        f1.push_back(Interval(t, t));
      } else {
        f2.push_back(Interval(t, t));
      }
    }
    for (auto _ : state) {
      IntervalSet a = IntervalSet::FromIntervals(f1);
      IntervalSet b = IntervalSet::FromIntervals(f2);
      IntervalSet result = b.UntilWith(a);
      benchmark::DoNotOptimize(result);
    }
    state.counters["input_intervals"] = static_cast<double>(f1.size());
    return;
  }
  for (auto _ : state) {
    IntervalSet result = g2.UntilWith(g1);
    benchmark::DoNotOptimize(result);
  }
  state.counters["input_intervals"] = static_cast<double>(g1.size());
}
BENCHMARK(BM_CoalescingAblation)->Arg(1)->Arg(0);

}  // namespace
}  // namespace most
